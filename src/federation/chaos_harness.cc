#include "federation/chaos_harness.h"

#include <memory>
#include <optional>
#include <utility>

#include "common/fault_injector.h"
#include "common/random.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"

namespace ldpjs {

namespace {

/// Deterministic per-(region, epoch) report stream: the same scenario
/// always perturbs the same values with the same randomness, so the
/// direct single-node reference is exactly reproducible.
std::vector<LdpReport> ScenarioReports(const LdpJoinSketchClient& client,
                                       const ChaosScenarioOptions& options,
                                       size_t region, size_t epoch) {
  std::vector<uint64_t> values(options.reports_per_epoch);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = (i * 2654435761u + region * 7919 + epoch * 104729) % 1000;
  }
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(Mix64(options.data_seed ^ (region * 1000003 + epoch)));
  client.PerturbBatch(values, reports, rng);
  return reports;
}

}  // namespace

Result<ChaosScenarioResult> RunChaosScenario(
    const ChaosScenarioOptions& options) {
  // The injector is installed for the whole run and must outlive every
  // labeled socket operation — declared before the nodes so it is
  // destroyed after them.
  FaultInjector injector(options.fault_seed, options.fault_rate,
                         options.max_faults);
  ScopedFaultInjection scope(&injector);

  CentralNodeOptions central_options;
  central_options.finalize_after = options.num_regions;
  // A window wider than the run: the sliding view must end up holding
  // every epoch, making it a second full-history path to compare against
  // the direct reference (and exercising the frontier bookkeeping under
  // out-of-order, retried pushes).
  central_options.window_epochs = options.epochs + 8;
  central_options.window_expected_regions = options.num_regions;
  CentralNode central(options.params, options.epsilon, central_options);
  LDPJS_RETURN_IF_ERROR(central.Start());

  std::vector<std::unique_ptr<RegionalNode>> regions;
  for (size_t i = 0; i < options.num_regions; ++i) {
    RegionalNodeOptions region_options;
    region_options.region_id = static_cast<uint32_t>(i);
    region_options.central_port = central.port();
    region_options.max_ship_attempts = options.max_ship_attempts;
    region_options.upstream_recv_timeout_seconds =
        options.upstream_recv_timeout_seconds;
    // Faults fire only on the upstream EPOCH_PUSH path — the one with the
    // (region, epoch) dedup that makes every schedule recoverable.
    region_options.upstream_fault_site =
        "region" + std::to_string(i) + ".up";
    region_options.spool_dir = options.spool_dir;
    regions.push_back(std::make_unique<RegionalNode>(
        options.params, options.epsilon, region_options));
    LDPJS_RETURN_IF_ERROR(regions.back()->Start());
  }

  LdpJoinSketchClient client(options.params, options.epsilon);
  LdpJoinSketchServer direct(options.params, options.epsilon);
  std::vector<std::optional<FrameSender>> clients(options.num_regions);
  for (size_t i = 0; i < options.num_regions; ++i) {
    auto sender = FrameSender::Connect("127.0.0.1", regions[i]->port(),
                                       options.params, options.epsilon);
    if (!sender.ok()) return sender.status();
    clients[i].emplace(std::move(*sender));
  }

  ChaosScenarioResult result;

  // Drive the run strictly synchronously, one region at a time: every
  // operation on a fault site then happens in a deterministic order, so
  // the seeded schedule replays bit-exactly (see FaultInjector).
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = 0; i < options.num_regions; ++i) {
      const std::vector<LdpReport> reports =
          ScenarioReports(client, options, i, epoch);
      LDPJS_RETURN_IF_ERROR(clients[i]->SendReports(reports));
      // Ingest barrier: the cut below must hold exactly this epoch's
      // reports, not race the region's shard queues.
      LDPJS_RETURN_IF_ERROR(clients[i]->Ping());
      LDPJS_RETURN_IF_ERROR(regions[i]->CutAndShip());
      direct.AbsorbBatch(reports);
      result.total_reports += reports.size();
    }
  }

  for (size_t i = 0; i < options.num_regions; ++i) {
    LDPJS_RETURN_IF_ERROR(clients[i]->Finish());
    LDPJS_RETURN_IF_ERROR(regions[i]->FlushAndStop());
  }

  // Every region has shipped every epoch, so the frontier covers the run
  // and the windowed view is a full-history sketch.
  if (central.window()->aligned()) {
    result.frontier = central.window()->frontier();
  }
  result.epochs_expired = central.window()->epochs_expired();
  result.windowed = central.WindowedFinalizedView().Serialize();

  for (const auto& region : regions) {
    const NetMetrics m = region->metrics();
    result.ship_retries += region->ship_retries();
    result.duplicate_acks += region->duplicate_acks();
    result.backoff_millis += m.backoff_millis;
    result.spool_bytes_written += m.spool_bytes_written;
    result.spool_errors += region->spool_errors();
  }

  central.Stop();
  result.central_metrics = central.metrics();
  result.federated = central.Finalize().Serialize();

  direct.Finalize();
  result.direct = direct.Serialize();

  result.fault_hits = injector.total_hits();
  result.faults_injected = injector.total_injected();
  result.fault_stats = injector.StatsString();
  return result;
}

}  // namespace ldpjs
