#include "sketch/agms.h"

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"

namespace ldpjs {

AgmsSketch::AgmsSketch(uint64_t seed, int k, int m) : k_(k), m_(m) {
  LDPJS_CHECK(k >= 1 && m >= 1);
  const size_t total = static_cast<size_t>(k) * static_cast<size_t>(m);
  signs_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    signs_.emplace_back(Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))));
  }
  counters_.assign(total, 0.0);
}

void AgmsSketch::Update(uint64_t d, double weight) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += weight * signs_[i](d);
  }
}

double AgmsSketch::JoinEstimate(const AgmsSketch& other) const {
  LDPJS_CHECK(k_ == other.k_ && m_ == other.m_);
  std::vector<double> group_means(static_cast<size_t>(k_));
  for (int g = 0; g < k_; ++g) {
    double acc = 0.0;
    for (int i = 0; i < m_; ++i) {
      acc += counter(g, i) * other.counter(g, i);
    }
    group_means[static_cast<size_t>(g)] = acc / static_cast<double>(m_);
  }
  return Median(group_means);
}

double AgmsSketch::SecondMomentEstimate() const { return JoinEstimate(*this); }

}  // namespace ldpjs
