// Private similarity computation for data valuation (paper §I application
// 1): two data owners — say, two retailers with customer-interest streams —
// want the *cosine similarity* of their item-frequency vectors before
// agreeing to a data-sharing deal, without either side revealing raw data.
//
// cos(A, B) = <fA, fB> / (||fA|| ||fB||), and every factor is a join size:
//   <fA, fB> = |A ⋈ B|,  ||fA||^2 = |A ⋈ A| (self-join / F2).
// All three are estimated from LDPJoinSketches, so no raw value ever
// leaves a user's device.
#include <cmath>
#include <cstdio>

#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

int main() {
  using namespace ldpjs;

  // Retailer A's stream is Zipf(1.4); retailer B's overlaps partially: its
  // stream mixes A's distribution with an independent one.
  const uint64_t domain = 50'000;
  const uint64_t rows = 800'000;
  const JoinWorkload base = MakeZipfWorkload(1.4, domain, rows, 11);
  Column stream_a = base.table_a;
  // B = half from the same population, half from a shifted population.
  std::vector<uint64_t> b_values;
  const JoinWorkload other = MakeZipfWorkload(1.4, domain, rows, 12);
  for (size_t i = 0; i < base.table_b.size(); ++i) {
    if (i % 2 == 0) {
      b_values.push_back(base.table_b[i]);
    } else {
      b_values.push_back((other.table_b[i] + domain / 2) % domain);
    }
  }
  Column stream_b(std::move(b_values), domain);

  SketchParams params;
  params.k = 18;
  params.m = 2048;
  params.seed = 99;
  const double epsilon = 4.0;

  SimulationOptions sim;
  sim.run_seed = 21;
  const LdpJoinSketchServer sa = BuildLdpJoinSketch(stream_a, params, epsilon, sim);
  sim.run_seed = 22;
  const LdpJoinSketchServer sb = BuildLdpJoinSketch(stream_b, params, epsilon, sim);
  // Self-join sketches use fresh perturbation randomness (second report per
  // user is a second query — a real deployment would split users or budget).
  sim.run_seed = 23;
  const LdpJoinSketchServer sa2 = BuildLdpJoinSketch(stream_a, params, epsilon, sim);
  sim.run_seed = 24;
  const LdpJoinSketchServer sb2 = BuildLdpJoinSketch(stream_b, params, epsilon, sim);

  const double inner = sa.JoinEstimate(sb);
  const double norm_a_sq = sa.JoinEstimate(sa2);
  const double norm_b_sq = sb.JoinEstimate(sb2);
  const double cosine =
      inner / (std::sqrt(std::abs(norm_a_sq)) * std::sqrt(std::abs(norm_b_sq)));

  // Ground truth for comparison (never computable by the real server).
  const auto fa = stream_a.Frequencies();
  const auto fb = stream_b.Frequencies();
  double true_inner = 0, true_na = 0, true_nb = 0;
  for (uint64_t d = 0; d < domain; ++d) {
    true_inner += static_cast<double>(fa[d]) * static_cast<double>(fb[d]);
    true_na += static_cast<double>(fa[d]) * static_cast<double>(fa[d]);
    true_nb += static_cast<double>(fb[d]) * static_cast<double>(fb[d]);
  }
  const double true_cosine =
      true_inner / (std::sqrt(true_na) * std::sqrt(true_nb));

  std::printf("private inner product estimate : %.3e (true %.3e)\n", inner,
              true_inner);
  std::printf("private cosine similarity      : %.4f (true %.4f)\n", cosine,
              true_cosine);
  std::printf("\nA data market can now price the overlap without either "
              "party exposing raw user data.\n");
  return 0;
}
