// Socket EINTR regression: a process that handles signals (the CLI's
// SIGUSR1 metrics dump, profilers, debuggers) delivers them to threads
// blocked in accept/recv/send. An interrupted syscall must be retried, not
// surfaced as a spurious Corruption/Unavailable — a regional aggregator
// must never drop a session because an operator asked for metrics. These
// tests install a handler WITHOUT SA_RESTART (so syscalls really do return
// EINTR) and storm the blocked thread with signals.
#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"

namespace ldpjs {
namespace {

void NoopHandler(int) {}

/// Installs a no-SA_RESTART handler for SIGUSR2 for the test's lifetime.
class InterruptingSignal {
 public:
  InterruptingSignal() {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = NoopHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR2, &action, &previous_);
  }
  ~InterruptingSignal() { sigaction(SIGUSR2, &previous_, nullptr); }

 private:
  struct sigaction previous_;
};

TEST(SocketEintrTest, RecvAllSurvivesInterruptingSignals) {
  InterruptingSignal guard;
  auto listener = Socket::ListenTcp(0);
  ASSERT_TRUE(listener.ok());

  constexpr size_t kBytes = 1 << 20;
  Status recv_status = Status::Internal("never ran");
  std::atomic<bool> receiving{false};
  std::thread reader([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> buffer(kBytes);
    receiving.store(true);
    recv_status = conn->RecvAll(buffer);
    // The payload must arrive intact, not just without error.
    for (size_t i = 0; i < kBytes; i += 4096) {
      ASSERT_EQ(buffer[i], static_cast<uint8_t>(i >> 12));
    }
  });

  auto client = Socket::ConnectTcp("127.0.0.1", listener->local_port());
  ASSERT_TRUE(client.ok());
  while (!receiving.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // Drip the payload while storming the blocked reader with signals, so
  // recv sits interrupted between chunks over and over.
  std::vector<uint8_t> payload(kBytes);
  for (size_t i = 0; i < kBytes; ++i) {
    payload[i] = static_cast<uint8_t>(i >> 12);
  }
  const pthread_t reader_handle = reader.native_handle();
  constexpr size_t kChunk = kBytes / 16;
  for (size_t first = 0; first < kBytes; first += kChunk) {
    for (int s = 0; s < 5; ++s) {
      pthread_kill(reader_handle, SIGUSR2);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ASSERT_TRUE(client
                    ->SendAll({payload.data() + first,
                               std::min(kChunk, kBytes - first)})
                    .ok());
  }
  reader.join();
  EXPECT_TRUE(recv_status.ok()) << recv_status.ToString();
}

TEST(SocketEintrTest, AcceptSurvivesInterruptingSignals) {
  InterruptingSignal guard;
  auto listener = Socket::ListenTcp(0);
  ASSERT_TRUE(listener.ok());

  Status accept_status = Status::Internal("never ran");
  std::atomic<bool> accepting{false};
  std::thread acceptor([&] {
    accepting.store(true);
    auto conn = listener->Accept();
    accept_status = conn.ok() ? Status::OK() : conn.status();
  });
  while (!accepting.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  const pthread_t acceptor_handle = acceptor.native_handle();
  for (int s = 0; s < 50; ++s) {
    pthread_kill(acceptor_handle, SIGUSR2);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  auto client = Socket::ConnectTcp("127.0.0.1", listener->local_port());
  ASSERT_TRUE(client.ok());
  acceptor.join();
  EXPECT_TRUE(accept_status.ok()) << accept_status.ToString();
}

TEST(SocketEintrTest, SendAllSurvivesInterruptingSignals) {
  InterruptingSignal guard;
  auto listener = Socket::ListenTcp(0);
  ASSERT_TRUE(listener.ok());

  // A sender blocked on a full TCP window (the peer reads slowly) is the
  // send-side analogue of the blocked reader above.
  constexpr size_t kBytes = 4 << 20;
  Status send_status = Status::Internal("never ran");
  std::atomic<bool> sending{false};
  auto client = Socket::ConnectTcp("127.0.0.1", listener->local_port());
  ASSERT_TRUE(client.ok());
  auto server_end = listener->Accept();
  ASSERT_TRUE(server_end.ok());

  std::atomic<bool> send_done{false};
  std::thread sender([&] {
    std::vector<uint8_t> payload(kBytes, 0xA5);
    sending.store(true);
    send_status = client->SendAll(payload);
    send_done.store(true);
  });
  while (!sending.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  const pthread_t sender_handle = sender.native_handle();
  std::vector<uint8_t> sink(64 * 1024);
  size_t received = 0;
  while (received < kBytes) {
    if (!send_done.load()) pthread_kill(sender_handle, SIGUSR2);
    auto n = server_end->RecvSome(sink);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    received += *n;
  }
  sender.join();
  EXPECT_TRUE(send_status.ok()) << send_status.ToString();
}

}  // namespace
}  // namespace ldpjs
