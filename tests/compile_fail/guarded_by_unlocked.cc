// Negative-compile case: reading a LDPJS_GUARDED_BY member without the
// lock must not compile under -Werror=thread-safety.
//
// Clang-only (the annotations are no-ops elsewhere); the configure-time
// suite in CMakeLists.txt registers it only for Clang builds.
#include "common/thread_annotations.h"

namespace {
struct Counter {
  ldpjs::Mutex mu;
  int value LDPJS_GUARDED_BY(mu) = 0;
};

int ReadCounter(Counter& counter) {
#ifdef LDPJS_EXPECT_FAIL
  return counter.value;  // No lock held.
#else
  ldpjs::MutexLock lock(counter.mu);
  return counter.value;
#endif
}
}  // namespace

int main() {
  Counter counter;
  return ReadCounter(counter);
}
