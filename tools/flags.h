// Minimal --key=value / --key value flag parser for the CLI tools. Not a
// general-purpose library: unknown flags are an error, every flag has a
// default, and --help prints the registered set.
#ifndef LDPJS_TOOLS_FLAGS_H_
#define LDPJS_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ldpjs::tools {

class Flags {
 public:
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help) {
    values_[name] = default_value;
    help_[name] = help;
  }

  /// Parses argv; exits with usage on --help or unknown flags.
  void Parse(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
      std::string arg = args[i];
      if (arg == "--help" || arg == "-h") {
        PrintUsage(argv[0]);
        std::exit(0);
      }
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        PrintUsage(argv[0]);
        std::exit(2);
      }
      arg = arg.substr(2);
      std::string value;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      if (!values_.count(arg)) {
        std::fprintf(stderr, "unknown flag: --%s\n", arg.c_str());
        PrintUsage(argv[0]);
        std::exit(2);
      }
      values_[arg] = value;
    }
  }

  std::string GetString(const std::string& name) const {
    return values_.at(name);
  }
  int64_t GetInt(const std::string& name) const {
    return std::strtoll(values_.at(name).c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& name) const {
    return std::strtod(values_.at(name).c_str(), nullptr);
  }

  void PrintUsage(const char* program) const {
    std::fprintf(stderr, "usage: %s [--flag value | --flag=value]...\n",
                 program);
    for (const auto& [name, help] : help_) {
      std::fprintf(stderr, "  --%-14s %s (default: %s)\n", name.c_str(),
                   help.c_str(), values_.at(name).c_str());
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> help_;
};

}  // namespace ldpjs::tools

#endif  // LDPJS_TOOLS_FLAGS_H_
