#include "ldp/krr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/join.h"
#include "ldp/frequency_oracle.h"

namespace ldpjs {
namespace {

TEST(KrrClientTest, KeepProbabilityMatchesFormula) {
  const double eps = 2.0;
  const uint64_t domain = 100;
  KrrClient client(domain, eps);
  const double expected =
      std::exp(eps) / (std::exp(eps) + static_cast<double>(domain) - 1.0);
  EXPECT_NEAR(client.keep_probability(), expected, 1e-12);
}

TEST(KrrClientTest, OutputAlwaysInDomain) {
  KrrClient client(10, 0.5);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(client.Perturb(3, rng), 10u);
  }
}

TEST(KrrClientTest, EmpiricalKeepRateMatches) {
  const double eps = 1.0;
  KrrClient client(20, eps);
  Xoshiro256 rng(2);
  int kept = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) kept += (client.Perturb(7, rng) == 7) ? 1 : 0;
  // The non-keep branch excludes the true value, so the report equals the
  // input exactly with the keep probability p = e^eps/(e^eps + |D| - 1).
  EXPECT_NEAR(static_cast<double>(kept) / n, client.keep_probability(), 0.01);
}

TEST(KrrClientTest, OtherValuesUniform) {
  // Conditional on not keeping, every other value is equally likely.
  KrrClient client(5, 0.5);
  Xoshiro256 rng(6);
  std::vector<int> counts(5, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[client.Perturb(0, rng)];
  for (uint64_t d = 1; d < 5; ++d) {
    EXPECT_NEAR(static_cast<double>(counts[d]) / counts[1], 1.0, 0.05)
        << "d=" << d;
  }
}

TEST(KrrClientTest, SatisfiesLdpRatioBound) {
  // Closed form: max over outputs y of Pr[y|x]/Pr[y|x'] is p/q = e^eps.
  const double eps = 1.5;
  const uint64_t domain = 8;
  KrrClient client(domain, eps);
  const double p = client.keep_probability();
  const double q = (1.0 - p) / (static_cast<double>(domain) - 1.0);
  EXPECT_NEAR(p / q, std::exp(eps), 1e-9);
}

TEST(KrrServerTest, CalibrationIsUnbiased) {
  const double eps = 2.0;
  const uint64_t domain = 50;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 200000, 3);
  KrrClient client(domain, eps);
  KrrServer server(domain, eps);
  Xoshiro256 rng(4);
  for (uint64_t v : w.table_a.values()) server.Absorb(client.Perturb(v, rng));
  const auto freq = w.table_a.Frequencies();
  // Heavy items calibrate within a few percent at this n.
  for (uint64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(server.EstimateFrequency(d) / static_cast<double>(freq[d]),
                1.0, 0.1)
        << "d=" << d;
  }
}

TEST(KrrServerTest, AllFrequenciesSumToTotal) {
  // Σ_d f̂(d) = n exactly: calibration is a linear bijection on histograms.
  const uint64_t domain = 30;
  KrrServer server(domain, 1.0);
  KrrClient client(domain, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    server.Absorb(client.Perturb(static_cast<uint64_t>(i) % domain, rng));
  }
  const auto freqs = server.EstimateAllFrequencies();
  double sum = 0;
  for (double f : freqs) sum += f;
  EXPECT_NEAR(sum, 5000.0, 1e-6);
}

TEST(KrrEndToEndTest, JoinEstimateOnSmallDomain) {
  const uint64_t domain = 40;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 100000, 7);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  const auto fa = KrrEstimateFrequencies(w.table_a, 4.0, 11);
  const auto fb = KrrEstimateFrequencies(w.table_b, 4.0, 12);
  const double est = JoinSizeFromFrequencies(fa, fb);
  EXPECT_NEAR(est / truth, 1.0, 0.1);
}

TEST(KrrDeathTest, DomainOfOneAborts) {
  EXPECT_DEATH(KrrClient(1, 1.0), "LDPJS_CHECK failed");
}

TEST(KrrDeathTest, NonPositiveEpsilonAborts) {
  EXPECT_DEATH(KrrClient(10, 0.0), "LDPJS_CHECK failed");
}

TEST(CommCostTest, ModelsAreMonotone) {
  EXPECT_EQ(CommCostModel::KrrBitsPerUser(1024), 10.0);
  EXPECT_GT(CommCostModel::KrrBitsPerUser(1 << 20),
            CommCostModel::KrrBitsPerUser(1 << 10));
  // Sketch reports: 1 sign bit + log2(k) + log2(m).
  EXPECT_EQ(CommCostModel::HadamardSketchBitsPerUser(16, 1024), 1 + 4 + 10);
  EXPECT_EQ(CommCostModel::FlhBitsPerUser(1024, 64), 10 + 6);
}

TEST(JoinFromFrequenciesTest, ClampZerosNegatives) {
  std::vector<double> fa{-5.0, 2.0};
  std::vector<double> fb{3.0, 4.0};
  EXPECT_EQ(JoinSizeFromFrequencies(fa, fb, false), -15.0 + 8.0);
  EXPECT_EQ(JoinSizeFromFrequencies(fa, fb, true), 8.0);
}

}  // namespace
}  // namespace ldpjs
