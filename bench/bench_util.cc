#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/stats.h"

namespace ldpjs::bench {

namespace {
constexpr int kCellWidth = 14;
}  // namespace

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

uint64_t ScaledRows(uint64_t paper_rows) {
  const uint64_t num = EnvU64("LDPJS_SCALE_NUM", 1);
  const uint64_t den = EnvU64("LDPJS_SCALE_DEN", 10);
  const uint64_t cap = EnvU64("LDPJS_MAX_ROWS", 4'000'000);
  const uint64_t scaled = std::max<uint64_t>(paper_rows * num / std::max<uint64_t>(den, 1), 50'000);
  return std::min(scaled, cap);
}

int NumTrials() {
  return static_cast<int>(EnvU64("LDPJS_TRIALS", 2));
}

ErrorStats MeasureJoinError(JoinMethod method, const Column& a,
                            const Column& b, double truth,
                            JoinMethodConfig config) {
  ErrorStats stats;
  const int trials = NumTrials();
  for (int t = 0; t < trials; ++t) {
    config.run_seed = Mix64(config.run_seed ^ (0x7157ULL + static_cast<uint64_t>(t)));
    const JoinMethodResult result = EstimateJoin(method, a, b, config);
    stats.mean_ae += AbsoluteError(truth, result.estimate);
    stats.mean_re += RelativeError(truth, result.estimate);
    stats.mean_offline_s += result.offline_seconds;
    stats.mean_online_s += result.online_seconds;
    stats.comm_bits = result.comm_bits;
    stats.mean_estimate += result.estimate;
  }
  const double n = static_cast<double>(trials);
  stats.mean_ae /= n;
  stats.mean_re /= n;
  stats.mean_offline_s /= n;
  stats.mean_online_s /= n;
  stats.mean_estimate /= n;
  return stats;
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  PrintTableRow(columns);
  std::string rule;
  for (size_t i = 0; i < columns.size(); ++i) {
    rule += std::string(kCellWidth, '-');
    rule += (i + 1 < columns.size()) ? "-+-" : "";
  }
  std::printf("%s\n", rule.c_str());
}

void PrintTableRow(const std::vector<std::string>& cells) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string cell = cells[i];
    if (cell.size() < kCellWidth) {
      cell.insert(0, kCellWidth - cell.size(), ' ');
    }
    line += cell;
    line += (i + 1 < cells.size()) ? " | " : "";
  }
  std::printf("%s\n", line.c_str());
}

std::string Sci(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3e", v);
  return buffer;
}

std::string Fixed(double v, int decimals) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, v);
  return buffer;
}

void WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.17g%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace ldpjs::bench
