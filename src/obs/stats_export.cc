#include "obs/stats_export.h"

#include <cmath>
#include <cstdio>

namespace ldpjs {

namespace {

void AppendField(std::string& out, const char* name, uint64_t value,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(value);
}

void AppendDoubleField(std::string& out, const char* name, double value,
                       bool* first) {
  if (!std::isfinite(value)) value = 0.0;  // keep the JSON parseable
  if (!*first) out += ',';
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", name, value);
  out += buf;
}

void AppendHistogram(std::string& out, const std::string& name,
                     const HistogramSnapshot& h, bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += name;
  out += "\":{";
  bool f = true;
  AppendField(out, "count", h.count, &f);
  AppendField(out, "sum", h.sum, &f);
  AppendDoubleField(out, "mean", h.mean(), &f);
  AppendField(out, "p50", h.Percentile(0.50), &f);
  AppendField(out, "p90", h.Percentile(0.90), &f);
  AppendField(out, "p99", h.Percentile(0.99), &f);
  AppendField(out, "p999", h.Percentile(0.999), &f);
  out += '}';
}

}  // namespace

std::string StatsToJson(const NetMetrics& m, const MetricsRegistry* registry,
                        std::string_view extra_sections) {
  std::string out;
  out.reserve(1024 + 128 * (m.connections.size() + m.shards.size() +
                            m.regions.size()));
  out += '{';
  bool first = true;
  AppendField(out, "connections_accepted", m.connections_accepted, &first);
  AppendField(out, "connections_active", m.connections_active, &first);
  AppendField(out, "handshakes_rejected", m.handshakes_rejected, &first);
  AppendField(out, "frames_received", m.frames_received, &first);
  AppendField(out, "bytes_received", m.bytes_received, &first);
  AppendField(out, "reports_ingested", m.reports_ingested, &first);
  AppendField(out, "corrupt_frames_rejected", m.corrupt_frames_rejected,
              &first);
  AppendField(out, "frames_shed", m.frames_shed, &first);
  AppendField(out, "queue_high_water", m.queue_high_water, &first);
  AppendField(out, "epochs_applied", m.epochs_applied, &first);
  AppendField(out, "epoch_duplicates_ignored", m.epoch_duplicates_ignored,
              &first);
  AppendField(out, "accept_failures", m.accept_failures, &first);
  AppendField(out, "accept_fatal", m.accept_fatal, &first);
  AppendField(out, "idle_reaped", m.idle_reaped, &first);
  AppendField(out, "connections_folded", m.connections_folded, &first);
  AppendField(out, "retries_attempted", m.retries_attempted, &first);
  AppendField(out, "backoff_millis", m.backoff_millis, &first);
  AppendField(out, "faults_injected", m.faults_injected, &first);
  AppendField(out, "spool_bytes_written", m.spool_bytes_written, &first);
  AppendField(out, "spool_bytes_resumed", m.spool_bytes_resumed, &first);
  AppendField(out, "spool_epochs_resumed", m.spool_epochs_resumed, &first);
  AppendField(out, "query_frames", m.query_frames, &first);
  AppendField(out, "queries_rejected", m.queries_rejected, &first);
  AppendField(out, "views_published", m.views_published, &first);
  if (registry != nullptr) {
    // Derived SLO keys, always present and always finite so a scrape can
    // assert on them before any traced batch has completed the circuit.
    const HistogramSnapshot e2e =
        registry->HistogramByName("ingest_to_queryable_ns");
    AppendDoubleField(out, "ingest_to_queryable_p50_ms",
                      static_cast<double>(e2e.Percentile(0.50)) / 1e6, &first);
    AppendDoubleField(out, "ingest_to_queryable_p99_ms",
                      static_cast<double>(e2e.Percentile(0.99)) / 1e6, &first);
  }
  out += ",\"query_kinds\":{";
  for (size_t i = 0; i < m.query_kinds.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += m.query_kinds[i].kind;
    out += "\":";
    out += std::to_string(m.query_kinds[i].served);
  }
  out += '}';
  out += ",\"query_rejected_kinds\":{";
  for (size_t i = 0; i < m.query_rejected_kinds.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += m.query_rejected_kinds[i].kind;
    out += "\":";
    out += std::to_string(m.query_rejected_kinds[i].served);
  }
  out += '}';
  out += ",\"connections\":[";
  for (size_t i = 0; i < m.connections.size(); ++i) {
    const ConnectionMetrics& c = m.connections[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "id", c.id, &f);
    AppendField(out, "active", c.active ? 1 : 0, &f);
    AppendField(out, "frames_received", c.frames_received, &f);
    AppendField(out, "bytes_received", c.bytes_received, &f);
    AppendField(out, "reports_ingested", c.reports_ingested, &f);
    AppendField(out, "corrupt_frames_rejected", c.corrupt_frames_rejected, &f);
    AppendField(out, "frames_shed", c.frames_shed, &f);
    out += '}';
  }
  out += "],\"shards\":[";
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "shard", i, &f);
    AppendField(out, "frames", s.frames, &f);
    AppendField(out, "reports", s.reports, &f);
    AppendField(out, "queue_high_water", s.queue_high_water, &f);
    out += '}';
  }
  out += "],\"regions\":[";
  for (size_t i = 0; i < m.regions.size(); ++i) {
    const RegionMetrics& r = m.regions[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "region_id", r.region_id, &f);
    AppendField(out, "epochs_applied", r.epochs_applied, &f);
    AppendField(out, "empty_epochs", r.empty_epochs, &f);
    AppendField(out, "duplicates_ignored", r.duplicates_ignored, &f);
    AppendField(out, "reports_merged", r.reports_merged, &f);
    AppendField(out, "snapshot_bytes", r.snapshot_bytes, &f);
    AppendField(out, "next_epoch", r.next_epoch, &f);
    out += '}';
  }
  out += ']';
  if (registry != nullptr) {
    const MetricsRegistry::Snapshot snap = registry->TakeSnapshot();
    out += ",\"obs\":{\"enabled\":";
    out += ObsEnabled() ? "true" : "false";
    out += ",\"counters\":{";
    bool f = true;
    for (const auto& [name, value] : snap.counters) {
      AppendField(out, name.c_str(), value, &f);
    }
    out += "},\"gauges\":{";
    f = true;
    for (const auto& [name, value] : snap.gauges) {
      AppendField(out, name.c_str(), value, &f);
    }
    out += "},\"histograms\":{";
    f = true;
    for (const auto& [name, hist] : snap.histograms) {
      AppendHistogram(out, name, hist, &f);
    }
    out += "}";
    // Staleness of the freshest published view (0.0 until the first
    // publication) — the gauge stores the wall time of the last publish.
    uint64_t last_publish = 0;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "view_last_publish_unix_ns") last_publish = value;
    }
    const uint64_t now = NowNanos();
    const double staleness_ms =
        (last_publish == 0 || now < last_publish)
            ? 0.0
            : static_cast<double>(now - last_publish) / 1e6;
    bool f2 = false;
    AppendDoubleField(out, "view_staleness_ms", staleness_ms, &f2);
    out += '}';
  }
  if (!extra_sections.empty()) {
    out += ',';
    out += extra_sections;
  }
  out += '}';
  return out;
}

}  // namespace ldpjs
