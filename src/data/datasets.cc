#include "data/datasets.h"

#include "common/random.h"
#include "common/status.h"
#include "data/gaussian.h"
#include "data/zipf.h"

namespace ldpjs {

namespace {

// Skews chosen so the simulated frequency tails qualitatively match the
// public descriptions of each dataset (see DESIGN.md).
constexpr double kMovieLensAlpha = 1.05;
constexpr double kTpcdsAlpha = 0.6;
constexpr double kTwitterAlpha = 0.8;
constexpr double kFacebookAlpha = 0.65;

Column GenerateFor(const DatasetSpec& spec, uint64_t rows, uint64_t seed) {
  switch (spec.id) {
    case DatasetId::kGaussian: {
      GaussianParams params;
      params.domain = spec.domain;
      params.rows = rows;
      params.seed = seed;
      // mu/sigma scaled to the domain so the bell sits inside [0, domain).
      params.mu = static_cast<double>(spec.domain) / 2.0;
      params.sigma = static_cast<double>(spec.domain) / 8.4;
      return GenerateGaussian(params);
    }
    case DatasetId::kZipf:
    case DatasetId::kMovieLens:
    case DatasetId::kTpcds:
    case DatasetId::kTwitter:
    case DatasetId::kFacebook: {
      ZipfParams params;
      params.alpha = spec.zipf_alpha;
      params.domain = spec.domain;
      params.rows = rows;
      params.seed = seed;
      return GenerateZipf(params);
    }
  }
  LDPJS_CHECK(false);
  return Column();
}

}  // namespace

std::vector<DatasetSpec> AllDatasetSpecs() {
  return {
      {DatasetId::kZipf, "Zipf", 3'000'000, 40'000'000, 1.1},
      {DatasetId::kGaussian, "Gaussian", 80'000, 40'000'000, 0.0},
      {DatasetId::kMovieLens, "MovieLens", 83'239, 67'664'324, kMovieLensAlpha},
      {DatasetId::kTpcds, "TPC-DS", 18'000, 5'760'808, kTpcdsAlpha},
      {DatasetId::kTwitter, "Twitter", 77'072, 4'841'532, kTwitterAlpha},
      {DatasetId::kFacebook, "Facebook", 4'039, 352'936, kFacebookAlpha},
  };
}

DatasetSpec GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  LDPJS_CHECK(false);
  return DatasetSpec{};
}

JoinWorkload MakeWorkload(DatasetId id, uint64_t rows, uint64_t seed) {
  const DatasetSpec spec = GetDatasetSpec(id);
  JoinWorkload workload;
  workload.name = spec.name;
  workload.table_a = GenerateFor(spec, rows, Mix64(seed ^ 0xAAAAAAAAAAAAAAAAULL));
  workload.table_b = GenerateFor(spec, rows, Mix64(seed ^ 0xBBBBBBBBBBBBBBBBULL));
  return workload;
}

JoinWorkload MakeZipfWorkload(double alpha, uint64_t domain, uint64_t rows,
                              uint64_t seed) {
  JoinWorkload workload;
  workload.name = "Zipf(alpha=" + std::to_string(alpha) + ")";
  ZipfParams params;
  params.alpha = alpha;
  params.domain = domain;
  params.rows = rows;
  params.seed = Mix64(seed ^ 0xAAAAAAAAAAAAAAAAULL);
  workload.table_a = GenerateZipf(params);
  params.seed = Mix64(seed ^ 0xBBBBBBBBBBBBBBBBULL);
  workload.table_b = GenerateZipf(params);
  return workload;
}

}  // namespace ldpjs
