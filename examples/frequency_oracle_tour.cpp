// Tour of the LDP frequency oracles bundled with the library (the paper's
// competitor suite) plus LDPJoinSketch's own Theorem-7 estimator: perturb
// the same private column under each mechanism at the same ε and compare
// per-value frequency estimates and end-to-end join accumulation.
//
// Take-away (paper §II): all four answer frequency queries, but only the
// sketch product of LDPJoinSketch avoids accumulating per-value noise over
// the whole domain when the target statistic is a join size.
#include <cstdio>

#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "ldp/frequency_oracle.h"
#include "ldp/hcms.h"
#include "ldp/krr.h"
#include "ldp/olh.h"

int main() {
  using namespace ldpjs;

  const uint64_t domain = 5'000;
  const uint64_t rows = 500'000;
  const double epsilon = 2.0;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, rows, 71);
  const auto true_freq = w.table_a.Frequencies();
  const double truth_join = ExactJoinSize(w.table_a, w.table_b);

  // --- k-RR.
  const auto krr_a = KrrEstimateFrequencies(w.table_a, epsilon, 201);
  const auto krr_b = KrrEstimateFrequencies(w.table_b, epsilon, 202);

  // --- Apple-HCMS.
  HcmsParams hcms;
  hcms.epsilon = epsilon;
  hcms.k = 18;
  hcms.m = 1024;
  hcms.seed = 203;
  const auto hcms_a = HcmsEstimateFrequencies(w.table_a, hcms, 204);
  const auto hcms_b = HcmsEstimateFrequencies(w.table_b, hcms, 205);

  // --- FLH.
  FlhParams flh;
  flh.epsilon = epsilon;
  flh.pool_size = 256;
  flh.seed = 206;
  const auto flh_a = FlhEstimateFrequencies(w.table_a, flh, 207);
  const auto flh_b = FlhEstimateFrequencies(w.table_b, flh, 208);

  // --- LDPJoinSketch.
  SketchParams sketch;
  sketch.k = 18;
  sketch.m = 1024;
  sketch.seed = 209;
  SimulationOptions sim;
  sim.run_seed = 210;
  const LdpJoinSketchServer sa =
      BuildLdpJoinSketch(w.table_a, sketch, epsilon, sim);
  sim.run_seed = 211;
  const LdpJoinSketchServer sb =
      BuildLdpJoinSketch(w.table_b, sketch, epsilon, sim);

  std::printf("frequency of the 3 hottest values (true vs estimates):\n");
  std::printf("%6s %10s %10s %10s %10s %12s\n", "value", "true", "k-RR",
              "HCMS", "FLH", "LDPJS(Thm7)");
  for (uint64_t d = 0; d < 3; ++d) {
    std::printf("%6llu %10llu %10.0f %10.0f %10.0f %12.0f\n",
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(true_freq[d]), krr_a[d],
                hcms_a[d], flh_a[d], sa.FrequencyEstimate(d));
  }

  std::printf("\njoin size |A ⋈ B| (true = %.4e):\n", truth_join);
  std::printf("  k-RR accumulation : %.4e\n",
              JoinSizeFromFrequencies(krr_a, krr_b));
  std::printf("  HCMS accumulation : %.4e\n",
              JoinSizeFromFrequencies(hcms_a, hcms_b));
  std::printf("  FLH accumulation  : %.4e\n",
              JoinSizeFromFrequencies(flh_a, flh_b));
  std::printf("  LDPJoinSketch     : %.4e  <- sketch product, no per-value "
              "accumulation\n",
              sa.JoinEstimate(sb));
  return 0;
}
