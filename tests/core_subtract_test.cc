// LdpJoinSketchServer::SubtractRaw — the sliding-window retract — and its
// service-layer plumbing. The invariant: lanes are linear, so any
// interleaving of merges and subtracts leaves exactly the lanes of the
// surviving set, bit for bit. The fuzz-style sweep here also runs under
// the CI ASan/UBSan job (and the add/subtract arithmetic under UBSan
// catches any signed overflow misuse).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/ldp_join_sketch.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 5, int m = 128, uint64_t seed = 7) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> MakeReports(const LdpJoinSketchClient& client,
                                   size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 40503u + seed) % 500;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

TEST(CoreSubtractTest, SubtractIsExactInverseOfMerge) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);

  LdpJoinSketchServer base(params, epsilon);
  base.AbsorbBatch(MakeReports(client, 4000, 1));
  const std::vector<uint8_t> before = base.Serialize();

  LdpJoinSketchServer delta(params, epsilon);
  delta.AbsorbBatch(MakeReports(client, 2500, 2));

  base.Merge(delta);
  EXPECT_EQ(base.total_reports(), 6500u);
  base.SubtractRaw(delta);
  EXPECT_EQ(base.Serialize(), before);  // lanes and count restored exactly
}

TEST(CoreSubtractTest, SubtractToEmptyMatchesFreshSketch) {
  const SketchParams params = TestParams();
  const double epsilon = 1.0;
  LdpJoinSketchClient client(params, epsilon);
  LdpJoinSketchServer sketch(params, epsilon);
  LdpJoinSketchServer delta(params, epsilon);
  delta.AbsorbBatch(MakeReports(client, 3000, 3));
  sketch.Merge(delta);
  sketch.SubtractRaw(delta);
  EXPECT_EQ(sketch.Serialize(), LdpJoinSketchServer(params, epsilon).Serialize());
}

// Fuzz-style sweep: random interleavings of epoch arrivals (merge) and
// expiries (subtract, oldest-first — the sliding-window order) must leave
// exactly the lanes of the directly-built surviving window. 40 rounds ×
// 12 operations with a fixed seed.
TEST(CoreSubtractTest, RandomAddSubtractInterleavingsMatchDirectBuild) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  Xoshiro256 rng(0xF00D);

  for (int round = 0; round < 40; ++round) {
    std::vector<std::vector<LdpReport>> epochs;   // payload per epoch
    std::vector<LdpJoinSketchServer> snapshots;   // raw sketch per epoch
    size_t oldest_live = 0;                        // expiry is oldest-first
    LdpJoinSketchServer incremental(params, epsilon);

    for (int op = 0; op < 12; ++op) {
      const bool can_expire = oldest_live < epochs.size();
      const bool expire = can_expire && rng.NextBounded(3) == 0;
      if (expire) {
        incremental.SubtractRaw(snapshots[oldest_live]);
        ++oldest_live;
      } else {
        const size_t n = 200 + rng.NextBounded(800);
        epochs.push_back(MakeReports(client, n, rng()));
        LdpJoinSketchServer snapshot(params, epsilon);
        snapshot.AbsorbBatch(epochs.back());
        incremental.Merge(snapshot);
        snapshots.push_back(std::move(snapshot));
      }

      // The incremental state must equal a from-scratch build of the live
      // window after EVERY operation, lanes bit-exact.
      LdpJoinSketchServer direct(params, epsilon);
      for (size_t e = oldest_live; e < epochs.size(); ++e) {
        direct.AbsorbBatch(epochs[e]);
      }
      ASSERT_EQ(incremental.Serialize(), direct.Serialize())
          << "round=" << round << " op=" << op;
    }
  }
}

// Service plumbing: decode-once + merge/subtract through the sharded
// aggregator keeps the merged lanes exact and the lifetime report counter
// monotone (retracted reports were still ingested).
TEST(CoreSubtractTest, ShardedAggregatorSubtractRawSketch) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);

  LdpJoinSketchServer epoch_a(params, epsilon);
  epoch_a.AbsorbBatch(MakeReports(client, 3000, 10));
  LdpJoinSketchServer epoch_b(params, epsilon);
  epoch_b.AbsorbBatch(MakeReports(client, 2000, 11));

  ShardedAggregator aggregator(params, epsilon, 3);
  auto decoded_a = aggregator.DecodeCompatibleSketch(epoch_a.Serialize());
  ASSERT_TRUE(decoded_a.ok());
  auto decoded_b = aggregator.DecodeCompatibleSketch(epoch_b.Serialize());
  ASSERT_TRUE(decoded_b.ok());

  aggregator.MergeRawSketch(0, *decoded_a);
  aggregator.MergeRawSketch(2, *decoded_b);
  EXPECT_EQ(aggregator.reports_ingested(), 5000u);

  // Retract epoch A from the shard it was merged into.
  aggregator.SubtractRawSketch(0, *decoded_a);
  EXPECT_EQ(aggregator.MergeShards().Serialize(), epoch_b.Serialize());
  // Lifetime counter stays monotone across the retraction.
  EXPECT_EQ(aggregator.reports_ingested(), 5000u);

  // Validation still rejects garbage and mismatched shapes before any lane.
  const std::vector<uint8_t> garbage(32, 0xAB);
  EXPECT_FALSE(aggregator.DecodeCompatibleSketch(garbage).ok());
  // Trailing bytes after a well-formed sketch are corruption, not ignored.
  auto trailing = epoch_b.Serialize();
  trailing.push_back(0);
  EXPECT_EQ(aggregator.DecodeCompatibleSketch(trailing).status().code(),
            StatusCode::kCorruption);
  LdpJoinSketchServer wrong(TestParams(3, 64), epsilon);
  auto mismatch = aggregator.DecodeCompatibleSketch(wrong.Serialize());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ldpjs
