// Non-private heavy/light separated inner-product estimation in the spirit
// of Skimmed sketch / JoinSketch (paper §II, refs [24][26]) — the
// non-private analogue of LDPJoinSketch+'s frequency-aware separation:
//
//   1. identify heavy hitters with a Count-Min pass;
//   2. keep exact counters for heavy items;
//   3. summarize the skimmed (light) residual stream in a Fast-AGMS sketch.
//
// |A ⋈ B| = Σ_{heavy∩heavy} f·f  +  cross terms via exact counters against
// the other side's light sketch frequency estimates + light⋈light via the
// sketch product. Collisions involving heavy items are eliminated exactly,
// which is where most of the fast-AGMS error comes from on skewed data.
//
// Included both as a reference point for LDPJoinSketch+ and as a useful
// non-private estimator in its own right.
#ifndef LDPJS_SKETCH_JOIN_SKETCH_H_
#define LDPJS_SKETCH_JOIN_SKETCH_H_

#include <cstdint>
#include <unordered_map>

#include "data/column.h"
#include "sketch/count_min.h"
#include "sketch/fast_agms.h"

namespace ldpjs {

struct SeparatedSketchParams {
  uint64_t seed = 1;       ///< hash seed; must match across joined sketches
  int agms_k = 9;          ///< light-part Fast-AGMS rows
  int agms_m = 1024;       ///< light-part Fast-AGMS columns
  int cm_k = 5;            ///< heavy-hitter Count-Min rows
  int cm_m = 2048;         ///< heavy-hitter Count-Min columns
  double heavy_fraction = 0.001;  ///< heavy threshold as a fraction of rows
};

/// Two-pass construction over a column: pass 1 fills the Count-Min and
/// finds heavy items; pass 2 routes heavy items to exact counters and the
/// rest into the Fast-AGMS sketch.
class SeparatedJoinSketch {
 public:
  SeparatedJoinSketch(const SeparatedSketchParams& params,
                      const Column& column);

  /// Inner product against another separated sketch built with the same
  /// params/seed.
  double JoinEstimate(const SeparatedJoinSketch& other) const;

  /// Exact for heavy items, sketch estimate otherwise.
  double FrequencyEstimate(uint64_t d) const;

  size_t heavy_item_count() const { return heavy_.size(); }
  const std::unordered_map<uint64_t, double>& heavy_items() const {
    return heavy_;
  }
  const FastAgmsSketch& light_sketch() const { return light_; }

 private:
  SeparatedSketchParams params_;
  std::unordered_map<uint64_t, double> heavy_;  // exact heavy counters
  FastAgmsSketch light_;                        // skimmed residual
};

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_JOIN_SKETCH_H_
