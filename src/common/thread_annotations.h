// Clang Thread Safety Analysis for the repo's lock discipline.
//
// Every mutex-holding class in src/ expresses its invariants through these
// macros and the annotated Mutex / MutexLock / CondVar wrappers below, and
// the CI static-analysis job builds with -Werror=thread-safety, so "which
// lock guards this member" and "which lock must be held to call this
// method" are compile-checked contracts, not comments. Under GCC (or any
// non-Clang compiler) every macro expands to nothing and the wrappers are
// zero-cost shims over std::mutex / std::condition_variable — behavior is
// byte-identical.
//
// What the analysis guarantees: every read/write of an LDPJS_GUARDED_BY
// member happens with its mutex held, every LDPJS_REQUIRES method is called
// under the right lock, and scoped locks are never double-acquired or
// leaked, on every path through the code — not just the interleavings a
// test happens to execute (which is all TSan can see). What it doesn't:
// deadlock freedom across *different* mutexes (no global lock order is
// declared), data published through atomics/RCU (annotation-free by
// design), and functions explicitly opted out with
// LDPJS_NO_THREAD_SAFETY_ANALYSIS (dynamic lock sets the static analysis
// cannot model — each such site says why).
//
// Conventions:
//   - Members:  `int x LDPJS_GUARDED_BY(mu_);`
//   - Methods that must be called with the lock held are named *Locked and
//     annotated `LDPJS_REQUIRES(mu_)`.
//   - Public methods that take the lock themselves are annotated
//     `LDPJS_EXCLUDES(mu_)` when an accidental reentrant call would
//     self-deadlock.
//   - Condition waits are explicit loops — `while (!pred) cv_.Wait(mu_);` —
//     never lambda predicates, so the guarded reads stay inside the
//     annotated scope (the analysis treats a lambda as a separate,
//     capability-free function).
#ifndef LDPJS_COMMON_THREAD_ANNOTATIONS_H_
#define LDPJS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define LDPJS_CAPABILITY(x) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define LDPJS_SCOPED_CAPABILITY \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define LDPJS_GUARDED_BY(x) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define LDPJS_PT_GUARDED_BY(x) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define LDPJS_ACQUIRED_BEFORE(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define LDPJS_ACQUIRED_AFTER(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define LDPJS_REQUIRES(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define LDPJS_REQUIRES_SHARED(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define LDPJS_ACQUIRE(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define LDPJS_RELEASE(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define LDPJS_TRY_ACQUIRE(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define LDPJS_EXCLUDES(...) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define LDPJS_ASSERT_CAPABILITY(x) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define LDPJS_RETURN_CAPABILITY(x) \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define LDPJS_NO_THREAD_SAFETY_ANALYSIS \
  LDPJS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace ldpjs {

class CondVar;

/// std::mutex carrying the "mutex" capability. Same footprint, same cost;
/// the annotations exist only at compile time.
class LDPJS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LDPJS_ACQUIRE() { mu_.lock(); }
  void Unlock() LDPJS_RELEASE() { mu_.unlock(); }
  bool TryLock() LDPJS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that the lock is held — for the
  /// rare spot where the caller's ownership is real but inexpressible.
  void AssertHeld() LDPJS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex — std::lock_guard with a scoped capability, plus
/// mid-scope Unlock()/Lock() for the "drop the lock around a callback"
/// pattern. The destructor releases only if held.
class LDPJS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LDPJS_ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.Lock();
  }
  ~MutexLock() LDPJS_RELEASE() {
    if (owns_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() LDPJS_RELEASE() {
    mu_.Unlock();
    owns_ = false;
  }
  void Lock() LDPJS_ACQUIRE() {
    mu_.Lock();
    owns_ = true;
  }

 private:
  Mutex& mu_;
  bool owns_;
};

/// std::condition_variable over Mutex. Wait* atomically release `mu` while
/// blocked and reacquire before returning, so the caller's capability is
/// intact on both sides — which is exactly what LDPJS_REQUIRES(mu) states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) LDPJS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// false on timeout (like cv_status::timeout).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      LDPJS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified = cv_.wait_for(lock, d) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  /// false on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& tp)
      LDPJS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified = cv_.wait_until(lock, tp) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_THREAD_ANNOTATIONS_H_
