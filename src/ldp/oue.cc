#include "ldp/oue.h"

#include <cmath>

#include "common/status.h"

namespace ldpjs {

OueClient::OueClient(uint64_t domain, double epsilon) : domain_(domain) {
  LDPJS_CHECK(domain >= 2);
  LDPJS_CHECK(epsilon > 0.0);
  flip_prob_ = 1.0 / (std::exp(epsilon) + 1.0);
}

std::vector<uint8_t> OueClient::Perturb(uint64_t value,
                                        Xoshiro256& rng) const {
  LDPJS_CHECK(value < domain_);
  std::vector<uint8_t> bits(domain_, 0);
  for (uint64_t d = 0; d < domain_; ++d) {
    const bool is_one = (d == value);
    const double keep_as_one = is_one ? 0.5 : flip_prob_;
    bits[d] = rng.NextBernoulli(keep_as_one) ? 1 : 0;
  }
  return bits;
}

OueServer::OueServer(uint64_t domain, double epsilon)
    : domain_(domain), bit_counts_(domain, 0) {
  LDPJS_CHECK(domain >= 2);
  LDPJS_CHECK(epsilon > 0.0);
  flip_prob_ = 1.0 / (std::exp(epsilon) + 1.0);
}

void OueServer::Absorb(const std::vector<uint8_t>& report) {
  LDPJS_CHECK(report.size() == domain_);
  for (uint64_t d = 0; d < domain_; ++d) bit_counts_[d] += report[d];
  ++total_;
}

double OueServer::EstimateFrequency(uint64_t d) const {
  LDPJS_CHECK(d < domain_);
  const double n = static_cast<double>(total_);
  return (static_cast<double>(bit_counts_[d]) - n * flip_prob_) /
         (0.5 - flip_prob_);
}

std::vector<double> OueServer::EstimateAllFrequencies() const {
  std::vector<double> out(domain_);
  for (uint64_t d = 0; d < domain_; ++d) out[d] = EstimateFrequency(d);
  return out;
}

std::vector<double> OueEstimateFrequencies(const Column& column,
                                           double epsilon, uint64_t seed) {
  OueClient client(column.domain(), epsilon);
  OueServer server(column.domain(), epsilon);
  for (size_t i = 0; i < column.size(); ++i) {
    Xoshiro256 rng(DeriveStreamSeed(seed, static_cast<uint64_t>(i)));
    server.Absorb(client.Perturb(column[i], rng));
  }
  return server.EstimateAllFrequencies();
}

}  // namespace ldpjs
