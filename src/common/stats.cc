#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace ldpjs {

double Median(std::span<const double> values) {
  LDPJS_CHECK(!values.empty());
  std::vector<double> copy(values.begin(), values.end());
  const size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  // Even count: the lower middle is the max of the left partition.
  double lower =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double Mean(std::span<const double> values) {
  LDPJS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  LDPJS_CHECK(values.size() >= 2);
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size() - 1);
}

double Quantile(std::span<const double> values, double q) {
  LDPJS_CHECK(!values.empty());
  LDPJS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double AbsoluteError(double truth, double estimate) {
  return std::abs(truth - estimate);
}

double RelativeError(double truth, double estimate) {
  LDPJS_CHECK(truth != 0.0);
  return std::abs(truth - estimate) / std::abs(truth);
}

double MeanSquaredError(std::span<const double> truth,
                        std::span<const double> estimate) {
  LDPJS_CHECK(truth.size() == estimate.size());
  LDPJS_CHECK(!truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - estimate[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace ldpjs
