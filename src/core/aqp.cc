#include "core/aqp.h"

#include <cmath>

namespace ldpjs {

namespace {
void ValidateRange(const LdpJoinSketchServer& sketch,
                   const ValueRange& range) {
  LDPJS_CHECK(sketch.finalized());
  LDPJS_CHECK(range.lo <= range.hi);
}
}  // namespace

double RangeCountEstimate(const LdpJoinSketchServer& sketch,
                          const ValueRange& range) {
  ValidateRange(sketch, range);
  double total = 0.0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    total += sketch.FrequencyEstimate(d);
  }
  return total;
}

double RangeWeightedSumEstimate(
    const LdpJoinSketchServer& sketch, const ValueRange& range,
    const std::function<double(uint64_t)>& weight) {
  ValidateRange(sketch, range);
  double total = 0.0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    total += weight(d) * sketch.FrequencyEstimate(d);
  }
  return total;
}

double PredicateJoinEstimate(const LdpJoinSketchServer& sketch_a,
                             const LdpJoinSketchServer& sketch_b,
                             const ValueRange& range) {
  ValidateRange(sketch_a, range);
  ValidateRange(sketch_b, range);
  LDPJS_CHECK(sketch_a.params().seed == sketch_b.params().seed);
  double total = 0.0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    total += sketch_a.FrequencyEstimate(d) * sketch_b.FrequencyEstimate(d);
  }
  return total;
}

uint64_t SupportSizeEstimate(const LdpJoinSketchServer& sketch,
                             const ValueRange& range, double floor) {
  ValidateRange(sketch, range);
  uint64_t support = 0;
  for (uint64_t d = range.lo; d <= range.hi; ++d) {
    if (sketch.FrequencyEstimate(d) > floor) ++support;
  }
  return support;
}

double NoiseFloorSuggestion(const LdpJoinSketchServer& sketch) {
  return 3.0 * sketch.c_eps() *
         std::sqrt(static_cast<double>(sketch.total_reports()));
}

}  // namespace ldpjs
