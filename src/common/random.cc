#include "common/random.h"

#include <cmath>

#include "common/status.h"

namespace ldpjs {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

uint64_t SplitMix64Next(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64Next(state);
}

uint64_t DeriveStreamSeed(uint64_t run_seed, uint64_t index) {
  const uint64_t offset = Mix64(run_seed ^ 0xa0761d6478bd642fULL);
  return Mix64(offset + index * 0x9e3779b97f4a7c15ULL);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  LDPJS_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Xoshiro256::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with rejection of u1 == 0.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace ldpjs
