#include "core/ldp_join_sketch_plus.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/freq_items.h"
#include "core/join_est.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 18, int m = 1024, uint64_t seed = 51) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

TEST(FreqItemsTest, FindsPlantedHeavyHitters) {
  // Domain of 500; values 0,1,2 hold ~60% of the mass.
  const uint64_t domain = 500;
  const JoinWorkload w = MakeZipfWorkload(1.8, domain, 200000, 3);
  SimulationOptions sim;
  sim.run_seed = 7;
  const LdpJoinSketchServer sketch =
      BuildLdpJoinSketch(w.table_a, TestParams(), 4.0, sim);
  const auto fi = FindFrequentItems(sketch, domain,
                                    0.01 * static_cast<double>(w.table_a.size()));
  EXPECT_TRUE(fi.contains(0));
  EXPECT_TRUE(fi.contains(1));
  // The tail must stay out.
  size_t tail_hits = 0;
  for (uint64_t d = 100; d < domain; ++d) {
    tail_hits += fi.contains(d) ? size_t{1} : size_t{0};
  }
  EXPECT_LE(tail_hits, 5u);
}

TEST(FreqItemsTest, UnionCoversBothAttributes) {
  const uint64_t domain = 100;
  // Table A heavy at 0, table B heavy at 99.
  std::vector<uint64_t> va(50000, 0), vb(50000, 99);
  for (size_t i = 0; i < 20000; ++i) {
    va.push_back(i % domain);
    vb.push_back(i % domain);
  }
  Column a(std::move(va), domain), b(std::move(vb), domain);
  SimulationOptions sim;
  sim.run_seed = 9;
  const LdpJoinSketchServer sa = BuildLdpJoinSketch(a, TestParams(), 4.0, sim);
  sim.run_seed = 10;
  const LdpJoinSketchServer sb = BuildLdpJoinSketch(b, TestParams(), 4.0, sim);
  const auto fi = FindFrequentItemsUnion(
      sa, sb, domain, 0.1 * static_cast<double>(a.size()),
      0.1 * static_cast<double>(b.size()));
  EXPECT_TRUE(fi.contains(0));
  EXPECT_TRUE(fi.contains(99));
}

TEST(FreqItemsTest, MassEstimateTracksTruth) {
  const uint64_t domain = 200;
  const JoinWorkload w = MakeZipfWorkload(1.6, domain, 150000, 11);
  SimulationOptions sim;
  sim.run_seed = 13;
  const LdpJoinSketchServer sketch =
      BuildLdpJoinSketch(w.table_a, TestParams(), 4.0, sim);
  const std::unordered_set<uint64_t> items{0, 1, 2, 3, 4};
  const auto freq = w.table_a.Frequencies();
  double truth = 0;
  for (uint64_t d : items) truth += static_cast<double>(freq[d]);
  const double est = EstimateFrequentMass(sketch, items, 1.0);
  EXPECT_NEAR(est / truth, 1.0, 0.1);
}

TEST(JoinEstTest, LowModeRemovesHighFrequencyMass) {
  // Build FAP low-sketches over a mixture and verify the estimate matches
  // the low-frequency join only.
  const SketchParams params = TestParams(12, 512);
  const uint64_t domain = 1000;
  const size_t n_low = 100000, n_high = 150000;
  auto make_column = [&](uint64_t low_value) {
    std::vector<uint64_t> values;
    values.reserve(n_low + n_high);
    for (size_t i = 0; i < n_low; ++i) values.push_back(low_value);
    for (size_t i = 0; i < n_high; ++i) values.push_back(7);  // shared heavy
    return Column(std::move(values), domain);
  };
  // Both tables share the same low value 123 → low join = n_low^2.
  Column a = make_column(123), b = make_column(123);
  const std::unordered_set<uint64_t> fi{7};
  SimulationOptions sim;
  sim.run_seed = 17;
  const LdpJoinSketchServer mla =
      BuildFapSketch(a, params, 4.0, FapMode::kLow, fi, sim);
  sim.run_seed = 18;
  const LdpJoinSketchServer mlb =
      BuildFapSketch(b, params, 4.0, FapMode::kLow, fi, sim);

  JoinEstSide side_a{&mla, static_cast<double>(n_high),
                     static_cast<double>(a.size()),
                     static_cast<double>(a.size())};
  JoinEstSide side_b{&mlb, static_cast<double>(n_high),
                     static_cast<double>(b.size()),
                     static_cast<double>(b.size())};
  const double est = JoinEst(side_a, side_b, FapMode::kLow);
  const double truth = static_cast<double>(n_low) * static_cast<double>(n_low);
  EXPECT_NEAR(est / truth, 1.0, 0.2);
}

TEST(JoinEstTest, HighModeRemovesLowFrequencyMass) {
  const SketchParams params = TestParams(12, 512);
  const uint64_t domain = 1000;
  const size_t n_low = 150000, n_high = 100000;
  auto make_column = [&] {
    std::vector<uint64_t> values;
    values.reserve(n_low + n_high);
    for (size_t i = 0; i < n_low; ++i) values.push_back(200 + i % 300);
    for (size_t i = 0; i < n_high; ++i) values.push_back(7);
    return Column(std::move(values), domain);
  };
  Column a = make_column(), b = make_column();
  const std::unordered_set<uint64_t> fi{7};
  SimulationOptions sim;
  sim.run_seed = 21;
  const LdpJoinSketchServer mha =
      BuildFapSketch(a, params, 4.0, FapMode::kHigh, fi, sim);
  sim.run_seed = 22;
  const LdpJoinSketchServer mhb =
      BuildFapSketch(b, params, 4.0, FapMode::kHigh, fi, sim);

  JoinEstSide side_a{&mha, static_cast<double>(n_high),
                     static_cast<double>(a.size()),
                     static_cast<double>(a.size())};
  JoinEstSide side_b{&mhb, static_cast<double>(n_high),
                     static_cast<double>(b.size()),
                     static_cast<double>(b.size())};
  const double est = JoinEst(side_a, side_b, FapMode::kHigh);
  const double truth =
      static_cast<double>(n_high) * static_cast<double>(n_high);
  EXPECT_NEAR(est / truth, 1.0, 0.2);
}

TEST(JoinEstTest, ZeroNonTargetMassReducesToPlainJoinEstimate) {
  // mode = kLow with zero FI mass: nothing to subtract, so JoinEst must
  // equal the plain sketch product exactly.
  const SketchParams params = TestParams(6, 256);
  const JoinWorkload w = MakeZipfWorkload(1.4, 300, 30000, 19);
  SimulationOptions sim;
  sim.run_seed = 71;
  const LdpJoinSketchServer sa =
      BuildFapSketch(w.table_a, params, 4.0, FapMode::kLow, {}, sim);
  sim.run_seed = 72;
  const LdpJoinSketchServer sb =
      BuildFapSketch(w.table_b, params, 4.0, FapMode::kLow, {}, sim);
  JoinEstSide side_a{&sa, 0.0, static_cast<double>(w.table_a.size()),
                     static_cast<double>(w.table_a.size())};
  JoinEstSide side_b{&sb, 0.0, static_cast<double>(w.table_b.size()),
                     static_cast<double>(w.table_b.size())};
  EXPECT_EQ(JoinEst(side_a, side_b, FapMode::kLow), sa.JoinEstimate(sb));
}

TEST(JoinEstTest, GroupScaledSubtractionDiffersFromPaperLiteral) {
  const SketchParams params = TestParams(6, 256);
  Column a(std::vector<uint64_t>(50000, 3), 100);
  const std::unordered_set<uint64_t> fi{3};
  SimulationOptions sim;
  sim.run_seed = 23;
  const LdpJoinSketchServer sketch =
      BuildFapSketch(a, params, 4.0, FapMode::kLow, fi, sim);
  // Group is half the table → group-scaled subtraction removes half the
  // mass of the literal variant.
  JoinEstSide side{&sketch, 50000.0, 100000.0, 50000.0};
  JoinEstOptions literal;
  literal.paper_literal_subtraction = true;
  const double est_scaled = JoinEst(side, side, FapMode::kLow);
  const double est_literal = JoinEst(side, side, FapMode::kLow, literal);
  EXPECT_NE(est_scaled, est_literal);
}

TEST(LdpJoinSketchPlusTest, EndToEndOnSkewedData) {
  const uint64_t domain = 3000;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 400000, 29);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  LdpJoinSketchPlusParams params;
  params.sketch = TestParams();
  params.epsilon = 4.0;
  params.sample_rate = 0.2;
  params.threshold = 0.005;
  params.simulation.run_seed = 31;
  const LdpJoinSketchPlusResult result =
      EstimateJoinSizePlus(w.table_a, w.table_b, params);
  EXPECT_NEAR(result.estimate / truth, 1.0, 0.3);
  EXPECT_GT(result.frequent_item_count, 0u);
  // Partition accounting: sample + group1 + group2 = table.
  EXPECT_EQ(result.sample_rows_a + result.group_rows_a[0] +
                result.group_rows_a[1],
            w.table_a.size());
  EXPECT_EQ(result.sample_rows_b + result.group_rows_b[0] +
                result.group_rows_b[1],
            w.table_b.size());
  // Sample is ~r of the table.
  EXPECT_NEAR(static_cast<double>(result.sample_rows_a) /
                  static_cast<double>(w.table_a.size()),
              params.sample_rate, 0.02);
  // Estimate decomposes into the two scaled parts.
  EXPECT_NEAR(result.estimate, result.low_estimate + result.high_estimate,
              1e-6);
}

TEST(LdpJoinSketchPlusTest, DeterministicForFixedSeedAndThreads) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 500, 100000, 37);
  LdpJoinSketchPlusParams params;
  params.sketch = TestParams(12, 512);
  params.epsilon = 4.0;
  params.simulation.run_seed = 41;
  params.simulation.num_threads = 2;
  const auto r1 = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  const auto r2 = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  EXPECT_EQ(r1.estimate, r2.estimate);
  EXPECT_EQ(r1.frequent_item_count, r2.frequent_item_count);
}

TEST(LdpJoinSketchPlusTest, HighFreqMassClampedToTableSize) {
  const JoinWorkload w = MakeZipfWorkload(2.0, 200, 80000, 43);
  LdpJoinSketchPlusParams params;
  params.sketch = TestParams(12, 512);
  params.epsilon = 0.5;  // noisy phase 1 → inflated raw mass estimates
  params.threshold = 0.001;
  params.simulation.run_seed = 47;
  const auto result = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  EXPECT_LE(result.high_freq_mass_a, static_cast<double>(w.table_a.size()));
  EXPECT_LE(result.high_freq_mass_b, static_cast<double>(w.table_b.size()));
}

TEST(LdpJoinSketchPlusDeathTest, InvalidParamsAbort) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 100, 1000, 3);
  LdpJoinSketchPlusParams params;
  params.sample_rate = 0.0;
  EXPECT_DEATH(EstimateJoinSizePlus(w.table_a, w.table_b, params),
               "LDPJS_CHECK failed");
  params.sample_rate = 0.1;
  params.threshold = 1.5;
  EXPECT_DEATH(EstimateJoinSizePlus(w.table_a, w.table_b, params),
               "LDPJS_CHECK failed");
}

// Property sweep: the full pipeline stays sane across thresholds (Fig. 11's
// x-axis) — estimates remain positive and within a loose band of truth on
// well-behaved data.
class PlusThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(PlusThresholdTest, EstimateWithinLooseBand) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 1000, 200000, 53);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  LdpJoinSketchPlusParams params;
  params.sketch = TestParams(12, 1024);
  params.epsilon = 4.0;
  params.threshold = GetParam();
  params.simulation.run_seed = 59;
  const auto result = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  EXPECT_GT(result.estimate, 0.2 * truth);
  EXPECT_LT(result.estimate, 3.0 * truth);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PlusThresholdTest,
                         ::testing::Values(0.0005, 0.001, 0.005, 0.02, 0.08));

}  // namespace
}  // namespace ldpjs
