#include "common/hash.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(PolynomialHashTest, DeterministicForSeed) {
  PolynomialHash h1(11, 4), h2(11, 4), h3(12, 4);
  bool any_diff = false;
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h1(x), h2(x));
    if (h1(x) != h3(x)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PolynomialHashTest, OutputBelowMersennePrime) {
  PolynomialHash h(99, 4);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h(x * 0x9e3779b97f4a7c15ULL), kMersenne61);
  }
}

TEST(PolynomialHashTest, IndependenceDegreeIsStored) {
  EXPECT_EQ(PolynomialHash(1, 2).independence(), 2);
  EXPECT_EQ(PolynomialHash(1, 4).independence(), 4);
}

TEST(MulMod61Test, MatchesSmallCases) {
  EXPECT_EQ(internal::MulMod61(3, 5), 15u);
  EXPECT_EQ(internal::MulMod61(kMersenne61 - 1, 1), kMersenne61 - 1);
  // (p-1)*(p-1) mod p = 1 since (p-1) ≡ -1 (mod p).
  EXPECT_EQ(internal::MulMod61(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

TEST(AddMod61Test, WrapsAround) {
  EXPECT_EQ(internal::AddMod61(kMersenne61 - 1, 1), 0u);
  EXPECT_EQ(internal::AddMod61(5, 6), 11u);
}

TEST(BucketHashTest, InRange) {
  const uint64_t m = 77;  // non power of two on purpose
  BucketHash h(5, m);
  EXPECT_EQ(h.num_buckets(), m);
  for (uint64_t x = 0; x < 10000; ++x) {
    EXPECT_LT(h(x), m);
  }
}

TEST(BucketHashTest, ApproximatelyUniform) {
  const uint64_t m = 64;
  BucketHash h(17, m);
  std::vector<int> counts(m, 0);
  const int n = 64000;
  for (int x = 0; x < n; ++x) ++counts[h(static_cast<uint64_t>(x))];
  const double expected = static_cast<double>(n) / static_cast<double>(m);
  for (uint64_t b = 0; b < m; ++b) {
    EXPECT_GT(counts[b], expected * 0.75) << "bucket " << b;
    EXPECT_LT(counts[b], expected * 1.25) << "bucket " << b;
  }
}

TEST(BucketHashTest, PairwiseCollisionRateNearOneOverM) {
  const uint64_t m = 128;
  int collisions = 0;
  const int kPairs = 20000;
  for (int t = 0; t < kPairs; ++t) {
    BucketHash h(1000 + static_cast<uint64_t>(t), m);
    if (h(2 * static_cast<uint64_t>(t)) == h(2 * static_cast<uint64_t>(t) + 1)) {
      ++collisions;
    }
  }
  const double rate = static_cast<double>(collisions) / kPairs;
  EXPECT_NEAR(rate, 1.0 / static_cast<double>(m), 0.004);
}

TEST(SignHashTest, OutputsPlusMinusOne) {
  SignHash xi(23);
  for (uint64_t x = 0; x < 1000; ++x) {
    const int s = xi(x);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(SignHashTest, BalancedSigns) {
  SignHash xi(29);
  int sum = 0;
  const int n = 100000;
  for (int x = 0; x < n; ++x) sum += xi(static_cast<uint64_t>(x));
  EXPECT_LT(std::abs(sum), 1500);  // ~4.7 sigma for fair coin
}

TEST(SignHashTest, PairProductMeanNearZero) {
  // E[ξ(a)ξ(b)] = 0 for a != b over the hash family.
  double acc = 0;
  const int kFamilies = 20000;
  for (int t = 0; t < kFamilies; ++t) {
    SignHash xi(40000 + static_cast<uint64_t>(t));
    acc += xi(1) * xi(2);
  }
  EXPECT_NEAR(acc / kFamilies, 0.0, 0.02);
}

TEST(SignHashTest, FourWiseProductMeanNearZero) {
  // E[ξ(a)ξ(b)ξ(c)ξ(d)] = 0 for distinct a,b,c,d — needs 4-wise
  // independence, which degree-3 polynomials provide.
  double acc = 0;
  const int kFamilies = 20000;
  for (int t = 0; t < kFamilies; ++t) {
    SignHash xi(90000 + static_cast<uint64_t>(t));
    acc += xi(10) * xi(20) * xi(30) * xi(40);
  }
  EXPECT_NEAR(acc / kFamilies, 0.0, 0.02);
}

TEST(RowHashesTest, SameSeedSameFamilies) {
  auto rows1 = MakeRowHashes(77, 5, 64);
  auto rows2 = MakeRowHashes(77, 5, 64);
  ASSERT_EQ(rows1.size(), 5u);
  for (size_t j = 0; j < rows1.size(); ++j) {
    for (uint64_t x = 0; x < 200; ++x) {
      EXPECT_EQ(rows1[j].bucket(x), rows2[j].bucket(x));
      EXPECT_EQ(rows1[j].sign(x), rows2[j].sign(x));
    }
  }
}

TEST(RowHashesTest, RowsAreDistinct) {
  auto rows = MakeRowHashes(88, 4, 1024);
  int diff = 0;
  for (uint64_t x = 0; x < 200; ++x) {
    if (rows[0].bucket(x) != rows[1].bucket(x)) ++diff;
  }
  EXPECT_GT(diff, 150);  // different rows hash differently almost always
}

TEST(TabulationHashTest, DeterministicAndSeedSensitive) {
  TabulationHash h1(3), h2(3), h3(4);
  bool any_diff = false;
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h1(x), h2(x));
    if (h1(x) != h3(x)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TabulationHashTest, AvalancheOnSingleBitFlip) {
  TabulationHash h(5);
  double total = 0;
  const int kTrials = 512;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t x = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL;
    total += std::popcount(h(x) ^ h(x ^ (1ULL << (static_cast<unsigned>(t) % 64))));
  }
  EXPECT_GT(total / kTrials, 24.0);
  EXPECT_LT(total / kTrials, 40.0);
}

// Property sweep: bucket hashes stay in range and stay deterministic for a
// grid of (seed, m) configurations.
class BucketHashParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(BucketHashParamTest, RangeAndDeterminism) {
  const auto [seed, m] = GetParam();
  BucketHash a(seed, m), b(seed, m);
  for (uint64_t x = 0; x < 2000; ++x) {
    const uint64_t va = a(x);
    EXPECT_LT(va, m);
    EXPECT_EQ(va, b(x));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BucketHashParamTest,
    ::testing::Combine(::testing::Values(1u, 42u, 0xdeadbeefu),
                       ::testing::Values(2u, 3u, 64u, 1024u, 1u << 20)));

}  // namespace
}  // namespace ldpjs
