// COMPASS-style multiway Fast-AGMS sketches (paper §VI, after Izenov et al.):
// a chain join T1(A) ⋈ T2(A,B) ⋈ ... ⋈ Tn(Z) is estimated with a vector
// sketch per end table and a matrix sketch per middle table, multiplied
// through as vector * matrix * ... * vector, median over k replicas.
//
// Hash coordination: every sketch touching attribute X must be built with
// the same attribute seed for X. The non-private COMPASS here is both the
// Fig. 15 baseline and the structural template for the private multiway
// extension in core/multiway.h.
#ifndef LDPJS_SKETCH_COMPASS_H_
#define LDPJS_SKETCH_COMPASS_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "data/join.h"
#include "sketch/fast_agms.h"

namespace ldpjs {

/// k replicas of an (m_left x m_right) matrix sketch for a two-join-attribute
/// table. Replica j uses (h_j, ξ_j) pairs derived from the two attribute
/// seeds, matching the vector sketches for those attributes.
class FastAgmsMatrixSketch {
 public:
  FastAgmsMatrixSketch(uint64_t left_seed, uint64_t right_seed, int k,
                       int m_left, int m_right);

  /// Adds one tuple with join keys (a, b): every replica j gets
  /// ξ^L_j(a)·ξ^R_j(b) at [h^L_j(a), h^R_j(b)].
  void Update(uint64_t a, uint64_t b, double weight = 1.0);

  void UpdatePairColumn(const PairColumn& pairs);

  int k() const { return k_; }
  int m_left() const { return m_left_; }
  int m_right() const { return m_right_; }
  double cell(int replica, int row, int col) const {
    return cells_[(static_cast<size_t>(replica) * static_cast<size_t>(m_left_) +
                   static_cast<size_t>(row)) *
                      static_cast<size_t>(m_right_) +
                  static_cast<size_t>(col)];
  }

  /// Replica j as a dense matrix row-major view (m_left x m_right).
  const double* replica_data(int replica) const {
    return cells_.data() + static_cast<size_t>(replica) *
                               static_cast<size_t>(m_left_) *
                               static_cast<size_t>(m_right_);
  }

 private:
  friend class LdpMultiwaySketch;  // private multiway reuses the hash layout

  int k_;
  int m_left_;
  int m_right_;
  std::vector<RowHashes> left_rows_;
  std::vector<RowHashes> right_rows_;
  std::vector<double> cells_;  // [k][m_left][m_right]
};

/// Chain-join estimate: end_left (vector sketch on the first attribute),
/// one matrix sketch per middle table, end_right (vector sketch on the last
/// attribute). All must share k; adjacent dimensions must match. Median over
/// the k replicas of  v_L^T · M_1 · ... · M_p · v_R.
double CompassChainJoinEstimate(
    const FastAgmsSketch& end_left,
    const std::vector<const FastAgmsMatrixSketch*>& middles,
    const FastAgmsSketch& end_right);

/// Cyclic join estimate, e.g. T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A): per replica the
/// trace of the product of the cycle's matrices, median over replicas.
/// Attribute seeds must form a ring; adjacent dimensions must match.
double CompassCyclicJoinEstimate(
    const std::vector<const FastAgmsMatrixSketch*>& cycle);

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_COMPASS_H_
