// CentralNode: the top of the federated aggregation topology. A FrameServer
// whose traffic is EPOCH_PUSH snapshots from RegionalNodes (it accepts
// direct DATA sessions too — the tiers speak one protocol), with the
// central-specific conveniences on top: wait-for-N-regions finalize
// coordination and estimate-at-epoch-boundary views.
//
// Exactness: every regional snapshot is raw int64 lanes and every merge is
// integer addition, so after all regions flush, Finalize() yields the
// sketch a single node absorbing every client's report directly would
// produce, bit for bit — for any region count, epoch schedule, shard count
// per tier, and any mid-epoch disconnect/retry (the (region, epoch) dedup
// makes retried pushes exactly-once).
#ifndef LDPJS_FEDERATION_CENTRAL_NODE_H_
#define LDPJS_FEDERATION_CENTRAL_NODE_H_

#include <cstdint>

#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "net/frame_server.h"

namespace ldpjs {

struct CentralNodeOptions {
  /// Listening port, shard count, queue depth, backpressure policy.
  FrameServerOptions server;
  /// How many FINALIZE requests end the collection — one per region when
  /// regions forward their clients' FINALIZE upstream.
  size_t finalize_after = 1;
};

class CentralNode {
 public:
  CentralNode(const SketchParams& params, double epsilon,
              const CentralNodeOptions& options);

  Status Start() { return server_.Start(); }
  uint16_t port() const { return server_.port(); }

  /// Blocks until `finalize_after` FINALIZE frames have arrived (each
  /// region sends one as its flush completes).
  void WaitForRegions() { server_.WaitForFinalizeRequests(finalize_after_); }

  /// A finalized copy of everything merged so far, without disturbing
  /// collection — estimates at an epoch boundary while regions keep
  /// streaming. Each view applies the global debias to its own copy, so
  /// views are themselves exact for the reports they contain.
  LdpJoinSketchServer FinalizedView() const { return server_.FinalizedView(); }

  void Stop() { server_.Stop(); }

  /// Final merged + finalized sketch; once, after Stop().
  LdpJoinSketchServer Finalize() { return server_.Finalize(); }

  NetMetrics metrics() const { return server_.metrics(); }
  const FrameServer& server() const { return server_; }
  FrameServer& server_mutable() { return server_; }

 private:
  FrameServer server_;
  size_t finalize_after_;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_CENTRAL_NODE_H_
