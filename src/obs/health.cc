#include "obs/health.h"

#include <cstdio>

namespace ldpjs {

namespace {

/// One rule: observed vs threshold, DEGRADED at 1x, CRITICAL at
/// `critical_multiplier`x. Appends its description to `cause` when breached
/// and folds its level into `worst`.
void ApplyRule(double observed, double threshold, double critical_multiplier,
               const char* name, const char* unit, HealthState* worst,
               std::string* cause) {
  if (threshold <= 0.0 || observed < threshold) return;
  const bool critical = observed >= threshold * critical_multiplier;
  const HealthState level =
      critical ? HealthState::kCritical : HealthState::kDegraded;
  if (static_cast<uint8_t>(level) > static_cast<uint8_t>(*worst)) {
    *worst = level;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s %.6g%s >= %.6g%s", name, observed, unit,
                threshold, unit);
  if (!cause->empty()) *cause += "; ";
  *cause += buf;
}

uint64_t NamedValue(
    const std::vector<std::pair<std::string, uint64_t>>& series,
    std::string_view name) {
  for (const auto& [key, value] : series) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "OK";
    case HealthState::kDegraded:
      return "DEGRADED";
    case HealthState::kCritical:
      return "CRITICAL";
  }
  return "OK";
}

HealthVerdict EvaluateHealth(const HealthSignals& signals,
                             const HealthOptions& options) {
  HealthVerdict verdict;
  if (signals.has_i2q) {
    ApplyRule(signals.i2q_p99_ms, options.i2q_p99_target_ms,
              options.critical_multiplier, "i2q_p99", "ms", &verdict.state,
              &verdict.cause);
  }
  ApplyRule(static_cast<double>(signals.frontier_lag),
            static_cast<double>(options.frontier_lag_epochs),
            options.critical_multiplier, "frontier_lag", " epochs",
            &verdict.state, &verdict.cause);
  ApplyRule(static_cast<double>(signals.spool_depth),
            static_cast<double>(options.spool_depth_epochs),
            options.critical_multiplier, "spool_depth", " epochs",
            &verdict.state, &verdict.cause);
  if (signals.frames > 0) {
    const double frames = static_cast<double>(signals.frames);
    ApplyRule(static_cast<double>(signals.shed) / frames, options.shed_rate,
              options.critical_multiplier, "shed_rate", "", &verdict.state,
              &verdict.cause);
    ApplyRule(static_cast<double>(signals.corrupt) / frames,
              options.corrupt_rate, options.critical_multiplier,
              "corrupt_rate", "", &verdict.state, &verdict.cause);
  }
  if (options.stale_after_ns > 0) {
    ApplyRule(static_cast<double>(signals.age_ns) / 1e9,
              static_cast<double>(options.stale_after_ns) / 1e9,
              options.critical_multiplier, "stats_push_age", "s",
              &verdict.state, &verdict.cause);
  }
  return verdict;
}

HealthSignals SignalsFromMetrics(const NetMetrics& metrics,
                                 const MetricsRegistry::Snapshot& snapshot) {
  HealthSignals signals;
  signals.frames = metrics.frames_received;
  signals.shed = metrics.frames_shed;
  signals.corrupt = metrics.corrupt_frames_rejected;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name == "ingest_to_queryable_ns" && hist.count > 0) {
      signals.has_i2q = true;
      signals.i2q_p99_ms = static_cast<double>(hist.Percentile(0.99)) / 1e6;
    }
  }
  return signals;
}

HealthSignals SignalsFromSnapshot(const MetricsRegistry::Snapshot& snapshot,
                                  uint64_t frontier_max, uint64_t age_ns) {
  HealthSignals signals;
  signals.frames = NamedValue(snapshot.counters, "net_frames_received");
  signals.shed = NamedValue(snapshot.counters, "net_frames_shed");
  signals.corrupt =
      NamedValue(snapshot.counters, "net_corrupt_frames_rejected");
  signals.spool_depth = NamedValue(snapshot.gauges, "net_pending_epochs");
  const uint64_t frontier =
      NamedValue(snapshot.gauges, "net_frontier_epoch");
  signals.frontier_lag = frontier_max > frontier ? frontier_max - frontier : 0;
  signals.age_ns = age_ns;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name == "ingest_to_queryable_ns" && hist.count > 0) {
      signals.has_i2q = true;
      signals.i2q_p99_ms = static_cast<double>(hist.Percentile(0.99)) / 1e6;
    }
  }
  return signals;
}

std::string HealthVerdictToJson(const HealthVerdict& verdict) {
  std::string out = "{\"state\":\"";
  out += HealthStateName(verdict.state);
  out += "\",\"cause\":\"";
  // The causes are built from fixed rule names and %g numbers — no JSON
  // metacharacters — but escape defensively anyway.
  for (char c : verdict.cause) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"}";
  return out;
}

}  // namespace ldpjs
