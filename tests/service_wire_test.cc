// Wire decode hardening: DecodeReportBatch must agree with a per-report
// DecodeReport loop on every valid input, and must return Corruption —
// without reading out of bounds (the CI sanitize job runs these under
// ASan/UBSan) — on truncated, corrupted, or wrong-version buffers.
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "core/ldp_join_sketch.h"
#include "service/aggregator_shard.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 4, int m = 128, uint64_t seed = 13) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> RandomReports(size_t n, uint64_t seed,
                                     uint32_t j_bound = 4,
                                     uint32_t l_bound = 128) {
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  for (auto& r : reports) {
    r.y = rng.NextBernoulli(0.5) ? int8_t{1} : int8_t{-1};
    r.j = static_cast<uint16_t>(rng.NextBounded(j_bound));
    r.l = static_cast<uint32_t>(rng.NextBounded(l_bound));
  }
  return reports;
}

std::vector<uint8_t> EncodeBatch(std::span<const LdpReport> reports) {
  BinaryWriter writer;
  EncodeReportBatch(reports, writer);
  return writer.TakeBuffer();
}

TEST(DecodeReportBatchTest, AgreesWithPerReportDecodeOnValidBatches) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 size_rng(seed);
    const size_t n = size_rng.NextBounded(kMaxWireBatchReports + 1);
    const std::vector<LdpReport> reports =
        RandomReports(n, seed * 101, 0x10000, 0xffffffffU);
    const std::vector<uint8_t> bytes = EncodeBatch(reports);

    std::vector<LdpReport> batch(kMaxWireBatchReports);
    BinaryReader batch_reader(bytes);
    auto count = DecodeReportBatch(batch_reader, batch);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_EQ(*count, n);
    EXPECT_TRUE(batch_reader.AtEnd());

    // The per-report reference path over the same packed records: skip the
    // envelope header (magic, version, count), then DecodeReport per record.
    BinaryReader scalar_reader(bytes);
    ASSERT_TRUE(scalar_reader.GetU32().ok());
    ASSERT_TRUE(scalar_reader.GetU8().ok());
    ASSERT_TRUE(scalar_reader.GetU32().ok());
    for (size_t i = 0; i < n; ++i) {
      auto report = DecodeReport(scalar_reader);
      ASSERT_TRUE(report.ok()) << "i=" << i;
      ASSERT_EQ(batch[i].y, report->y) << "i=" << i;
      ASSERT_EQ(batch[i].j, report->j) << "i=" << i;
      ASSERT_EQ(batch[i].l, report->l) << "i=" << i;
    }
  }
}

TEST(DecodeReportBatchTest, EveryTruncationFailsCleanly) {
  const std::vector<LdpReport> reports = RandomReports(17, 5);
  const std::vector<uint8_t> bytes = EncodeBatch(reports);
  std::vector<LdpReport> out(kMaxWireBatchReports);
  for (size_t len = 0; len < bytes.size(); ++len) {
    BinaryReader reader(std::span<const uint8_t>(bytes.data(), len));
    auto result = DecodeReportBatch(reader, out);
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(DecodeReportBatchTest, RejectsBadMagicVersionCountAndSign) {
  const std::vector<LdpReport> reports = RandomReports(9, 7);
  std::vector<LdpReport> out(kMaxWireBatchReports);
  auto decode = [&](const std::vector<uint8_t>& bytes) {
    BinaryReader reader(bytes);
    return DecodeReportBatch(reader, out);
  };

  std::vector<uint8_t> bad_magic = EncodeBatch(reports);
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(decode(bad_magic).status().code(), StatusCode::kCorruption);

  std::vector<uint8_t> bad_version = EncodeBatch(reports);
  bad_version[4] = 9;  // version byte follows the magic
  auto version_result = decode(bad_version);
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version"),
            std::string::npos);

  std::vector<uint8_t> bad_count = EncodeBatch(reports);
  bad_count[5] = 0xff;  // count low byte: 9 -> 255 > actual records
  bad_count[6] = 0xff;  // and far beyond kMaxWireBatchReports
  EXPECT_EQ(decode(bad_count).status().code(), StatusCode::kCorruption);

  std::vector<uint8_t> bad_sign = EncodeBatch(reports);
  bad_sign[9] = 2;  // first record's sign byte (after the 9-byte header)
  EXPECT_EQ(decode(bad_sign).status().code(), StatusCode::kCorruption);

  std::vector<uint8_t> bad_row = EncodeBatch(reports);
  bad_row[12] = 0x01;  // first record's j, third byte: j |= 0x10000
  EXPECT_EQ(decode(bad_row).status().code(), StatusCode::kCorruption);

  // A batch bigger than the caller's decode buffer is corruption, not UB.
  std::vector<LdpReport> tiny(4);
  const std::vector<uint8_t> valid = EncodeBatch(reports);
  BinaryReader valid_reader(valid);
  EXPECT_EQ(DecodeReportBatch(valid_reader, tiny).status().code(),
            StatusCode::kCorruption);
}

TEST(DecodeReportBatchTest, HugeDeclaredCountsCannotOverflowByteArithmetic) {
  // Regression: the declared count feeds a count·9 byte-size multiply. A
  // count like 0xffffffff must fail with a clean Corruption via the checked
  // multiply / caps — on every size_t width — never wrap into a small
  // GetRaw that lets the decode loop run past the buffer (ASan-covered).
  std::vector<LdpReport> out(kMaxWireBatchReports);
  for (const uint32_t declared :
       {uint32_t{0xffffffff}, uint32_t{0xe38e38e4} /* SIZE_MAX32/9 + 1 */,
        uint32_t{0x80000000}, uint32_t{kMaxWireBatchReports + 1}}) {
    BinaryWriter writer;
    EncodeReportBatch({}, writer);
    std::vector<uint8_t> bytes = writer.TakeBuffer();
    bytes[5] = static_cast<uint8_t>(declared);
    bytes[6] = static_cast<uint8_t>(declared >> 8);
    bytes[7] = static_cast<uint8_t>(declared >> 16);
    bytes[8] = static_cast<uint8_t>(declared >> 24);
    // Pad so a wrapped multiply would find "enough" bytes to start looping.
    bytes.resize(bytes.size() + 64, 0);
    BinaryReader reader(bytes);
    auto result = DecodeReportBatch(reader, out);
    ASSERT_FALSE(result.ok()) << "count=" << declared;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(DecodeReportBatchTest, RandomGarbageNeverCrashesOrOverreads) {
  // Fuzz-ish sweep: random buffers, random lengths. The decoder may only
  // succeed by constructing strictly valid reports; everything else must be
  // a clean Corruption. ASan/UBSan (CI sanitize job) police the "no OOB
  // reads" half of the contract.
  Xoshiro256 rng(0xF00D);
  std::vector<LdpReport> out(kMaxWireBatchReports);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.NextBounded(256));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng());
    // Half the trials start from a valid header so the loop exercises the
    // record decode, not just the magic check.
    if (trial % 2 == 0 && bytes.size() >= 9) {
      const std::vector<uint8_t> header = EncodeBatch({});
      std::copy(header.begin(), header.begin() + 5, bytes.begin());
      bytes[5] = static_cast<uint8_t>(rng.NextBounded(32));  // small count
      bytes[6] = bytes[7] = bytes[8] = 0;
    }
    BinaryReader reader(bytes);
    auto result = DecodeReportBatch(reader, out);
    if (result.ok()) {
      for (size_t i = 0; i < *result; ++i) {
        ASSERT_TRUE(out[i].y == 1 || out[i].y == -1);
      }
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(AggregatorShardTest, RejectsOutOfShapeReportsWithoutPoisoningState) {
  const SketchParams params = TestParams(4, 128);
  AggregatorShard shard(params, 2.0);

  // l beyond m: codec-valid, shape-invalid. The shard must reject the frame
  // as Corruption (not abort) and absorb nothing from it.
  std::vector<LdpReport> reports = RandomReports(50, 3);
  reports[49].l = 128;
  const Status status = shard.IngestFrame(EncodeBatch(reports));
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(shard.reports_ingested(), 0u);
  EXPECT_EQ(shard.frames_ingested(), 0u);

  // j beyond k likewise.
  reports[49].l = 0;
  reports[0].j = 4;
  EXPECT_EQ(shard.IngestFrame(EncodeBatch(reports)).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(shard.reports_ingested(), 0u);

  // Trailing bytes after the record are corruption, not silently ignored.
  reports[0].j = 0;
  std::vector<uint8_t> padded = EncodeBatch(reports);
  padded.push_back(0);
  EXPECT_EQ(shard.IngestFrame(padded).code(), StatusCode::kCorruption);

  // And the same frame, clean, ingests.
  ASSERT_TRUE(shard.IngestFrame(EncodeBatch(reports)).ok());
  EXPECT_EQ(shard.reports_ingested(), 50u);
  EXPECT_EQ(shard.frames_ingested(), 1u);
}

TEST(ShardedAggregatorTest, TruncatedStreamIsCorruption) {
  const SketchParams params = TestParams();
  ShardedAggregator aggregator(params, 1.0, 2);
  BinaryWriter stream;
  stream.PutFrame(EncodeBatch(RandomReports(10, 1)));
  std::vector<uint8_t> bytes = stream.TakeBuffer();
  bytes.resize(bytes.size() - 3);  // cut into the last frame's payload
  EXPECT_EQ(aggregator.IngestStream(bytes).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ldpjs
