#include "data/alias_sampler.h"

#include <limits>

#include "common/status.h"

namespace ldpjs {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  LDPJS_CHECK(n >= 1);
  LDPJS_CHECK(n <= std::numeric_limits<uint32_t>::max());
  double total = 0.0;
  for (double w : weights) {
    LDPJS_CHECK(w >= 0.0);
    total += w;
  }
  LDPJS_CHECK(total > 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; classify into under/over-full worklists.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Leftovers are 1.0 up to floating-point residue.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint64_t AliasSampler::Sample(Xoshiro256& rng) const {
  const uint64_t bucket = rng.NextBounded(prob_.size());
  if (rng.NextDouble() < prob_[bucket]) return bucket;
  return alias_[bucket];
}

}  // namespace ldpjs
