#include "sketch/count_min.h"

#include <algorithm>

#include "common/random.h"
#include "common/status.h"

namespace ldpjs {

CountMinSketch::CountMinSketch(uint64_t seed, int k, int m) : k_(k), m_(m) {
  LDPJS_CHECK(k >= 1 && m >= 1);
  buckets_.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    buckets_.emplace_back(
        Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1))),
        static_cast<uint64_t>(m));
  }
  cells_.assign(static_cast<size_t>(k) * static_cast<size_t>(m), 0.0);
}

void CountMinSketch::Update(uint64_t d, double weight) {
  LDPJS_CHECK(weight >= 0.0);
  for (int j = 0; j < k_; ++j) {
    const uint64_t col = buckets_[static_cast<size_t>(j)](d);
    cells_[static_cast<size_t>(j) * static_cast<size_t>(m_) + col] += weight;
  }
  total_weight_ += weight;
}

void CountMinSketch::UpdateColumn(const Column& column) {
  for (uint64_t v : column.values()) Update(v);
}

double CountMinSketch::FrequencyUpperBound(uint64_t d) const {
  double best = cells_[buckets_[0](d)];
  for (int j = 1; j < k_; ++j) {
    const uint64_t col = buckets_[static_cast<size_t>(j)](d);
    best = std::min(best,
                    cells_[static_cast<size_t>(j) * static_cast<size_t>(m_) + col]);
  }
  return best;
}

double CountMinSketch::FrequencyEstimate(uint64_t d) const {
  const double collision_mass = total_weight_ / static_cast<double>(m_);
  double best = cells_[buckets_[0](d)] - collision_mass;
  for (int j = 1; j < k_; ++j) {
    const uint64_t col = buckets_[static_cast<size_t>(j)](d);
    best = std::min(
        best, cells_[static_cast<size_t>(j) * static_cast<size_t>(m_) + col] -
                  collision_mass);
  }
  return std::max(0.0, best);
}

std::vector<uint64_t> CountMinSketch::HeavyHitters(
    const std::vector<uint64_t>& candidates, double threshold) const {
  std::vector<uint64_t> heavy;
  for (uint64_t d : candidates) {
    if (FrequencyUpperBound(d) > threshold) heavy.push_back(d);
  }
  return heavy;
}

}  // namespace ldpjs
