// Fig. 12: relative error vs Zipf skewness alpha in {1.1..1.9}; eps = 4,
// (k, m) = (18, 1024). Expected shape: RE of every method falls as alpha
// grows (true join size grows sharply, distinct count falls); the LDP
// sketches track FAGMS, k-RR/FLH trail far behind.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 12: RE vs Zipf skewness alpha, eps=4, k=18, "
              "m=1024 ==\n\n");
  const JoinMethod methods[] = {
      JoinMethod::kFagms,         JoinMethod::kKrr,
      JoinMethod::kAppleHcms,     JoinMethod::kFlh,
      JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus};
  const uint64_t rows = std::min<uint64_t>(ScaledRows(40'000'000), 1'000'000);

  PrintTableHeader({"alpha", "method", "RE", "AE"});
  for (double alpha : {1.1, 1.3, 1.5, 1.7, 1.9}) {
    const JoinWorkload w = MakeZipfWorkload(alpha, 3'000'000, rows, 59);
    const double truth = ExactJoinSize(w.table_a, w.table_b);
    for (JoinMethod method : methods) {
      JoinMethodConfig config;
      config.epsilon = 4.0;
      config.sketch.k = 18;
      config.sketch.m = 1024;
      config.sketch.seed = 61;
      config.flh_pool_size = 128;
      config.run_seed = 17;
      const ErrorStats stats =
          MeasureJoinError(method, w.table_a, w.table_b, truth, config);
      PrintTableRow({Fixed(alpha, 1), std::string(JoinMethodName(method)),
                     Sci(stats.mean_re), Sci(stats.mean_ae)});
    }
  }
  std::printf("\nshape check: RE decreases with alpha for all methods; "
              "LDPJoinSketch(+) nearly matches FAGMS at high skew.\n");
  return 0;
}
