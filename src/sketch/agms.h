// AGMS ("tug-of-war") sketch of Alon, Gibbons, Matias & Szegedy (paper
// §III-A): k*m atomic counters, each a full ±1-signed sum over the stream.
// Included as the historical baseline that Fast-AGMS improves on; every
// update touches all k*m counters, which is what makes it slow.
#ifndef LDPJS_SKETCH_AGMS_H_
#define LDPJS_SKETCH_AGMS_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace ldpjs {

class AgmsSketch {
 public:
  /// k groups ("lines") of m atomic estimators each. Sketches built with the
  /// same seed are comparable.
  AgmsSketch(uint64_t seed, int k, int m);

  /// Adds `weight` occurrences of value d.
  void Update(uint64_t d, double weight = 1.0);

  /// Join-size estimate against `other`: mean of the m counter products
  /// inside each group, median across the k groups.
  double JoinEstimate(const AgmsSketch& other) const;

  /// Self-join (F2) estimate.
  double SecondMomentEstimate() const;

  int k() const { return k_; }
  int m() const { return m_; }
  double counter(int group, int index) const {
    return counters_[static_cast<size_t>(group) * static_cast<size_t>(m_) +
                     static_cast<size_t>(index)];
  }

 private:
  int k_;
  int m_;
  std::vector<SignHash> signs_;     // one ξ per counter, k*m total
  std::vector<double> counters_;    // row-major k x m
};

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_AGMS_H_
