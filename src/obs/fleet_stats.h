// Fleet stats: the wire shape and central-side store behind LJSP v5
// STATS_PUSH / FLEET_STATS.
//
// A FleetSnapshot is one region's registry snapshot — counters, gauges,
// and histograms with their RAW log2 bucket arrays. Percentiles are never
// shipped: buckets merge losslessly by elementwise addition
// (MergeHistogram), so the central's merged cluster histogram is
// bit-identical to one histogram fed the union of every region's records,
// while merged percentiles would be statistically meaningless. The
// FleetStore keeps each region's last snapshot, evaluates its health on
// arrival (transitions are the caller's to log), and renders the merged
// FleetView the FLEET_STATS frame, the stats JSON "fleet" section, and
// `ldpjs_cli top` all read.
#ifndef LDPJS_OBS_FLEET_STATS_H_
#define LDPJS_OBS_FLEET_STATS_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/serialize.h"
#include "common/status.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace ldpjs {

/// One region's pushed stats snapshot.
struct FleetSnapshot {
  uint32_t region_id = 0;
  /// Wall clock at capture, stamped by the pushing region.
  uint64_t captured_unix_ns = 0;
  MetricsRegistry::Snapshot stats;
};

/// STATS_PUSH payload codec. Decode rejects trailing bytes, oversized
/// series counts, and oversized names, so a hostile push can never make
/// the central allocate unboundedly.
std::vector<uint8_t> EncodeFleetSnapshot(const FleetSnapshot& snapshot);
Result<FleetSnapshot> DecodeFleetSnapshot(std::span<const uint8_t> payload);

/// Merges `from` into `into`: counters and gauges summed by name,
/// histograms merged by MergeHistogram; series present on one side only
/// are kept as-is. Output series are sorted by name (deterministic
/// regardless of arrival order).
void MergeSnapshotInto(MetricsRegistry::Snapshot& into,
                       const MetricsRegistry::Snapshot& from);

/// One region's row in the fleet view.
struct FleetRegionView {
  FleetSnapshot snapshot;
  /// Nanoseconds between the push arriving and the view being rendered.
  uint64_t age_ns = 0;
  HealthVerdict health;
};

/// The central's merged pane of glass: every region's last snapshot plus
/// the exactly-merged cluster series and the health roll-up.
struct FleetView {
  uint64_t rendered_unix_ns = 0;
  HealthVerdict cluster;
  /// Exact merge of every region's snapshot (counters/gauges summed,
  /// histogram buckets added).
  MetricsRegistry::Snapshot merged;
  std::vector<FleetRegionView> regions;  ///< sorted by region_id
};

/// FLEET_STATS payload codec (same hostile-input guarantees as above).
std::vector<uint8_t> EncodeFleetView(const FleetView& view);
Result<FleetView> DecodeFleetView(std::span<const uint8_t> payload);

/// The fleet view as one JSON object — the `stats --cluster` output and
/// the "fleet" section of the central's stats JSON come from this one
/// serializer, so they cannot drift apart in shape.
std::string FleetViewToJson(const FleetView& view);

/// Convenience reads for dashboard rows (ldpjs_cli top): first histogram
/// with this exact name / name suffix (empty snapshot when absent), and a
/// named gauge (0 when absent).
HistogramSnapshot FleetHistogramByName(const MetricsRegistry::Snapshot& snap,
                                       std::string_view name);
HistogramSnapshot FleetHistogramBySuffix(const MetricsRegistry::Snapshot& snap,
                                         std::string_view suffix);
uint64_t FleetGaugeByName(const MetricsRegistry::Snapshot& snap,
                          std::string_view name);

/// Per-region last-snapshot store with health-transition detection.
/// Thread-safe; the central's reader threads Apply() concurrently with
/// stats scrapes rendering View().
class FleetStore {
 public:
  struct ApplyResult {
    /// True when this push changed the region's health state (including
    /// the first push, when the previous state is synthesized as OK so a
    /// region arriving unhealthy still logs a transition).
    bool region_changed = false;
    HealthVerdict previous;
    HealthVerdict current;
    /// Same for the cluster roll-up.
    bool cluster_changed = false;
    HealthVerdict cluster_previous;
    HealthVerdict cluster_current;
  };

  /// Stores `snapshot` as its region's latest and re-evaluates region +
  /// cluster health as of `now_ns`.
  ApplyResult Apply(FleetSnapshot snapshot, uint64_t now_ns,
                    const HealthOptions& options);

  /// Renders the merged view as of `now_ns`.
  FleetView View(uint64_t now_ns, const HealthOptions& options) const;

  size_t region_count() const;

 private:
  struct Entry {
    FleetSnapshot snapshot;
    uint64_t received_ns = 0;
    HealthState last_state = HealthState::kOk;
  };

  /// Builds the view from `regions` (mu_ must be held by the caller).
  FleetView ViewLocked(uint64_t now_ns, const HealthOptions& options) const
      LDPJS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<uint32_t, Entry> regions_ LDPJS_GUARDED_BY(mu_);
  HealthState cluster_state_ LDPJS_GUARDED_BY(mu_) = HealthState::kOk;
};

}  // namespace ldpjs

#endif  // LDPJS_OBS_FLEET_STATS_H_
