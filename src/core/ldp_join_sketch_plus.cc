#include "core/ldp_join_sketch_plus.h"

#include <algorithm>
#include <chrono>

#include "core/freq_items.h"

namespace ldpjs {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-user random partition: fraction r to the phase-1 sample, the rest
/// split evenly into groups 1 and 2.
struct Partition {
  Column sample;
  Column group1;
  Column group2;
};

Partition PartitionUsers(const Column& column, double sample_rate,
                         uint64_t seed) {
  Partition out;
  std::vector<uint64_t> sample, group1, group2;
  sample.reserve(static_cast<size_t>(
      static_cast<double>(column.size()) * sample_rate * 1.1));
  group1.reserve(column.size() / 2 + 1);
  group2.reserve(column.size() / 2 + 1);
  for (size_t i = 0; i < column.size(); ++i) {
    Xoshiro256 rng =
        MakeStreamRng(seed ^ 0x5bf03635ULL, static_cast<uint64_t>(i));
    if (rng.NextBernoulli(sample_rate)) {
      sample.push_back(column[i]);
    } else if (rng.NextBernoulli(0.5)) {
      group1.push_back(column[i]);
    } else {
      group2.push_back(column[i]);
    }
  }
  out.sample = Column(std::move(sample), column.domain());
  out.group1 = Column(std::move(group1), column.domain());
  out.group2 = Column(std::move(group2), column.domain());
  return out;
}

}  // namespace

LdpJoinSketchPlusResult EstimateJoinSizePlus(
    const Column& table_a, const Column& table_b,
    const LdpJoinSketchPlusParams& params) {
  params.Validate();
  LDPJS_CHECK(table_a.domain() == table_b.domain());
  LDPJS_CHECK(!table_a.empty() && !table_b.empty());
  const uint64_t domain = table_a.domain();

  LdpJoinSketchPlusResult result;
  const auto offline_start = std::chrono::steady_clock::now();

  // ---- Phase 1: sample users, build plain LDPJoinSketches. -------------
  SimulationOptions sim_a = params.simulation;
  sim_a.run_seed = Mix64(params.simulation.run_seed ^ 0xA11CE5ULL);
  SimulationOptions sim_b = params.simulation;
  sim_b.run_seed = Mix64(params.simulation.run_seed ^ 0xB0BCA7ULL);

  Partition part_a =
      PartitionUsers(table_a, params.sample_rate, sim_a.run_seed);
  Partition part_b =
      PartitionUsers(table_b, params.sample_rate, sim_b.run_seed);
  result.sample_rows_a = part_a.sample.size();
  result.sample_rows_b = part_b.sample.size();
  result.group_rows_a[0] = part_a.group1.size();
  result.group_rows_a[1] = part_a.group2.size();
  result.group_rows_b[0] = part_b.group1.size();
  result.group_rows_b[1] = part_b.group2.size();
  LDPJS_CHECK(result.sample_rows_a > 0 && result.sample_rows_b > 0);
  LDPJS_CHECK(part_a.group1.size() > 0 && part_a.group2.size() > 0);
  LDPJS_CHECK(part_b.group1.size() > 0 && part_b.group2.size() > 0);

  const LdpJoinSketchServer sample_sketch_a = BuildLdpJoinSketch(
      part_a.sample, params.sketch, params.epsilon, sim_a);
  const LdpJoinSketchServer sample_sketch_b = BuildLdpJoinSketch(
      part_b.sample, params.sketch, params.epsilon, sim_b);

  // ---- FI search (server-side, counted as online query prep). ----------
  const auto fi_start = std::chrono::steady_clock::now();
  const double offline_phase1 = SecondsSince(offline_start);
  const std::unordered_set<uint64_t> frequent_items = FindFrequentItemsUnion(
      sample_sketch_a, sample_sketch_b, domain,
      params.threshold * static_cast<double>(result.sample_rows_a),
      params.threshold * static_cast<double>(result.sample_rows_b));
  result.frequent_item_count = frequent_items.size();

  // Estimated full-table FI mass (Algorithm 5 lines 1-4), clamped to the
  // table size — sketch noise can push the raw sum past |A|.
  result.high_freq_mass_a = std::min(
      static_cast<double>(table_a.size()),
      EstimateFrequentMass(sample_sketch_a, frequent_items,
                           static_cast<double>(table_a.size()) /
                               static_cast<double>(result.sample_rows_a)));
  result.high_freq_mass_b = std::min(
      static_cast<double>(table_b.size()),
      EstimateFrequentMass(sample_sketch_b, frequent_items,
                           static_cast<double>(table_b.size()) /
                               static_cast<double>(result.sample_rows_b)));
  const double fi_seconds = SecondsSince(fi_start);

  // ---- Phase 2: FAP sketches per group. ---------------------------------
  const auto phase2_start = std::chrono::steady_clock::now();
  SimulationOptions sim = params.simulation;  // thread/shard modes carry over

  sim.run_seed = Mix64(params.simulation.run_seed ^ 0x10A1ULL);
  const LdpJoinSketchServer mla = BuildFapSketch(
      part_a.group1, params.sketch, params.epsilon, FapMode::kLow,
      frequent_items, sim);
  sim.run_seed = Mix64(params.simulation.run_seed ^ 0x10B1ULL);
  const LdpJoinSketchServer mlb = BuildFapSketch(
      part_b.group1, params.sketch, params.epsilon, FapMode::kLow,
      frequent_items, sim);
  sim.run_seed = Mix64(params.simulation.run_seed ^ 0x20A2ULL);
  const LdpJoinSketchServer mha = BuildFapSketch(
      part_a.group2, params.sketch, params.epsilon, FapMode::kHigh,
      frequent_items, sim);
  sim.run_seed = Mix64(params.simulation.run_seed ^ 0x20B2ULL);
  const LdpJoinSketchServer mhb = BuildFapSketch(
      part_b.group2, params.sketch, params.epsilon, FapMode::kHigh,
      frequent_items, sim);
  const double phase2_seconds = SecondsSince(phase2_start);

  // ---- JoinEst + final combination (Algorithm 3 lines 4-6). ------------
  const auto online_start = std::chrono::steady_clock::now();
  const double rows_a = static_cast<double>(table_a.size());
  const double rows_b = static_cast<double>(table_b.size());

  JoinEstSide low_a{&mla, result.high_freq_mass_a, rows_a,
                    static_cast<double>(part_a.group1.size())};
  JoinEstSide low_b{&mlb, result.high_freq_mass_b, rows_b,
                    static_cast<double>(part_b.group1.size())};
  const double low_raw = JoinEst(low_a, low_b, FapMode::kLow, params.join_est);

  JoinEstSide high_a{&mha, result.high_freq_mass_a, rows_a,
                     static_cast<double>(part_a.group2.size())};
  JoinEstSide high_b{&mhb, result.high_freq_mass_b, rows_b,
                     static_cast<double>(part_b.group2.size())};
  const double high_raw =
      JoinEst(high_a, high_b, FapMode::kHigh, params.join_est);

  const double low_scale =
      rows_a * rows_b /
      (static_cast<double>(part_a.group1.size()) *
       static_cast<double>(part_b.group1.size()));
  const double high_scale =
      rows_a * rows_b /
      (static_cast<double>(part_a.group2.size()) *
       static_cast<double>(part_b.group2.size()));

  result.low_estimate = low_scale * low_raw;
  result.high_estimate = high_scale * high_raw;
  result.estimate = result.low_estimate + result.high_estimate;
  result.online_seconds = fi_seconds + SecondsSince(online_start);
  result.offline_seconds = offline_phase1 + phase2_seconds;
  return result;
}

}  // namespace ldpjs
