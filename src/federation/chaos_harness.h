// Chaos scenario harness: one deterministic federated run under an
// injected fault schedule, with the invariants the run must uphold
// captured as data for tests (and the CLI `chaos` subcommand) to assert.
//
// Topology per scenario: N RegionalNodes shipping epoch snapshots to one
// windowed CentralNode, each region fed by its own client session. The
// run is driven synchronously — regions are cut and shipped one at a
// time, with Ping ingest barriers between a client's sends and its
// region's cut — so every operation on a fault site happens in a
// deterministic order and the seeded schedule (see FaultInjector)
// replays bit-exactly: same seed, same faults, same retry counters.
//
// Faults are injected only on the regions' upstream EPOCH_PUSH sessions
// (site "region<i>.up"): that path has the (region, epoch) dedup that
// makes arbitrary drop/corrupt/partial/disconnect schedules recoverable
// to exactly-once. The invariant a scenario pins is the repo's north
// star under fire: the final federated sketch — and the windowed view's
// full-window sketch — must equal a single node absorbing every
// client's reports directly, bit for bit, no matter which faults fired.
#ifndef LDPJS_FEDERATION_CHAOS_HARNESS_H_
#define LDPJS_FEDERATION_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "net/net_metrics.h"

namespace ldpjs {

struct ChaosScenarioOptions {
  SketchParams params;
  double epsilon = 2.0;

  /// Seeded fault schedule (see FaultInjector): each upstream operation
  /// suffers a fault with probability `fault_rate`, at most `max_faults`
  /// total so the run always completes. rate 0 = fault-free control run.
  uint64_t fault_seed = 1;
  double fault_rate = 0.0;
  uint64_t max_faults = 6;

  size_t num_regions = 2;
  size_t epochs = 3;
  size_t reports_per_epoch = 1500;
  uint64_t data_seed = 400;

  /// Per-cut ship attempt budget. A scenario's faults are bounded by
  /// max_faults, so a generous budget guarantees eventual delivery.
  int max_ship_attempts = 64;
  /// Upstream SO_RCVTIMEO: turns a dropped EPOCH_PUSH (or its lost ack)
  /// into a timed-out retry instead of a deadlock. Chaos runs need >= 1.
  int upstream_recv_timeout_seconds = 1;
  /// Non-empty: every region spools its cuts durably under this
  /// directory (exercises the WAL on the chaos path).
  std::string spool_dir;
};

struct ChaosScenarioResult {
  /// Serialized finalized sketches — the bit-identity triple. Both
  /// `federated` (central full-history Finalize) and `windowed` (the
  /// sliding view over a window covering the whole run) must equal
  /// `direct` (single-node absorb of every report) byte for byte.
  std::vector<uint8_t> federated;
  std::vector<uint8_t> windowed;
  std::vector<uint8_t> direct;

  uint64_t total_reports = 0;

  /// Injector accounting for the replay assertion: two runs of the same
  /// scenario must produce equal `fault_stats` strings and counters.
  uint64_t fault_hits = 0;
  uint64_t faults_injected = 0;
  std::string fault_stats;  ///< FaultInjector::StatsString()

  /// Robustness counters summed over regions.
  uint64_t ship_retries = 0;
  uint64_t duplicate_acks = 0;
  uint64_t backoff_millis = 0;
  uint64_t spool_bytes_written = 0;
  uint64_t spool_errors = 0;

  /// Windowed-view state at the end of the run.
  uint64_t frontier = 0;
  uint64_t epochs_expired = 0;

  NetMetrics central_metrics;

  bool bit_identical() const {
    return federated == direct && windowed == direct;
  }
};

/// Runs one scenario to completion. Installs the scenario's injector for
/// the duration (process-global — do not run scenarios concurrently).
/// Fails only on harness-level breakage (a port that cannot bind, a
/// retry budget exhausted beyond the scenario's fault bound); injected
/// faults themselves are the point and never fail the run.
Result<ChaosScenarioResult> RunChaosScenario(const ChaosScenarioOptions& options);

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_CHAOS_HARNESS_H_
