#include "data/zipf.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/alias_sampler.h"

namespace ldpjs {

Column GenerateZipf(const ZipfParams& params) {
  LDPJS_CHECK(params.domain >= 1);
  LDPJS_CHECK(params.alpha > 0.0);
  std::vector<double> weights(params.domain);
  for (uint64_t r = 0; r < params.domain; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -params.alpha);
  }
  AliasSampler sampler(weights);
  Xoshiro256 rng(params.seed);
  std::vector<uint64_t> values;
  values.reserve(params.rows);
  for (uint64_t i = 0; i < params.rows; ++i) {
    values.push_back(sampler.Sample(rng));
  }
  return Column(std::move(values), params.domain);
}

}  // namespace ldpjs
