#include "federation/windowed_view.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace ldpjs {

WindowedView::WindowedView(const SketchParams& params, double epsilon,
                           uint64_t window_epochs, size_t expected_regions)
    : window_(window_epochs),
      expected_regions_(std::max<size_t>(1, expected_regions)),
      acc_(params, epsilon) {
  LDPJS_CHECK(window_ >= 1);
  // Initial empty publication: Published() is never null, so readers are a
  // bare atomic load with no "not yet published" branch to race on.
  MutexLock lock(mu_);
  PublishLocked();
}

void WindowedView::OnEpochApplied(uint32_t region_id, uint64_t epoch,
                                  LdpJoinSketchServer* snapshot) {
  MutexLock lock(mu_);
  RegionWindow& region = regions_[region_id];
  // The shipper sends epochs in order and the central dedups, so a fresh
  // epoch is strictly above the region's high-water. An empty-epoch
  // heartbeat advances the clock without storing anything.
  if (snapshot != nullptr) {
    region.epochs.emplace(epoch,
                          StoredEpoch{std::move(*snapshot), /*added=*/false});
  }
  region.high_water = std::max(region.high_water, epoch);
  AdvanceLocked();
  // Writer-side publication at the epoch boundary: one finalize per
  // applied epoch, amortized over every read until the next one. A
  // heartbeat that only moves the frontier republishes too — the view's
  // epoch identity is part of the answer.
  if (dirty_ || pub_aligned_ != has_frontier_ || pub_frontier_ != frontier_) {
    PublishLocked();
  }
}

void WindowedView::PublishLocked() {
  const uint64_t publish_start_ns = ObsEnabled() ? NowNanos() : 0;
  LdpJoinSketchServer finalized = acc_;  // the accumulator keeps its lanes
  finalized.Finalize();
  publisher_.Publish(std::move(finalized), has_frontier_, frontier_);
  dirty_ = false;
  pub_aligned_ = has_frontier_;
  pub_frontier_ = frontier_;
  if (publish_start_ns != 0) {
    // Registered lazily (one map lookup per publish — publishes happen at
    // epoch cadence, not per report). The staleness gauge feeds
    // view_staleness_ms in the stats output.
    MetricsRegistry& registry = MetricsRegistry::Default();
    const uint64_t now = NowNanos();
    registry.GetHistogram("windowed_publish_ns")
        ->Record(now > publish_start_ns ? now - publish_start_ns : 0);
    registry.GetGauge("view_last_publish_unix_ns")->Set(now);
  }
}

void WindowedView::AdvanceLocked() {
  if (regions_.size() < expected_regions_) return;  // not aligned yet
  uint64_t e = UINT64_MAX;
  for (const auto& [id, region] : regions_) {
    e = std::min(e, region.high_water);
  }
  // The frontier never regresses. A region first heard from AFTER
  // alignment (more regions than `expected_regions` exist) arrives with a
  // low high-water; letting it drag E backwards would leave the
  // accumulator holding epochs beyond the regressed window and could
  // never restore already-expired ones. Instead the late region joins the
  // window going forward: whatever it pushed inside (E-W, E] merges
  // below, anything older is dropped.
  if (has_frontier_ && e < frontier_) e = frontier_;
  has_frontier_ = true;
  frontier_ = e;
  for (auto& [id, region] : regions_) {
    for (auto it = region.epochs.begin(); it != region.epochs.end();) {
      const uint64_t epoch = it->first;
      if (epoch > e) break;  // pending beyond the frontier; map is ordered
      if (e - epoch < window_) {
        // Inside (E-W, E]: make sure it is in the accumulator.
        if (!it->second.added) {
          acc_.Merge(it->second.sketch);
          it->second.added = true;
          ++in_window_;
          dirty_ = true;
        }
        ++it;
      } else {
        // Slid past the window: retract exactly what was merged (the
        // subtract is the bit-exact inverse of the merge) and free the
        // snapshot. A snapshot that was never merged — the frontier jumped
        // clean over it — is simply dropped.
        if (it->second.added) {
          acc_.SubtractRaw(it->second.sketch);
          --in_window_;
          ++expired_;
          dirty_ = true;
        }
        it = region.epochs.erase(it);
      }
    }
  }
}

LdpJoinSketchServer WindowedView::RawWindow() const {
  MutexLock lock(mu_);
  return acc_;
}

LdpJoinSketchServer WindowedView::RecomputeRaw() const {
  MutexLock lock(mu_);
  LdpJoinSketchServer merged(acc_.params(), acc_.epsilon());
  for (const auto& [id, region] : regions_) {
    for (const auto& [epoch, stored] : region.epochs) {
      if (stored.added) merged.Merge(stored.sketch);
    }
  }
  return merged;
}

bool WindowedView::aligned() const {
  MutexLock lock(mu_);
  return has_frontier_;
}

uint64_t WindowedView::frontier() const {
  MutexLock lock(mu_);
  LDPJS_CHECK(has_frontier_);
  return frontier_;
}

uint64_t WindowedView::window_reports() const {
  MutexLock lock(mu_);
  return acc_.total_reports();
}

uint64_t WindowedView::epochs_in_window() const {
  MutexLock lock(mu_);
  return in_window_;
}

uint64_t WindowedView::epochs_expired() const {
  MutexLock lock(mu_);
  return expired_;
}

uint64_t WindowedView::epochs_pending() const {
  MutexLock lock(mu_);
  uint64_t pending = 0;
  for (const auto& [id, region] : regions_) {
    for (const auto& [epoch, stored] : region.epochs) {
      if (!stored.added) ++pending;
    }
  }
  return pending;
}

}  // namespace ldpjs
