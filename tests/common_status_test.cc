#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ldpjs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::Corruption("truncated").ToString(),
            "Corruption: truncated");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, StatusCodeNameCoversAllCodes) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Propagates(bool fail) {
  LDPJS_RETURN_IF_ERROR(FailsWhen(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagatesFailure) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> err(Status::NotFound("missing"));
  EXPECT_EQ(err.value_or(42), 42);
  Result<int> ok(5);
  EXPECT_EQ(ok.value_or(42), 5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "abc");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abcd"));
  EXPECT_EQ(r->size(), 4u);
}

TEST(CheckDeathTest, CheckAbortsOnViolation) {
  EXPECT_DEATH(LDPJS_CHECK(1 == 2), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
