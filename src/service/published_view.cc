#include "service/published_view.h"

#include <utility>

namespace ldpjs {

std::shared_ptr<const PublishedView> ViewPublisher::Publish(
    LdpJoinSketchServer finalized, bool aligned, uint64_t epoch) {
  LDPJS_CHECK(finalized.finalized());
  auto view = std::make_shared<const PublishedView>(
      sequence_.fetch_add(1, std::memory_order_relaxed) + 1, aligned, epoch,
      std::move(finalized));
  current_.store(view, std::memory_order_release);
  return view;
}

std::shared_ptr<const PublishedView> ViewPublisher::Current() const {
  return current_.load(std::memory_order_acquire);
}

}  // namespace ldpjs
