#include "obs/trace.h"

namespace ldpjs {

TraceLog& TraceLog::Global() {
  static TraceLog* const log = new TraceLog();
  return *log;
}

void TraceLog::Record(uint64_t trace_id, std::string stage, uint64_t start_ns,
                      uint64_t end_ns) {
  if (trace_id == 0) return;
  TraceSpan span{trace_id, std::move(stage), start_ns, end_ns};
  MutexLock lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(span));
    return;
  }
  wrapped_ = true;
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % kCapacity;
}

std::vector<TraceSpan> TraceLog::Collect(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  MutexLock lock(mu_);
  // Record order: once wrapped, the oldest retained span sits at next_.
  const size_t n = ring_.size();
  const size_t first = wrapped_ ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const TraceSpan& span = ring_[(first + i) % n];
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

size_t TraceLog::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

}  // namespace ldpjs
