#include "net/net_metrics.h"

namespace ldpjs {

namespace {

void AppendField(std::string& out, const char* name, uint64_t value,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string NetMetricsToJson(const NetMetrics& m) {
  std::string out;
  out.reserve(512 + 128 * (m.connections.size() + m.shards.size() +
                           m.regions.size()));
  out += '{';
  bool first = true;
  AppendField(out, "connections_accepted", m.connections_accepted, &first);
  AppendField(out, "connections_active", m.connections_active, &first);
  AppendField(out, "handshakes_rejected", m.handshakes_rejected, &first);
  AppendField(out, "frames_received", m.frames_received, &first);
  AppendField(out, "bytes_received", m.bytes_received, &first);
  AppendField(out, "reports_ingested", m.reports_ingested, &first);
  AppendField(out, "corrupt_frames_rejected", m.corrupt_frames_rejected,
              &first);
  AppendField(out, "frames_shed", m.frames_shed, &first);
  AppendField(out, "queue_high_water", m.queue_high_water, &first);
  AppendField(out, "epochs_applied", m.epochs_applied, &first);
  AppendField(out, "epoch_duplicates_ignored", m.epoch_duplicates_ignored,
              &first);
  AppendField(out, "accept_failures", m.accept_failures, &first);
  AppendField(out, "accept_fatal", m.accept_fatal, &first);
  AppendField(out, "idle_reaped", m.idle_reaped, &first);
  AppendField(out, "connections_folded", m.connections_folded, &first);
  AppendField(out, "retries_attempted", m.retries_attempted, &first);
  AppendField(out, "backoff_millis", m.backoff_millis, &first);
  AppendField(out, "faults_injected", m.faults_injected, &first);
  AppendField(out, "spool_bytes_written", m.spool_bytes_written, &first);
  AppendField(out, "spool_bytes_resumed", m.spool_bytes_resumed, &first);
  AppendField(out, "spool_epochs_resumed", m.spool_epochs_resumed, &first);
  AppendField(out, "query_frames", m.query_frames, &first);
  AppendField(out, "queries_rejected", m.queries_rejected, &first);
  AppendField(out, "views_published", m.views_published, &first);
  out += ",\"query_kinds\":{";
  for (size_t i = 0; i < m.query_kinds.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += m.query_kinds[i].kind;
    out += "\":";
    out += std::to_string(m.query_kinds[i].served);
  }
  out += '}';
  out += ",\"connections\":[";
  for (size_t i = 0; i < m.connections.size(); ++i) {
    const ConnectionMetrics& c = m.connections[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "id", c.id, &f);
    AppendField(out, "active", c.active ? 1 : 0, &f);
    AppendField(out, "frames_received", c.frames_received, &f);
    AppendField(out, "bytes_received", c.bytes_received, &f);
    AppendField(out, "reports_ingested", c.reports_ingested, &f);
    AppendField(out, "corrupt_frames_rejected", c.corrupt_frames_rejected, &f);
    AppendField(out, "frames_shed", c.frames_shed, &f);
    out += '}';
  }
  out += "],\"shards\":[";
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "shard", i, &f);
    AppendField(out, "frames", s.frames, &f);
    AppendField(out, "reports", s.reports, &f);
    AppendField(out, "queue_high_water", s.queue_high_water, &f);
    out += '}';
  }
  out += "],\"regions\":[";
  for (size_t i = 0; i < m.regions.size(); ++i) {
    const RegionMetrics& r = m.regions[i];
    if (i > 0) out += ',';
    out += '{';
    bool f = true;
    AppendField(out, "region_id", r.region_id, &f);
    AppendField(out, "epochs_applied", r.epochs_applied, &f);
    AppendField(out, "empty_epochs", r.empty_epochs, &f);
    AppendField(out, "duplicates_ignored", r.duplicates_ignored, &f);
    AppendField(out, "reports_merged", r.reports_merged, &f);
    AppendField(out, "snapshot_bytes", r.snapshot_bytes, &f);
    AppendField(out, "next_epoch", r.next_epoch, &f);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ldpjs
