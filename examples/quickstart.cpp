// Quickstart: estimate the size of  SELECT COUNT(*) FROM T1 JOIN T2 ON
// T1.A = T2.B  when neither table's join column may leave its users'
// devices unprotected.
//
// The flow mirrors a real deployment:
//   1. server publishes the public sketch parameters (k, m, hash seed);
//   2. every user perturbs their private value locally (ε-LDP) and sends a
//      single (±1, row, column) report;
//   3. the server aggregates reports per table, finalizes, and multiplies
//      the two sketches.
//
// Build: part of the default CMake build; run ./build/examples/quickstart.
#include <cstdio>

#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

int main() {
  using namespace ldpjs;

  // --- Generate a synthetic workload (stand-in for two private tables).
  const JoinWorkload workload = MakeZipfWorkload(
      /*alpha=*/1.5, /*domain=*/100'000, /*rows=*/1'000'000, /*seed=*/7);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  // --- 1. Public protocol parameters, shared by clients and server.
  SketchParams params;
  params.k = 18;     // sketch rows (failure probability ~ exp(-k/4))
  params.m = 1024;   // sketch columns (collision error ~ 1/sqrt(m))
  params.seed = 42;  // hash seed; MUST match across both tables
  const double epsilon = 4.0;

  // --- 2. Clients perturb locally. One line below simulates millions of
  // independent users, each calling LdpJoinSketchClient::Perturb exactly
  // once on its own device (O(1) work, ~2 bytes of upload).
  SimulationOptions sim;
  sim.run_seed = 1;
  const LdpJoinSketchServer sketch_a =
      BuildLdpJoinSketch(workload.table_a, params, epsilon, sim);
  sim.run_seed = 2;
  const LdpJoinSketchServer sketch_b =
      BuildLdpJoinSketch(workload.table_b, params, epsilon, sim);

  // --- 3. Server-side estimation (Eq. 5 of the paper).
  const double estimate = sketch_a.JoinEstimate(sketch_b);

  std::printf("true join size      : %.0f\n", truth);
  std::printf("LDP estimate (eps=4): %.0f\n", estimate);
  std::printf("relative error      : %.3f%%\n",
              100.0 * (estimate - truth) / truth);

  // Bonus: the same sketch answers frequency queries (Theorem 7).
  const auto freq = workload.table_a.Frequencies();
  std::printf("\nfrequency of the hottest value: true=%llu, estimated=%.0f\n",
              static_cast<unsigned long long>(freq[0]),
              sketch_a.FrequencyEstimate(0));
  return 0;
}
