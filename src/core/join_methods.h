// Uniform facade over every join-size estimator evaluated in §VII: the
// non-private Fast-AGMS reference, the three LDP frequency-oracle baselines
// (k-RR, Apple-HCMS, FLH) accumulated over the domain, and the paper's
// LDPJoinSketch / LDPJoinSketch+. Each run reports the estimate, the
// offline (collection + construction) and online (estimation) time split of
// Fig. 13, and the total client→server communication bits of Fig. 7.
#ifndef LDPJS_CORE_JOIN_METHODS_H_
#define LDPJS_CORE_JOIN_METHODS_H_

#include <cstdint>
#include <string_view>

#include "core/ldp_join_sketch_plus.h"
#include "core/params.h"
#include "data/column.h"
#include "ldp/olh.h"

namespace ldpjs {

enum class JoinMethod {
  kFagms,             ///< Fast-AGMS, non-private reference
  kKrr,               ///< k-ary randomized response + frequency accumulation
  kAppleHcms,         ///< Hadamard count-mean sketch + frequency accumulation
  kFlh,               ///< fast local hashing + frequency accumulation
  kLdpJoinSketch,     ///< paper §IV
  kLdpJoinSketchPlus, ///< paper §V
};

std::string_view JoinMethodName(JoinMethod method);

struct JoinMethodConfig {
  double epsilon = 4.0;
  SketchParams sketch;            ///< used by FAGMS / HCMS / LDPJoinSketch(+)
  uint32_t flh_pool_size = 256;   ///< FLH hash-pool size
  double plus_sample_rate = 0.1;  ///< LDPJoinSketch+ r
  double plus_threshold = 0.001;  ///< LDPJoinSketch+ θ
  JoinEstOptions plus_join_est;   ///< LDPJoinSketch+ subtraction variant
  uint64_t run_seed = 42;
  size_t num_threads = 0;
  /// LDPJoinSketch(+) only: 0 = in-process ingest; N >= 1 routes ingestion
  /// through the sharded streaming aggregation service (bit-identical
  /// estimates — see SimulationOptions::num_shards).
  size_t num_shards = 0;
  /// LDPJoinSketch(+) only: additionally ship the wire frames through a
  /// real TCP loopback session (FrameServer/FrameSender on 127.0.0.1).
  /// Still bit-identical — see SimulationOptions::net_loopback.
  bool net_loopback = false;
  /// LDPJoinSketch(+) only: N >= 1 runs the full federated topology — N
  /// regional aggregators shipping epoch snapshots to one central — on
  /// 127.0.0.1. Still bit-identical — see SimulationOptions::num_regions.
  size_t num_regions = 0;
  /// Federated mode: reports per region between epoch cuts (0 = one
  /// epoch). See SimulationOptions::epoch_reports.
  uint64_t epoch_reports = 0;
  /// Federated mode: 0 = full-history estimate; W >= 1 = sliding-window
  /// estimate over the last W cross-region-aligned epochs. See
  /// SimulationOptions::window_epochs.
  uint64_t window_epochs = 0;
  bool clamp_negative_frequencies = false;  ///< for the oracle baselines
};

struct JoinMethodResult {
  double estimate = 0.0;
  double offline_seconds = 0.0;  ///< perturb + aggregate (+ finalize)
  double online_seconds = 0.0;   ///< estimate from aggregated state
  double comm_bits = 0.0;        ///< total client→server bits (model)
};

/// Runs `method` end-to-end on the two private join columns.
JoinMethodResult EstimateJoin(JoinMethod method, const Column& table_a,
                              const Column& table_b,
                              const JoinMethodConfig& config);

}  // namespace ldpjs

#endif  // LDPJS_CORE_JOIN_METHODS_H_
