// Private dataset search and discovery (paper §I application 2): a data
// catalog holds several private candidate columns (e.g. from hospitals or
// genetics labs). A researcher with a private query column wants to rank
// the candidates by joinability — estimated join size with the query —
// before requesting a collaboration. Every column is summarized once by an
// LDPJoinSketch; ranking needs only sketch products.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

int main() {
  using namespace ldpjs;

  const uint64_t domain = 30'000;
  const uint64_t rows = 400'000;

  // The catalog: five private columns with varying overlap with the query.
  // Candidate i draws a fraction of its values from the query's population
  // and the rest from a disjoint shifted range.
  const JoinWorkload query_pop = MakeZipfWorkload(1.4, domain, rows, 31);
  const Column& query = query_pop.table_a;

  struct Candidate {
    std::string name;
    double overlap;  // fraction drawn from the query population
    Column column;
  };
  std::vector<Candidate> catalog;
  const double overlaps[] = {0.9, 0.6, 0.4, 0.15, 0.0};
  for (int i = 0; i < 5; ++i) {
    const JoinWorkload pop = MakeZipfWorkload(1.4, domain, rows,
                                              100 + static_cast<uint64_t>(i));
    std::vector<uint64_t> values;
    values.reserve(rows);
    for (size_t j = 0; j < pop.table_b.size(); ++j) {
      const bool from_query_pop =
          (static_cast<double>(j % 100) / 100.0) < overlaps[i];
      values.push_back(from_query_pop
                           ? pop.table_b[j]
                           : (pop.table_b[j] + domain / 2) % domain);
    }
    catalog.push_back({"candidate-" + std::to_string(i), overlaps[i],
                       Column(std::move(values), domain)});
  }

  // Shared public parameters: one sketch per column, built once, reusable
  // for every future discovery query.
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 77;
  const double epsilon = 4.0;

  SimulationOptions sim;
  sim.run_seed = 41;
  const LdpJoinSketchServer query_sketch =
      BuildLdpJoinSketch(query, params, epsilon, sim);

  struct Ranked {
    std::string name;
    double overlap;
    double estimated_join;
    double true_join;
  };
  std::vector<Ranked> ranking;
  for (size_t i = 0; i < catalog.size(); ++i) {
    sim.run_seed = 50 + i;
    const LdpJoinSketchServer sketch =
        BuildLdpJoinSketch(catalog[i].column, params, epsilon, sim);
    ranking.push_back({catalog[i].name, catalog[i].overlap,
                       query_sketch.JoinEstimate(sketch),
                       ExactJoinSize(query, catalog[i].column)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const Ranked& a, const Ranked& b) {
              return a.estimated_join > b.estimated_join;
            });

  std::printf("%-14s %9s %18s %18s\n", "candidate", "overlap",
              "est. join size", "true join size");
  for (const Ranked& r : ranking) {
    std::printf("%-14s %9.2f %18.3e %18.3e\n", r.name.c_str(), r.overlap,
                r.estimated_join, r.true_join);
  }
  std::printf("\nthe privately computed ranking recovers the true overlap "
              "order, so the researcher can shortlist collaborators without "
              "seeing any raw column.\n");
  return 0;
}
