// Command-line driver. Two faces:
//
// Experiment mode (no subcommand, the original interface): run any join-
// size method on any of the simulated Table-II workloads.
//
//   ldpjs_cli --method ldpjoinsketch+ --dataset movielens --rows 1000000
//             --epsilon 2 --k 18 --m 1024 --trials 3 [--shards 4] [--net 1]
//
// Network mode (subcommands) — the distributed deployment, on real sockets:
//
//   ldpjs_cli serve --port 7542 --shards 4 --seed 1 --out sketch_a.bin
//   ldpjs_cli send  --port 7542 --table a --rows 200000 --seed 1 --finalize 1
//   ldpjs_cli estimate --sketch-a a.bin --sketch-b b.bin [--check 1 ...]
//
// `serve` aggregates one table's reports until a client sends FINALIZE,
// then drains, finalizes once, writes the serialized finalized sketch to
// --out, and dumps the per-connection/per-shard metrics. `send` replays the
// exact per-block perturbation the in-process simulation would run (same
// counter-based RNG streams, same seed derivations), so `estimate --check`
// can assert the network path reproduced the in-process estimate bit for
// bit.
//
// Federated mode (subcommands) — the two-tier deployment:
//
//   ldpjs_cli federate-central --port 7650 --finalize-after 2 --out a.bin
//   ldpjs_cli federate-region --port 7651 --central-port 7650 --region 0
//             --epoch-ms 200
//   ldpjs_cli send --port 7651 --table a --senders 2 --sender-index 0
//             --finalize 1
//
// Regions ingest client traffic and ship raw-lane epoch snapshots upstream
// on the --epoch-ms cadence; a client FINALIZE makes the region flush its
// final epoch and forward the FINALIZE to the central, which ends
// collection after --finalize-after of them. `send --senders N
// --sender-index i` streams only every Nth client block (same RNG streams),
// so N senders across regions partition exactly one table.
//
// All serving subcommands dump a stats JSON snapshot on SIGUSR1 and at exit
// (stdout, plus --metrics-json FILE when set) — shed/corrupt/queue-high-
// water/per-region counters plus the obs registry's latency histograms —
// and can append the same JSON periodically with --stats-jsonl FILE
// --stats-period N. `ldpjs_cli stats --port P [--watch N]` scrapes the
// identical snapshot from a live server over LJSP v4 (see RunStats);
// `stats --cluster` and `top` scrape the central's fleet view — per-region
// STATS_PUSH snapshots, exactly-merged cluster histograms, health states —
// over LJSP v5 (see RunTop).
//
// Chaos mode:
//
//   ldpjs_cli chaos --sweep 4 --fault-rate 0.2 [--spool-dir /tmp/spool]
//
// sweeps seeded fault schedules (drops, delays, torn writes, corrupt
// headers, disconnects) over a loopback federated run and verifies the
// chaos invariants live: bit-identity against a direct absorb, and
// bit-exact replay of every schedule from its seed.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"

#include "common/stats.h"
#include "core/join_methods.h"
#include "core/multiway.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "federation/central_node.h"
#include "federation/chaos_harness.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "obs/fleet_stats.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"
#include "service/published_view.h"
#include "service/query_engine.h"
#include "tools/flags.h"

namespace {

using namespace ldpjs;

JoinMethod ParseMethod(const std::string& name) {
  if (name == "fagms") return JoinMethod::kFagms;
  if (name == "krr") return JoinMethod::kKrr;
  if (name == "hcms") return JoinMethod::kAppleHcms;
  if (name == "flh") return JoinMethod::kFlh;
  if (name == "ldpjoinsketch") return JoinMethod::kLdpJoinSketch;
  if (name == "ldpjoinsketch+") return JoinMethod::kLdpJoinSketchPlus;
  std::fprintf(stderr,
               "unknown method '%s' (fagms|krr|hcms|flh|ldpjoinsketch|"
               "ldpjoinsketch+)\n",
               name.c_str());
  std::exit(2);
}

DatasetId ParseDataset(const std::string& name) {
  if (name == "zipf") return DatasetId::kZipf;
  if (name == "gaussian") return DatasetId::kGaussian;
  if (name == "movielens") return DatasetId::kMovieLens;
  if (name == "tpcds") return DatasetId::kTpcds;
  if (name == "twitter") return DatasetId::kTwitter;
  if (name == "facebook") return DatasetId::kFacebook;
  std::fprintf(stderr,
               "unknown dataset '%s' "
               "(zipf|gaussian|movielens|tpcds|twitter|facebook)\n",
               name.c_str());
  std::exit(2);
}

/// Workload + sketch-seed derivations shared by every mode, so the network
/// subcommands regenerate exactly what the in-process experiment runs.
void DefineWorkloadFlags(tools::Flags& flags) {
  flags.Define("dataset", "zipf", "workload (Table II)");
  flags.Define("alpha", "1.1", "zipf skew (zipf dataset only)");
  flags.Define("rows", "1000000", "rows per table");
  flags.Define("epsilon", "4.0", "LDP budget");
  flags.Define("k", "18", "sketch rows");
  flags.Define("m", "1024", "sketch columns (power of two)");
  flags.Define("seed", "1", "workload + run seed");
}

JoinWorkload WorkloadFromFlags(const tools::Flags& flags) {
  const DatasetId dataset = ParseDataset(flags.GetString("dataset"));
  const uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return (dataset == DatasetId::kZipf)
             ? MakeZipfWorkload(flags.GetDouble("alpha"),
                                GetDatasetSpec(dataset).domain, rows, seed)
             : MakeWorkload(dataset, rows, seed);
}

SketchParams SketchFromFlags(const tools::Flags& flags) {
  SketchParams params;
  params.k = static_cast<int>(flags.GetInt("k"));
  params.m = static_cast<int>(flags.GetInt("m"));
  params.seed =
      Mix64(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x5EEDULL);
  return params;
}

bool WriteFile(const std::string& path, std::span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

bool ReadFile(const std::string& path, std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  bytes.resize(size < 0 ? 0 : static_cast<size_t>(size));
  const bool ok =
      bytes.empty() || std::fread(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  std::fclose(f);
  return ok;
}

void DumpMetrics(const NetMetrics& metrics) {
  std::printf("connections    : %llu accepted, %llu rejected handshakes\n",
              static_cast<unsigned long long>(metrics.connections_accepted),
              static_cast<unsigned long long>(metrics.handshakes_rejected));
  std::printf("frames         : %llu ok, %llu corrupt rejected, %llu shed\n",
              static_cast<unsigned long long>(metrics.frames_received),
              static_cast<unsigned long long>(metrics.corrupt_frames_rejected),
              static_cast<unsigned long long>(metrics.frames_shed));
  std::printf("bytes          : %llu\n",
              static_cast<unsigned long long>(metrics.bytes_received));
  std::printf("reports        : %llu\n",
              static_cast<unsigned long long>(metrics.reports_ingested));
  std::printf("queue high-water: %llu frames\n",
              static_cast<unsigned long long>(metrics.queue_high_water));
  std::printf("robustness     : %llu retries (%llu ms backoff), %llu accept "
              "failures (%llu fatal), %llu idle reaped, %llu faults "
              "injected\n",
              static_cast<unsigned long long>(metrics.retries_attempted),
              static_cast<unsigned long long>(metrics.backoff_millis),
              static_cast<unsigned long long>(metrics.accept_failures),
              static_cast<unsigned long long>(metrics.accept_fatal),
              static_cast<unsigned long long>(metrics.idle_reaped),
              static_cast<unsigned long long>(metrics.faults_injected));
  if (metrics.spool_bytes_written > 0 || metrics.spool_bytes_resumed > 0) {
    std::printf("spool          : %llu bytes written, %llu bytes / %llu "
                "epochs resumed\n",
                static_cast<unsigned long long>(metrics.spool_bytes_written),
                static_cast<unsigned long long>(metrics.spool_bytes_resumed),
                static_cast<unsigned long long>(
                    metrics.spool_epochs_resumed));
  }
  for (const ConnectionMetrics& c : metrics.connections) {
    std::printf(
        "  conn %llu: frames=%llu bytes=%llu reports=%llu corrupt=%llu "
        "shed=%llu\n",
        static_cast<unsigned long long>(c.id),
        static_cast<unsigned long long>(c.frames_received),
        static_cast<unsigned long long>(c.bytes_received),
        static_cast<unsigned long long>(c.reports_ingested),
        static_cast<unsigned long long>(c.corrupt_frames_rejected),
        static_cast<unsigned long long>(c.frames_shed));
  }
  for (size_t s = 0; s < metrics.shards.size(); ++s) {
    std::printf("  shard %zu: frames=%llu reports=%llu hwm=%llu\n", s,
                static_cast<unsigned long long>(metrics.shards[s].frames),
                static_cast<unsigned long long>(metrics.shards[s].reports),
                static_cast<unsigned long long>(
                    metrics.shards[s].queue_high_water));
  }
  for (const RegionMetrics& r : metrics.regions) {
    std::printf(
        "  region %u: epochs=%llu dup=%llu reports=%llu bytes=%llu\n",
        r.region_id, static_cast<unsigned long long>(r.epochs_applied),
        static_cast<unsigned long long>(r.duplicates_ignored),
        static_cast<unsigned long long>(r.reports_merged),
        static_cast<unsigned long long>(r.snapshot_bytes));
  }
}

// ---------------------------------------------------------------------------
// NetMetrics-as-JSON for ops: every serving subcommand dumps on SIGUSR1 and
// at exit, to stdout and optionally to --metrics-json FILE.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_metrics_dump_requested = 0;

void HandleSigusr1(int) { g_metrics_dump_requested = 1; }

class MetricsWatcher {
 public:
  MetricsWatcher(std::function<NetMetrics()> source, std::string json_path,
                 std::string jsonl_path = "", int jsonl_period_seconds = 0)
      : source_(std::move(source)),
        json_path_(std::move(json_path)),
        jsonl_path_(std::move(jsonl_path)),
        jsonl_period_seconds_(jsonl_period_seconds) {
    std::signal(SIGUSR1, HandleSigusr1);
    poller_ = std::thread([this] {
      // Signal handlers can only set a flag; this thread turns the flag
      // into a dump without restricting what the handler may touch.
      auto last_jsonl = std::chrono::steady_clock::now();
      while (!done_) {
        if (g_metrics_dump_requested != 0) {
          g_metrics_dump_requested = 0;
          Dump();
        }
        if (!jsonl_path_.empty() && jsonl_period_seconds_ > 0) {
          const auto now = std::chrono::steady_clock::now();
          if (now - last_jsonl >=
              std::chrono::seconds(jsonl_period_seconds_)) {
            last_jsonl = now;
            AppendJsonl();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  ~MetricsWatcher() {
    done_ = true;
    poller_.join();
    std::signal(SIGUSR1, SIG_DFL);
    Dump();  // the at-exit snapshot
    if (!jsonl_path_.empty()) AppendJsonl();  // the at-exit sample
  }

  /// One JSON snapshot through the same serializer as the STATS frame —
  /// the SIGUSR1 dump, the STATS scrape, and the JSONL export can never
  /// drift apart in shape.
  std::string Snapshot() const {
    return StatsToJson(source_(), &MetricsRegistry::Default());
  }

  void Dump() {
    const std::string json = Snapshot();
    std::printf("NETMETRICS %s\n", json.c_str());
    std::fflush(stdout);
    if (!json_path_.empty()) {
      std::FILE* f = std::fopen(json_path_.c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
  }

  void AppendJsonl() {
    const std::string json = Snapshot();
    std::FILE* f = std::fopen(jsonl_path_.c_str(), "ab");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }

 private:
  std::function<NetMetrics()> source_;
  std::string json_path_;
  std::string jsonl_path_;
  int jsonl_period_seconds_;
  std::atomic<bool> done_{false};
  std::thread poller_;
};

bool ParseBackpressure(const std::string& policy,
                       BackpressurePolicy* out) {
  if (policy == "block") {
    *out = BackpressurePolicy::kBlock;
    return true;
  }
  if (policy == "shed") {
    *out = BackpressurePolicy::kShed;
    return true;
  }
  std::fprintf(stderr, "unknown backpressure policy '%s' (block|shed)\n",
               policy.c_str());
  return false;
}

void DefineServerFlags(tools::Flags& flags) {
  flags.Define("shards", "1", "aggregation shards (= ingest pumps)");
  flags.Define("queue", "64", "per-shard ingest queue capacity");
  flags.Define("backpressure", "block", "full-queue policy: block|shed");
  flags.Define("idle-timeout", "0",
               "reap a client connection silent for this many seconds "
               "(0 = off; regional shippers legitimately idle between "
               "epochs, so arm it only when the traffic cadence is known)");
  flags.Define("metrics-json", "",
               "also write the SIGUSR1/exit NetMetrics JSON here");
  flags.Define("stats-jsonl", "",
               "append a stats JSON line (same schema as the STATS frame "
               "and SIGUSR1 dump) here every --stats-period seconds");
  flags.Define("stats-period", "10",
               "seconds between --stats-jsonl samples");
  flags.Define("slo-i2q-ms", "250",
               "ingest-to-queryable p99 SLO target in ms: p99 past it is "
               "DEGRADED, past 4x it is CRITICAL (health shows up in the "
               "stats JSON, the fleet view, and the event log)");
}

MetricsWatcher MakeWatcher(const tools::Flags& flags,
                           std::function<NetMetrics()> source) {
  return MetricsWatcher(std::move(source), flags.GetString("metrics-json"),
                        flags.GetString("stats-jsonl"),
                        static_cast<int>(flags.GetInt("stats-period")));
}

FrameServerOptions ServerOptionsFromFlags(const tools::Flags& flags,
                                          bool* ok) {
  FrameServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.num_shards = static_cast<size_t>(flags.GetInt("shards"));
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue"));
  options.idle_timeout_seconds = static_cast<int>(flags.GetInt("idle-timeout"));
  options.health.i2q_p99_target_ms = flags.GetDouble("slo-i2q-ms");
  *ok = ParseBackpressure(flags.GetString("backpressure"),
                          &options.backpressure);
  return options;
}

// ---------------------------------------------------------------------------
// serve: TCP aggregation front end for one table's reports.
// ---------------------------------------------------------------------------
int RunServe(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("port", "7542", "TCP port to listen on");
  DefineServerFlags(flags);
  flags.Define("out", "", "write the finalized sketch here when done");
  flags.Parse(argc, argv);

  bool policy_ok = false;
  FrameServerOptions options = ServerOptionsFromFlags(flags, &policy_ok);
  if (!policy_ok) return 2;

  const SketchParams params = SketchFromFlags(flags);
  FrameServer server(params, flags.GetDouble("epsilon"), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving LJSP on port %u (k=%d, m=%d, shards=%zu, queue=%zu, "
              "%s)\n",
              server.port(), params.k, params.m, options.num_shards,
              options.queue_capacity,
              flags.GetString("backpressure").c_str());
  std::fflush(stdout);

  NetMetrics metrics;
  LdpJoinSketchServer sketch(params, flags.GetDouble("epsilon"));
  {
    MetricsWatcher watcher =
        MakeWatcher(flags, [&server] { return server.metrics(); });
    server.WaitForFinalizeRequest();
    server.Stop();
    metrics = server.metrics();
    sketch = server.Finalize();
  }
  DumpMetrics(metrics);
  std::printf("finalized sketch: %llu reports\n",
              static_cast<unsigned long long>(sketch.total_reports()));
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    const std::vector<uint8_t> bytes = sketch.Serialize();
    if (!WriteFile(out, bytes)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), bytes.size());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// federate-central: the top of the two-tier topology. Regions push raw-lane
// epoch snapshots here; collection ends after --finalize-after FINALIZEs.
// ---------------------------------------------------------------------------
int RunFederateCentral(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("port", "7650", "TCP port to listen on");
  DefineServerFlags(flags);
  flags.Define("finalize-after", "1",
               "end collection after this many FINALIZE requests (one per "
               "region)");
  flags.Define("window", "0",
               "W >= 1 maintains a sliding-window view over the last W "
               "cross-region-aligned epochs and writes ITS finalized sketch "
               "to --out instead of the full history");
  flags.Define("window-regions", "0",
               "regions the windowed view's aligned frontier waits for "
               "(0 = --finalize-after; set explicitly when the FINALIZE "
               "quorum is not one per region)");
  flags.Define("out", "", "write the finalized sketch here when done");
  flags.Parse(argc, argv);

  bool policy_ok = false;
  CentralNodeOptions options;
  options.server = ServerOptionsFromFlags(flags, &policy_ok);
  if (!policy_ok) return 2;
  options.finalize_after =
      static_cast<size_t>(flags.GetInt("finalize-after"));
  options.window_epochs = static_cast<uint64_t>(flags.GetInt("window"));
  options.window_expected_regions =
      static_cast<size_t>(flags.GetInt("window-regions"));

  const SketchParams params = SketchFromFlags(flags);
  CentralNode central(params, flags.GetDouble("epsilon"), options);
  const Status started = central.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start central: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("central aggregator on port %u (k=%d, m=%d, shards=%zu, "
              "finalize-after=%zu)\n",
              central.port(), params.k, params.m, options.server.num_shards,
              options.finalize_after);
  std::fflush(stdout);

  NetMetrics metrics;
  LdpJoinSketchServer sketch(params, flags.GetDouble("epsilon"));
  {
    MetricsWatcher watcher =
        MakeWatcher(flags, [&central] { return central.metrics(); });
    central.WaitForRegions();
    central.Stop();
    metrics = central.metrics();
    if (central.windowed()) {
      // The windowed deployment's answer: the last --window aligned
      // epochs, from the incrementally cached view.
      sketch = central.WindowedFinalizedView();
      const WindowedView& window = *central.window();
      std::printf(
          "windowed view: W=%llu frontier=%s epochs_in_window=%llu "
          "expired=%llu pending=%llu reports=%llu\n",
          static_cast<unsigned long long>(window.window_epochs()),
          window.aligned() ? std::to_string(window.frontier()).c_str()
                           : "unaligned",
          static_cast<unsigned long long>(window.epochs_in_window()),
          static_cast<unsigned long long>(window.epochs_expired()),
          static_cast<unsigned long long>(window.epochs_pending()),
          static_cast<unsigned long long>(window.window_reports()));
    } else {
      sketch = central.Finalize();
    }
  }
  DumpMetrics(metrics);
  std::printf("%s sketch: %llu reports (%llu epochs applied centrally)\n",
              central.windowed() ? "windowed" : "finalized",
              static_cast<unsigned long long>(sketch.total_reports()),
              static_cast<unsigned long long>(metrics.epochs_applied));
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    const std::vector<uint8_t> bytes = sketch.Serialize();
    if (!WriteFile(out, bytes)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), bytes.size());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// federate-region: regional ingest tier. Aggregates client traffic, ships
// epoch snapshots upstream on a wall-clock cadence, and on a client's
// FINALIZE flushes the final epoch and forwards the FINALIZE to the
// central.
// ---------------------------------------------------------------------------
int RunFederateRegion(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("port", "7651", "region ingest port");
  DefineServerFlags(flags);
  flags.Define("central-host", "127.0.0.1", "central aggregator host");
  flags.Define("central-port", "7650", "central aggregator port");
  flags.Define("region", "0", "this region's id (dedup key upstream)");
  flags.Define("epoch-ms", "200",
               "epoch cut + ship cadence (0 = only the final flush)");
  flags.Define("spool-dir", "",
               "durable spool directory: epoch cuts are fsynced here before "
               "shipping, and a restart resumes un-shipped epochs from it "
               "(empty = in-memory pending queue only)");
  flags.Define("recv-timeout", "30",
               "seconds a ship may wait on a hung central for any ack "
               "before reconnect+retry (0 = wait forever)");
  flags.Define("stats-push-ms", "1000",
               "ship this region's stats snapshot to the central (LJSP v5 "
               "STATS_PUSH) at most every this many ms (0 = off; silently "
               "off against a v4-or-older central)");
  flags.Parse(argc, argv);

  bool policy_ok = false;
  RegionalNodeOptions options;
  options.server = ServerOptionsFromFlags(flags, &policy_ok);
  if (!policy_ok) return 2;
  options.region_id = static_cast<uint32_t>(flags.GetInt("region"));
  options.central_host = flags.GetString("central-host");
  options.central_port = static_cast<uint16_t>(flags.GetInt("central-port"));
  options.epoch_millis = static_cast<int>(flags.GetInt("epoch-ms"));
  options.spool_dir = flags.GetString("spool-dir");
  options.upstream_recv_timeout_seconds =
      static_cast<int>(flags.GetInt("recv-timeout"));
  options.forward_finalize = true;
  const int stats_push_ms = static_cast<int>(flags.GetInt("stats-push-ms"));
  options.push_stats = stats_push_ms > 0;
  options.stats_push_period_ms = stats_push_ms > 0 ? stats_push_ms : 1000;

  const SketchParams params = SketchFromFlags(flags);
  RegionalNode region(params, flags.GetDouble("epsilon"), options);
  const Status started = region.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start region: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("region %u on port %u → central %s:%u (shards=%zu, "
              "epoch-ms=%d)\n",
              options.region_id, region.port(), options.central_host.c_str(),
              static_cast<unsigned>(options.central_port),
              options.server.num_shards, options.epoch_millis);
  std::fflush(stdout);

  NetMetrics metrics;
  {
    // region.metrics() (not the bare ingest server's): includes the ship
    // retry/backoff counters and spool traffic.
    MetricsWatcher watcher =
        MakeWatcher(flags, [&region] { return region.metrics(); });
    // A client FINALIZE is the "this region's collection is complete"
    // signal: flush everything upstream and forward the FINALIZE.
    region.server_mutable().WaitForFinalizeRequest();
    // FlushAndStop retains unshipped snapshots across failed attempts, but
    // only within this process — so keep retrying here rather than exiting
    // with data that would die with us.
    Status flushed = region.FlushAndStop();
    for (int attempt = 1; !flushed.ok() && attempt < 5; ++attempt) {
      std::fprintf(stderr,
                   "flush attempt %d failed (%zu snapshots pending, "
                   "retrying): %s\n",
                   attempt, region.pending_snapshots(),
                   flushed.ToString().c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      flushed = region.FlushAndStop();
    }
    metrics = region.metrics();
    if (!flushed.ok()) {
      std::fprintf(stderr,
                   "flush failed; %zu pending snapshots are LOST with this "
                   "process: %s\n",
                   region.pending_snapshots(), flushed.ToString().c_str());
      return 1;
    }
  }
  DumpMetrics(metrics);
  std::printf("region %u flushed: %llu epochs shipped, %llu snapshot bytes, "
              "%llu ship retries\n",
              options.region_id,
              static_cast<unsigned long long>(region.epochs_shipped()),
              static_cast<unsigned long long>(
                  region.snapshot_bytes_shipped()),
              static_cast<unsigned long long>(region.ship_retries()));
  return 0;
}

// ---------------------------------------------------------------------------
// send: perturb one table exactly like the in-process simulation and stream
// the frames to a serve instance.
// ---------------------------------------------------------------------------
int RunSend(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("host", "127.0.0.1", "server host");
  flags.Define("port", "7542", "server port");
  flags.Define("table", "a", "which join column to stream: a|b");
  flags.Define("trial", "0", "perturbation trial index (matches --trials)");
  flags.Define("finalize", "0", "send FINALIZE when done (1 = yes)");
  flags.Define("senders", "1",
               "total senders partitioning this table across regions");
  flags.Define("sender-index", "0",
               "this sender's slice: stream blocks where block % senders == "
               "index (RNG streams unchanged, so N slices union to exactly "
               "the full table)");
  flags.Define("trace-every", "32",
               "wrap every Nth DATA batch in a TRACED envelope so the "
               "server can measure ingest-to-queryable latency end to end "
               "(0 = off; ignored by pre-v4 servers — frames stay plain)");
  flags.Parse(argc, argv);

  const std::string table = flags.GetString("table");
  if (table != "a" && table != "b") {
    std::fprintf(stderr, "--table must be a or b\n");
    return 2;
  }
  const uint64_t senders = static_cast<uint64_t>(flags.GetInt("senders"));
  const uint64_t sender_index =
      static_cast<uint64_t>(flags.GetInt("sender-index"));
  if (senders == 0 || sender_index >= senders) {
    std::fprintf(stderr, "--sender-index must be < --senders (>= 1)\n");
    return 2;
  }
  const JoinWorkload workload = WorkloadFromFlags(flags);
  const Column& column = table == "a" ? workload.table_a : workload.table_b;
  const SketchParams params = SketchFromFlags(flags);
  const double epsilon = flags.GetDouble("epsilon");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint64_t trial = static_cast<uint64_t>(flags.GetInt("trial"));
  // The exact derivation chain of experiment mode: per-trial run seed, then
  // the per-table tweak RunLdpJoinSketch applies.
  const uint64_t trial_seed = Mix64(seed ^ (0xF1A6ULL + trial));
  const uint64_t run_seed =
      Mix64(trial_seed ^ (table == "a" ? 0xA3ULL : 0xB3ULL));

  FrameSender::Options sender_options;
  sender_options.trace_every =
      static_cast<uint64_t>(flags.GetInt("trace-every"));
  auto sender = FrameSender::Connect(flags.GetString("host"),
                                     static_cast<uint16_t>(
                                         flags.GetInt("port")),
                                     params, epsilon, sender_options);
  if (!sender.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 sender.status().ToString().c_str());
    return 1;
  }

  LdpJoinSketchClient client(params, epsilon);
  const uint64_t* values = column.values().data();
  const size_t rows = column.size();
  std::vector<LdpReport> block(kIngestBlockSize);
  BinaryWriter frame;
  uint64_t sent_reports = 0;
  for (size_t first = 0; first < rows; first += kIngestBlockSize) {
    const size_t count = std::min(kIngestBlockSize, rows - first);
    const size_t block_index = first / kIngestBlockSize;
    if (block_index % senders != sender_index) continue;  // another slice
    sent_reports += count;
    Xoshiro256 rng = MakeStreamRng(run_seed, block_index);
    std::span<LdpReport> out(block.data(), count);
    client.PerturbBatch(std::span<const uint64_t>(values + first, count),
                        out, rng);
    frame = BinaryWriter();
    EncodeReportBatch(out, frame);
    const Status sent = sender->SendEncodedBatch(frame.buffer());
    if (!sent.ok()) {
      std::fprintf(stderr, "send failed at block %zu: %s\n", block_index,
                   sent.ToString().c_str());
      return 1;
    }
  }
  if (sender_options.trace_every > 0 &&
      sender->negotiated_version() >= 4) {
    // The PING barrier makes the server absorb (and republish past) every
    // traced batch above, so the final stats already hold their
    // ingest-to-queryable samples when this sender exits.
    const Status pinged = sender->Ping();
    if (!pinged.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", pinged.ToString().c_str());
      return 1;
    }
  }
  // Either exchange is the proof that every streamed frame is in the
  // lanes; FINALIZE additionally ends the server's collection, and is the
  // session's final message (no BYE after it).
  const Status finished = flags.GetInt("finalize") != 0
                              ? sender->RequestFinalize()
                              : sender->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", finished.ToString().c_str());
    return 1;
  }
  std::printf("streamed table %s (slice %llu/%llu): %llu frames, %llu "
              "bytes, %llu reports (%llu busy retries)\n",
              table.c_str(), static_cast<unsigned long long>(sender_index),
              static_cast<unsigned long long>(senders),
              static_cast<unsigned long long>(sender->frames_sent()),
              static_cast<unsigned long long>(sender->bytes_sent()),
              static_cast<unsigned long long>(sent_reports),
              static_cast<unsigned long long>(sender->busy_retries()));
  return 0;
}

// ---------------------------------------------------------------------------
// estimate: join two finalized sketch files; optionally check against the
// in-process run of the same experiment.
// ---------------------------------------------------------------------------
int RunEstimate(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("sketch-a", "", "finalized sketch file for table a");
  flags.Define("sketch-b", "", "finalized sketch file for table b");
  flags.Define("check", "0",
               "1 = recompute in-process (trial 0) and require a bit-"
               "identical estimate");
  flags.Define("regions", "0",
               "check against the federated in-process run with this many "
               "regions (matches a federate-central deployment)");
  flags.Define("epoch-reports", "0",
               "check: reports per region between epoch cuts");
  flags.Define("window", "0",
               "check: sliding-window W the deployment ran with "
               "(federate-central --window)");
  flags.Parse(argc, argv);

  auto load = [](const std::string& path) -> Result<LdpJoinSketchServer> {
    std::vector<uint8_t> bytes;
    if (!ReadFile(path, bytes)) {
      return Status::NotFound("cannot read " + path);
    }
    return LdpJoinSketchServer::Deserialize(bytes);
  };
  auto sketch_a = load(flags.GetString("sketch-a"));
  auto sketch_b = load(flags.GetString("sketch-b"));
  if (!sketch_a.ok() || !sketch_b.ok()) {
    std::fprintf(stderr, "cannot load sketches: %s / %s\n",
                 sketch_a.ok() ? "ok" : sketch_a.status().ToString().c_str(),
                 sketch_b.ok() ? "ok" : sketch_b.status().ToString().c_str());
    return 1;
  }
  if (!sketch_a->finalized() || !sketch_b->finalized()) {
    std::fprintf(stderr, "estimate needs finalized sketches\n");
    return 1;
  }
  const double estimate = sketch_a->JoinEstimate(*sketch_b);
  std::printf("network estimate   : %.17g\n", estimate);

  if (flags.GetInt("check") != 0) {
    JoinMethodConfig config;
    config.epsilon = flags.GetDouble("epsilon");
    config.sketch = SketchFromFlags(flags);
    config.num_regions = static_cast<size_t>(flags.GetInt("regions"));
    config.epoch_reports =
        static_cast<uint64_t>(flags.GetInt("epoch-reports"));
    config.window_epochs = static_cast<uint64_t>(flags.GetInt("window"));
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
    config.run_seed = Mix64(seed ^ 0xF1A6ULL);  // trial 0
    const JoinWorkload workload = WorkloadFromFlags(flags);
    const JoinMethodResult in_process =
        EstimateJoin(JoinMethod::kLdpJoinSketch, workload.table_a,
                     workload.table_b, config);
    std::printf("in-process estimate: %.17g\n", in_process.estimate);
    if (in_process.estimate != estimate) {
      std::printf("MISMATCH: network path diverged from in-process run\n");
      return 1;
    }
    std::printf("bit-identical: yes\n");
    const double truth = ExactJoinSize(workload.table_a, workload.table_b);
    std::printf("true join size     : %.6e (RE %.4f)\n", truth,
                RelativeError(truth, estimate));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// query: the LJSP v3 read path. One query against a live serve /
// federate-central instance's published view — join size, frequency,
// frequent items, multiway chain, or AQP range estimates — without
// interrupting collection. `--check 1` additionally fetches the server's
// raw lanes and requires the served answer to be bit-identical to the
// local evaluation of the same view (lifetime servers only — a windowed
// central's QUERY view is its sliding window, which SNAPSHOT does not
// expose).
// ---------------------------------------------------------------------------
int RunQuery(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("host", "127.0.0.1", "server host");
  flags.Define("port", "7542", "server port");
  flags.Define("kind", "freq",
               "what to ask: join|freq|topk|multiway|range|predjoin");
  flags.Define("key", "0", "freq: key to estimate");
  flags.Define("domain", "1024", "topk: scan keys in [0, domain)");
  flags.Define("threshold", "0",
               "topk: report keys with estimated frequency above this");
  flags.Define("lo", "0", "range/predjoin: key range lower bound");
  flags.Define("hi", "0", "range/predjoin: key range upper bound");
  flags.Define("mid-m", "64",
               "multiway: middle sketch right-side width (power of two)");
  flags.Define("trial", "0", "probe perturbation trial (matches send)");
  flags.Define("ping", "1",
               "PING before querying, so the served view includes "
               "everything already ingested (read-your-writes)");
  flags.Define("check", "0",
               "1 = fetch the raw lanes and require the served answer to "
               "be bit-identical to evaluating the same view locally");
  flags.Define("finalize", "0",
               "send FINALIZE after the query (ends the collection)");
  flags.Parse(argc, argv);

  const std::string kind_name = flags.GetString("kind");
  QueryRequest request;
  if (kind_name == "join") {
    request.kind = QueryKind::kJoinSize;
  } else if (kind_name == "freq") {
    request.kind = QueryKind::kFrequency;
  } else if (kind_name == "topk") {
    request.kind = QueryKind::kFrequentItems;
  } else if (kind_name == "multiway") {
    request.kind = QueryKind::kMultiwayChain;
  } else if (kind_name == "range") {
    request.kind = QueryKind::kRangeCount;
  } else if (kind_name == "predjoin") {
    request.kind = QueryKind::kPredicateJoin;
  } else {
    std::fprintf(stderr,
                 "unknown kind '%s' (join|freq|topk|multiway|range|"
                 "predjoin)\n",
                 kind_name.c_str());
    return 2;
  }
  request.key = static_cast<uint64_t>(flags.GetInt("key"));
  request.domain = static_cast<uint64_t>(flags.GetInt("domain"));
  request.threshold = flags.GetDouble("threshold");
  request.range_lo = static_cast<uint64_t>(flags.GetInt("lo"));
  request.range_hi = static_cast<uint64_t>(flags.GetInt("hi"));

  const SketchParams params = SketchFromFlags(flags);
  const double epsilon = flags.GetDouble("epsilon");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint64_t trial = static_cast<uint64_t>(flags.GetInt("trial"));

  const bool needs_probe = request.kind == QueryKind::kJoinSize ||
                           request.kind == QueryKind::kMultiwayChain ||
                           request.kind == QueryKind::kPredicateJoin;
  if (needs_probe) {
    // The probe is table B perturbed exactly like `send --table b` would
    // (same RNG streams, same seed chain) and absorbed locally, so the
    // served estimate is the one the full network run would produce.
    const JoinWorkload workload = WorkloadFromFlags(flags);
    const uint64_t trial_seed = Mix64(seed ^ (0xF1A6ULL + trial));
    const uint64_t run_seed = Mix64(trial_seed ^ 0xB3ULL);
    SketchParams probe_params = params;
    if (request.kind == QueryKind::kMultiwayChain) {
      // Chain layout: view (left end, hashed on params.seed) ⋈ middle ⋈
      // probe. The middle's left side shares the view's hashes; its right
      // side and the probe share a derived seed.
      const int mid_m = static_cast<int>(flags.GetInt("mid-m"));
      MultiwayParams middle_params;
      middle_params.k = params.k;
      middle_params.m_left = params.m;
      middle_params.m_right = mid_m;
      middle_params.left_seed = params.seed;
      middle_params.right_seed = Mix64(params.seed ^ 0x517EULL);
      LdpMultiwayClient middle_client(middle_params, epsilon);
      LdpMultiwayServer middle_server(middle_params, epsilon);
      Xoshiro256 middle_rng = MakeStreamRng(Mix64(seed ^ 0x3D1DULL), trial);
      const std::vector<uint64_t>& a = workload.table_a.values();
      const std::vector<uint64_t>& b = workload.table_b.values();
      for (size_t i = 0; i < a.size(); ++i) {
        middle_server.Absorb(
            middle_client.Perturb(a[i], b[i % b.size()], middle_rng));
      }
      middle_server.Finalize();  // middles must arrive finalized
      request.middles.push_back(middle_server.Serialize());
      probe_params.m = mid_m;
      probe_params.seed = middle_params.right_seed;
    }
    LdpJoinSketchClient probe_client(probe_params, epsilon);
    LdpJoinSketchServer probe_server(probe_params, epsilon);
    const std::vector<uint64_t>& values = workload.table_b.values();
    std::vector<LdpReport> block(kIngestBlockSize);
    for (size_t first = 0; first < values.size();
         first += kIngestBlockSize) {
      const size_t count = std::min(kIngestBlockSize, values.size() - first);
      Xoshiro256 rng = MakeStreamRng(run_seed, first / kIngestBlockSize);
      std::span<LdpReport> out(block.data(), count);
      probe_client.PerturbBatch(
          std::span<const uint64_t>(values.data() + first, count), out, rng);
      probe_server.AbsorbBatch(out);
    }
    request.probe_sketch = probe_server.Serialize();  // raw; server finalizes
  }

  auto sender =
      FrameSender::Connect(flags.GetString("host"),
                           static_cast<uint16_t>(flags.GetInt("port")),
                           params, epsilon);
  if (!sender.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 sender.status().ToString().c_str());
    return 1;
  }
  if (flags.GetInt("ping") != 0) {
    const Status pinged = sender->Ping();
    if (!pinged.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", pinged.ToString().c_str());
      return 1;
    }
  }
  auto response = sender->Query(request);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("kind           : %s (LJSP v%u)\n", kind_name.c_str(),
              static_cast<unsigned>(sender->negotiated_version()));
  std::printf("view           : seq=%llu %s reports=%llu\n",
              static_cast<unsigned long long>(response->view_sequence),
              response->view_aligned
                  ? ("frontier=" + std::to_string(response->view_epoch))
                        .c_str()
                  : "lifetime",
              static_cast<unsigned long long>(response->view_reports));
  std::printf("answer         : %.17g\n", response->value);
  if (!response->items.empty()) {
    std::printf("items          :");
    for (const uint64_t item : response->items) {
      std::printf(" %llu", static_cast<unsigned long long>(item));
    }
    std::printf("\n");
  }

  if (flags.GetInt("check") != 0) {
    // Same view, evaluated locally: the lanes fetched right after the
    // query are the ones the PING republished (no concurrent ingest in a
    // checked run), so the served answer must match bit for bit.
    auto raw = sender->SnapshotRawSketch();
    if (!raw.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   raw.status().ToString().c_str());
      return 1;
    }
    auto lanes = LdpJoinSketchServer::Deserialize(*raw);
    if (!lanes.ok()) {
      std::fprintf(stderr, "snapshot decode failed: %s\n",
                   lanes.status().ToString().c_str());
      return 1;
    }
    lanes->Finalize();
    const PublishedView local_view(response->view_sequence,
                                   response->view_aligned,
                                   response->view_epoch, std::move(*lanes));
    auto local = AnswerQuery(local_view, request);
    if (!local.ok()) {
      std::fprintf(stderr, "local evaluation failed: %s\n",
                   local.status().ToString().c_str());
      return 1;
    }
    uint64_t served_bits = 0, local_bits = 0;
    std::memcpy(&served_bits, &response->value, sizeof(served_bits));
    std::memcpy(&local_bits, &local->value, sizeof(local_bits));
    std::printf("local answer   : %.17g\n", local->value);
    if (served_bits != local_bits || response->items != local->items ||
        response->view_reports != local_view.reports()) {
      std::printf("MISMATCH: served answer diverged from the local "
                  "evaluation of the same view\n");
      return 1;
    }
    std::printf("bit-identical: yes\n");
  }

  if (flags.GetInt("finalize") != 0) {
    const Status finalized = sender->RequestFinalize();
    if (!finalized.ok()) {
      std::fprintf(stderr, "finalize failed: %s\n",
                   finalized.ToString().c_str());
      return 1;
    }
  } else {
    const Status finished = sender->Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "finish failed: %s\n",
                   finished.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// stats: the LJSP v4/v5 ops path. Scrape a live server's stats snapshot —
// counters, per-tier latency histograms, and the end-to-end
// ingest-to-queryable percentiles — as one JSON line, without interrupting
// collection (STATS is answered immediately, never ordered behind ingest).
// --cluster scrapes the central's FLEET_STATS view instead: every region's
// last STATS_PUSH snapshot plus the exactly-merged cluster histograms and
// the health roll-up. --watch N re-scrapes every N seconds, reconnecting
// with jittered backoff across transient connection loss — a monitor that
// dies with the first server blip is not a monitor.
// ---------------------------------------------------------------------------
int RunStats(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("host", "127.0.0.1", "server host");
  flags.Define("port", "7542", "server port");
  flags.Define("ping", "1",
               "PING before each scrape: the barrier republishes the view, "
               "so sampled traced batches already ingested show up in "
               "ingest_to_queryable before the scrape reads it");
  flags.Define("watch", "0",
               "re-scrape every this many seconds (0 = one shot)");
  flags.Define("cluster", "0",
               "1 = scrape the fleet view (per-region STATS_PUSH snapshots "
               "+ exactly-merged cluster histograms + health roll-up) "
               "instead of the server's own stats; needs LJSP v5");
  flags.Parse(argc, argv);

  const SketchParams params = SketchFromFlags(flags);
  const double epsilon = flags.GetDouble("epsilon");
  const std::string host = flags.GetString("host");
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port"));
  const int watch = static_cast<int>(flags.GetInt("watch"));
  const bool cluster = flags.GetInt("cluster") != 0;
  const bool ping = flags.GetInt("ping") != 0;

  std::optional<FrameSender> sender;
  Backoff backoff(BackoffOptions{.base_micros = 200000,
                                 .cap_micros = 5000000});
  for (;;) {
    if (!sender.has_value()) {
      auto connected = FrameSender::Connect(host, port, params, epsilon);
      if (!connected.ok()) {
        if (watch <= 0) {
          std::fprintf(stderr, "connect failed: %s\n",
                       connected.status().ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "connect failed (%s); retrying\n",
                     connected.status().ToString().c_str());
        backoff.SleepNext();
        continue;
      }
      sender.emplace(std::move(*connected));
      backoff.Reset();
    }
    Status scrape = Status::OK();
    if (ping) scrape = sender->Ping();
    if (scrape.ok()) {
      if (cluster) {
        auto view = sender->FleetStats();
        if (view.ok()) {
          std::printf("%s\n", FleetViewToJson(*view).c_str());
        } else {
          scrape = view.status();
        }
      } else {
        auto json = sender->Stats();
        if (json.ok()) {
          std::printf("%s\n", json->c_str());
        } else {
          scrape = json.status();
        }
      }
    }
    if (!scrape.ok()) {
      // FailedPrecondition is the version gate (server too old for this
      // scrape) — reconnecting can never fix it, so fail fast even under
      // --watch rather than retrying forever against the wrong peer.
      if (watch <= 0 || scrape.code() == StatusCode::kFailedPrecondition) {
        std::fprintf(stderr, "stats failed: %s\n",
                     scrape.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "scrape failed (%s); reconnecting\n",
                   scrape.ToString().c_str());
      sender.reset();
      backoff.SleepNext();
      continue;
    }
    std::fflush(stdout);
    if (watch <= 0) break;
    std::this_thread::sleep_for(std::chrono::seconds(watch));
  }
  const Status finished = sender->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 finished.ToString().c_str());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// top: live terminal dashboard over the central's fleet view. One row per
// region (health state, frontier epoch, pending depth, i2q/ship-RTT
// percentiles from the pushed raw buckets, snapshot age) plus the cluster
// roll-up from the exactly-merged histograms. Scrapes FLEET_STATS every
// --interval seconds on a reconnecting session.
// ---------------------------------------------------------------------------

/// ns → short human string for a dashboard cell ("-" for an empty series).
std::string FormatNanos(double ns) {
  if (ns <= 0) return "-";
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", ns / 1e9);
  }
  return buf;
}

void RenderFleetView(const FleetView& view, const std::string& target) {
  std::printf("ldpjs fleet @ %s    cluster=%s  regions=%zu\n", target.c_str(),
              std::string(HealthStateName(view.cluster.state)).c_str(),
              view.regions.size());
  if (!view.cluster.cause.empty()) {
    std::printf("  cause: %s\n", view.cluster.cause.c_str());
  }
  std::printf("%-8s %-9s %9s %8s %10s %10s %12s %8s %8s\n", "REGION",
              "STATE", "FRONTIER", "PENDING", "I2Q-P50", "I2Q-P99",
              "SHIP-RTT-P99", "SHED", "AGE");
  for (const FleetRegionView& region : view.regions) {
    const HistogramSnapshot i2q =
        FleetHistogramByName(region.snapshot.stats, "ingest_to_queryable_ns");
    const HistogramSnapshot rtt =
        FleetHistogramBySuffix(region.snapshot.stats, "_ship_rtt_ns");
    uint64_t shed = 0;
    for (const auto& [name, value] : region.snapshot.stats.counters) {
      if (name == "net_frames_shed") shed = value;
    }
    std::printf(
        "%-8u %-9s %9llu %8llu %10s %10s %12s %8llu %8s\n",
        region.snapshot.region_id,
        std::string(HealthStateName(region.health.state)).c_str(),
        static_cast<unsigned long long>(
            FleetGaugeByName(region.snapshot.stats, "net_frontier_epoch")),
        static_cast<unsigned long long>(
            FleetGaugeByName(region.snapshot.stats, "net_pending_epochs")),
        FormatNanos(i2q.Percentile(0.50)).c_str(),
        FormatNanos(i2q.Percentile(0.99)).c_str(),
        FormatNanos(rtt.Percentile(0.99)).c_str(),
        static_cast<unsigned long long>(shed),
        FormatNanos(static_cast<double>(region.age_ns)).c_str());
  }
  const HistogramSnapshot merged_i2q =
      FleetHistogramByName(view.merged, "ingest_to_queryable_ns");
  uint64_t frames = 0, reports = 0;
  for (const auto& [name, value] : view.merged.counters) {
    if (name == "net_frames_received") frames = value;
    if (name == "net_reports_ingested") reports = value;
  }
  std::printf("CLUSTER  i2q p50=%s p99=%s (n=%llu)  frames=%llu "
              "reports=%llu\n",
              FormatNanos(merged_i2q.Percentile(0.50)).c_str(),
              FormatNanos(merged_i2q.Percentile(0.99)).c_str(),
              static_cast<unsigned long long>(merged_i2q.count),
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(reports));
}

int RunTop(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("host", "127.0.0.1", "central host");
  flags.Define("port", "7650", "central port");
  flags.Define("interval", "2", "seconds between scrapes");
  flags.Define("iterations", "0",
               "stop after this many rendered frames (0 = until killed; "
               "CI smoke runs bound it)");
  flags.Define("clear", "1",
               "clear the terminal before each frame (0 = append, for "
               "logs/CI)");
  flags.Parse(argc, argv);

  const SketchParams params = SketchFromFlags(flags);
  const double epsilon = flags.GetDouble("epsilon");
  const std::string host = flags.GetString("host");
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port"));
  const std::string target = host + ":" + std::to_string(port);
  const int interval = static_cast<int>(flags.GetInt("interval"));
  const uint64_t iterations =
      static_cast<uint64_t>(flags.GetInt("iterations"));
  const bool clear = flags.GetInt("clear") != 0;

  std::optional<FrameSender> sender;
  Backoff backoff(BackoffOptions{.base_micros = 200000,
                                 .cap_micros = 5000000});
  for (uint64_t rendered = 0; iterations == 0 || rendered < iterations;) {
    if (!sender.has_value()) {
      auto connected = FrameSender::Connect(host, port, params, epsilon);
      if (!connected.ok()) {
        std::fprintf(stderr, "connect failed (%s); retrying\n",
                     connected.status().ToString().c_str());
        backoff.SleepNext();
        continue;
      }
      sender.emplace(std::move(*connected));
      backoff.Reset();
    }
    auto view = sender->FleetStats();
    if (!view.ok()) {
      if (view.status().code() == StatusCode::kFailedPrecondition) {
        std::fprintf(stderr, "top failed: %s\n",
                     view.status().ToString().c_str());
        return 1;  // the version gate; reconnecting cannot fix it
      }
      std::fprintf(stderr, "scrape failed (%s); reconnecting\n",
                   view.status().ToString().c_str());
      sender.reset();
      backoff.SleepNext();
      continue;
    }
    if (clear) std::printf("\x1b[H\x1b[2J");
    RenderFleetView(*view, target);
    std::fflush(stdout);
    ++rendered;
    if (iterations != 0 && rendered >= iterations) break;
    std::this_thread::sleep_for(std::chrono::seconds(interval));
  }
  if (sender.has_value()) {
    const Status finished = sender->Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "finish failed: %s\n",
                   finished.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// chaos: sweep seeded fault schedules over a loopback federated run and
// verify the chaos invariants live — bit-identity of the federated (and
// windowed) estimate against a direct single-node absorb, and bit-exact
// replay of every schedule from its seed. Exit 0 only if every scenario
// holds; the ops smoke test CI runs on every change.
// ---------------------------------------------------------------------------
int RunChaos(int argc, char** argv) {
  tools::Flags flags;
  flags.Define("k", "6", "sketch rows");
  flags.Define("m", "256", "sketch columns");
  flags.Define("epsilon", "2", "privacy budget");
  flags.Define("fault-seed", "1", "first fault schedule seed");
  flags.Define("sweep", "4", "number of consecutive seeds to sweep");
  flags.Define("fault-rate", "0.2",
               "per-operation fault probability on the upstream path");
  flags.Define("max-faults", "4", "fault budget per scenario");
  flags.Define("regions", "2", "regional nodes");
  flags.Define("epochs", "2", "epoch cuts per region");
  flags.Define("reports", "800", "reports per region per epoch");
  flags.Define("replay", "1",
               "1 = run each scenario twice and require bit-exact replay "
               "(same faults, same retries, same estimate)");
  flags.Define("spool-dir", "",
               "run the sweep with durable spooling under this directory");
  flags.Parse(argc, argv);

  ChaosScenarioOptions options;
  options.params.k = static_cast<int>(flags.GetInt("k"));
  options.params.m = static_cast<int>(flags.GetInt("m"));
  options.params.seed = 21;
  options.epsilon = flags.GetDouble("epsilon");
  options.fault_rate = flags.GetDouble("fault-rate");
  options.max_faults = static_cast<uint64_t>(flags.GetInt("max-faults"));
  options.num_regions = static_cast<size_t>(flags.GetInt("regions"));
  options.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  options.reports_per_epoch = static_cast<size_t>(flags.GetInt("reports"));
  options.spool_dir = flags.GetString("spool-dir");

  const uint64_t first_seed =
      static_cast<uint64_t>(flags.GetInt("fault-seed"));
  const uint64_t sweep = static_cast<uint64_t>(flags.GetInt("sweep"));
  const bool replay = flags.GetInt("replay") != 0;
  int failures = 0;
  for (uint64_t seed = first_seed; seed < first_seed + sweep; ++seed) {
    options.fault_seed = seed;
    auto run = RunChaosScenario(options);
    if (!run.ok()) {
      std::fprintf(stderr, "seed %llu: harness error: %s\n",
                   static_cast<unsigned long long>(seed),
                   run.status().ToString().c_str());
      ++failures;
      continue;
    }
    bool ok = run->bit_identical();
    std::printf(
        "seed %llu: %s  faults=%llu/%llu hits, retries=%llu, dups=%llu, "
        "backoff=%llums%s\n",
        static_cast<unsigned long long>(seed),
        ok ? "bit-identical" : "ESTIMATE DIVERGED",
        static_cast<unsigned long long>(run->faults_injected),
        static_cast<unsigned long long>(run->fault_hits),
        static_cast<unsigned long long>(run->ship_retries),
        static_cast<unsigned long long>(run->duplicate_acks),
        static_cast<unsigned long long>(run->backoff_millis),
        run->spool_bytes_written > 0 ? " (spooled)" : "");
    std::printf("  sites: %s\n", run->fault_stats.c_str());
    if (replay) {
      auto again = RunChaosScenario(options);
      if (!again.ok() || !again->bit_identical() ||
          again->fault_stats != run->fault_stats ||
          again->ship_retries != run->ship_retries ||
          again->federated != run->federated) {
        std::printf("  replay: DIVERGED from first run\n");
        ok = false;
      } else {
        std::printf("  replay: bit-exact\n");
      }
    }
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d scenario(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all %llu scenario(s) held bit-identity under chaos\n",
              static_cast<unsigned long long>(sweep));
  return 0;
}

// ---------------------------------------------------------------------------
// experiment mode (original interface).
// ---------------------------------------------------------------------------
int RunExperiment(int argc, char** argv) {
  tools::Flags flags;
  flags.Define("method", "ldpjoinsketch", "estimator to run");
  DefineWorkloadFlags(flags);
  flags.Define("sample-rate", "0.1", "LDPJoinSketch+ phase-1 rate r");
  flags.Define("threshold", "0.001", "LDPJoinSketch+ FI threshold theta");
  flags.Define("flh-pool", "256", "FLH hash pool size");
  flags.Define("trials", "3", "perturbation repetitions");
  flags.Define("threads", "0", "simulation threads (0 = hardware)");
  flags.Define("shards", "0",
               "aggregation-service shards (0 = in-process ingest; N routes "
               "reports through the sharded wire path — same estimates)");
  flags.Define("net", "0",
               "1 = ship wire frames over a TCP loopback session "
               "(FrameServer/FrameSender) — same estimates");
  flags.Define("regions", "0",
               "N >= 1 runs the federated topology on loopback: N regional "
               "aggregators shipping epoch snapshots to one central — same "
               "estimates");
  flags.Define("epoch-reports", "0",
               "federated mode: reports per region between epoch cuts "
               "(0 = one epoch)");
  flags.Define("window", "0",
               "federated mode: W >= 1 estimates over only the last W "
               "cross-region-aligned epochs (sliding window)");
  flags.Parse(argc, argv);

  const JoinMethod method = ParseMethod(flags.GetString("method"));
  const uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  const JoinWorkload workload = WorkloadFromFlags(flags);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  JoinMethodConfig config;
  config.epsilon = flags.GetDouble("epsilon");
  config.sketch = SketchFromFlags(flags);
  config.plus_sample_rate = flags.GetDouble("sample-rate");
  config.plus_threshold = flags.GetDouble("threshold");
  config.flh_pool_size = static_cast<uint32_t>(flags.GetInt("flh-pool"));
  config.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  config.num_shards = static_cast<size_t>(flags.GetInt("shards"));
  config.net_loopback = flags.GetInt("net") != 0;
  config.num_regions = static_cast<size_t>(flags.GetInt("regions"));
  config.epoch_reports =
      static_cast<uint64_t>(flags.GetInt("epoch-reports"));
  config.window_epochs = static_cast<uint64_t>(flags.GetInt("window"));

  const int trials = static_cast<int>(flags.GetInt("trials"));
  RunningStats estimates, res, offline, online;
  double comm_bits = 0;
  for (int t = 0; t < trials; ++t) {
    config.run_seed = Mix64(seed ^ (0xF1A6ULL + static_cast<uint64_t>(t)));
    const JoinMethodResult result =
        EstimateJoin(method, workload.table_a, workload.table_b, config);
    estimates.Add(result.estimate);
    res.Add(RelativeError(truth, result.estimate));
    offline.Add(result.offline_seconds);
    online.Add(result.online_seconds);
    comm_bits = result.comm_bits;
  }

  std::printf("method         : %s\n",
              std::string(JoinMethodName(method)).c_str());
  std::printf("dataset        : %s (%llu rows/table, domain %llu)\n",
              workload.name.c_str(), static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(workload.table_a.domain()));
  std::printf("epsilon        : %.3f   sketch (k=%d, m=%d)\n", config.epsilon,
              config.sketch.k, config.sketch.m);
  std::printf("true join size : %.6e\n", truth);
  std::printf("estimate       : %.6e (mean of %d trials, stddev %.3e)\n",
              estimates.mean(), trials, estimates.stddev());
  std::printf("relative error : %.4f (mean)\n", res.mean());
  std::printf("offline/online : %.3f s / %.3f s\n", offline.mean(),
              online.mean());
  std::printf("uplink traffic : %.3e bits total\n", comm_bits);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && argv[1][0] != '-') {
    const std::string subcommand = argv[1];
    if (subcommand == "serve") return RunServe(argc - 1, argv + 1);
    if (subcommand == "send") return RunSend(argc - 1, argv + 1);
    if (subcommand == "estimate") return RunEstimate(argc - 1, argv + 1);
    if (subcommand == "query") return RunQuery(argc - 1, argv + 1);
    if (subcommand == "stats") return RunStats(argc - 1, argv + 1);
    if (subcommand == "top") return RunTop(argc - 1, argv + 1);
    if (subcommand == "federate-central") {
      return RunFederateCentral(argc - 1, argv + 1);
    }
    if (subcommand == "federate-region") {
      return RunFederateRegion(argc - 1, argv + 1);
    }
    if (subcommand == "chaos") return RunChaos(argc - 1, argv + 1);
    std::fprintf(stderr,
                 "unknown subcommand '%s' (serve|send|estimate|query|stats|"
                 "top|federate-central|federate-region|chaos, or flags only "
                 "for experiment mode)\n",
                 subcommand.c_str());
    return 2;
  }
  return RunExperiment(argc, argv);
}
