// Metrics registry primitives, including the concurrency contracts the
// design leans on:
//   - snapshots taken while writers hammer a histogram are never torn
//     (count == sum of buckets by construction) and monotone, and the
//     post-join totals are exact — this test runs under the CI TSan job;
//   - the disabled path records nothing (the "one branch when off" pin);
//   - instrument pointers are stable across repeated lookups, so cached
//     raw pointers stay valid for the registry's lifetime.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldpjs {
namespace {

/// Restores the global obs switch even when an assertion bails out early.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() = default;
  ~ObsEnabledGuard() { SetObsEnabled(true); }
};

TEST(ObsMetricsTest, BucketBoundaries) {
  // v = 0 → bucket 0; v in [2^(i-1), 2^i) → bucket i.
  EXPECT_EQ(ObsHistogram::BucketOf(0), 0u);
  EXPECT_EQ(ObsHistogram::BucketOf(1), 1u);
  EXPECT_EQ(ObsHistogram::BucketOf(2), 2u);
  EXPECT_EQ(ObsHistogram::BucketOf(3), 2u);
  EXPECT_EQ(ObsHistogram::BucketOf(4), 3u);
  EXPECT_EQ(ObsHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(ObsHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(ObsHistogram::BucketOf(UINT64_MAX), 64u);

  ObsHistogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(3);
  hist.Record(1024);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1028u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[11], 1u);
}

TEST(ObsMetricsTest, PercentileRankWalk) {
  ObsHistogram hist;
  // 90 fast observations (~1us) and 10 slow ones (~1ms): p50 must land in
  // the fast bucket, p99 in the slow one. Values are bucket upper bounds.
  for (int i = 0; i < 90; ++i) hist.Record(1000);
  for (int i = 0; i < 10; ++i) hist.Record(1000000);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.Percentile(0.50), (1ull << 10) - 1);  // 1000 → bucket 10
  EXPECT_EQ(snap.Percentile(0.90), (1ull << 10) - 1);  // rank 90 is fast
  EXPECT_EQ(snap.Percentile(0.99), (1ull << 20) - 1);  // 1e6 → bucket 20
  // Degenerate inputs stay sane.
  EXPECT_EQ(HistogramSnapshot{}.Percentile(0.99), 0u);
  ObsHistogram zeros;
  zeros.Record(0);
  EXPECT_EQ(zeros.Snapshot().Percentile(0.99), 0u);
}

TEST(ObsMetricsTest, DisabledRecordsNothing) {
  ObsEnabledGuard guard;
  ObsHistogram hist;
  ObsCounter counter;
  ObsGauge gauge;
  SetObsEnabled(false);
  hist.Record(42);
  counter.Increment();
  gauge.Set(7);
  EXPECT_EQ(hist.Snapshot().count, 0u);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0u);
  SetObsEnabled(true);
  hist.Record(42);
  counter.Increment();
  gauge.Set(7);
  EXPECT_EQ(hist.Snapshot().count, 1u);
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(gauge.value(), 7u);
}

TEST(ObsMetricsTest, RegistryPointersStable) {
  MetricsRegistry registry;
  ObsHistogram* hist = registry.GetHistogram("absorb_ns");
  ObsCounter* counter = registry.GetCounter("events");
  ObsGauge* gauge = registry.GetGauge("level");
  // Interleave registrations; the originals must not move.
  for (int i = 0; i < 100; ++i) {
    registry.GetHistogram("other_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetHistogram("absorb_ns"), hist);
  EXPECT_EQ(registry.GetCounter("events"), counter);
  EXPECT_EQ(registry.GetGauge("level"), gauge);

  hist->Record(5);
  counter->Add(3);
  gauge->Set(9);
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.size(), 101u);
  bool found = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name == "absorb_ns") {
      found = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 5u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(registry.HistogramByName("absorb_ns").count, 1u);
  EXPECT_EQ(registry.HistogramByName("no_such_series").count, 0u);
}

// The TSan hammer: 8 writers × 100k records racing a snapshot reader. The
// contract under test is exactly what the STATS scrape relies on — a
// snapshot taken mid-flight is internally consistent (its count equals the
// sum of its buckets BY READ, not by trust) and monotone, and once the
// writers join the totals are exact.
TEST(ObsMetricsTest, HammerWritersVsSnapshotReader) {
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 100000;
  ObsHistogram hist;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_taken{0};

  std::thread reader([&] {
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist.Snapshot();
      uint64_t bucket_total = 0;
      for (const uint64_t b : snap.buckets) bucket_total += b;
      ASSERT_EQ(snap.count, bucket_total);   // never torn
      ASSERT_GE(snap.count, last_count);     // never regresses
      last_count = snap.count;
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hist, w] {
      // Distinct value per writer spreads records across buckets, so a torn
      // cross-bucket read would be caught, not masked by one hot bucket.
      const uint64_t value = 1ull << (w * 3);
      for (uint64_t i = 0; i < kPerWriter; ++i) hist.Record(value);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const HistogramSnapshot final_snap = hist.Snapshot();
  EXPECT_EQ(final_snap.count, kWriters * kPerWriter);
  uint64_t expected_sum = 0;
  for (int w = 0; w < kWriters; ++w) {
    expected_sum += (1ull << (w * 3)) * kPerWriter;
  }
  EXPECT_EQ(final_snap.sum, expected_sum);
  EXPECT_GT(snapshots_taken.load(), 0u);
}

// The fleet-view exactness pin: merging two regions' histogram snapshots
// bucket-by-bucket must equal one histogram fed the union of records —
// same buckets, same count, same sum, and therefore the same percentiles.
// This is what lets the central report true cluster p99 from pushed raw
// buckets instead of averaging per-region percentiles (which is wrong).
TEST(ObsMetricsTest, MergeHistogramEqualsUnionOfRecords) {
  ObsHistogram region_a, region_b, unioned;
  // Overlapping and distinct buckets, non-uniform counts.
  const uint64_t values_a[] = {0, 1, 3, 900, 900, 1 << 20};
  const uint64_t values_b[] = {2, 900, 4096, 4096, 1ull << 40};
  for (const uint64_t v : values_a) {
    region_a.Record(v);
    unioned.Record(v);
  }
  for (const uint64_t v : values_b) {
    region_b.Record(v);
    unioned.Record(v);
  }
  const HistogramSnapshot merged =
      MergeHistogram(region_a.Snapshot(), region_b.Snapshot());
  const HistogramSnapshot expected = unioned.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], expected.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(merged.Percentile(0.50), expected.Percentile(0.50));
  EXPECT_EQ(merged.Percentile(0.99), expected.Percentile(0.99));
}

TEST(ObsMetricsTest, MergeHistogramEmptyAndDisjointRegions) {
  ObsHistogram loaded;
  for (int i = 0; i < 10; ++i) loaded.Record(1000);
  const HistogramSnapshot snap = loaded.Snapshot();
  // Empty is the identity on either side.
  const HistogramSnapshot left = MergeHistogram(HistogramSnapshot{}, snap);
  const HistogramSnapshot right = MergeHistogram(snap, HistogramSnapshot{});
  EXPECT_EQ(left.count, snap.count);
  EXPECT_EQ(right.sum, snap.sum);
  EXPECT_EQ(left.Percentile(0.99), snap.Percentile(0.99));
  EXPECT_EQ(MergeHistogram(HistogramSnapshot{}, HistogramSnapshot{}).count,
            0u);
  // Fully disjoint buckets: one fast region, one slow region. The merged
  // p50 sits in the fast bucket, the merged p99 in the slow one — the
  // cross-region tail survives the merge.
  ObsHistogram fast, slow;
  for (int i = 0; i < 90; ++i) fast.Record(1000);
  for (int i = 0; i < 10; ++i) slow.Record(1000000);
  const HistogramSnapshot mixed =
      MergeHistogram(fast.Snapshot(), slow.Snapshot());
  EXPECT_EQ(mixed.count, 100u);
  EXPECT_EQ(mixed.Percentile(0.50), (1ull << 10) - 1);
  EXPECT_EQ(mixed.Percentile(0.99), (1ull << 20) - 1);
}

// Merging snapshots taken WHILE writers hammer both histograms: each
// input snapshot is internally consistent (the striped-read contract), so
// the merge must be too — count == sum of buckets, never torn. After the
// writers join, a final merge is exact against the union totals.
TEST(ObsMetricsTest, MergeOfConcurrentSnapshotsNeverTorn) {
  constexpr int kWritersPerHist = 4;
  constexpr uint64_t kPerWriter = 50000;
  ObsHistogram hist_a, hist_b;
  std::atomic<bool> done{false};

  std::thread merger([&] {
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot merged =
          MergeHistogram(hist_a.Snapshot(), hist_b.Snapshot());
      uint64_t bucket_total = 0;
      for (const uint64_t b : merged.buckets) bucket_total += b;
      ASSERT_EQ(merged.count, bucket_total);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWritersPerHist; ++w) {
    writers.emplace_back([&hist_a, w] {
      const uint64_t value = 1ull << (w * 3);
      for (uint64_t i = 0; i < kPerWriter; ++i) hist_a.Record(value);
    });
    writers.emplace_back([&hist_b, w] {
      const uint64_t value = 1ull << (w * 3 + 1);
      for (uint64_t i = 0; i < kPerWriter; ++i) hist_b.Record(value);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  merger.join();

  const HistogramSnapshot final_merge =
      MergeHistogram(hist_a.Snapshot(), hist_b.Snapshot());
  EXPECT_EQ(final_merge.count, 2u * kWritersPerHist * kPerWriter);
  uint64_t expected_sum = 0;
  for (int w = 0; w < kWritersPerHist; ++w) {
    expected_sum += (1ull << (w * 3)) * kPerWriter;
    expected_sum += (1ull << (w * 3 + 1)) * kPerWriter;
  }
  EXPECT_EQ(final_merge.sum, expected_sum);
}

TEST(ObsMetricsTest, CountersRaceExact) {
  MetricsRegistry registry;
  ObsCounter* counter = registry.GetCounter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 50000; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), 400000u);
}

TEST(ObsTraceTest, RingBoundAndCollect) {
  TraceLog log;
  log.Record(77, "stage_a", 10, 20);
  log.Record(77, "stage_b", 20, 30);
  log.Record(99, "stage_a", 15, 25);
  log.Record(0, "ignored", 1, 2);  // id 0 is the untraced sentinel
  const std::vector<TraceSpan> spans = log.Collect(77);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, "stage_a");
  EXPECT_EQ(spans[1].stage, "stage_b");
  EXPECT_EQ(log.Collect(0).size(), 0u);

  // Overflow wraps: the ring keeps the newest kCapacity spans.
  TraceLog ring;
  for (uint64_t i = 0; i < TraceLog::kCapacity + 50; ++i) {
    ring.Record(500, "flood", i, i + 1);
  }
  EXPECT_EQ(ring.size(), TraceLog::kCapacity);
  const std::vector<TraceSpan> kept = ring.Collect(500);
  EXPECT_EQ(kept.size(), TraceLog::kCapacity);
  // Oldest surviving span is the one just past the overwritten prefix.
  EXPECT_EQ(kept.front().start_ns, 50u);
  EXPECT_EQ(kept.back().start_ns, TraceLog::kCapacity + 49);
}

}  // namespace
}  // namespace ldpjs
