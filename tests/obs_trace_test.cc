// Trace propagation end-to-end. The acceptance bar: a traced batch sent
// over a real loopback LJSP v4 session leaves exactly one span per tier it
// crossed — client_send → server_queue → shard_absorb → view_publish on the
// serve tier, plus epoch_cut → regional_ship → central_merge on the
// federated path — with timestamps that never run backwards, and its
// origin-to-publish latency lands in the registry's ingest_to_queryable_ns
// histogram. Untraced peers (v3 sessions) must keep working with traced
// senders, frames unchanged.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ldp_join_sketch.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<uint8_t> EncodedBatch(const SketchParams& params, double epsilon,
                                  size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  LdpJoinSketchClient client(params, epsilon);
  client.PerturbBatch(values, reports, rng);
  BinaryWriter writer;
  EncodeReportBatch(reports, writer);
  return std::vector<uint8_t>(writer.buffer().begin(),
                              writer.buffer().end());
}

/// First span of `stage` for `trace_id`, asserting it exists.
TraceSpan SpanFor(const std::vector<TraceSpan>& spans,
                  const std::string& stage) {
  for (const TraceSpan& span : spans) {
    if (span.stage == stage) return span;
  }
  ADD_FAILURE() << "no span for stage " << stage;
  return TraceSpan{};
}

bool HasStage(const std::vector<TraceSpan>& spans, const std::string& stage) {
  return std::any_of(spans.begin(), spans.end(), [&](const TraceSpan& s) {
    return s.stage == stage;
  });
}

TEST(ObsTraceTest, ServeTierSpansMonotone) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 2;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();
  ASSERT_EQ(sender->negotiated_version(), kNetVersion);

  const uint64_t i2q_before = MetricsRegistry::Default()
                                  .HistogramByName("ingest_to_queryable_ns")
                                  .count;
  TraceContext trace;
  trace.trace_id = 0xFEEDBEEF12345678ull;
  trace.origin_ns = NowNanos();
  const std::vector<uint8_t> batch = EncodedBatch(params, epsilon, 500, 9);
  ASSERT_TRUE(sender->SendTracedBatch(batch, trace).ok());
  // The PING barrier absorbs the traced frame and republishes the view —
  // after it the full serve-tier span chain must exist.
  ASSERT_TRUE(sender->Ping().ok());

  const std::vector<TraceSpan> spans =
      TraceLog::Global().Collect(trace.trace_id);
  const TraceSpan client_send = SpanFor(spans, "client_send");
  const TraceSpan server_queue = SpanFor(spans, "server_queue");
  const TraceSpan shard_absorb = SpanFor(spans, "shard_absorb");
  const TraceSpan view_publish = SpanFor(spans, "view_publish");

  // Within each span time flows forward; across tiers each stage starts at
  // or after the client's origin and the publish ends last. (All stamps are
  // one host's CLOCK_REALTIME here, so strict ordering is assertable.)
  for (const TraceSpan& span : spans) {
    EXPECT_LE(span.start_ns, span.end_ns) << span.stage;
    EXPECT_GE(span.start_ns, trace.origin_ns) << span.stage;
  }
  EXPECT_EQ(client_send.start_ns, trace.origin_ns);
  EXPECT_LE(server_queue.start_ns, shard_absorb.start_ns);
  EXPECT_LE(shard_absorb.end_ns, view_publish.end_ns);

  // The origin-to-publish latency landed in the SLO histogram.
  const HistogramSnapshot i2q = MetricsRegistry::Default().HistogramByName(
      "ingest_to_queryable_ns");
  EXPECT_GE(i2q.count, i2q_before + 1);

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

TEST(ObsTraceTest, SampledSendsTraceEveryNth) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServer server(params, epsilon, FrameServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FrameSender::Options sender_options;
  sender_options.trace_every = 4;
  auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                     epsilon, sender_options);
  ASSERT_TRUE(sender.ok());
  const size_t log_before = TraceLog::Global().size();
  const std::vector<uint8_t> batch = EncodedBatch(params, epsilon, 100, 3);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sender->SendEncodedBatch(batch).ok());
  }
  ASSERT_TRUE(sender->Ping().ok());
  // Batches 0 and 4 were sampled: two client_send spans (plus their
  // server-side spans) joined the log.
  EXPECT_GE(TraceLog::Global().size(), log_before + 2);
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

TEST(ObsTraceTest, V3SessionDropsTraceButDelivers) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServer server(params, epsilon, FrameServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FrameSender::Options sender_options;
  sender_options.announce_version = 3;
  sender_options.trace_every = 1;  // would trace every batch on v4
  auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                     epsilon, sender_options);
  ASSERT_TRUE(sender.ok());
  ASSERT_EQ(sender->negotiated_version(), 3u);

  TraceContext trace;
  trace.trace_id = 0xD15EA5EDull;
  trace.origin_ns = NowNanos();
  const std::vector<uint8_t> batch = EncodedBatch(params, epsilon, 200, 4);
  ASSERT_TRUE(sender->SendEncodedBatch(batch).ok());
  ASSERT_TRUE(sender->SendTracedBatch(batch, trace).ok());
  ASSERT_TRUE(sender->Ping().ok());
  // Both batches were delivered plain; nothing traced on this session.
  EXPECT_EQ(server.metrics().reports_ingested, 400u);
  EXPECT_TRUE(TraceLog::Global().Collect(trace.trace_id).empty());
  // And the v4-only STATS frame is refused client-side.
  EXPECT_EQ(sender->Stats().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

// The federated leg: the trace claimed at the regional epoch cut rides the
// EPOCH_PUSH upstream with its client origin intact, so the central's
// publish closes the full client → regional → central chain.
TEST(ObsTraceTest, FederatedSpansCrossTiers) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;

  CentralNodeOptions central_options;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  RegionalNodeOptions region_options;
  region_options.region_id = 3;
  region_options.central_port = central.port();
  RegionalNode region(params, epsilon, region_options);
  ASSERT_TRUE(region.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", region.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  TraceContext trace;
  trace.trace_id = 0xABCD1234ull;
  trace.origin_ns = NowNanos();
  const std::vector<uint8_t> batch = EncodedBatch(params, epsilon, 300, 11);
  ASSERT_TRUE(sender->SendTracedBatch(batch, trace).ok());
  ASSERT_TRUE(sender->Ping().ok());  // absorbed before the cut below
  ASSERT_TRUE(region.CutAndShip().ok());

  const std::vector<TraceSpan> spans =
      TraceLog::Global().Collect(trace.trace_id);
  EXPECT_TRUE(HasStage(spans, "client_send"));
  EXPECT_TRUE(HasStage(spans, "shard_absorb"));
  EXPECT_TRUE(HasStage(spans, "epoch_cut"));
  EXPECT_TRUE(HasStage(spans, "regional_ship"));
  EXPECT_TRUE(HasStage(spans, "central_merge"));
  const TraceSpan merge = SpanFor(spans, "central_merge");
  EXPECT_GE(merge.start_ns, trace.origin_ns);
  EXPECT_LE(merge.start_ns, merge.end_ns);

  // The regional ship RTT series exists and saw this push.
  EXPECT_GE(MetricsRegistry::Default()
                .HistogramByName("region3_ship_rtt_ns")
                .count,
            1u);

  ASSERT_TRUE(sender->Finish().ok());
  ASSERT_TRUE(region.FlushAndStop().ok());
  central.Stop();
}

}  // namespace
}  // namespace ldpjs
