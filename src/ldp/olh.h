// Optimal Local Hashing (OLH) and its heuristic fast variant FLH (paper §II,
// [17]). The client hashes its value into a small range [0, g) with a hash
// function drawn from a public pool, then applies g-ary randomized response
// to the hashed value; the server counts support per (hash, output) pair and
// calibrates. FLH ("fast" OLH) limits the pool to `pool_size` functions,
// trading accuracy for evaluation speed — the support scan is still
// O(|D| * pool_size), which reproduces the efficiency gap the paper reports
// for frequency-oracle baselines on large domains.
#ifndef LDPJS_LDP_OLH_H_
#define LDPJS_LDP_OLH_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "data/column.h"

namespace ldpjs {

struct FlhParams {
  double epsilon = 1.0;
  /// Number of candidate hash functions (FLH heuristic). Larger = closer to
  /// true OLH but slower server-side evaluation.
  uint32_t pool_size = 1024;
  /// Hash range g; 0 means the OLH-optimal round(e^epsilon + 1).
  uint32_t g = 0;
  uint64_t seed = 1;
};

/// One perturbed user report: which pool hash the user picked and the
/// g-ary-randomized hashed value.
struct FlhReport {
  uint32_t hash_index;
  uint32_t value;  // in [0, g)
};

class FlhClient {
 public:
  explicit FlhClient(const FlhParams& params);

  FlhReport Perturb(uint64_t value, Xoshiro256& rng) const;

  uint32_t g() const { return g_; }
  uint32_t pool_size() const { return params_.pool_size; }
  /// Hash of `value` under pool function `index` (shared with the server).
  uint32_t HashValue(uint32_t index, uint64_t value) const;

 private:
  FlhParams params_;
  uint32_t g_;
  double keep_prob_;  // e^eps / (e^eps + g - 1)
  std::vector<TabulationHash> pool_;
};

class FlhServer {
 public:
  /// Must be constructed with the same params as the clients.
  explicit FlhServer(const FlhParams& params);

  void Absorb(const FlhReport& report);

  /// Calibrated frequency estimate of d:
  ///   f̂(d) = (support(d) - n/g) / (p - 1/g),
  /// support(d) = Σ_i counts[i][h_i(d)]. O(pool_size) per query.
  double EstimateFrequency(uint64_t d) const;

  /// Frequencies for the whole domain [0, domain). O(domain * pool_size).
  std::vector<double> EstimateAllFrequencies(uint64_t domain) const;

  uint64_t total_reports() const { return total_; }

 private:
  FlhClient hasher_;  // reuses the client's pool for support counting
  uint32_t g_;
  double keep_prob_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;  // [pool_size][g] row-major
};

/// End-to-end helper: perturb all of `column`, return calibrated frequencies.
std::vector<double> FlhEstimateFrequencies(const Column& column,
                                           const FlhParams& params,
                                           uint64_t run_seed);

}  // namespace ldpjs

#endif  // LDPJS_LDP_OLH_H_
