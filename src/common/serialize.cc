#include "common/serialize.h"

namespace ldpjs {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutBytes(std::span<const uint8_t> bytes) {
  PutU64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::PutDoubleVector(std::span<const double> values) {
  PutU64(values.size());
  for (double v : values) PutDouble(v);
}

Status BinaryReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("truncated buffer: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  LDPJS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  LDPJS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  LDPJS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  auto v = GetU64();
  if (!v.ok()) return v.status();
  return static_cast<int64_t>(*v);
}

Result<double> BinaryReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = *bits;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::vector<double>> BinaryReader::GetDoubleVector() {
  auto count = GetU64();
  if (!count.ok()) return count.status();
  if (*count > remaining() / 8) {
    return Status::Corruption("vector length exceeds buffer");
  }
  std::vector<double> out;
  out.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto v = GetDouble();
    if (!v.ok()) return v.status();
    out.push_back(*v);
  }
  return out;
}

}  // namespace ldpjs
