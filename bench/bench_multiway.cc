// Fig. 15: multi-way chain join RE vs eps on Zipf(1.5), 3-way and 4-way,
// comparing the non-private COMPASS baseline with the LDP multiway
// extension of §VI. Expected shape: LDPJoinSketch tracks the COMPASS error
// floor as eps grows; RE falls with eps then stabilizes (sampling noise of
// the sketch dominates).
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/multiway.h"
#include "core/simulation.h"
#include "data/join.h"
#include "data/zipf.h"
#include "sketch/compass.h"

using namespace ldpjs;
using namespace ldpjs::bench;

namespace {

PairColumn MakeZipfPairs(double alpha, uint64_t domain, uint64_t rows,
                         uint64_t seed) {
  PairColumn out;
  out.left_domain = domain;
  out.right_domain = domain;
  ZipfParams params;
  params.alpha = alpha;
  params.domain = domain;
  params.rows = rows;
  params.seed = Mix64(seed ^ 0x11);
  out.left = GenerateZipf(params).values();
  params.seed = Mix64(seed ^ 0x22);
  out.right = GenerateZipf(params).values();
  return out;
}

}  // namespace

int main() {
  std::printf("== Fig. 15: multiway chain join RE vs eps, Zipf(1.5), "
              "k=18, m=512 ==\n\n");
  const double alpha = 1.5;
  const uint64_t domain = 100'000;
  const uint64_t rows = std::min<uint64_t>(ScaledRows(40'000'000), 1'000'000);
  const int k = 18, m = 512;
  const uint64_t seed_a = 301, seed_b = 302, seed_c = 303;

  const JoinWorkload ends = MakeZipfWorkload(alpha, domain, rows, 97);
  const PairColumn mid1 = MakeZipfPairs(alpha, domain, rows, 111);
  const PairColumn mid2 = MakeZipfPairs(alpha, domain, rows, 112);

  const double truth3 = ExactChainJoinSize(ends.table_a, {mid1}, ends.table_b);
  const double truth4 =
      ExactChainJoinSize(ends.table_a, {mid1, mid2}, ends.table_b);
  std::printf("truth(3-way)=%s truth(4-way)=%s rows=%llu\n\n",
              Sci(truth3).c_str(), Sci(truth4).c_str(),
              static_cast<unsigned long long>(rows));

  // Non-private COMPASS reference (eps-independent).
  {
    FastAgmsSketch left(seed_a, k, m), right3(seed_b, k, m),
        right4(seed_c, k, m);
    left.UpdateColumn(ends.table_a);
    right3.UpdateColumn(ends.table_b);
    right4.UpdateColumn(ends.table_b);
    FastAgmsMatrixSketch c_mid1(seed_a, seed_b, k, m, m);
    c_mid1.UpdatePairColumn(mid1);
    const double est3 = CompassChainJoinEstimate(left, {&c_mid1}, right3);
    FastAgmsMatrixSketch c_mid2(seed_b, seed_c, k, m, m);
    c_mid2.UpdatePairColumn(mid2);
    const double est4 =
        CompassChainJoinEstimate(left, {&c_mid1, &c_mid2}, right4);
    PrintTableHeader({"eps", "method", "ways", "RE"});
    PrintTableRow({"-", "Compass", "3", Sci(RelativeError(truth3, est3))});
    PrintTableRow({"-", "Compass", "4", Sci(RelativeError(truth4, est4))});
  }

  for (double eps : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    SketchParams end_params;
    end_params.k = k;
    end_params.m = m;
    MultiwayParams mid_params;
    mid_params.k = k;
    mid_params.m_left = m;
    mid_params.m_right = m;

    // 3-way: T1(A) ⋈ T2(A,B) ⋈ T3(B).
    end_params.seed = seed_a;
    SimulationOptions sim;
    sim.run_seed = 211;
    const LdpJoinSketchServer left =
        BuildLdpJoinSketch(ends.table_a, end_params, eps, sim);
    end_params.seed = seed_b;
    sim.run_seed = 212;
    const LdpJoinSketchServer right3 =
        BuildLdpJoinSketch(ends.table_b, end_params, eps, sim);
    mid_params.left_seed = seed_a;
    mid_params.right_seed = seed_b;
    const LdpMultiwayServer ldp_mid1 =
        BuildLdpMultiwaySketch(mid1, mid_params, eps, 213);
    const double est3 = LdpChainJoinEstimate(left, {&ldp_mid1}, right3);
    PrintTableRow({Fixed(eps, 1), "LDPJoinSketch", "3",
                   Sci(RelativeError(truth3, est3))});

    // 4-way: T1(A) ⋈ T2(A,B) ⋈ T3(B,C) ⋈ T4(C).
    end_params.seed = seed_c;
    sim.run_seed = 214;
    const LdpJoinSketchServer right4 =
        BuildLdpJoinSketch(ends.table_b, end_params, eps, sim);
    mid_params.left_seed = seed_b;
    mid_params.right_seed = seed_c;
    const LdpMultiwayServer ldp_mid2 =
        BuildLdpMultiwaySketch(mid2, mid_params, eps, 215);
    const double est4 =
        LdpChainJoinEstimate(left, {&ldp_mid1, &ldp_mid2}, right4);
    PrintTableRow({Fixed(eps, 1), "LDPJoinSketch", "4",
                   Sci(RelativeError(truth4, est4))});
  }
  std::printf("\nshape check: RE falls with eps then plateaus near the "
              "COMPASS floor; 4-way noisier than 3-way.\n");
  return 0;
}
