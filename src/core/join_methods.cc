#include "core/join_methods.h"

#include <chrono>

#include "data/join.h"
#include "ldp/frequency_oracle.h"
#include "ldp/hcms.h"
#include "ldp/krr.h"
#include "sketch/fast_agms.h"

namespace ldpjs {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

JoinMethodResult RunFagms(const Column& a, const Column& b,
                          const JoinMethodConfig& config) {
  JoinMethodResult result;
  const auto offline_start = Clock::now();
  FastAgmsSketch sketch_a(config.sketch.seed, config.sketch.k, config.sketch.m);
  FastAgmsSketch sketch_b(config.sketch.seed, config.sketch.k, config.sketch.m);
  sketch_a.UpdateColumn(a);
  sketch_b.UpdateColumn(b);
  result.offline_seconds = SecondsSince(offline_start);

  const auto online_start = Clock::now();
  result.estimate = sketch_a.JoinEstimate(sketch_b);
  result.online_seconds = SecondsSince(online_start);
  // Non-private clients ship the raw value.
  result.comm_bits = CommCostModel::KrrBitsPerUser(a.domain()) *
                     static_cast<double>(a.size() + b.size());
  return result;
}

JoinMethodResult RunKrr(const Column& a, const Column& b,
                        const JoinMethodConfig& config) {
  JoinMethodResult result;
  const auto offline_start = Clock::now();
  KrrClient client(a.domain(), config.epsilon);
  KrrServer server_a(a.domain(), config.epsilon);
  KrrServer server_b(b.domain(), config.epsilon);
  Xoshiro256 rng_a(Mix64(config.run_seed ^ 0xA0ULL));
  for (uint64_t v : a.values()) server_a.Absorb(client.Perturb(v, rng_a));
  Xoshiro256 rng_b(Mix64(config.run_seed ^ 0xB0ULL));
  for (uint64_t v : b.values()) server_b.Absorb(client.Perturb(v, rng_b));
  result.offline_seconds = SecondsSince(offline_start);

  const auto online_start = Clock::now();
  const std::vector<double> freq_a = server_a.EstimateAllFrequencies();
  const std::vector<double> freq_b = server_b.EstimateAllFrequencies();
  result.estimate = JoinSizeFromFrequencies(freq_a, freq_b,
                                            config.clamp_negative_frequencies);
  result.online_seconds = SecondsSince(online_start);
  result.comm_bits = CommCostModel::KrrBitsPerUser(a.domain()) *
                     static_cast<double>(a.size() + b.size());
  return result;
}

JoinMethodResult RunHcms(const Column& a, const Column& b,
                         const JoinMethodConfig& config) {
  JoinMethodResult result;
  HcmsParams params;
  params.epsilon = config.epsilon;
  params.k = config.sketch.k;
  params.m = config.sketch.m;
  params.seed = config.sketch.seed;

  const auto offline_start = Clock::now();
  HcmsClient client(params);
  HcmsServer server_a(params);
  HcmsServer server_b(params);
  Xoshiro256 rng_a(Mix64(config.run_seed ^ 0xA1ULL));
  for (uint64_t v : a.values()) server_a.Absorb(client.Perturb(v, rng_a));
  Xoshiro256 rng_b(Mix64(config.run_seed ^ 0xB1ULL));
  for (uint64_t v : b.values()) server_b.Absorb(client.Perturb(v, rng_b));
  server_a.Finalize();
  server_b.Finalize();
  result.offline_seconds = SecondsSince(offline_start);

  const auto online_start = Clock::now();
  const std::vector<double> freq_a = server_a.EstimateAllFrequencies(a.domain());
  const std::vector<double> freq_b = server_b.EstimateAllFrequencies(b.domain());
  result.estimate = JoinSizeFromFrequencies(freq_a, freq_b,
                                            config.clamp_negative_frequencies);
  result.online_seconds = SecondsSince(online_start);
  result.comm_bits =
      CommCostModel::HadamardSketchBitsPerUser(params.k, params.m) *
      static_cast<double>(a.size() + b.size());
  return result;
}

JoinMethodResult RunFlh(const Column& a, const Column& b,
                        const JoinMethodConfig& config) {
  JoinMethodResult result;
  FlhParams params;
  params.epsilon = config.epsilon;
  params.pool_size = config.flh_pool_size;
  params.seed = config.sketch.seed;

  const auto offline_start = Clock::now();
  FlhClient client(params);
  FlhServer server_a(params);
  FlhServer server_b(params);
  Xoshiro256 rng_a(Mix64(config.run_seed ^ 0xA2ULL));
  for (uint64_t v : a.values()) server_a.Absorb(client.Perturb(v, rng_a));
  Xoshiro256 rng_b(Mix64(config.run_seed ^ 0xB2ULL));
  for (uint64_t v : b.values()) server_b.Absorb(client.Perturb(v, rng_b));
  result.offline_seconds = SecondsSince(offline_start);

  const auto online_start = Clock::now();
  const std::vector<double> freq_a = server_a.EstimateAllFrequencies(a.domain());
  const std::vector<double> freq_b = server_b.EstimateAllFrequencies(b.domain());
  result.estimate = JoinSizeFromFrequencies(freq_a, freq_b,
                                            config.clamp_negative_frequencies);
  result.online_seconds = SecondsSince(online_start);
  result.comm_bits =
      CommCostModel::FlhBitsPerUser(params.pool_size, client.g()) *
      static_cast<double>(a.size() + b.size());
  return result;
}

JoinMethodResult RunLdpJoinSketch(const Column& a, const Column& b,
                                  const JoinMethodConfig& config) {
  JoinMethodResult result;
  SimulationOptions sim;
  sim.num_threads = config.num_threads;
  sim.num_shards = config.num_shards;
  sim.net_loopback = config.net_loopback;
  sim.num_regions = config.num_regions;
  sim.epoch_reports = config.epoch_reports;
  sim.window_epochs = config.window_epochs;

  const auto offline_start = Clock::now();
  sim.run_seed = Mix64(config.run_seed ^ 0xA3ULL);
  const LdpJoinSketchServer sketch_a =
      BuildLdpJoinSketch(a, config.sketch, config.epsilon, sim);
  sim.run_seed = Mix64(config.run_seed ^ 0xB3ULL);
  const LdpJoinSketchServer sketch_b =
      BuildLdpJoinSketch(b, config.sketch, config.epsilon, sim);
  result.offline_seconds = SecondsSince(offline_start);

  const auto online_start = Clock::now();
  result.estimate = sketch_a.JoinEstimate(sketch_b);
  result.online_seconds = SecondsSince(online_start);
  result.comm_bits = CommCostModel::HadamardSketchBitsPerUser(
                         config.sketch.k, config.sketch.m) *
                     static_cast<double>(a.size() + b.size());
  return result;
}

JoinMethodResult RunLdpJoinSketchPlus(const Column& a, const Column& b,
                                      const JoinMethodConfig& config) {
  LdpJoinSketchPlusParams params;
  params.sketch = config.sketch;
  params.epsilon = config.epsilon;
  params.sample_rate = config.plus_sample_rate;
  params.threshold = config.plus_threshold;
  params.join_est = config.plus_join_est;
  params.simulation.run_seed = config.run_seed;
  params.simulation.num_threads = config.num_threads;
  params.simulation.num_shards = config.num_shards;
  params.simulation.net_loopback = config.net_loopback;
  params.simulation.num_regions = config.num_regions;
  params.simulation.epoch_reports = config.epoch_reports;
  params.simulation.window_epochs = config.window_epochs;

  const LdpJoinSketchPlusResult plus = EstimateJoinSizePlus(a, b, params);
  JoinMethodResult result;
  result.estimate = plus.estimate;
  result.offline_seconds = plus.offline_seconds;
  result.online_seconds = plus.online_seconds;
  // Every user still sends exactly one (y, j, l) report; the FI broadcast is
  // server→client and not counted in the paper's client→server figure.
  result.comm_bits = CommCostModel::HadamardSketchBitsPerUser(
                         config.sketch.k, config.sketch.m) *
                     static_cast<double>(a.size() + b.size());
  return result;
}

}  // namespace

std::string_view JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kFagms: return "FAGMS";
    case JoinMethod::kKrr: return "k-RR";
    case JoinMethod::kAppleHcms: return "Apple-HCMS";
    case JoinMethod::kFlh: return "FLH";
    case JoinMethod::kLdpJoinSketch: return "LDPJoinSketch";
    case JoinMethod::kLdpJoinSketchPlus: return "LDPJoinSketch+";
  }
  return "unknown";
}

JoinMethodResult EstimateJoin(JoinMethod method, const Column& table_a,
                              const Column& table_b,
                              const JoinMethodConfig& config) {
  LDPJS_CHECK(table_a.domain() == table_b.domain());
  switch (method) {
    case JoinMethod::kFagms: return RunFagms(table_a, table_b, config);
    case JoinMethod::kKrr: return RunKrr(table_a, table_b, config);
    case JoinMethod::kAppleHcms: return RunHcms(table_a, table_b, config);
    case JoinMethod::kFlh: return RunFlh(table_a, table_b, config);
    case JoinMethod::kLdpJoinSketch:
      return RunLdpJoinSketch(table_a, table_b, config);
    case JoinMethod::kLdpJoinSketchPlus:
      return RunLdpJoinSketchPlus(table_a, table_b, config);
  }
  LDPJS_CHECK(false);
  return JoinMethodResult{};
}

}  // namespace ldpjs
