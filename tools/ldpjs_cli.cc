// Command-line experiment driver: run any join-size method on any of the
// simulated Table-II workloads with custom parameters. Prints a one-line
// result plus the Theorem-5 confidence bound for the sketch methods.
//
//   ldpjs_cli --method ldpjoinsketch+ --dataset movielens --rows 1000000 \
//             --epsilon 2 --k 18 --m 1024 --trials 3
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "core/join_methods.h"
#include "data/datasets.h"
#include "data/join.h"
#include "tools/flags.h"

namespace {

using namespace ldpjs;

JoinMethod ParseMethod(const std::string& name) {
  if (name == "fagms") return JoinMethod::kFagms;
  if (name == "krr") return JoinMethod::kKrr;
  if (name == "hcms") return JoinMethod::kAppleHcms;
  if (name == "flh") return JoinMethod::kFlh;
  if (name == "ldpjoinsketch") return JoinMethod::kLdpJoinSketch;
  if (name == "ldpjoinsketch+") return JoinMethod::kLdpJoinSketchPlus;
  std::fprintf(stderr,
               "unknown method '%s' (fagms|krr|hcms|flh|ldpjoinsketch|"
               "ldpjoinsketch+)\n",
               name.c_str());
  std::exit(2);
}

DatasetId ParseDataset(const std::string& name) {
  if (name == "zipf") return DatasetId::kZipf;
  if (name == "gaussian") return DatasetId::kGaussian;
  if (name == "movielens") return DatasetId::kMovieLens;
  if (name == "tpcds") return DatasetId::kTpcds;
  if (name == "twitter") return DatasetId::kTwitter;
  if (name == "facebook") return DatasetId::kFacebook;
  std::fprintf(stderr,
               "unknown dataset '%s' "
               "(zipf|gaussian|movielens|tpcds|twitter|facebook)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  flags.Define("method", "ldpjoinsketch", "estimator to run");
  flags.Define("dataset", "zipf", "workload (Table II)");
  flags.Define("alpha", "1.1", "zipf skew (zipf dataset only)");
  flags.Define("rows", "1000000", "rows per table");
  flags.Define("epsilon", "4.0", "LDP budget");
  flags.Define("k", "18", "sketch rows");
  flags.Define("m", "1024", "sketch columns (power of two)");
  flags.Define("sample-rate", "0.1", "LDPJoinSketch+ phase-1 rate r");
  flags.Define("threshold", "0.001", "LDPJoinSketch+ FI threshold theta");
  flags.Define("flh-pool", "256", "FLH hash pool size");
  flags.Define("trials", "3", "perturbation repetitions");
  flags.Define("seed", "1", "workload + run seed");
  flags.Define("threads", "0", "simulation threads (0 = hardware)");
  flags.Define("shards", "0",
               "aggregation-service shards (0 = in-process ingest; N routes "
               "reports through the sharded wire path — same estimates)");
  flags.Parse(argc, argv);

  const JoinMethod method = ParseMethod(flags.GetString("method"));
  const DatasetId dataset = ParseDataset(flags.GetString("dataset"));
  const uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  const JoinWorkload workload =
      (dataset == DatasetId::kZipf)
          ? MakeZipfWorkload(flags.GetDouble("alpha"),
                             GetDatasetSpec(dataset).domain, rows, seed)
          : MakeWorkload(dataset, rows, seed);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  JoinMethodConfig config;
  config.epsilon = flags.GetDouble("epsilon");
  config.sketch.k = static_cast<int>(flags.GetInt("k"));
  config.sketch.m = static_cast<int>(flags.GetInt("m"));
  config.sketch.seed = Mix64(seed ^ 0x5EEDULL);
  config.plus_sample_rate = flags.GetDouble("sample-rate");
  config.plus_threshold = flags.GetDouble("threshold");
  config.flh_pool_size = static_cast<uint32_t>(flags.GetInt("flh-pool"));
  config.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  config.num_shards = static_cast<size_t>(flags.GetInt("shards"));

  const int trials = static_cast<int>(flags.GetInt("trials"));
  RunningStats estimates, res, offline, online;
  double comm_bits = 0;
  for (int t = 0; t < trials; ++t) {
    config.run_seed = Mix64(seed ^ (0xF1A6ULL + static_cast<uint64_t>(t)));
    const JoinMethodResult result =
        EstimateJoin(method, workload.table_a, workload.table_b, config);
    estimates.Add(result.estimate);
    res.Add(RelativeError(truth, result.estimate));
    offline.Add(result.offline_seconds);
    online.Add(result.online_seconds);
    comm_bits = result.comm_bits;
  }

  std::printf("method         : %s\n",
              std::string(JoinMethodName(method)).c_str());
  std::printf("dataset        : %s (%llu rows/table, domain %llu)\n",
              workload.name.c_str(), static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(workload.table_a.domain()));
  std::printf("epsilon        : %.3f   sketch (k=%d, m=%d)\n", config.epsilon,
              config.sketch.k, config.sketch.m);
  std::printf("true join size : %.6e\n", truth);
  std::printf("estimate       : %.6e (mean of %d trials, stddev %.3e)\n",
              estimates.mean(), trials, estimates.stddev());
  std::printf("relative error : %.4f (mean)\n", res.mean());
  std::printf("offline/online : %.3f s / %.3f s\n", offline.mean(),
              online.mean());
  std::printf("uplink traffic : %.3e bits total\n", comm_bits);
  return 0;
}
