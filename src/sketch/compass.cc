#include "sketch/compass.h"

#include "common/stats.h"
#include "common/status.h"

namespace ldpjs {

FastAgmsMatrixSketch::FastAgmsMatrixSketch(uint64_t left_seed,
                                           uint64_t right_seed, int k,
                                           int m_left, int m_right)
    : k_(k), m_left_(m_left), m_right_(m_right) {
  LDPJS_CHECK(k >= 1 && m_left >= 1 && m_right >= 1);
  left_rows_ = MakeRowHashes(left_seed, k, static_cast<uint64_t>(m_left));
  right_rows_ = MakeRowHashes(right_seed, k, static_cast<uint64_t>(m_right));
  cells_.assign(static_cast<size_t>(k) * static_cast<size_t>(m_left) *
                    static_cast<size_t>(m_right),
                0.0);
}

void FastAgmsMatrixSketch::Update(uint64_t a, uint64_t b, double weight) {
  for (int j = 0; j < k_; ++j) {
    const auto& left = left_rows_[static_cast<size_t>(j)];
    const auto& right = right_rows_[static_cast<size_t>(j)];
    const size_t row = left.bucket(a);
    const size_t col = right.bucket(b);
    const size_t idx =
        (static_cast<size_t>(j) * static_cast<size_t>(m_left_) + row) *
            static_cast<size_t>(m_right_) +
        col;
    cells_[idx] += weight * left.sign(a) * right.sign(b);
  }
}

void FastAgmsMatrixSketch::UpdatePairColumn(const PairColumn& pairs) {
  LDPJS_CHECK(pairs.left.size() == pairs.right.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    Update(pairs.left[i], pairs.right[i]);
  }
}

double CompassCyclicJoinEstimate(
    const std::vector<const FastAgmsMatrixSketch*>& cycle) {
  LDPJS_CHECK(cycle.size() >= 2);
  const int k = cycle[0]->k();
  for (size_t i = 0; i < cycle.size(); ++i) {
    const auto* current = cycle[i];
    const auto* next = cycle[(i + 1) % cycle.size()];
    LDPJS_CHECK(current->k() == k);
    LDPJS_CHECK(current->m_right() == next->m_left());
  }
  std::vector<double> estimators(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    const size_t rows = static_cast<size_t>(cycle[0]->m_left());
    size_t cols = static_cast<size_t>(cycle[0]->m_right());
    std::vector<double> acc(cycle[0]->replica_data(j),
                            cycle[0]->replica_data(j) + rows * cols);
    for (size_t t = 1; t < cycle.size(); ++t) {
      const size_t next_cols = static_cast<size_t>(cycle[t]->m_right());
      std::vector<double> product(rows * next_cols, 0.0);
      const double* b = cycle[t]->replica_data(j);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
          const double v = acc[r * cols + c];
          if (v == 0.0) continue;
          for (size_t x = 0; x < next_cols; ++x) {
            product[r * next_cols + x] += v * b[c * next_cols + x];
          }
        }
      }
      acc = std::move(product);
      cols = next_cols;
    }
    LDPJS_CHECK(rows == cols);
    double trace = 0.0;
    for (size_t i = 0; i < rows; ++i) trace += acc[i * cols + i];
    estimators[static_cast<size_t>(j)] = trace;
  }
  return Median(estimators);
}

double CompassChainJoinEstimate(
    const FastAgmsSketch& end_left,
    const std::vector<const FastAgmsMatrixSketch*>& middles,
    const FastAgmsSketch& end_right) {
  const int k = end_left.k();
  LDPJS_CHECK(end_right.k() == k);
  for (const auto* mid : middles) LDPJS_CHECK(mid->k() == k);

  std::vector<double> estimators(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    // Start with the left end-table row as a vector, push through each
    // middle matrix with a vector-matrix product.
    std::vector<double> vec(static_cast<size_t>(end_left.m()));
    for (int x = 0; x < end_left.m(); ++x) {
      vec[static_cast<size_t>(x)] = end_left.cell(j, x);
    }
    for (const auto* mid : middles) {
      LDPJS_CHECK(static_cast<size_t>(mid->m_left()) == vec.size());
      std::vector<double> next(static_cast<size_t>(mid->m_right()), 0.0);
      const double* data = mid->replica_data(j);
      for (int r = 0; r < mid->m_left(); ++r) {
        const double vr = vec[static_cast<size_t>(r)];
        if (vr == 0.0) continue;
        const double* matrix_row = data + static_cast<size_t>(r) *
                                              static_cast<size_t>(mid->m_right());
        for (int c = 0; c < mid->m_right(); ++c) {
          next[static_cast<size_t>(c)] += vr * matrix_row[c];
        }
      }
      vec = std::move(next);
    }
    LDPJS_CHECK(static_cast<size_t>(end_right.m()) == vec.size());
    double acc = 0.0;
    for (int x = 0; x < end_right.m(); ++x) {
      acc += vec[static_cast<size_t>(x)] * end_right.cell(j, x);
    }
    estimators[static_cast<size_t>(j)] = acc;
  }
  return Median(estimators);
}

}  // namespace ldpjs
