// Fig. 13: running time split into offline (collection + sketch/histogram
// construction) and online (join size estimation) on Zipf(1.1), Gaussian
// and Twitter. Expected shape: online time of sketch methods is near zero
// (a k x m inner product); frequency-oracle baselines pay a domain-sized
// online accumulation; our methods spend a bit more offline than k-RR but
// answer instantly.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 13: efficiency (offline / online seconds), eps=4, "
              "k=18, m=1024 ==\n\n");
  const JoinMethod methods[] = {
      JoinMethod::kFagms,         JoinMethod::kKrr,
      JoinMethod::kAppleHcms,     JoinMethod::kFlh,
      JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus};
  struct Workload {
    DatasetId id;
    double zipf_alpha;
  };
  const Workload workloads[] = {{DatasetId::kZipf, 1.1},
                                {DatasetId::kGaussian, 0},
                                {DatasetId::kTwitter, 0}};

  PrintTableHeader({"dataset", "method", "offline_s", "online_s", "RE"});
  for (const Workload& workload : workloads) {
    const DatasetSpec spec = GetDatasetSpec(workload.id);
    const uint64_t rows = std::min<uint64_t>(ScaledRows(spec.paper_rows),
                                             2'000'000);
    const JoinWorkload w =
        (workload.zipf_alpha > 0)
            ? MakeZipfWorkload(workload.zipf_alpha, spec.domain, rows, 67)
            : MakeWorkload(workload.id, rows, 67);
    const double truth = ExactJoinSize(w.table_a, w.table_b);
    for (JoinMethod method : methods) {
      JoinMethodConfig config;
      config.epsilon = 4.0;
      config.sketch.k = 18;
      config.sketch.m = 1024;
      config.sketch.seed = 71;
      config.flh_pool_size = 128;
      config.run_seed = 19;
      const ErrorStats stats =
          MeasureJoinError(method, w.table_a, w.table_b, truth, config);
      PrintTableRow({w.name, std::string(JoinMethodName(method)),
                     Fixed(stats.mean_offline_s, 3),
                     Fixed(stats.mean_online_s, 3), Sci(stats.mean_re)});
    }
  }
  std::printf("\nshape check: sketch-based online cost is negligible; "
              "k-RR/FLH pay a domain-proportional online accumulation.\n");
  return 0;
}
