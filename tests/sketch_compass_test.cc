#include "sketch/compass.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

// Builds a random middle table with keys correlated to a zipf distribution
// so chain joins are non-trivial.
PairColumn MakePairColumn(uint64_t domain_left, uint64_t domain_right,
                          size_t rows, uint64_t seed) {
  PairColumn out;
  out.left_domain = domain_left;
  out.right_domain = domain_right;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    // Skew towards small ids on both sides.
    out.left.push_back(
        std::min<uint64_t>(rng.NextBounded(domain_left),
                           rng.NextBounded(domain_left)));
    out.right.push_back(
        std::min<uint64_t>(rng.NextBounded(domain_right),
                           rng.NextBounded(domain_right)));
  }
  return out;
}

TEST(MatrixSketchTest, SingleTupleCellStructure) {
  FastAgmsMatrixSketch sketch(1, 2, 3, 32, 64);
  sketch.Update(5, 9);
  // Each replica has exactly one non-zero cell of magnitude 1.
  for (int r = 0; r < 3; ++r) {
    int nonzero = 0;
    for (int row = 0; row < 32; ++row) {
      for (int col = 0; col < 64; ++col) {
        const double c = sketch.cell(r, row, col);
        if (c != 0.0) {
          ++nonzero;
          EXPECT_EQ(std::abs(c), 1.0);
        }
      }
    }
    EXPECT_EQ(nonzero, 1);
  }
}

TEST(MatrixSketchTest, WeightedUpdateScales) {
  FastAgmsMatrixSketch sketch(1, 2, 1, 16, 16);
  sketch.Update(3, 4, 2.5);
  double max_abs = 0;
  for (int row = 0; row < 16; ++row) {
    for (int col = 0; col < 16; ++col) {
      max_abs = std::max(max_abs, std::abs(sketch.cell(0, row, col)));
    }
  }
  EXPECT_EQ(max_abs, 2.5);
}

TEST(CompassTest, ThreeWayChainTracksExact) {
  const uint64_t domain = 64;
  const JoinWorkload ends = MakeZipfWorkload(1.2, domain, 20000, 3);
  const PairColumn middle = MakePairColumn(domain, domain, 20000, 17);
  const double truth = ExactChainJoinSize(ends.table_a, {middle}, ends.table_b);
  ASSERT_GT(truth, 0.0);

  const uint64_t seed_a = 100, seed_b = 200;
  const int k = 9, m = 512;
  FastAgmsSketch left(seed_a, k, m), right(seed_b, k, m);
  left.UpdateColumn(ends.table_a);
  right.UpdateColumn(ends.table_b);
  FastAgmsMatrixSketch mid(seed_a, seed_b, k, m, m);
  mid.UpdatePairColumn(middle);

  const double est = CompassChainJoinEstimate(left, {&mid}, right);
  EXPECT_NEAR(est / truth, 1.0, 0.25);
}

TEST(CompassTest, FourWayChainTracksExact) {
  const uint64_t domain = 32;
  const JoinWorkload ends = MakeZipfWorkload(1.3, domain, 10000, 5);
  const PairColumn mid1 = MakePairColumn(domain, domain, 10000, 19);
  const PairColumn mid2 = MakePairColumn(domain, domain, 10000, 23);
  const double truth =
      ExactChainJoinSize(ends.table_a, {mid1, mid2}, ends.table_b);
  ASSERT_GT(truth, 0.0);

  const uint64_t seed_a = 1, seed_b = 2, seed_c = 3;
  const int k = 11, m = 256;
  FastAgmsSketch left(seed_a, k, m), right(seed_c, k, m);
  left.UpdateColumn(ends.table_a);
  right.UpdateColumn(ends.table_b);
  FastAgmsMatrixSketch sketch1(seed_a, seed_b, k, m, m);
  sketch1.UpdatePairColumn(mid1);
  FastAgmsMatrixSketch sketch2(seed_b, seed_c, k, m, m);
  sketch2.UpdatePairColumn(mid2);

  const double est = CompassChainJoinEstimate(left, {&sketch1, &sketch2}, right);
  EXPECT_NEAR(est / truth, 1.0, 0.35);
}

TEST(CompassTest, TwoWayDegenerateMatchesFastAgms) {
  // With no middle tables the chain estimate must equal the plain
  // Fast-AGMS join estimate.
  const JoinWorkload w = MakeZipfWorkload(1.4, 500, 10000, 29);
  FastAgmsSketch sa(7, 5, 256), sb(7, 5, 256);
  sa.UpdateColumn(w.table_a);
  sb.UpdateColumn(w.table_b);
  EXPECT_EQ(CompassChainJoinEstimate(sa, {}, sb), sa.JoinEstimate(sb));
}

TEST(CompassDeathTest, MismatchedKAborts) {
  FastAgmsSketch left(1, 3, 64), right(2, 5, 64);
  EXPECT_DEATH(CompassChainJoinEstimate(left, {}, right),
               "LDPJS_CHECK failed");
}

TEST(CompassDeathTest, DimensionMismatchAborts) {
  FastAgmsSketch left(1, 3, 64), right(2, 3, 64);
  FastAgmsMatrixSketch mid(1, 2, 3, 128, 64);  // left dim != 64
  EXPECT_DEATH(CompassChainJoinEstimate(left, {&mid}, right),
               "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
