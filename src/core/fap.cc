#include "core/fap.h"

#include "common/hadamard.h"

namespace ldpjs {

FapClient::FapClient(const SketchParams& params, double epsilon, FapMode mode,
                     std::unordered_set<uint64_t> frequent_items)
    : inner_(params, epsilon),
      mode_(mode),
      frequent_items_(std::move(frequent_items)) {}

bool FapClient::IsTarget(uint64_t value) const {
  const bool frequent = frequent_items_.contains(value);
  return mode_ == FapMode::kHigh ? frequent : !frequent;
}

LdpReport FapClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  if (IsTarget(value)) {
    // Algorithm 4 line 10: targets go through the LDPJoinSketch client.
    return inner_.Perturb(value, rng);
  }
  // Non-target: encode v[r] = 1 at a uniform r, independent of `value`
  // (Algorithm 4 lines 2-8). After the Hadamard transform, w[l] = H_m[r, l].
  const SketchParams& params = inner_.params();
  const LdpJoinSketchClient::ReportDraws d = inner_.SampleReportDraws(rng);
  const uint64_t r = rng.NextBounded(static_cast<uint64_t>(params.m));
  int w = HadamardEntry(r, d.l);
  if (d.flip) w = -w;
  return LdpReport{static_cast<int8_t>(w), d.j, d.l};
}

void FapClient::PerturbBatch(std::span<const uint64_t> values,
                             std::span<LdpReport> out, Xoshiro256& rng) const {
  LDPJS_CHECK(values.size() == out.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = Perturb(values[i], rng);
  }
}

}  // namespace ldpjs
