// Cross-module integration tests: the join-method facade end to end, the
// cross-method accuracy ordering the paper reports, and serialization across
// a simulated client/server boundary.
#include <cmath>

#include <gtest/gtest.h>

#include "core/join_methods.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

JoinMethodConfig TestConfig() {
  JoinMethodConfig config;
  config.epsilon = 4.0;
  config.sketch.k = 18;
  config.sketch.m = 1024;
  config.sketch.seed = 61;
  config.flh_pool_size = 64;
  config.run_seed = 67;
  return config;
}

TEST(JoinMethodsTest, NamesAreStable) {
  EXPECT_EQ(JoinMethodName(JoinMethod::kFagms), "FAGMS");
  EXPECT_EQ(JoinMethodName(JoinMethod::kKrr), "k-RR");
  EXPECT_EQ(JoinMethodName(JoinMethod::kAppleHcms), "Apple-HCMS");
  EXPECT_EQ(JoinMethodName(JoinMethod::kFlh), "FLH");
  EXPECT_EQ(JoinMethodName(JoinMethod::kLdpJoinSketch), "LDPJoinSketch");
  EXPECT_EQ(JoinMethodName(JoinMethod::kLdpJoinSketchPlus), "LDPJoinSketch+");
}

TEST(JoinMethodsTest, EveryMethodProducesFiniteEstimate) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 500, 60000, 3);
  const JoinMethodConfig config = TestConfig();
  for (JoinMethod method :
       {JoinMethod::kFagms, JoinMethod::kKrr, JoinMethod::kAppleHcms,
        JoinMethod::kFlh, JoinMethod::kLdpJoinSketch,
        JoinMethod::kLdpJoinSketchPlus}) {
    const JoinMethodResult result =
        EstimateJoin(method, w.table_a, w.table_b, config);
    EXPECT_TRUE(std::isfinite(result.estimate))
        << JoinMethodName(method);
    EXPECT_GE(result.offline_seconds, 0.0);
    EXPECT_GE(result.online_seconds, 0.0);
    EXPECT_GT(result.comm_bits, 0.0);
  }
}

TEST(JoinMethodsTest, NonPrivateFagmsIsMostAccurate) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 2000, 150000, 5);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  const JoinMethodConfig config = TestConfig();
  const double re_fagms = std::abs(
      EstimateJoin(JoinMethod::kFagms, w.table_a, w.table_b, config).estimate -
      truth) / truth;
  const double re_ldp = std::abs(
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .estimate - truth) / truth;
  EXPECT_LT(re_fagms, 0.1);
  EXPECT_LT(re_ldp, 0.6);
}

TEST(JoinMethodsTest, SketchBeatsKrrOnLargeDomain) {
  // The paper's headline claim (Fig. 5): on a large domain, frequency-
  // oracle accumulation (k-RR) collapses while LDPJoinSketch stays close.
  const JoinWorkload w = MakeZipfWorkload(1.3, 50000, 150000, 7);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  const JoinMethodConfig config = TestConfig();
  const double re_krr = std::abs(
      EstimateJoin(JoinMethod::kKrr, w.table_a, w.table_b, config).estimate -
      truth) / truth;
  const double re_ldp = std::abs(
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .estimate - truth) / truth;
  EXPECT_LT(re_ldp, re_krr);
}

TEST(JoinMethodsTest, CommBitsOrderingMatchesFigSeven) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 1 << 20, 10000, 9);
  const JoinMethodConfig config = TestConfig();
  const double bits_krr =
      EstimateJoin(JoinMethod::kKrr, w.table_a, w.table_b, config).comm_bits;
  const double bits_sketch =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .comm_bits;
  const double bits_hcms =
      EstimateJoin(JoinMethod::kAppleHcms, w.table_a, w.table_b, config)
          .comm_bits;
  EXPECT_LT(bits_sketch, bits_krr);
  EXPECT_EQ(bits_sketch, bits_hcms);  // identical report format
}

TEST(JoinMethodsTest, DeterministicForFixedSeed) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 300, 30000, 11);
  JoinMethodConfig config = TestConfig();
  config.num_threads = 2;
  const double e1 =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .estimate;
  const double e2 =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .estimate;
  EXPECT_EQ(e1, e2);
}

TEST(JoinMethodsTest, SketchOnlineTimeIsNegligible) {
  // Fig. 13's observation: sketch-based online estimation is near-free
  // compared with accumulating a multi-thousand-value domain.
  const JoinWorkload w = MakeZipfWorkload(1.3, 100000, 50000, 13);
  const JoinMethodConfig config = TestConfig();
  const JoinMethodResult sketch =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config);
  const JoinMethodResult krr =
      EstimateJoin(JoinMethod::kKrr, w.table_a, w.table_b, config);
  EXPECT_LT(sketch.online_seconds, krr.online_seconds + 0.05);
}

TEST(JoinMethodsTest, PlusTracksTruthOnSkewedWorkload) {
  const JoinWorkload w = MakeZipfWorkload(1.6, 2000, 250000, 17);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  JoinMethodConfig config = TestConfig();
  config.plus_sample_rate = 0.2;
  config.plus_threshold = 0.005;
  const double estimate =
      EstimateJoin(JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, config)
          .estimate;
  EXPECT_NEAR(estimate / truth, 1.0, 0.35);
}

TEST(JoinMethodsDeathTest, MismatchedDomainsAbort) {
  Column a({0}, 2), b({0}, 3);
  EXPECT_DEATH(EstimateJoin(JoinMethod::kFagms, a, b, TestConfig()),
               "LDPJS_CHECK failed");
}

// Property sweep across datasets: LDPJoinSketch error stays within the
// analytic noise envelope on every simulated Table-II workload. Low-skew
// workloads at test scale are noise-dominated (the paper's "LDP needs a
// large amount of data" caveat), so the band is expressed in noise units
// rather than relative error: each finalized cell carries sampling noise of
// std c_eps*sqrt(n*k), and a row inner product accumulates
//   sqrt(m)*sA*sB + sqrt(F2A)*sB + sqrt(F2B)*sA
// of it. A systematic implementation bias would blow through this bound.
class DatasetAccuracyTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetAccuracyTest, LdpJoinSketchWithinNoiseEnvelope) {
  const JoinWorkload w = MakeWorkload(GetParam(), 120000, 19);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  if (truth <= 0.0) GTEST_SKIP() << "degenerate workload";
  const JoinMethodConfig config = TestConfig();
  const double estimate =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .estimate;
  const double k = config.sketch.k, m = config.sketch.m;
  const double s_a = DebiasFactor(config.epsilon) *
                     std::sqrt(static_cast<double>(w.table_a.size()) * k);
  const double s_b = DebiasFactor(config.epsilon) *
                     std::sqrt(static_cast<double>(w.table_b.size()) * k);
  const double f2_a = FrequencyMomentF2(w.table_a);
  const double f2_b = FrequencyMomentF2(w.table_b);
  const double noise_std =
      std::sqrt(m) * s_a * s_b + std::sqrt(f2_a) * s_b + std::sqrt(f2_b) * s_a;
  EXPECT_LT(std::abs(estimate - truth), 6.0 * noise_std + 0.3 * truth)
      << w.name << " truth=" << truth << " est=" << estimate;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetAccuracyTest,
                         ::testing::Values(DatasetId::kGaussian,
                                           DatasetId::kMovieLens,
                                           DatasetId::kTpcds,
                                           DatasetId::kTwitter,
                                           DatasetId::kFacebook));

}  // namespace
}  // namespace ldpjs
