// Fig. 10: LDPJoinSketch+ AE vs phase-1 sampling rate r on Zipf(1.1);
// eps = 4, (k, m) = (18, 1024). Expected shape: accuracy improves (AE
// falls) as r grows — better phase-1 frequency estimates make the FI set
// and the mass subtraction more precise.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 10: LDPJoinSketch+ AE vs sampling rate r, "
              "Zipf(1.1), eps=4 ==\n\n");
  const uint64_t rows = std::min<uint64_t>(ScaledRows(40'000'000), 2'000'000);
  const JoinWorkload w = MakeZipfWorkload(1.1, 3'000'000, rows, 41);
  const double truth = ExactJoinSize(w.table_a, w.table_b);

  PrintTableHeader({"r", "AE", "RE", "estimate"});
  for (double r : {0.1, 0.15, 0.2, 0.25, 0.3}) {
    JoinMethodConfig config;
    config.epsilon = 4.0;
    config.sketch.k = 18;
    config.sketch.m = 1024;
    config.sketch.seed = 43;
    config.plus_sample_rate = r;
    config.plus_threshold = 0.001;
    config.run_seed = 11;
    const ErrorStats stats = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, config);
    PrintTableRow({Fixed(r, 2), Sci(stats.mean_ae), Sci(stats.mean_re),
                   Sci(stats.mean_estimate)});
  }
  std::printf("\nshape check: AE trends down as r increases (Fig. 10).\n");
  return 0;
}
