// Lightweight Status error type (RocksDB idiom): fallible operations return a
// Status (or Result<T>, see result.h) instead of throwing. Programmer errors
// (contract violations) use LDPJS_CHECK and abort.
#ifndef LDPJS_COMMON_STATUS_H_
#define LDPJS_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

namespace ldpjs {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,       ///< transient/retriable: busy peer, backpressure shed
  kDeadlineExceeded,  ///< a configured timeout elapsed (idle peer, hung recv)
};

/// Returns a short human-readable name for a StatusCode.
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

/// Result of a fallible operation: a code plus an optional message.
/// A default-constructed Status is OK; OK statuses carry no message.
///
/// [[nodiscard]] on the type: any call returning a Status by value errors
/// (under -Werror) when the result is dropped on the floor. The explicit
/// opt-out for a genuinely-fire-and-forget call is `(void)TheCall();` —
/// which is greppable, unlike silence.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s(StatusCodeName(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "LDPJS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace internal

}  // namespace ldpjs

/// Contract check for programmer errors; aborts on violation. Enabled in all
/// build types (cheap relative to the workloads in this library).
#define LDPJS_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::ldpjs::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                            \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define LDPJS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::ldpjs::Status _ldpjs_status = (expr);  \
    if (!_ldpjs_status.ok()) return _ldpjs_status; \
  } while (0)

#endif  // LDPJS_COMMON_STATUS_H_
