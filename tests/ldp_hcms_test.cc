#include "ldp/hcms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/gaussian.h"

namespace ldpjs {
namespace {

HcmsParams SmallParams(double epsilon = 4.0) {
  HcmsParams params;
  params.epsilon = epsilon;
  params.k = 16;
  params.m = 256;
  params.seed = 3;
  return params;
}

TEST(HcmsClientTest, ReportFieldsInRange) {
  const HcmsParams params = SmallParams();
  HcmsClient client(params);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const HcmsReport r = client.Perturb(static_cast<uint64_t>(i), rng);
    EXPECT_LT(r.j, params.k);
    EXPECT_LT(r.l, static_cast<uint32_t>(params.m));
    EXPECT_TRUE(r.y == 1 || r.y == -1);
  }
}

TEST(HcmsClientTest, NoFlipsAtHugeEpsilon) {
  // flip prob = 1/(e^eps+1) → 0, so y must equal the true Hadamard sample.
  HcmsParams params = SmallParams(/*epsilon=*/40.0);
  HcmsClient client(params);
  Xoshiro256 rng(2);
  int flips = 0;
  for (int i = 0; i < 1000; ++i) {
    // The Hadamard sample of a one-hot +1 vector has known magnitude 1;
    // with no perturbation the server-side estimate becomes exact in
    // expectation, indirectly verified by the frequency test below. Here we
    // only verify determinism of the sign at huge epsilon: repeated
    // perturbation of the same value with the same rng state matches.
    Xoshiro256 rng_a = rng;
    const HcmsReport a = client.Perturb(7, rng_a);
    Xoshiro256 rng_b = rng;
    const HcmsReport b = client.Perturb(7, rng_b);
    flips += (a.y != b.y) ? 1 : 0;
    rng();
  }
  EXPECT_EQ(flips, 0);
}

TEST(HcmsServerTest, FrequencyEstimateUnbiasedForHeavyItem) {
  const HcmsParams params = SmallParams();
  const uint64_t domain = 500;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 150000, 5);
  const auto est = HcmsEstimateFrequencies(w.table_a, params, 17);
  const auto freq = w.table_a.Frequencies();
  for (uint64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(est[d] / static_cast<double>(freq[d]), 1.0, 0.15) << "d=" << d;
  }
}

TEST(HcmsServerTest, EstimatesSumNearTotal) {
  // Uniform data avoids heavy-item collision variance; the residual spread
  // is the per-cell LDP sampling noise.
  const HcmsParams params = SmallParams();
  const uint64_t domain = 100;
  const Column c = GenerateUniform(domain, 120000, 7);
  const auto est = HcmsEstimateFrequencies(c, params, 19);
  double sum = 0;
  for (double f : est) sum += f;
  EXPECT_NEAR(sum / 120000.0, 1.0, 0.1);
}

TEST(HcmsServerTest, MergeEqualsSequential) {
  const HcmsParams params = SmallParams();
  HcmsClient client(params);
  HcmsServer all(params), part1(params), part2(params);
  Xoshiro256 rng1(1), rng2(1);
  for (int i = 0; i < 2000; ++i) {
    const HcmsReport r = client.Perturb(static_cast<uint64_t>(i % 50), rng1);
    all.Absorb(r);
    const HcmsReport r2 = client.Perturb(static_cast<uint64_t>(i % 50), rng2);
    if (i % 2 == 0) {
      part1.Absorb(r2);
    } else {
      part2.Absorb(r2);
    }
  }
  part1.Merge(part2);
  all.Finalize();
  part1.Finalize();
  for (uint64_t d = 0; d < 50; ++d) {
    EXPECT_NEAR(all.EstimateFrequency(d), part1.EstimateFrequency(d), 1e-9);
  }
}

TEST(HcmsServerDeathTest, AbsorbAfterFinalizeAborts) {
  const HcmsParams params = SmallParams();
  HcmsServer server(params);
  server.Finalize();
  HcmsReport r{1, 0, 0};
  EXPECT_DEATH(server.Absorb(r), "LDPJS_CHECK failed");
}

TEST(HcmsServerDeathTest, EstimateBeforeFinalizeAborts) {
  const HcmsParams params = SmallParams();
  HcmsServer server(params);
  EXPECT_DEATH(server.EstimateFrequency(0), "LDPJS_CHECK failed");
}

TEST(HcmsDeathTest, NonPowerOfTwoMAborts) {
  HcmsParams params = SmallParams();
  params.m = 100;
  EXPECT_DEATH(HcmsClient{params}, "LDPJS_CHECK failed");
}

TEST(HcmsTest, ByteSizeMatchesShape) {
  const HcmsParams params = SmallParams();
  HcmsServer server(params);
  EXPECT_EQ(server.ByteSize(),
            static_cast<size_t>(params.k) * static_cast<size_t>(params.m) *
                sizeof(double));
}

}  // namespace
}  // namespace ldpjs
