// Observability structs for the TCP front end. FrameServer::metrics()
// returns a consistent snapshot; the CLI `serve`/`federate-*` subcommands
// dump it when the session finishes — and as JSON on SIGUSR1, via
// NetMetricsToJson below.
#ifndef LDPJS_NET_NET_METRICS_H_
#define LDPJS_NET_NET_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ldpjs {

/// Per-connection counters (one row per connection ever accepted).
struct ConnectionMetrics {
  uint64_t id = 0;
  bool active = false;                   ///< reader thread still running
  uint64_t frames_received = 0;          ///< well-formed transport frames
  uint64_t bytes_received = 0;           ///< transport bytes (header+payload)
  uint64_t reports_ingested = 0;         ///< reports absorbed into lanes
  uint64_t corrupt_frames_rejected = 0;  ///< transport- or envelope-level
  uint64_t frames_shed = 0;              ///< DATA refused with a busy ack
};

/// Per-shard counters. With multi-pump ingest each shard owns a queue and a
/// pump, so queue depth is a per-shard property now, not per-connection.
struct ShardMetrics {
  uint64_t frames = 0;
  uint64_t reports = 0;
  uint64_t queue_high_water = 0;  ///< max ingest-queue depth seen
};

/// Per-region counters on a central aggregator (one row per region_id that
/// has ever pushed an epoch snapshot upstream).
struct RegionMetrics {
  uint32_t region_id = 0;
  uint64_t epochs_applied = 0;     ///< snapshots merged into the lanes
  uint64_t empty_epochs = 0;       ///< heartbeat pushes (nothing merged)
  uint64_t duplicates_ignored = 0; ///< retried pushes deduped on (r, epoch)
  uint64_t reports_merged = 0;     ///< reports inside the applied snapshots
  uint64_t snapshot_bytes = 0;     ///< serialized sketch bytes applied
  uint64_t next_epoch = 0;         ///< first epoch not yet applied
};

/// Per-query-kind served counters (one row per QueryKind the server has
/// answered at least once).
struct QueryKindMetrics {
  std::string kind;     ///< "join_size", "frequency", ...
  uint64_t served = 0;  ///< QUERY_OK replies of this kind
};

struct NetMetrics {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t handshakes_rejected = 0;  ///< HELLO with mismatched params
  // Totals over all connections (sum of the rows below). The totals stay
  // monotone even when old departed-connection rows are folded away (see
  // connections_folded).
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  uint64_t reports_ingested = 0;
  uint64_t corrupt_frames_rejected = 0;
  uint64_t frames_shed = 0;
  uint64_t queue_high_water = 0;  ///< max over shards
  // Federation totals (sum of the region rows).
  uint64_t epochs_applied = 0;
  uint64_t epoch_duplicates_ignored = 0;
  // Robustness counters.
  uint64_t accept_failures = 0;     ///< transient accept errors (retried)
  uint64_t accept_fatal = 0;        ///< fatal accept errors (acceptor stops)
  uint64_t idle_reaped = 0;         ///< connections closed by idle deadline
  uint64_t connections_folded = 0;  ///< departed rows folded into totals
  uint64_t retries_attempted = 0;   ///< wire retries (ship + busy backoff)
  uint64_t backoff_millis = 0;      ///< cumulative time slept in backoff
  uint64_t faults_injected = 0;     ///< injected faults observed (chaos runs)
  uint64_t spool_bytes_written = 0; ///< durable spool appends
  uint64_t spool_bytes_resumed = 0; ///< spool bytes replayed at restart
  uint64_t spool_epochs_resumed = 0;///< pending epochs rebuilt from spool
  // Read-side serving tier (LJSP v3 QUERY).
  uint64_t query_frames = 0;       ///< queries answered with QUERY_OK
  uint64_t queries_rejected = 0;   ///< corrupt/invalid/pre-v3 queries
  uint64_t views_published = 0;    ///< RCU view publications so far
  std::vector<QueryKindMetrics> query_kinds;  ///< served count per kind
  /// Rejected count per kind (rows only for kinds rejected at least once;
  /// rejects whose kind never decoded land on the "unknown" row), so
  /// queries_rejected is attributable instead of one opaque aggregate.
  std::vector<QueryKindMetrics> query_rejected_kinds;
  std::vector<ConnectionMetrics> connections;
  std::vector<ShardMetrics> shards;
  std::vector<RegionMetrics> regions;
};

/// Renders the full snapshot — totals plus the per-connection, per-shard,
/// and per-region rows — as one JSON object (machine-readable ops output;
/// the CLI dumps it on SIGUSR1 and at exit).
std::string NetMetricsToJson(const NetMetrics& metrics);

}  // namespace ldpjs

#endif  // LDPJS_NET_NET_METRICS_H_
