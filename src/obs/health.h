// Rule-driven health evaluation over stats snapshots — local or fleet.
//
// Health is a pure function of signals a snapshot already carries (no new
// instrumentation): the ingest-to-queryable p99 against its SLO target,
// cross-region frontier lag, spool/pending-queue growth, shed and corrupt
// frame rates, and the staleness of a region's last stats push. Each rule
// maps to OK / DEGRADED / CRITICAL independently; the verdict is the worst
// rule with the breached rules named in `cause`, so an operator (or the CI
// smoke job) can read WHY a state tripped without correlating dashboards.
//
// The same evaluator runs in three places: a process's own stats JSON
// ("health" section), the central's per-region verdicts as STATS_PUSH
// snapshots arrive (transitions land in the event log), and the cluster
// roll-up over the merged fleet view.
#ifndef LDPJS_OBS_HEALTH_H_
#define LDPJS_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/net_metrics.h"
#include "obs/metrics.h"

namespace ldpjs {

enum class HealthState : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kCritical = 2,
};

/// "OK" / "DEGRADED" / "CRITICAL".
std::string_view HealthStateName(HealthState state);

/// Thresholds the rules compare against. Every rule degrades at its
/// threshold and goes critical at `critical_multiplier` times it, so one
/// knob scales the alarm band without re-tuning each rule.
struct HealthOptions {
  /// Ingest-to-queryable p99 SLO target, in milliseconds.
  double i2q_p99_target_ms = 250.0;
  /// DEGRADED threshold × this = CRITICAL threshold, for every rule.
  double critical_multiplier = 4.0;
  /// Epochs a region's frontier may trail the fleet's most advanced one.
  uint64_t frontier_lag_epochs = 8;
  /// Unshipped (pending/spooled) epochs before the backlog is a signal.
  uint64_t spool_depth_epochs = 16;
  /// Shed frames as a fraction of frames received.
  double shed_rate = 0.01;
  /// Corrupt frames as a fraction of frames received.
  double corrupt_rate = 0.01;
  /// Nanoseconds since a region's last stats push before it counts as
  /// silent (0 disables the staleness rule — local snapshots have no push).
  uint64_t stale_after_ns = 60ull * 1000 * 1000 * 1000;
};

/// The extracted inputs the rules run over. Extraction (from NetMetrics,
/// a registry snapshot, or a pushed fleet snapshot) is separated from
/// evaluation so the rules are trivially unit-testable.
struct HealthSignals {
  double i2q_p99_ms = 0.0;
  bool has_i2q = false;  ///< false while the SLO series is empty
  uint64_t frontier_lag = 0;
  uint64_t spool_depth = 0;
  uint64_t frames = 0;
  uint64_t shed = 0;
  uint64_t corrupt = 0;
  uint64_t age_ns = 0;  ///< since the last stats push (0 for local)
};

struct HealthVerdict {
  HealthState state = HealthState::kOk;
  /// Empty for OK; otherwise the breached rules, semicolon-joined, each
  /// with the observed value and its threshold.
  std::string cause;
};

HealthVerdict EvaluateHealth(const HealthSignals& signals,
                             const HealthOptions& options);

/// Signals for this process: shed/corrupt/frame counts from its NetMetrics,
/// the i2q p99 from its registry snapshot. Frontier lag and push staleness
/// are fleet-relative concepts and stay zero here.
HealthSignals SignalsFromMetrics(const NetMetrics& metrics,
                                 const MetricsRegistry::Snapshot& snapshot);

/// Signals for a pushed region snapshot: everything is read from the
/// snapshot's own series — the `net_*` counters/gauges a RegionalNode
/// appends when pushing (see regional_node.cc) plus the i2q histogram.
/// `frontier_max` is the most advanced `net_frontier_epoch` across the
/// fleet (lag is measured against it); `age_ns` is time since the push.
HealthSignals SignalsFromSnapshot(const MetricsRegistry::Snapshot& snapshot,
                                  uint64_t frontier_max, uint64_t age_ns);

/// {"state":"OK","cause":""}
std::string HealthVerdictToJson(const HealthVerdict& verdict);

}  // namespace ldpjs

#endif  // LDPJS_OBS_HEALTH_H_
