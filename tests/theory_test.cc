// Statistical validation of the paper's theorems, beyond the unit tests:
//   Theorem 3  — E[MA[j]·MB[j]] = |A ⋈ B| (unbiasedness across runs);
//   Theorem 5  — the error bound holds with the advertised probability;
//   Lemma 1    — product structure of per-value contributions;
//   variance scaling — estimator error shrinks ~1/sqrt(m).
#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

SketchParams Params(int k, int m, uint64_t seed = 5) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

TEST(TheoremThreeTest, RowEstimatorIsUnbiasedAcrossPerturbationRuns) {
  // Fixed data and hash families; average the k=1 row estimator across many
  // perturbation runs. Theorem 3 says the estimator is unbiased given the
  // hashes up to the fast-AGMS collision terms, which a single-row sketch
  // with m >> distinct values avoids entirely here (disjoint support test
  // below pins the collision part).
  const uint64_t domain = 50;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 30000, 3);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  // Unbiasedness is over BOTH the hash draw and the perturbation draw
  // (Theorem 3 takes expectation over ξ as well), so every run uses a fresh
  // sketch seed: a single fixed hash family keeps its realized collision
  // term as a constant offset.
  RunningStats estimates;
  for (int run = 0; run < 30; ++run) {
    const SketchParams params = Params(1, 4096, 1000 + static_cast<uint64_t>(run));
    SimulationOptions sim;
    sim.run_seed = 100 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sa =
        BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
    sim.run_seed = 200 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sb =
        BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
    estimates.Add(sa.JoinEstimate(sb));
  }
  // Mean within 3 standard errors of the truth.
  const double stderr_mean =
      estimates.stddev() / std::sqrt(static_cast<double>(estimates.count()));
  EXPECT_NEAR(estimates.mean(), truth, 3.0 * stderr_mean + 0.02 * truth);
}

TEST(TheoremThreeTest, DisjointSupportsEstimateZeroOnAverage) {
  // |A ⋈ B| = 0: the estimator mean must straddle zero.
  std::vector<uint64_t> va, vb;
  for (int i = 0; i < 20000; ++i) {
    va.push_back(static_cast<uint64_t>(i % 40));
    vb.push_back(static_cast<uint64_t>(40 + i % 40));
  }
  Column a(std::move(va), 100), b(std::move(vb), 100);
  const SketchParams params = Params(3, 1024);
  RunningStats estimates;
  for (int run = 0; run < 20; ++run) {
    SimulationOptions sim;
    sim.run_seed = 300 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sa = BuildLdpJoinSketch(a, params, 4.0, sim);
    sim.run_seed = 400 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sb = BuildLdpJoinSketch(b, params, 4.0, sim);
    estimates.Add(sa.JoinEstimate(sb));
  }
  const double stderr_mean =
      estimates.stddev() / std::sqrt(static_cast<double>(estimates.count()));
  EXPECT_LT(std::abs(estimates.mean()), 4.0 * stderr_mean + 1000.0);
}

TEST(TheoremFiveTest, ErrorBoundHoldsWithAdvertisedProbability) {
  // With k = 4·log(1/δ) rows, Pr[|Er| > bound] <= δ. We use k = 10
  // (δ ≈ e^{-2.5} ≈ 0.082) and check the empirical violation rate over 40
  // runs stays well below 3x δ (binomial slack).
  const uint64_t domain = 500;
  const JoinWorkload w = MakeZipfWorkload(1.4, domain, 50000, 7);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  const SketchParams params = Params(10, 512);
  int violations = 0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    SimulationOptions sim;
    sim.run_seed = 500 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sa =
        BuildLdpJoinSketch(w.table_a, params, 2.0, sim);
    sim.run_seed = 600 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sb =
        BuildLdpJoinSketch(w.table_b, params, 2.0, sim);
    const double est = sa.JoinEstimate(sb);
    const double bound = sa.TheoreticalErrorBound(sb);
    if (std::abs(est - truth) > bound) ++violations;
  }
  EXPECT_LE(violations, 10);  // δ·40 ≈ 3.3 expected; 10 allows slack
}

TEST(TheoremFiveTest, BoundFormulaMatchesHandComputation) {
  const SketchParams params = Params(4, 256);
  const double eps = 1.0;
  LdpJoinSketchServer sa(params, eps), sb(params, eps);
  LdpJoinSketchClient client(params, eps);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) sa.Absorb(client.Perturb(3, rng));
  for (int i = 0; i < 200; ++i) sb.Absorb(client.Perturb(3, rng));
  const double c = DebiasFactor(eps);
  const double slack = (4.0 * c * c - 1.0) / 2.0;
  const double expected = 4.0 / 16.0 * (100.0 + slack) * (200.0 + slack);
  EXPECT_NEAR(sa.TheoreticalErrorBound(sb), expected, 1e-9);
}

TEST(VarianceScalingTest, ErrorShrinksWithMInCollisionDominatedRegime) {
  // Theorem 4's 1/m variance scaling concerns the hash-collision error.
  // The per-report Hadamard-sampling noise grows ~sqrt(m), so the theorem's
  // regime requires F2 >> m * c_eps^2 * n * k — a skewed, sizable workload.
  // There, quadrupling m visibly reduces the mean absolute error.
  const uint64_t domain = 2000;
  const JoinWorkload w = MakeZipfWorkload(1.8, domain, 200000, 11);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  auto mean_abs_err = [&](int m) {
    double acc = 0;
    const int kRuns = 10;
    for (int run = 0; run < kRuns; ++run) {
      const SketchParams params =
          Params(5, m, 2000 + static_cast<uint64_t>(run));
      SimulationOptions sim;
      sim.run_seed = 700 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sa =
          BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
      sim.run_seed = 800 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sb =
          BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
      acc += std::abs(sa.JoinEstimate(sb) - truth);
    }
    return acc / kRuns;
  };
  const double err_small = mean_abs_err(256);
  const double err_large = mean_abs_err(4096);
  EXPECT_LT(err_large, err_small);
}

TEST(StreamDerivationTest, AdjacentRunSeedsDoNotBiasTheEstimator) {
  // Regression for a real bug: deriving per-user RNG streams as
  // Mix64(run_seed ^ index) correlates the streams of two runs whose seeds
  // differ by a small constant (only low input bits vary), which biased
  // cross-sketch inner products by ~+11% at m=4096. The two sketches below
  // use exactly such adjacent raw seeds; the estimate must stay within the
  // sampling-noise envelope of the truth.
  const JoinWorkload w = MakeZipfWorkload(1.8, 2000, 200000, 11);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  RunningStats errors;
  for (int run = 0; run < 4; ++run) {
    const SketchParams params = Params(5, 4096, 2000 + static_cast<uint64_t>(run));
    SimulationOptions sim;
    sim.run_seed = 700 + static_cast<uint64_t>(run);  // raw small seed
    const LdpJoinSketchServer sa =
        BuildLdpJoinSketch(w.table_a, params, 4.0, sim);
    sim.run_seed = 800 + static_cast<uint64_t>(run);  // adjacent raw seed
    const LdpJoinSketchServer sb =
        BuildLdpJoinSketch(w.table_b, params, 4.0, sim);
    errors.Add((sa.JoinEstimate(sb) - truth) / truth);
  }
  // Pre-fix this sat at +0.11 consistently; the noise envelope is ~0.02.
  EXPECT_LT(std::abs(errors.mean()), 0.05);
}

TEST(EstimatorRegressionTest, FixedSeedEstimatesStayWithinErrorEnvelope) {
  // Accuracy regression guard: every input below is pinned (workload seed,
  // hash seeds, run seeds), so the estimates are deterministic and any
  // change that degrades estimator arithmetic — a debias slip, a lane
  // overflow, a broken merge — trips this test instead of sliding by.
  //
  // Two envelopes per epsilon:
  //   1. per-run: |est − truth| ≤ TheoreticalErrorBound (Theorem 5). The
  //      bound holds w.p. ≥ 1 − e^{−k/4} per *random* run; these fixed seeds
  //      were chosen inside it, with at most one excursion tolerated so a
  //      future libm ulp drift cannot flake the test.
  //   2. mean relative error ≤ a pinned cap ~3x the measured value — the
  //      variance-derived tripwire that catches silent accuracy loss long
  //      before the loose Theorem-5 bound would.
  const JoinWorkload w = MakeZipfWorkload(1.4, 500, 50000, 7);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  const SketchParams params = Params(10, 512);
  const struct {
    double epsilon;
    double mean_re_cap;
  } cases[] = {{1.0, 0.15}, {4.0, 0.03}};  // measured: 0.049 / 0.0093
  for (const auto& c : cases) {
    int bound_violations = 0;
    RunningStats rel_errors;
    for (int run = 0; run < 5; ++run) {
      SimulationOptions sim;
      sim.run_seed = 4000 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sa =
          BuildLdpJoinSketch(w.table_a, params, c.epsilon, sim);
      sim.run_seed = 5000 + static_cast<uint64_t>(run);
      const LdpJoinSketchServer sb =
          BuildLdpJoinSketch(w.table_b, params, c.epsilon, sim);
      const double est = sa.JoinEstimate(sb);
      if (std::abs(est - truth) > sa.TheoreticalErrorBound(sb)) {
        ++bound_violations;
      }
      rel_errors.Add(std::abs(est - truth) / truth);
    }
    EXPECT_LE(bound_violations, 1) << "epsilon=" << c.epsilon;
    EXPECT_LE(rel_errors.mean(), c.mean_re_cap) << "epsilon=" << c.epsilon;
  }
}

TEST(LemmaOneTest, MatchingValuesContributeOne) {
  // E[MA(j,x)^{iA} · MB(j,x)^{iB}] = 1 when the two users hold the same
  // value: sketch both singleton columns many times, multiply the cells at
  // (j, h_j(d)), average ≈ 1 per pair of reports.
  const SketchParams params = Params(1, 256);
  const double eps = 2.0;
  const uint64_t d = 9;
  RunningStats products;
  for (int run = 0; run < 3000; ++run) {
    LdpJoinSketchClient client(params, eps);
    LdpJoinSketchServer sa(params, eps), sb(params, eps);
    Xoshiro256 rng_a(static_cast<uint64_t>(run) * 2 + 1);
    Xoshiro256 rng_b(static_cast<uint64_t>(run) * 2 + 2);
    sa.Absorb(client.Perturb(d, rng_a));
    sb.Absorb(client.Perturb(d, rng_b));
    sa.Finalize();
    sb.Finalize();
    const auto& row = sa.row_hashes()[0];
    const int x = static_cast<int>(row.bucket(d));
    products.Add(sa.cell(0, x) * sb.cell(0, x));
  }
  EXPECT_NEAR(products.mean(), 1.0,
              4.0 * products.stddev() / std::sqrt(3000.0));
}

TEST(TheoremSevenTest, FrequencyEstimateUnbiasedAcrossRuns) {
  // Average f̂(d) over perturbation runs for a mid-frequency item.
  const uint64_t domain = 300;
  const JoinWorkload w = MakeZipfWorkload(1.3, domain, 40000, 13);
  const auto freq = w.table_a.Frequencies();
  const uint64_t target = 5;
  const SketchParams params = Params(6, 1024);
  RunningStats estimates;
  for (int run = 0; run < 25; ++run) {
    SimulationOptions sim;
    sim.run_seed = 900 + static_cast<uint64_t>(run);
    const LdpJoinSketchServer sa =
        BuildLdpJoinSketch(w.table_a, params, 2.0, sim);
    estimates.Add(sa.FrequencyEstimate(target));
  }
  const double stderr_mean =
      estimates.stddev() / std::sqrt(static_cast<double>(estimates.count()));
  EXPECT_NEAR(estimates.mean(), static_cast<double>(freq[target]),
              3.5 * stderr_mean + 0.05 * static_cast<double>(freq[target]));
}

}  // namespace
}  // namespace ldpjs
