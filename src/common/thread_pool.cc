#include "common/thread_pool.h"

#include <algorithm>

namespace ldpjs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::ParallelFor(
    size_t total,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (total == 0) return;
  const size_t shards = std::min(total, num_threads());
  if (shards == 1) {
    fn(0, 0, total);
    return;
  }
  const size_t chunk = (total + shards - 1) / shards;
  // Per-call completion latch: this call only waits for its own shards, so
  // concurrent ParallelFor calls on a shared pool don't block on each
  // other's work.
  Mutex latch_mutex;
  CondVar latch_done;
  const size_t submitted = (total + chunk - 1) / chunk;
  size_t remaining = submitted;
  for (size_t shard = 0; shard < submitted; ++shard) {
    const size_t begin = shard * chunk;
    const size_t end = std::min(total, begin + chunk);
    Submit([&, shard, begin, end] {
      fn(shard, begin, end);
      // Notify while holding the lock: the waiter owns the latch's stack
      // frame and may destroy it the moment the mutex is free, so an
      // unlocked notify could fire on a dead condition variable.
      MutexLock lock(latch_mutex);
      if (--remaining == 0) latch_done.NotifyOne();
    });
  }
  MutexLock lock(latch_mutex);
  while (remaining != 0) latch_done.Wait(latch_mutex);
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = new ThreadPool();  // leaked: outlives all users
  return *pool;
}

void SharedParallelFor(
    size_t total, size_t work,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (total == 0) return;
  if (work < kMinSharedParallelWork) {
    fn(0, 0, total);
    return;
  }
  SharedThreadPool().ParallelFor(total, fn);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(mutex_);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace ldpjs
