// LDPJoinSketch (paper §IV): a locally differentially private Fast-AGMS
// sketch for join size estimation.
//
// Client (Algorithm 1): sample a row j ~ U[k] and a Hadamard coordinate
// l ~ U[m]; encode the private value d as v[h_j(d)] = ξ_j(d); transform
// w = v·H_m; release y = b·w[l] with b = −1 w.p. 1/(e^ε+1). Because v is
// one-hot, w[l] = ξ_j(d)·H_m[h_j(d), l] and the client runs in O(1)
// (`Perturb`); the literal O(m log m) pipeline is kept as
// `PerturbReference` and produces identical output for identical RNG state.
//
// Server (Algorithm 2, "PriSk"): accumulate reports, then rotate every row
// back with H_m (Finalize). The finalized sketch behaves like a Fast-AGMS
// sketch in expectation (Theorem 2), so the join size is the median row
// inner product (Eq. 5) and frequencies follow Theorem 7.
//
// Deferred-debias invariant: Algorithm 2 writes k·c_ε·y into cell (j, l)
// per report, but k·c_ε is a constant, so ingestion stores only the raw
// ±1 vote balance per cell as an int64_t "lane". Absorb/AbsorbBatch/Merge
// are pure integer adds (memory-bound, exact, order-independent), and the
// k·c_ε scale is applied exactly once in Finalize, right before the row
// transforms. Every pre-finalize representation — in memory, merged, or
// serialized — is raw lanes; every post-finalize query sees the same
// debias-scaled double cells the paper's pseudo-code produces.
#ifndef LDPJS_CORE_LDP_JOIN_SKETCH_H_
#define LDPJS_CORE_LDP_JOIN_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serialize.h"
#include "core/params.h"

namespace ldpjs {

/// One perturbed user report: a ±1 plus the sketch coordinates it targets.
/// This is all a user ever releases: 1 + log2(k) + log2(m) bits.
struct LdpReport {
  int8_t y;    ///< ±1
  uint16_t j;  ///< sampled row in [0, k)
  uint32_t l;  ///< sampled Hadamard coordinate in [0, m)
};

/// Serializes a report into `writer` (wire format for client → server).
/// `report.y` must be a strict ±1 (contract check).
void EncodeReport(const LdpReport& report, BinaryWriter& writer);

/// Parses one report; fails with Corruption on truncated input, an
/// out-of-range row index, or a sign byte that is not a strict ±1 encoding.
Result<LdpReport> DecodeReport(BinaryReader& reader);

/// Bytes one encoded report occupies on the wire (sign u8 + j u32 + l u32).
inline constexpr size_t kWireReportBytes = 9;

/// Most reports a single batch-envelope record may carry. Matches the
/// ingestion block size, so one client block encodes as one wire batch and
/// an aggregator shard can decode any valid batch into one fixed buffer.
inline constexpr size_t kMaxWireBatchReports = 4096;

/// Writes a batch-envelope record — the LJS2 framing family's record for a
/// block of reports: "LJSB" magic, version byte, u32 count, then `count`
/// packed reports in EncodeReport's exact byte layout. At most
/// kMaxWireBatchReports per record (contract check).
void EncodeReportBatch(std::span<const LdpReport> reports,
                       BinaryWriter& writer);

/// Decodes one batch-envelope record into `out`, returning the report
/// count. The wire hot path: one bounds check for the whole record, then a
/// tight loop over the packed bytes — no per-field Result round trips.
/// Decodes exactly the reports a per-report DecodeReport loop would, and
/// fails with Corruption (never reading out of bounds) on a bad magic or
/// version, a count above kMaxWireBatchReports or out.size(), truncation,
/// or any report a DecodeReport call would reject.
Result<size_t> DecodeReportBatch(BinaryReader& reader,
                                 std::span<LdpReport> out);

class LdpJoinSketchClient {
 public:
  /// `params.seed` must match the server's; epsilon > 0 is the LDP budget.
  LdpJoinSketchClient(const SketchParams& params, double epsilon);

  /// The three randomized decisions of Algorithm 1: row j ~ U[k],
  /// coordinate l ~ U[m], and the sign flip b (true w.p. 1/(e^ε+1)).
  struct ReportDraws {
    uint16_t j;
    uint32_t l;
    bool flip;
  };

  /// Draws (j, l, flip) from `rng`. j comes from one unbiased bounded draw.
  /// When m ≤ 2^11, l (the top log2(m) bits) and the flip (the next 53 bits
  /// against flip_threshold()) share one draw — disjoint bit ranges, so both
  /// stay exactly uniform / exactly Bernoulli(1/(e^ε+1)) — two engine draws
  /// per report instead of three. Larger m falls back to separate draws to
  /// keep the flip's full 53-bit resolution. NOTE: this two-draw scheme
  /// replaced three sequential NextBounded/NextBernoulli draws, so
  /// fixed-seed outputs (golden values) differ from earlier versions.
  ReportDraws SampleReportDraws(Xoshiro256& rng) const {
    ReportDraws d;
    d.j = static_cast<uint16_t>(
        rng.NextBounded(static_cast<uint64_t>(params_.k)));
    if (m_log2_ <= 11) {
      const uint64_t w = rng();
      d.l = static_cast<uint32_t>(w >> (64 - m_log2_));
      d.flip = ((w << m_log2_) >> 11) < flip_threshold_;
    } else {
      d.l = static_cast<uint32_t>(
          rng.NextBounded(static_cast<uint64_t>(params_.m)));
      d.flip = (rng() >> 11) < flip_threshold_;
    }
    return d;
  }

  /// Algorithm 1 in O(1) via the closed-form Hadamard entry.
  LdpReport Perturb(uint64_t value, Xoshiro256& rng) const;

  /// Perturbs `values[i]` into `out[i]` drawing from `rng` sequentially:
  /// identical output to calling Perturb in a loop with the same engine.
  /// Batching exists so one engine (seeded once per block) can serve many
  /// users — the per-user seeding is what dominates the scalar client path.
  void PerturbBatch(std::span<const uint64_t> values, std::span<LdpReport> out,
                    Xoshiro256& rng) const;

  /// Algorithm 1 exactly as written (materializes v, transforms, samples).
  /// Identical output to Perturb for identical RNG state; used by tests.
  LdpReport PerturbReference(uint64_t value, Xoshiro256& rng) const;

  const SketchParams& params() const { return params_; }
  double epsilon() const { return epsilon_; }
  /// Pr[b = −1] = 1/(e^ε + 1).
  double flip_probability() const { return flip_prob_; }
  /// Integer form of flip_probability() for hot loops: a fresh draw x flips
  /// iff (x >> 11) < flip_threshold(), the same event as
  /// NextBernoulli(flip_probability()) on the same draw.
  uint64_t flip_threshold() const { return flip_threshold_; }
  const std::vector<RowHashes>& row_hashes() const { return rows_; }

 private:
  SketchParams params_;
  double epsilon_;
  double flip_prob_;
  uint64_t flip_threshold_;
  int m_log2_;
  std::vector<RowHashes> rows_;
};

class LdpJoinSketchServer {
 public:
  /// Must be constructed with the clients' params and epsilon.
  LdpJoinSketchServer(const SketchParams& params, double epsilon);

  /// Adds one client report: lane[j, l] += y. Invalid after Finalize.
  void Absorb(const LdpReport& report);

  /// Absorbs a batch in one validated pass over the integer lanes. Exactly
  /// equivalent to calling Absorb per report; a report with out-of-range
  /// coordinates or a non-±1 sign aborts (contract check) before it can
  /// touch a lane.
  void AbsorbBatch(std::span<const LdpReport> reports);

  /// Adds another server's raw lanes (distributed aggregation). Both must
  /// share params/epsilon and be un-finalized. Integer addition, so merge
  /// order never changes the result.
  void Merge(const LdpJoinSketchServer& other);

  /// Exact inverse of Merge: subtracts another server's raw lanes. Because
  /// the lanes are plain int64 vote balances, Merge(S) followed by
  /// SubtractRaw(S) restores every lane bit for bit — the linearity that
  /// makes sliding-window aggregation an O(lanes) incremental update
  /// (retract an expired epoch snapshot) instead of a recompute. `other`
  /// must previously have been merged in (contract: total_reports() never
  /// goes negative); both must share params/epsilon and be un-finalized.
  void SubtractRaw(const LdpJoinSketchServer& other);

  /// Zeroes every raw lane and the report count, starting a fresh epoch in
  /// place (the multi-epoch cut: serialize the lanes, ship them, reset).
  /// Cheaper than reconstructing the sketch — the hash tables are reused.
  /// Only valid before Finalize (finalization releases the lanes).
  void ResetLanes();

  /// Applies the deferred k·c_ε debias scale, then rotates every row back
  /// by H_m (Algorithm 2 line 6). Rows transform in parallel. Idempotent
  /// queries only after this.
  void Finalize();

  /// Eq. 5: median over rows of the row inner products. Both sketches must
  /// be finalized and share params. Rows run in parallel.
  double JoinEstimate(const LdpJoinSketchServer& other) const;

  /// Theorem 5: with probability >= 1 - exp(-k/4), the join estimate is
  /// within  (4/sqrt(m)) · (F1(A) + (k·c_ε²-1)/2) · (F1(B) + (k·c_ε²-1)/2)
  /// of the truth, where F1 is each sketch's report count. Useful for
  /// confidence intervals on query answers.
  double TheoreticalErrorBound(const LdpJoinSketchServer& other) const;

  /// Theorem 7: f̂(d) = mean_j M[j, h_j(d)]·ξ_j(d). Unbiased.
  double FrequencyEstimate(uint64_t d) const;

  /// Frequencies for every value in [0, domain). O(domain·k), sharded
  /// across the process thread pool for large domains.
  std::vector<double> EstimateAllFrequencies(uint64_t domain) const;

  /// Subtracts `total_mass / m` from every cell — removes the expected
  /// contribution of `total_mass` non-target FAP reports (Theorem 8).
  void SubtractUniformMass(double total_mass);

  const SketchParams& params() const { return params_; }
  double epsilon() const { return epsilon_; }
  double c_eps() const { return c_eps_; }
  uint64_t total_reports() const { return total_; }
  bool finalized() const { return finalized_; }
  /// Debias-scaled cell value. Before Finalize this is k·c_ε·lane(row, col)
  /// (computed on the fly); after Finalize it reads the transformed cells.
  double cell(int row, int col) const {
    const size_t idx = static_cast<size_t>(row) *
                           static_cast<size_t>(params_.m) +
                       static_cast<size_t>(col);
    if (finalized_) return cells_[idx];
    return static_cast<double>(params_.k) * c_eps_ *
           static_cast<double>(lanes_[idx]);
  }
  /// Raw ±1 vote balance of a cell; ingestion-side state, so only valid
  /// before Finalize (the lanes are released by it).
  int64_t lane(int row, int col) const {
    LDPJS_CHECK(!finalized_);
    return lanes_[static_cast<size_t>(row) * static_cast<size_t>(params_.m) +
                  static_cast<size_t>(col)];
  }
  const std::vector<RowHashes>& row_hashes() const { return rows_; }
  size_t ByteSize() const {
    return finalized_ ? cells_.size() * sizeof(double)
                      : lanes_.size() * sizeof(int64_t);
  }

  /// Binary round trip (aggregator persistence / cross-process shipping).
  /// Format v2 ("LJS2"): un-finalized sketches carry raw integer lanes, so
  /// serialize → deserialize → merge is bit-exact; finalized sketches carry
  /// the transformed double cells. Pre-v2 buffers (no magic) are rejected
  /// with a clear Corruption error.
  std::vector<uint8_t> Serialize() const;
  static Result<LdpJoinSketchServer> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  SketchParams params_;
  double epsilon_;
  double c_eps_;
  uint64_t total_ = 0;
  bool finalized_ = false;
  std::vector<RowHashes> rows_;
  std::vector<int64_t> lanes_;  // row-major k x m; raw votes until Finalize
  std::vector<double> cells_;   // row-major k x m; populated by Finalize
};

}  // namespace ldpjs

#endif  // LDPJS_CORE_LDP_JOIN_SKETCH_H_
