#include "federation/epoch_scheduler.h"

#include <utility>

#include "common/status.h"

namespace ldpjs {

EpochScheduler::EpochScheduler(std::chrono::milliseconds period,
                               std::function<void(uint64_t)> tick)
    : period_(period), tick_(std::move(tick)) {
  LDPJS_CHECK(tick_ != nullptr);
}

EpochScheduler::~EpochScheduler() { Stop(); }

void EpochScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  LDPJS_CHECK(!started_);
  started_ = true;
  thread_ = std::thread(&EpochScheduler::Loop, this);
}

void EpochScheduler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (period_.count() > 0) {
      cv_.wait_for(lock, period_,
                   [&] { return stopping_ || trigger_pending_; });
    } else {
      cv_.wait(lock, [&] { return stopping_ || trigger_pending_; });
    }
    if (stopping_) return;
    // Fire: a period expiry and a pending trigger coalesce into one tick.
    trigger_pending_ = false;
    const uint64_t epoch = next_epoch_++;
    lock.unlock();
    tick_(epoch);
    lock.lock();
    ++completed_;
    cv_.notify_all();  // TriggerNow waiters
  }
}

void EpochScheduler::TriggerNow() {
  std::unique_lock<std::mutex> lock(mu_);
  LDPJS_CHECK(started_);
  if (stopping_) return;
  trigger_pending_ = true;
  const uint64_t want = next_epoch_ + 1;
  cv_.notify_all();
  cv_.wait(lock, [&] { return completed_ >= want || stopping_; });
}

void EpochScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t EpochScheduler::epochs_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_epoch_;
}

}  // namespace ldpjs
