// Hot-path observability primitives: lock-free counters, gauges, and
// log2-bucketed latency histograms, collected behind a process-wide
// MetricsRegistry.
//
// Design constraints, in order:
//   1. Recording must be nanosecond-cheap on ingest/query hot paths — one
//      relaxed atomic add into a thread-striped bucket, no locks, no
//      allocation. When observability is disabled (SetObsEnabled(false))
//      every Record()/Add() is a single relaxed load and a branch.
//   2. Snapshots must be consistent without stopping writers: a histogram
//      snapshot derives its count from the bucket array it just read, so
//      "count != sum of buckets" (a torn snapshot) is impossible by
//      construction, and once writers quiesce the totals are exact.
//   3. Instrument pointers are stable for the registry's lifetime
//      (instruments are never erased), so components look an instrument up
//      once at construction and record through the raw pointer forever —
//      the registry mutex is touched only at registration and snapshot.
//
// Bucketing: value v lands in bucket bit_width(v) (0 for v == 0), i.e.
// bucket i holds values in [2^(i-1), 2^i). 65 buckets cover the full u64
// range, so a percentile read is exact to within one power of two — the
// right resolution for latency SLOs (a p99 of "under 2ms" is actionable;
// "1.93ms vs 1.94ms" is noise).
#ifndef LDPJS_OBS_METRICS_H_
#define LDPJS_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace ldpjs {

/// Wall-clock nanoseconds (CLOCK_REALTIME). Trace origins use wall time so
/// a timestamp stamped on one host is comparable on another; cross-host
/// skew (NTP-bounded) is therefore part of any cross-tier latency reading.
uint64_t NowNanos();

/// Global observability switch, default on. When off, every instrument's
/// record path is one relaxed load plus an untaken branch — the "within 2%
/// of disabled" bench pin measures exactly this pair of modes.
bool ObsEnabled();
void SetObsEnabled(bool enabled);

/// Monotone event counter.
class ObsCounter {
 public:
  void Add(uint64_t delta) {
    if (!ObsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. "wall time of the last view
/// publication").
class ObsGauge {
 public:
  void Set(uint64_t value) {
    if (!ObsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Consistent read of one histogram: count is derived from the buckets, so
/// it always equals their sum.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 65;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[kBuckets] = {};

  /// Exact rank-walk percentile over the log2 buckets: the value returned
  /// is the inclusive upper bound of the bucket holding the p-quantile
  /// observation (0 on an empty histogram).
  uint64_t Percentile(double p) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lossless merge of two histogram snapshots: elementwise bucket addition
/// plus sum addition, count re-derived from the merged buckets. Because the
/// buckets are raw observation counts (never precomputed percentiles), the
/// merge of N regions' snapshots is bit-identical to one histogram fed the
/// union of their records — the same mergeability argument that lets the
/// LDP sketches federate, applied to the telemetry.
HistogramSnapshot MergeHistogram(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b);

/// Log2-bucketed latency histogram, striped 8 ways so concurrent writers
/// on different cores do not bounce one cache line.
class ObsHistogram {
 public:
  void Record(uint64_t value) {
    if (!ObsEnabled()) return;
    Stripe& stripe = stripes_[ThreadStripe()];
    stripe.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[HistogramSnapshot::kBuckets] = {};
  };
  static size_t ThreadStripe();

  Stripe stripes_[kStripes];
};

/// One named instrument set, snapshot-able as a whole. Instruments are
/// created on first lookup and never erased, so the returned pointers are
/// stable for the registry's lifetime — cache them at construction.
class MetricsRegistry {
 public:
  /// The process-wide registry every production component records into and
  /// the STATS frame / SIGUSR1 dump serialize. Tests that need isolation
  /// construct their own instance.
  static MetricsRegistry& Default();

  ObsCounter* GetCounter(std::string_view name);
  ObsGauge* GetGauge(std::string_view name);
  ObsHistogram* GetHistogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, uint64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Snapshot of one histogram by name (empty snapshot when absent) — the
  /// bench and stats serializer read single series without walking the
  /// whole registry.
  HistogramSnapshot HistogramByName(std::string_view name) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<ObsCounter>, std::less<>> counters_
      LDPJS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ObsGauge>, std::less<>> gauges_
      LDPJS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ObsHistogram>, std::less<>> histograms_
      LDPJS_GUARDED_BY(mu_);
};

}  // namespace ldpjs

#endif  // LDPJS_OBS_METRICS_H_
