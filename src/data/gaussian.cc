#include "data/gaussian.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/status.h"

namespace ldpjs {

Column GenerateGaussian(const GaussianParams& params) {
  LDPJS_CHECK(params.domain >= 1);
  LDPJS_CHECK(params.sigma > 0.0);
  Xoshiro256 rng(params.seed);
  std::vector<uint64_t> values;
  values.reserve(params.rows);
  const double max_id = static_cast<double>(params.domain - 1);
  for (uint64_t i = 0; i < params.rows; ++i) {
    const double x = params.mu + params.sigma * rng.NextGaussian();
    const double clamped = std::clamp(std::round(x), 0.0, max_id);
    values.push_back(static_cast<uint64_t>(clamped));
  }
  return Column(std::move(values), params.domain);
}

Column GenerateUniform(uint64_t domain, uint64_t rows, uint64_t seed) {
  LDPJS_CHECK(domain >= 1);
  Xoshiro256 rng(seed);
  std::vector<uint64_t> values;
  values.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    values.push_back(rng.NextBounded(domain));
  }
  return Column(std::move(values), domain);
}

}  // namespace ldpjs
