// Query serving tier end-to-end. The acceptance bar has three parts:
//
//  1. Bit identity: every QUERY kind served over a real loopback LJSP v3
//     session must equal AnswerQuery evaluated in-process on the very view
//     the server answered from — bit for bit, doubles included — for shard
//     counts {1, 4}, both join methods' report streams (plain LdpJoinSketch
//     and FAP perturbation), and both view sources (the lifetime
//     FrameServer view and a windowed CentralNode).
//  2. No torn views: hammering Published()/QUERY concurrently with
//     OnEpochApplied / ingest / republish must always observe internally
//     consistent snapshots — every answer corresponds to exactly one
//     published epoch (these tests run under the CI TSan job).
//  3. Hostile traffic: v2 peers sending QUERY, garbage payloads, oversized
//     frames, and unbounded scans all degrade to clean ERRORs — never a
//     crash, and never a stalled finalize barrier (CI ASan/UBSan job).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "core/multiway.h"
#include "federation/central_node.h"
#include "federation/windowed_view.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "net/protocol.h"
#include "service/published_view.h"
#include "service/query_engine.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Served == in-process, field by field, doubles compared as raw bits.
void ExpectBitIdentical(const QueryResponse& served,
                        const QueryResponse& local) {
  EXPECT_EQ(served.kind, local.kind);
  EXPECT_EQ(served.view_sequence, local.view_sequence);
  EXPECT_EQ(served.view_aligned, local.view_aligned);
  EXPECT_EQ(served.view_epoch, local.view_epoch);
  EXPECT_EQ(served.view_reports, local.view_reports);
  EXPECT_EQ(Bits(served.value), Bits(local.value));
  EXPECT_EQ(served.items, local.items);
}

std::vector<uint64_t> TestValues(size_t n) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  return values;
}

/// One table's report stream under either join method's client-side
/// perturbation (the server lanes are method-agnostic).
std::vector<LdpReport> MethodReports(const SketchParams& params,
                                     double epsilon, bool fap, size_t n,
                                     uint64_t seed) {
  const std::vector<uint64_t> values = TestValues(n);
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  if (fap) {
    FapClient client(params, epsilon, FapMode::kHigh, {});
    for (size_t i = 0; i < n; ++i) reports[i] = client.Perturb(values[i], rng);
  } else {
    LdpJoinSketchClient client(params, epsilon);
    client.PerturbBatch(values, reports, rng);
  }
  return reports;
}

/// A serialized raw-lane probe sketch (the server finalizes its own copy).
std::vector<uint8_t> RawProbeBytes(const SketchParams& params, double epsilon,
                                   size_t n, uint64_t seed) {
  LdpJoinSketchServer probe(params, epsilon);
  probe.AbsorbBatch(MethodReports(params, epsilon, /*fap=*/false, n, seed));
  return probe.Serialize();
}

/// One request of every QueryKind, sharing the view's params on the left
/// and exercising a distinct right-end shape for the multiway chain.
std::vector<QueryRequest> AllKindRequests(const SketchParams& params,
                                          double epsilon) {
  std::vector<QueryRequest> requests;
  {
    QueryRequest join;
    join.kind = QueryKind::kJoinSize;
    join.probe_sketch = RawProbeBytes(params, epsilon, 4000, 33);
    requests.push_back(std::move(join));
  }
  {
    QueryRequest freq;
    freq.kind = QueryKind::kFrequency;
    freq.key = 7;
    requests.push_back(freq);
  }
  {
    QueryRequest topk;
    topk.kind = QueryKind::kFrequentItems;
    topk.domain = 1000;
    topk.threshold = 5.0;
    requests.push_back(topk);
  }
  {
    // view (m) -> middle (m x 64) -> probe (64).
    MultiwayParams mid;
    mid.k = params.k;
    mid.m_left = params.m;
    mid.m_right = 64;
    mid.left_seed = params.seed;
    mid.right_seed = params.seed + 100;
    LdpMultiwayClient mid_client(mid, epsilon);
    LdpMultiwayServer middle(mid, epsilon);
    Xoshiro256 rng(55);
    for (uint64_t i = 0; i < 3000; ++i) {
      middle.Absorb(mid_client.Perturb(i % 1000, (i * 7) % 500, rng));
    }
    middle.Finalize();  // the wire ships finalized middles
    SketchParams right = params;
    right.m = mid.m_right;
    right.seed = mid.right_seed;
    QueryRequest chain;
    chain.kind = QueryKind::kMultiwayChain;
    chain.middles.push_back(middle.Serialize());
    chain.probe_sketch = RawProbeBytes(right, epsilon, 2000, 44);
    requests.push_back(std::move(chain));
  }
  {
    QueryRequest range;
    range.kind = QueryKind::kRangeCount;
    range.range_lo = 10;
    range.range_hi = 200;
    requests.push_back(range);
  }
  {
    QueryRequest pred;
    pred.kind = QueryKind::kPredicateJoin;
    pred.range_lo = 10;
    pred.range_hi = 200;
    pred.probe_sketch = RawProbeBytes(params, epsilon, 4000, 33);
    requests.push_back(std::move(pred));
  }
  return requests;
}

TEST(NetQueryTest, LifetimeServedAnswersBitIdenticalToInProcess) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  const std::vector<QueryRequest> requests = AllKindRequests(params, epsilon);
  for (const bool fap : {false, true}) {
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message()
                   << "fap=" << fap << " shards=" << shards);
      FrameServerOptions options;
      options.num_shards = shards;
      FrameServer server(params, epsilon, options);
      ASSERT_TRUE(server.Start().ok());
      auto sender =
          FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
      ASSERT_TRUE(sender.ok()) << sender.status().ToString();
      EXPECT_EQ(sender->negotiated_version(), kNetVersion);
      ASSERT_TRUE(
          sender->SendReports(MethodReports(params, epsilon, fap, 20000, 17))
              .ok());
      // PING is the barrier AND the republish point: the view the next
      // query answers from contains everything this connection sent.
      ASSERT_TRUE(sender->Ping().ok());
      const std::shared_ptr<const PublishedView> view =
          server.CurrentPublishedView();
      EXPECT_EQ(view->reports(), 20000u);
      for (size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "kind=" << i);
        auto served = sender->Query(requests[i]);
        ASSERT_TRUE(served.ok()) << served.status().ToString();
        auto local = AnswerQuery(*view, requests[i]);
        ASSERT_TRUE(local.ok()) << local.status().ToString();
        ExpectBitIdentical(*served, *local);
      }
      ASSERT_TRUE(sender->Finish().ok());
      server.Stop();
      const NetMetrics metrics = server.metrics();
      EXPECT_EQ(metrics.query_frames, requests.size());
      EXPECT_EQ(metrics.queries_rejected, 0u);
      EXPECT_GE(metrics.views_published, 2u);  // Start + PING at least
    }
  }
}

TEST(NetQueryTest, WindowedCentralServedAnswersBitIdenticalToInProcess) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  const std::vector<QueryRequest> requests = AllKindRequests(params, epsilon);
  CentralNodeOptions central_options;
  central_options.server.num_shards = 2;
  central_options.finalize_after = 1;
  central_options.window_epochs = 3;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(
      MethodReports(params, epsilon, /*fap=*/false, 5000, 23));
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {  // 2 epochs slide out
    auto ack = sender->PushEpochSnapshot(0, epoch, snapshot);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_EQ(ack->code, EpochPushAckCode::kApplied);
  }

  // On a windowed central, QUERY answers come from the sliding window's
  // published view, not the lifetime lanes.
  const std::shared_ptr<const PublishedView> view =
      central.WindowedPublishedView();
  EXPECT_TRUE(view->aligned);
  EXPECT_EQ(view->epoch, 4u);
  EXPECT_EQ(view->reports(), 3u * 5000u);
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "kind=" << i);
    auto served = sender->Query(requests[i]);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served->view_aligned);
    EXPECT_EQ(served->view_epoch, 4u);
    auto local = AnswerQuery(*view, requests[i]);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    ExpectBitIdentical(*served, *local);
  }
  ASSERT_TRUE(sender->Finish().ok());
  central.Stop();
}

// Satellite regression (TSan): readers racing the writer's epoch cuts must
// only ever observe fully consistent snapshots. With one region pushing a
// constant number of reports per epoch into a W-epoch window, EVERY
// published view must satisfy reports == min(frontier+1, W) * per-epoch —
// any torn combination of (epoch, sketch) breaks the equation. Sequence
// numbers must be monotone per reader, and an AnswerQuery on a held view
// must echo exactly that view's identity.
TEST(NetQueryTest, ConcurrentEpochCutsNeverTearThePublishedView) {
  const SketchParams params = TestParams(4, 64, 9);
  const double epsilon = 2.0;
  constexpr uint64_t kWindow = 4;
  constexpr uint64_t kEpochs = 120;
  constexpr uint64_t kReportsPerEpoch = 256;
  WindowedView window(params, epsilon, kWindow, /*expected_regions=*/1);

  const std::vector<LdpReport> epoch_reports = MethodReports(
      params, epsilon, /*fap=*/false, kReportsPerEpoch, /*seed=*/31);

  std::atomic<bool> done{false};
  auto reader = [&] {
    uint64_t last_sequence = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::shared_ptr<const PublishedView> view = window.Published();
      ASSERT_NE(view, nullptr);
      EXPECT_GE(view->sequence, last_sequence);
      last_sequence = view->sequence;
      if (!view->aligned) {
        EXPECT_EQ(view->reports(), 0u);
        continue;
      }
      const uint64_t expected =
          std::min(view->epoch + 1, kWindow) * kReportsPerEpoch;
      EXPECT_EQ(view->reports(), expected)
          << "torn view at frontier " << view->epoch;
      QueryRequest request;
      request.kind = QueryKind::kFrequency;
      request.key = 3;
      auto answer = AnswerQuery(*view, request);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer->view_sequence, view->sequence);
      EXPECT_EQ(answer->view_epoch, view->epoch);
      EXPECT_EQ(answer->view_reports, expected);
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) readers.emplace_back(reader);

  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    LdpJoinSketchServer snapshot(params, epsilon);
    snapshot.AbsorbBatch(epoch_reports);
    window.OnEpochApplied(0, epoch, &snapshot);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const std::shared_ptr<const PublishedView> final_view = window.Published();
  EXPECT_EQ(final_view->epoch, kEpochs - 1);
  EXPECT_EQ(final_view->reports(), kWindow * kReportsPerEpoch);
}

// Same property at the server level: QUERY answered while a DATA session
// streams and a second connection forces republish churn via PING. Every
// answer must reflect a whole number of ingested envelopes (one shard ⇒
// the merge snapshot is envelope-atomic) and sequences stay monotone.
TEST(NetQueryTest, QueriesUnderSustainedIngestSeeOnlyWholeBatches) {
  const SketchParams params = TestParams(4, 64, 13);
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 1;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kBatch = 500;
  BinaryWriter writer;
  EncodeReportBatch(
      MethodReports(params, epsilon, /*fap=*/false, kBatch, 41), writer);
  const std::vector<uint8_t> envelope = writer.buffer();

  std::atomic<bool> stop{false};
  std::thread ingest([&] {
    auto sender =
        FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
    ASSERT_TRUE(sender.ok());
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(sender->SendEncodedBatch(envelope).ok());
      ASSERT_TRUE(sender->Ping().ok());  // republish under the queries
    }
    ASSERT_TRUE(sender->Finish().ok());
  });

  auto querier =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(querier.ok());
  QueryRequest request;
  request.kind = QueryKind::kFrequency;
  request.key = 11;
  uint64_t last_sequence = 0;
  for (int i = 0; i < 200; ++i) {
    auto response = querier->Query(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->view_reports % kBatch, 0u)
        << "answer from a torn mid-envelope snapshot";
    EXPECT_GE(response->view_sequence, last_sequence);
    last_sequence = response->view_sequence;
  }
  stop.store(true, std::memory_order_release);
  ingest.join();
  ASSERT_TRUE(querier->Finish().ok());
  server.Stop();
}

TEST(NetQueryTest, V2SessionsCannotQuery) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  // Well-behaved v2 client: FrameSender refuses locally, session unharmed.
  FrameSender::Options v2;
  v2.announce_version = 2;
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon, v2);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();
  EXPECT_EQ(sender->negotiated_version(), 2);
  QueryRequest request;
  request.kind = QueryKind::kFrequency;
  auto served = sender->Query(request);
  EXPECT_EQ(served.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sender->Finish().ok());

  // Hostile v2 peer that sends the QUERY anyway: ERROR + close, counted.
  SessionHello hello_fields;
  hello_fields.version = 2;
  hello_fields.k = static_cast<uint32_t>(params.k);
  hello_fields.m = static_cast<uint32_t>(params.m);
  hello_fields.seed = params.seed;
  hello_fields.epsilon = epsilon;
  auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(
      WriteNetFrame(*socket, NetFrameType::kHello, EncodeHello(hello_fields))
          .ok());
  auto hello_ok = ReadNetFrame(*socket, kMaxControlFramePayload);
  ASSERT_TRUE(hello_ok.ok() && hello_ok->type == NetFrameType::kHelloOk);
  auto session = DecodeHelloOk(hello_ok->payload);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->version, 2);  // negotiated down to the peer's version
  ASSERT_TRUE(WriteNetFrame(*socket, NetFrameType::kQuery,
                            EncodeQueryRequest(request))
                  .ok());
  auto reply = ReadNetFrame(*socket, kMaxControlFramePayload);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, NetFrameType::kError);
  EXPECT_EQ(DecodeErrorPayload(reply->payload).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ReadNetFrame(*socket, kMaxControlFramePayload).ok());

  // The server is unharmed: a v3 client still gets answers.
  auto v3 = FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(v3.ok());
  auto answered = v3->Query(request);
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  ASSERT_TRUE(v3->Finish().ok());
  server.Stop();
  EXPECT_GE(server.metrics().queries_rejected, 1u);
}

TEST(NetQueryTest, HostileQueryPayloadsDegradeCleanlyAndNeverStallFinalize) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  SessionHello hello_fields;
  hello_fields.k = static_cast<uint32_t>(params.k);
  hello_fields.m = static_cast<uint32_t>(params.m);
  hello_fields.seed = params.seed;
  hello_fields.epsilon = epsilon;
  const std::vector<uint8_t> hello = EncodeHello(hello_fields);
  auto open_session = [&]() -> Socket {
    auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(socket.ok());
    EXPECT_TRUE(WriteNetFrame(*socket, NetFrameType::kHello, hello).ok());
    auto reply = ReadNetFrame(*socket, kMaxControlFramePayload);
    EXPECT_TRUE(reply.ok() && reply->type == NetFrameType::kHelloOk);
    return std::move(*socket);
  };

  {  // Garbage QUERY payload: decode Corruption ⇒ ERROR + close.
    Socket socket = open_session();
    const std::vector<uint8_t> garbage(32, 0xFF);
    ASSERT_TRUE(WriteNetFrame(socket, NetFrameType::kQuery, garbage).ok());
    auto reply = ReadNetFrame(socket, kMaxControlFramePayload);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, NetFrameType::kError);
    EXPECT_FALSE(ReadNetFrame(socket, kMaxControlFramePayload).ok());
  }
  {  // Oversized declared QUERY length: rejected on the header alone.
    Socket socket = open_session();
    const uint32_t huge = 0x7FFFFFFFu;
    const uint8_t header[5] = {static_cast<uint8_t>(huge),
                               static_cast<uint8_t>(huge >> 8),
                               static_cast<uint8_t>(huge >> 16),
                               static_cast<uint8_t>(huge >> 24),
                               static_cast<uint8_t>(NetFrameType::kQuery)};
    ASSERT_TRUE(socket.SendAll(header).ok());
    auto reply = ReadNetFrame(socket, kMaxControlFramePayload);
    if (reply.ok()) {
      EXPECT_EQ(reply->type, NetFrameType::kError);
    }
    // The server must also CLOSE: an open fd would park a peer that is
    // still mid-send on the oversized payload (see the MidSend test).
    EXPECT_FALSE(ReadNetFrame(socket, kMaxControlFramePayload).ok());
  }

  // Semantically invalid requests get ERROR but keep the session: an
  // unbounded frequent-items scan, then a probe with mismatched params.
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  {
    QueryRequest scan;
    scan.kind = QueryKind::kFrequentItems;
    scan.domain = kMaxQueryDomain + 1;
    auto rejected = sender->Query(scan);
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  }
  {
    SketchParams wrong = params;
    wrong.seed = params.seed + 1;
    QueryRequest join;
    join.kind = QueryKind::kJoinSize;
    join.probe_sketch = RawProbeBytes(wrong, epsilon, 100, 3);
    auto rejected = sender->Query(join);
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  }
  // Same session still answers valid queries and — the regression this
  // guards — the finalize barrier still completes promptly.
  QueryRequest valid;
  valid.kind = QueryKind::kFrequency;
  valid.key = 1;
  auto answered = sender->Query(valid);
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  ASSERT_TRUE(sender->RequestFinalize().ok());
  server.Stop();
  const NetMetrics metrics = server.metrics();
  // Garbage payload + unbounded scan + mismatched probe all rejected; only
  // the one valid frequency query was served.
  EXPECT_GE(metrics.queries_rejected, 3u);
  EXPECT_EQ(metrics.query_frames, 1u);
}

// Regression: a peer caught mid-send on an oversized QUERY frame used to
// park forever — the server sent ERROR and left the reader loop, but only
// marked the connection for reaping (which needs a later accept or reader
// exit to happen), so the fd stayed open and the peer stayed blocked in
// send() against a full socket buffer. The server must shut the socket
// down immediately so the peer's send fails with a reset instead.
TEST(NetQueryTest, OversizedQueryFrameMidSendIsCutNotParked) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(socket.ok());
  // Backstops only: on a correct server the send fails within milliseconds
  // of the header arriving. These keep a regression from hanging the suite.
  socket->SetSendTimeout(30);
  socket->SetRecvTimeout(30);
  SessionHello hello_fields;
  hello_fields.k = static_cast<uint32_t>(params.k);
  hello_fields.m = static_cast<uint32_t>(params.m);
  hello_fields.seed = params.seed;
  hello_fields.epsilon = epsilon;
  ASSERT_TRUE(
      WriteNetFrame(*socket, NetFrameType::kHello, EncodeHello(hello_fields))
          .ok());
  auto hello_ok = ReadNetFrame(*socket, kMaxControlFramePayload);
  ASSERT_TRUE(hello_ok.ok() && hello_ok->type == NetFrameType::kHelloOk);

  // Declare one byte past the server's session cap, then stream the payload
  // the way a real sender blocked mid-frame would.
  const uint64_t declared = kMaxQueryFramePayload + 65;
  const uint8_t header[5] = {static_cast<uint8_t>(declared),
                             static_cast<uint8_t>(declared >> 8),
                             static_cast<uint8_t>(declared >> 16),
                             static_cast<uint8_t>(declared >> 24),
                             static_cast<uint8_t>(NetFrameType::kQuery)};
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(socket->SendAll(header).ok());
  const std::vector<uint8_t> chunk(256 * 1024, 0);
  uint64_t streamed = 0;
  bool send_failed = false;
  while (streamed < declared) {
    const size_t n =
        std::min<uint64_t>(chunk.size(), declared - streamed);
    if (!socket->SendAll(std::span<const uint8_t>(chunk.data(), n)).ok()) {
      send_failed = true;
      break;
    }
    streamed += n;
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The reset must arrive long before the payload is through (loopback
  // buffers a few hundred KB at most) and long before the 30 s backstop —
  // a parked sender fails both of these.
  EXPECT_TRUE(send_failed) << "streamed all " << streamed << " bytes";
  EXPECT_LT(streamed, declared);
  EXPECT_LT(elapsed_s, 10.0);

  server.Stop();
  EXPECT_GE(server.metrics().corrupt_frames_rejected, 1u);
}

// The sender refuses to ship a request the server is guaranteed to refuse
// from the length prefix alone: the caller gets InvalidArgument without a
// single byte hitting the wire, and the session stays usable.
TEST(NetQueryTest, OversizedQueryRequestsFailFastClientSide) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  QueryRequest big;
  big.kind = QueryKind::kJoinSize;
  big.probe_sketch.assign(kMaxQueryFramePayload + 1, 0);
  auto rejected = sender->Query(big);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  QueryRequest valid;
  valid.kind = QueryKind::kFrequency;
  valid.key = 9;
  auto answered = sender->Query(valid);
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();

  server.Stop();
  const NetMetrics metrics = server.metrics();
  // The oversized request never left the client: the server saw exactly one
  // (valid) query and nothing corrupt.
  EXPECT_EQ(metrics.query_frames, 1u);
  EXPECT_EQ(metrics.corrupt_frames_rejected, 0u);
}

}  // namespace
}  // namespace ldpjs
