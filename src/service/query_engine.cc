#include "service/query_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/aqp.h"
#include "core/freq_items.h"
#include "core/multiway.h"

namespace ldpjs {

namespace {

/// Decodes a probe sketch and finalizes it if it arrived as raw lanes —
/// clients may ship either; the estimate needs finalized cells.
Result<LdpJoinSketchServer> DecodeProbe(std::span<const uint8_t> bytes) {
  auto probe = LdpJoinSketchServer::Deserialize(bytes);
  if (!probe.ok()) return probe.status();
  if (!probe->finalized()) probe->Finalize();
  return probe;
}

/// The probe must share the view sketch's shape and hash seed, or the
/// downstream estimator would abort on its contract checks.
Status CheckProbeMatches(const LdpJoinSketchServer& view_sketch,
                         const LdpJoinSketchServer& probe) {
  if (probe.params().k != view_sketch.params().k ||
      probe.params().m != view_sketch.params().m ||
      probe.params().seed != view_sketch.params().seed) {
    return Status::InvalidArgument(
        "probe sketch params do not match the served view (k/m/seed)");
  }
  return Status::OK();
}

Status CheckRange(uint64_t lo, uint64_t hi) {
  if (lo > hi) return Status::InvalidArgument("query range lo > hi");
  const uint64_t width = hi - lo + 1;  // lo <= hi, so no overflow
  if (width == 0 || width > kMaxQueryRangeWidth) {
    return Status::InvalidArgument("query range width exceeds the limit of " +
                                   std::to_string(kMaxQueryRangeWidth));
  }
  return Status::OK();
}

}  // namespace

Result<QueryResponse> AnswerQuery(const PublishedView& view,
                                  const QueryRequest& request) {
  QueryResponse response;
  response.kind = request.kind;
  response.view_sequence = view.sequence;
  response.view_aligned = view.aligned;
  response.view_epoch = view.epoch;
  response.view_reports = view.reports();

  switch (request.kind) {
    case QueryKind::kJoinSize: {
      auto probe = DecodeProbe(request.probe_sketch);
      if (!probe.ok()) return probe.status();
      LDPJS_RETURN_IF_ERROR(CheckProbeMatches(view.sketch, *probe));
      response.value = view.sketch.JoinEstimate(*probe);
      break;
    }
    case QueryKind::kFrequency: {
      response.value = view.sketch.FrequencyEstimate(request.key);
      break;
    }
    case QueryKind::kFrequentItems: {
      if (request.domain == 0 || request.domain > kMaxQueryDomain) {
        return Status::InvalidArgument(
            "frequent-items domain must be in [1, " +
            std::to_string(kMaxQueryDomain) + "]");
      }
      if (!std::isfinite(request.threshold)) {
        return Status::InvalidArgument("frequent-items threshold not finite");
      }
      const std::unordered_set<uint64_t> items =
          FindFrequentItems(view.sketch, request.domain, request.threshold);
      response.items.assign(items.begin(), items.end());
      std::sort(response.items.begin(), response.items.end());
      response.value = static_cast<double>(response.items.size());
      break;
    }
    case QueryKind::kMultiwayChain: {
      if (request.middles.empty()) {
        return Status::InvalidArgument("multiway chain needs >= 1 middle");
      }
      if (request.middles.size() > kMaxQueryMiddles) {
        return Status::InvalidArgument("too many multiway middles");
      }
      std::vector<LdpMultiwayServer> middles;
      middles.reserve(request.middles.size());
      for (const auto& bytes : request.middles) {
        auto middle = LdpMultiwayServer::Deserialize(bytes);
        if (!middle.ok()) return middle.status();
        if (!middle->finalized()) {
          return Status::InvalidArgument(
              "multiway middles must arrive finalized");
        }
        if (middle->params().k != view.sketch.params().k) {
          return Status::InvalidArgument("multiway middle k mismatch");
        }
        middles.push_back(std::move(*middle));
      }
      auto probe = DecodeProbe(request.probe_sketch);
      if (!probe.ok()) return probe.status();
      if (probe->params().k != view.sketch.params().k) {
        return Status::InvalidArgument("multiway probe k mismatch");
      }
      // Chain dimensions must agree link by link (the estimator CHECKs
      // them): view.m == first.m_left, middle[i].m_right ==
      // middle[i+1].m_left, last.m_right == probe.m.
      int dim = view.sketch.params().m;
      for (const LdpMultiwayServer& middle : middles) {
        if (middle.params().m_left != dim) {
          return Status::InvalidArgument("multiway chain dimension mismatch");
        }
        dim = middle.params().m_right;
      }
      if (probe->params().m != dim) {
        return Status::InvalidArgument("multiway chain dimension mismatch");
      }
      std::vector<const LdpMultiwayServer*> middle_ptrs;
      middle_ptrs.reserve(middles.size());
      for (const LdpMultiwayServer& middle : middles) {
        middle_ptrs.push_back(&middle);
      }
      response.value =
          LdpChainJoinEstimate(view.sketch, middle_ptrs, *probe);
      break;
    }
    case QueryKind::kRangeCount: {
      LDPJS_RETURN_IF_ERROR(CheckRange(request.range_lo, request.range_hi));
      response.value = RangeCountEstimate(
          view.sketch, ValueRange{request.range_lo, request.range_hi});
      break;
    }
    case QueryKind::kPredicateJoin: {
      LDPJS_RETURN_IF_ERROR(CheckRange(request.range_lo, request.range_hi));
      auto probe = DecodeProbe(request.probe_sketch);
      if (!probe.ok()) return probe.status();
      LDPJS_RETURN_IF_ERROR(CheckProbeMatches(view.sketch, *probe));
      response.value = PredicateJoinEstimate(
          view.sketch, *probe, ValueRange{request.range_lo, request.range_hi});
      break;
    }
    default:
      return Status::InvalidArgument("unknown query kind");
  }
  return response;
}

}  // namespace ldpjs
