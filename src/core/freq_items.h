// Phase 1 of LDPJoinSketch+ (paper §V-C): find the frequent join values from
// the LDPJoinSketches built over sampled users, using the unbiased frequency
// estimator of Theorem 7.
#ifndef LDPJS_CORE_FREQ_ITEMS_H_
#define LDPJS_CORE_FREQ_ITEMS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/ldp_join_sketch.h"

namespace ldpjs {

/// Values d in [0, domain) with estimated sketch frequency > threshold.
/// `threshold` is in *sample counts*: for full-table threshold θ·|A| and a
/// sample of |S_A| users, pass θ·|S_A| (the two are equivalent because the
/// sketch estimates sample frequencies).
std::unordered_set<uint64_t> FindFrequentItems(
    const LdpJoinSketchServer& sketch, uint64_t domain, double threshold);

/// FI = FI_A ∪ FI_B with per-attribute thresholds (paper: θ·|S_A|, θ·|S_B|).
std::unordered_set<uint64_t> FindFrequentItemsUnion(
    const LdpJoinSketchServer& sketch_a, const LdpJoinSketchServer& sketch_b,
    uint64_t domain, double threshold_a, double threshold_b);

/// Σ_{d ∈ FI} max(0, f̂(d)) scaled by `scale` — the estimated total
/// frequency mass of the FI items on the full table (Algorithm 5 lines 1-4,
/// scale = |A|/|S_A|). Clamped below at 0 per item because sketch estimates
/// of infrequent items can be negative.
double EstimateFrequentMass(const LdpJoinSketchServer& sketch,
                            const std::unordered_set<uint64_t>& items,
                            double scale);

}  // namespace ldpjs

#endif  // LDPJS_CORE_FREQ_ITEMS_H_
