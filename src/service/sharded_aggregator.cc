#include "service/sharded_aggregator.h"

#include <cstring>

#include "common/serialize.h"
#include "common/thread_pool.h"

namespace ldpjs {

ShardedAggregator::ShardedAggregator(const SketchParams& params,
                                     double epsilon, size_t num_shards) {
  if (num_shards == 0) num_shards = SharedThreadPool().num_threads();
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) shards_.emplace_back(params, epsilon);
}

Status ShardedAggregator::IngestFrame(std::span<const uint8_t> frame) {
  LDPJS_RETURN_IF_ERROR(shards_[next_shard_].IngestFrame(frame));
  next_shard_ = (next_shard_ + 1) % shards_.size();
  return Status::OK();
}

Status ShardedAggregator::IngestFrameToShard(size_t shard,
                                             std::span<const uint8_t> frame) {
  LDPJS_CHECK(shard < shards_.size());
  return shards_[shard].IngestFrame(frame);
}

Result<LdpJoinSketchServer> ShardedAggregator::DecodeCompatibleSketch(
    std::span<const uint8_t> bytes) const {
  auto pushed = LdpJoinSketchServer::Deserialize(bytes);
  if (!pushed.ok()) return pushed.status();
  if (pushed->finalized()) {
    return Status::FailedPrecondition(
        "pushed sketch is finalized: only raw-lane snapshots merge");
  }
  const LdpJoinSketchServer& mine = shards_[0].sketch();
  const SketchParams& theirs = pushed->params();
  // Epsilon compares as bits: mismatched debias scales must never merge.
  const double e_theirs = pushed->epsilon();
  const double e_mine = mine.epsilon();
  uint64_t eps_theirs = 0, eps_mine = 0;
  std::memcpy(&eps_theirs, &e_theirs, sizeof(eps_theirs));
  std::memcpy(&eps_mine, &e_mine, sizeof(eps_mine));
  if (theirs.k != mine.params().k || theirs.m != mine.params().m ||
      theirs.seed != mine.params().seed || eps_theirs != eps_mine) {
    return Status::FailedPrecondition(
        "pushed sketch params mismatch: lanes are not mergeable");
  }
  return pushed;
}

void ShardedAggregator::MergeRawSketch(size_t shard,
                                       const LdpJoinSketchServer& sketch) {
  LDPJS_CHECK(shard < shards_.size());
  shards_[shard].MergeRaw(sketch);
}

void ShardedAggregator::SubtractRawSketch(size_t shard,
                                          const LdpJoinSketchServer& sketch) {
  LDPJS_CHECK(shard < shards_.size());
  shards_[shard].SubtractRaw(sketch);
}

ShardedAggregator::EpochCut ShardedAggregator::CutEpoch() {
  EpochCut cut;
  LdpJoinSketchServer merged = MergeShards();
  cut.reports = merged.total_reports();
  cut.raw_sketch = merged.Serialize();
  for (AggregatorShard& shard : shards_) shard.Reset();
  return cut;
}

Status ShardedAggregator::IngestStream(std::span<const uint8_t> stream) {
  // Index the frames first (a cheap scan of the length prefixes), so the
  // parallel phase touches disjoint shard state only.
  std::vector<std::span<const uint8_t>> frames;
  BinaryReader reader(stream);
  while (!reader.AtEnd()) {
    auto frame = reader.GetFrame();
    if (!frame.ok()) return frame.status();
    frames.push_back(*frame);
  }
  return IngestFrames(frames);
}

Status ShardedAggregator::IngestFrames(
    std::span<const std::span<const uint8_t>> frames) {
  const size_t n_shards = shards_.size();
  std::vector<Status> shard_status(n_shards);
  SharedParallelFor(
      n_shards, frames.size() * kMaxWireBatchReports,
      [&](size_t, size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          for (size_t i = s; i < frames.size(); i += n_shards) {
            shard_status[s] = shards_[s].IngestFrame(frames[i]);
            if (!shard_status[s].ok()) break;
          }
        }
      });
  for (const Status& status : shard_status) LDPJS_RETURN_IF_ERROR(status);
  return Status::OK();
}

LdpJoinSketchServer ShardedAggregator::MergeShards() const {
  LdpJoinSketchServer merged(shards_[0].sketch().params(),
                             shards_[0].sketch().epsilon());
  for (const AggregatorShard& shard : shards_) merged.Merge(shard.sketch());
  return merged;
}

LdpJoinSketchServer ShardedAggregator::Finalize() const {
  LdpJoinSketchServer merged = MergeShards();
  merged.Finalize();
  return merged;
}

uint64_t ShardedAggregator::frames_ingested() const {
  uint64_t total = 0;
  for (const AggregatorShard& shard : shards_) total += shard.frames_ingested();
  return total;
}

uint64_t ShardedAggregator::reports_ingested() const {
  uint64_t total = 0;
  for (const AggregatorShard& shard : shards_) {
    total += shard.reports_ingested();
  }
  return total;
}

}  // namespace ldpjs
