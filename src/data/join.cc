#include "data/join.h"

#include "common/status.h"

namespace ldpjs {

double ExactJoinSize(const Column& a, const Column& b) {
  LDPJS_CHECK(a.domain() == b.domain());
  return ExactJoinSize(a.Frequencies(), b.Frequencies());
}

double ExactJoinSize(const std::vector<uint64_t>& freq_a,
                     const std::vector<uint64_t>& freq_b) {
  LDPJS_CHECK(freq_a.size() == freq_b.size());
  double acc = 0.0;
  for (size_t d = 0; d < freq_a.size(); ++d) {
    acc += static_cast<double>(freq_a[d]) * static_cast<double>(freq_b[d]);
  }
  return acc;
}

double ExactChainJoinSize(const Column& end_left,
                          const std::vector<PairColumn>& middles,
                          const Column& end_right) {
  // reach[v] = number of join paths from T1 rows to key value v of the
  // current attribute.
  std::vector<double> reach(end_left.domain(), 0.0);
  for (uint64_t v : end_left.values()) reach[v] += 1.0;

  for (const PairColumn& mid : middles) {
    LDPJS_CHECK(mid.left_domain == reach.size());
    LDPJS_CHECK(mid.left.size() == mid.right.size());
    std::vector<double> next(mid.right_domain, 0.0);
    for (size_t i = 0; i < mid.size(); ++i) {
      next[mid.right[i]] += reach[mid.left[i]];
    }
    reach = std::move(next);
  }

  LDPJS_CHECK(end_right.domain() == reach.size());
  double total = 0.0;
  for (uint64_t v : end_right.values()) total += reach[v];
  return total;
}

double ExactCyclicJoinSize(const std::vector<PairColumn>& tables) {
  LDPJS_CHECK(tables.size() >= 2);
  for (size_t i = 0; i < tables.size(); ++i) {
    const PairColumn& current = tables[i];
    const PairColumn& next = tables[(i + 1) % tables.size()];
    LDPJS_CHECK(current.left.size() == current.right.size());
    LDPJS_CHECK(current.right_domain == next.left_domain);
    LDPJS_CHECK(current.left_domain <= 4096 && current.right_domain <= 4096);
  }
  // acc = F1 * F2 * ... * Fp accumulated as dense row-major matrices.
  auto to_dense = [](const PairColumn& t) {
    std::vector<double> dense(t.left_domain * t.right_domain, 0.0);
    for (size_t i = 0; i < t.size(); ++i) {
      dense[t.left[i] * t.right_domain + t.right[i]] += 1.0;
    }
    return dense;
  };
  std::vector<double> acc = to_dense(tables[0]);
  uint64_t acc_rows = tables[0].left_domain;
  uint64_t acc_cols = tables[0].right_domain;
  for (size_t t = 1; t < tables.size(); ++t) {
    const std::vector<double> next = to_dense(tables[t]);
    const uint64_t next_cols = tables[t].right_domain;
    std::vector<double> product(acc_rows * next_cols, 0.0);
    for (uint64_t i = 0; i < acc_rows; ++i) {
      for (uint64_t j = 0; j < acc_cols; ++j) {
        const double v = acc[i * acc_cols + j];
        if (v == 0.0) continue;
        for (uint64_t x = 0; x < next_cols; ++x) {
          product[i * next_cols + x] += v * next[j * next_cols + x];
        }
      }
    }
    acc = std::move(product);
    acc_cols = next_cols;
  }
  LDPJS_CHECK(acc_rows == acc_cols);
  double trace = 0.0;
  for (uint64_t i = 0; i < acc_rows; ++i) trace += acc[i * acc_cols + i];
  return trace;
}

double FrequencyMomentF1(const Column& column) {
  return static_cast<double>(column.size());
}

double FrequencyMomentF2(const Column& column) {
  double acc = 0.0;
  for (uint64_t f : column.Frequencies()) {
    acc += static_cast<double>(f) * static_cast<double>(f);
  }
  return acc;
}

}  // namespace ldpjs
