// Exact join-size ground truth and frequency moments.
//
// For the paper's query  SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B,
// |A ⋈ B| = Σ_d f_A(d) · f_B(d): the inner product of the two frequency
// vectors. Also provides F1/F2 moments used by the error-bound theorems.
#ifndef LDPJS_DATA_JOIN_H_
#define LDPJS_DATA_JOIN_H_

#include <cstdint>
#include <vector>

#include "data/column.h"

namespace ldpjs {

/// Exact |A ⋈ B|. Requires equal domains.
double ExactJoinSize(const Column& a, const Column& b);

/// Exact inner product of two dense frequency vectors (equal length).
double ExactJoinSize(const std::vector<uint64_t>& freq_a,
                     const std::vector<uint64_t>& freq_b);

/// Exact chain-join size across >= 2 columns sharing pairwise join keys:
/// |T1(A) ⋈ T2(A,B) ⋈ ... |. `middles[i]` holds the (left,right) key pairs
/// of the i-th middle table. See multiway.h for the sketch counterpart.
struct PairColumn {
  std::vector<uint64_t> left;   ///< values of the left join attribute
  std::vector<uint64_t> right;  ///< values of the right join attribute
  uint64_t left_domain = 0;
  uint64_t right_domain = 0;

  size_t size() const { return left.size(); }
};

/// Exact size of the chain join  end_left(A) ⋈ middles... ⋈ end_right(Z)
/// computed by dynamic programming over frequency vectors. `middles` may be
/// empty, giving the 2-way join of the two end columns (requires equal
/// domains in that case).
double ExactChainJoinSize(const Column& end_left,
                          const std::vector<PairColumn>& middles,
                          const Column& end_right);

/// Exact size of the cyclic join T1(A1,A2) ⋈ T2(A2,A3) ⋈ ... ⋈ Tp(Ap,A1)
/// (paper §VI discussion): the trace of the product of the tables'
/// frequency matrices. Adjacent domains must match around the ring.
/// Materializes dense matrices — intended for validation workloads; every
/// domain must be <= 4096.
double ExactCyclicJoinSize(const std::vector<PairColumn>& tables);

/// F1(X) = Σ f(d) (i.e. row count) — Definition 3.
double FrequencyMomentF1(const Column& column);

/// F2(X) = Σ f(d)^2 — Definition 3 (self-join size).
double FrequencyMomentF2(const Column& column);

}  // namespace ldpjs

#endif  // LDPJS_DATA_JOIN_H_
