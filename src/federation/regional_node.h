// RegionalNode: one regional tier of the federated aggregation topology.
//
//   clients ──LJSP/DATA──▶ RegionalNode(FrameServer, N shards)
//                               │  EpochScheduler tick:
//                               │    cut raw-lane snapshot → lanes reset
//                               ▼
//                          FrameSender ──LJSP/EPOCH_PUSH──▶ central
//
// Each epoch tick cuts the region's raw integer lanes (serialize + reset,
// see FrameServer::CutEpochSnapshot) and ships the snapshot upstream over
// the LJSP session protocol with retry/resume: a failed ship (central
// restarting, connection cut mid-push) reconnects and re-pushes the same
// (region, epoch); the central dedups on that key, so a push that was
// merged but not acked cannot double-count. A snapshot that exhausts its
// attempt budget stays in the pending queue and resumes on the next tick
// or the final flush — an unreachable central delays data, it never loses
// or duplicates it. That is what makes the federated estimate bit-identical
// to single-node ingestion of the union of all client streams.
//
// Empty epochs (no reports since the last cut) ship as 12-byte heartbeats
// instead of k·m zero lanes — consecutive idle cuts coalesce into one —
// so the central still sees this region's epoch clock advance (the
// windowed view's aligned frontier would otherwise freeze on an idle
// region) without spending snapshot-sized uplink to say nothing. The
// terminal flush skips its empty cut entirely: after it the region is
// done, and advancing its clock past its data would only push the
// aligned frontier into an epoch that cannot exist.
#ifndef LDPJS_FEDERATION_REGIONAL_NODE_H_
#define LDPJS_FEDERATION_REGIONAL_NODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "federation/epoch_scheduler.h"
#include "federation/snapshot_spool.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"

namespace ldpjs {

struct RegionalNodeOptions {
  uint32_t region_id = 0;
  std::string central_host = "127.0.0.1";
  uint16_t central_port = 0;
  /// Region-facing ingest server (port, shards, queue, backpressure).
  FrameServerOptions server;
  /// Wall-clock epoch period; 0 = cut only on explicit CutAndShip() calls
  /// (deterministic mode for tests and report-count-driven drivers).
  int epoch_millis = 0;
  /// Ship retry budget per CutAndShip call, across reconnects. Exhaustion
  /// returns Unavailable but keeps the snapshots pending for next time.
  int max_ship_attempts = 8;
  /// Jittered exponential backoff between ship attempts (replaces the old
  /// fixed ship_retry_millis interval: N regions retrying a recovering
  /// central on a fixed interval arrive as one synchronized herd).
  BackoffOptions ship_backoff{.base_micros = 2000, .cap_micros = 500000};
  /// Durable spool directory. Empty (default) = in-memory pending queue
  /// only. Non-empty: every data-bearing epoch cut is persisted (fsynced)
  /// to <spool_dir>/region-<id>.spool before shipping, and Start()
  /// rebuilds the pending queue from the spool after a crash — see
  /// SnapshotSpool for the exactly-once story.
  std::string spool_dir;
  /// SO_RCVTIMEO for upstream sessions: caps how long a ship can wait on a
  /// hung central for any ack before failing over to reconnect+retry.
  /// 0 disables (a healthy central acks promptly; chaos runs arm this).
  int upstream_recv_timeout_seconds = 0;
  /// Fault-injection site label for upstream sessions (chaos runs), e.g.
  /// "region0.up". Empty disables.
  std::string upstream_fault_site;
  /// Forward a client's FINALIZE upstream during FlushAndStop — the CLI
  /// deployment's signal that this region's collection is complete.
  bool forward_finalize = false;
  /// Ship this node's full stats snapshot (counters, gauges, raw histogram
  /// buckets) to the central as LJSP v5 STATS_PUSH after ship cycles, at
  /// most once per stats_push_period_ms (plus a final push at flush).
  /// Silently off against a v4-or-older central — the negotiated version
  /// gates it, so old peers stay byte-untouched. A failed push is counted,
  /// never fatal: telemetry must not interfere with data shipping.
  bool push_stats = true;
  int stats_push_period_ms = 1000;
};

class RegionalNode {
 public:
  RegionalNode(const SketchParams& params, double epsilon,
               const RegionalNodeOptions& options);
  ~RegionalNode();

  RegionalNode(const RegionalNode&) = delete;
  RegionalNode& operator=(const RegionalNode&) = delete;

  /// Starts the ingest server and, if epoch_millis > 0, the scheduler.
  /// With spool_dir set, first opens/recovers the durable spool: pending
  /// epochs a crashed predecessor never shipped re-enter the queue (and
  /// next_epoch_ resumes above them), so the following ships lose nothing.
  Status Start();

  /// Region-facing ingest port (valid after Start).
  uint16_t port() const { return server_.port(); }

  /// One epoch: cut the lanes, queue the snapshot, ship everything pending
  /// in epoch order. Returns Unavailable if the central stayed unreachable
  /// for the attempt budget — the data is retained and re-shipped on the
  /// next call. Serialized with the scheduler's ticks.
  Status CutAndShip();

  /// Stops the scheduler and the ingest server (draining every queued
  /// frame), cuts the final epoch, and ships everything still pending —
  /// after this returns OK, every report any client pushed to this region
  /// is merged into the central lanes exactly once. Idempotent.
  Status FlushAndStop();

  const FrameServer& server() const { return server_; }
  FrameServer& server_mutable() { return server_; }

  /// The ingest server's NetMetrics augmented with this node's robustness
  /// counters: ship retries, cumulative ship backoff, and spool traffic.
  NetMetrics metrics() const;

  uint64_t epochs_shipped() const;
  uint64_t snapshot_bytes_shipped() const;
  uint64_t ship_retries() const;
  /// Pushes the central resolved as already-applied (a retry whose
  /// original did land — the exactly-once path taken).
  uint64_t duplicate_acks() const;
  size_t pending_snapshots() const;
  /// Pending snapshots renumbered by a connect-time epoch sync (a restart
  /// that would otherwise have collided with the previous incarnation).
  uint64_t epochs_renumbered() const;
  /// The next epoch number a cut will take (tests observe the sync).
  uint64_t next_epoch() const;
  /// Pending epochs rebuilt from the durable spool at Start().
  uint64_t spool_epochs_resumed() const;
  /// Spool append/sync failures (shipping continued from memory).
  uint64_t spool_errors() const;
  /// STATS_PUSH frames acked by the central / attempts that failed.
  uint64_t stats_pushes() const;
  uint64_t stats_push_failures() const;

 private:
  struct PendingSnapshot {
    uint64_t epoch;
    std::vector<uint8_t> raw_sketch;
    /// A push for this snapshot was written to some upstream connection.
    /// Its number is then frozen: the outcome may be ambiguous (merged but
    /// unacked), and only a retry of the SAME (region, epoch) lets the
    /// central's dedup resolve it to exactly-once. Un-attempted snapshots
    /// are safely renumbered by the connect-time epoch sync.
    bool attempted = false;
    /// Oldest sampled trace absorbed into this cut (claimed from the ingest
    /// server at cut time). Rides the EPOCH_PUSH as a TRACED envelope with
    /// the client origin preserved, so the central's view publish measures
    /// true client→central ingest-to-queryable latency. Spooled alongside
    /// the epoch (kTrace record), so even a crash-replayed epoch ships
    /// traced with the original origin.
    TraceContext trace;
  };

  /// Ships every pending snapshot in epoch order; stops at the first
  /// snapshot whose attempt budget runs out.
  Status ShipPendingLocked() LDPJS_REQUIRES(ship_mu_);

  /// Connect-time epoch sync: folds the central's next-expected epoch for
  /// this region (from the HELLO_OK) into our numbering — un-attempted
  /// pending snapshots below it are renumbered upwards and next_epoch_
  /// adopts max(local, central). This is what makes epoch numbers survive
  /// restarts: a fresh incarnation starts at 0, syncs on first connect,
  /// and can never collide with (and be silently deduped against) an
  /// epoch its predecessor already shipped.
  void AdoptCentralEpoch(uint64_t central_next_epoch)
      LDPJS_REQUIRES(ship_mu_);

  /// Write-ahead helpers around the spool: no-ops when the spool is off or
  /// the snapshot is a heartbeat; a disk failure counts spool_errors_ and
  /// shipping continues from memory (durability degrades, data does not
  /// stop flowing).
  void SpoolAppendLocked(const PendingSnapshot& snap)
      LDPJS_REQUIRES(ship_mu_);
  void SpoolMarkAttemptedLocked(const PendingSnapshot& snap)
      LDPJS_REQUIRES(ship_mu_);
  void SpoolMarkShippedLocked(const PendingSnapshot& snap)
      LDPJS_REQUIRES(ship_mu_);

  /// This node's stats as a v5 fleet snapshot: the process-global registry
  /// plus the synthetic `net_*` series the central's health evaluator reads
  /// (SignalsFromSnapshot) — frame/shed/corrupt counters, the frontier
  /// epoch, and the pending-queue depth.
  FleetSnapshot BuildStatsSnapshotLocked() const LDPJS_REQUIRES(ship_mu_);
  /// Pushes the snapshot upstream when the session is v5, push_stats is on,
  /// and the period elapsed (or `force`). A failure drops the upstream
  /// session (its state is ambiguous) and counts stats_push_failures_ —
  /// data shipping reconnects and is unaffected.
  void MaybePushStatsLocked(bool force) LDPJS_REQUIRES(ship_mu_);

  SketchParams params_;
  double epsilon_;
  RegionalNodeOptions options_;
  FrameServer server_;
  /// Per-region ship round-trip distribution (connect excluded): push
  /// written → ack decoded. Registered once at construction; recording is
  /// wait-free (see ObsHistogram).
  ObsHistogram* ship_rtt_hist_;
  /// Start()-time spool recovery duration (one sample per recovery).
  ObsHistogram* spool_replay_hist_;
  std::unique_ptr<EpochScheduler> scheduler_;
  /// Open iff options_.spool_dir non-empty.
  SnapshotSpool spool_ LDPJS_GUARDED_BY(ship_mu_);

  /// Serializes cut+ship: scheduler ticks, manual CutAndShip calls, and the
  /// final flush never interleave, so epochs are numbered and shipped in
  /// order (the central's dedup high-water relies on that).
  mutable Mutex ship_mu_;
  std::optional<FrameSender> upstream_ LDPJS_GUARDED_BY(ship_mu_);
  std::deque<PendingSnapshot> pending_ LDPJS_GUARDED_BY(ship_mu_);
  /// Incarnation-local monotonic epoch sequence, starting at 0 and synced
  /// with the central's per-region high-water on every (re)connect (see
  /// AdoptCentralEpoch). Earlier versions seeded this from the wall clock,
  /// which silently LOST data when a restart landed in the same clock tick
  /// or the clock stepped backwards — the central's dedup discarded the
  /// new incarnation's colliding epochs as already applied.
  uint64_t next_epoch_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t epochs_shipped_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t snapshot_bytes_shipped_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t ship_retries_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t duplicate_acks_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t epochs_renumbered_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  /// Cumulative, across ship incidents.
  uint64_t ship_backoff_micros_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t spool_errors_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t stats_pushes_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t stats_push_failures_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  uint64_t last_stats_push_ns_ LDPJS_GUARDED_BY(ship_mu_) = 0;
  /// True once any upstream session existed — the next successful connect
  /// is then a reconnect worth an event-log entry.
  bool had_upstream_ LDPJS_GUARDED_BY(ship_mu_) = false;
  bool flushed_ LDPJS_GUARDED_BY(ship_mu_) = false;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_REGIONAL_NODE_H_
