#include "federation/central_node.h"

namespace ldpjs {

FrameServerOptions CentralNode::WithEpochObserver(FrameServerOptions options,
                                                  WindowedView* window) {
  if (window != nullptr) {
    options.epoch_observer = [window](uint32_t region_id, uint64_t epoch,
                                      LdpJoinSketchServer* snapshot) {
      window->OnEpochApplied(region_id, epoch, snapshot);
    };
    // A windowed central answers QUERY from the sliding window, not the
    // lifetime lanes: the response carries the window's aligned frontier
    // as its epoch identity. The window outlives the server (declared
    // before it), so the raw pointer is safe.
    options.query_view_source = [window] { return window->Published(); };
  }
  return options;
}

CentralNode::CentralNode(const SketchParams& params, double epsilon,
                         const CentralNodeOptions& options)
    : window_(options.window_epochs > 0
                  ? std::make_unique<WindowedView>(
                        params, epsilon, options.window_epochs,
                        options.window_expected_regions != 0
                            ? options.window_expected_regions
                            : (options.finalize_after == 0
                                   ? 1
                                   : options.finalize_after))
                  : nullptr),
      server_(params, epsilon,
              WithEpochObserver(options.server, window_.get())),
      finalize_after_(options.finalize_after == 0 ? 1
                                                  : options.finalize_after) {}

}  // namespace ldpjs
