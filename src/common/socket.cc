#include "common/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault_injector.h"

namespace ldpjs {

namespace {

Status ErrnoStatus(const std::string& op) {
  return Status::Internal(op + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Injection check for one operation on a labeled socket. Returns kNone —
/// without touching the injector — for unlabeled sockets or when no
/// injector is installed, so production traffic pays one branch.
FaultAction NextFault(const std::string& site, const char* op) {
  if (site.empty()) return {};
  FaultInjector* injector = FaultInjector::Active();
  if (injector == nullptr) return {};
  return injector->Next(site + op);
}

void InjectedDelay(uint64_t millis) {
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), fault_site_(std::move(other.fault_site_)) {
  other.fd_ = -1;
  other.fault_site_.clear();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    fault_site_ = std::move(other.fault_site_);
    other.fd_ = -1;
    other.fault_site_.clear();
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, 128) != 0) return ErrnoStatus("listen");
  return socket;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port,
                                  std::string fault_site) {
  const FaultAction fault = NextFault(fault_site, ".connect");
  switch (fault.kind) {
    case FaultKind::kRefuseConnect:
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) +
                                 ": injected connection refusal");
    case FaultKind::kDelay:
      InjectedDelay(fault.param);
      break;
    default:
      break;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::Unavailable("cannot resolve host " + host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return ErrnoStatus("socket");
  }
  Socket socket(fd);
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    // A signal can interrupt connect after the SYN is in flight; the
    // attempt keeps completing in the kernel and POSIX forbids re-issuing
    // connect (it would return EALREADY). Wait for the outcome with poll
    // and read it from SO_ERROR instead of surfacing a spurious failure.
    if (errno == EINTR) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int pr;
      do {
        pr = ::poll(&pfd, 1, -1);
      } while (pr < 0 && errno == EINTR);
      int err = pr > 0 ? 0 : errno;
      if (pr > 0) {
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
          err = errno;
        }
      }
      if (err != 0) {
        return Status::Unavailable("connect " + host + ":" + port_str + ": " +
                                   std::strerror(err));
      }
    } else {
      return Status::Unavailable("connect " + host + ":" + port_str + ": " +
                                 std::strerror(errno));
    }
  }
  SetNoDelay(fd);
  socket.fault_site_ = std::move(fault_site);
  return socket;
}

Result<Socket> Socket::Accept() const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;  // a signal is not a dead listener
    // Transient, connection-scoped conditions are worth retrying: the
    // aborted handshake's successor may be fine, and buffer pressure
    // drains. Process-scoped conditions (fd exhaustion, a bad listener fd)
    // fail every subsequent accept identically — retrying is a spin loop —
    // so they surface as Internal and the acceptor should stop.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ENOBUFS || errno == ENOMEM || errno == EPROTO) {
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    return Status::Internal(std::string("accept: ") + std::strerror(errno));
  }
}

Status Socket::SendRaw(std::span<const uint8_t> bytes) const {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SendFaulted(const FaultAction& action,
                           std::vector<uint8_t>& bytes) const {
  switch (action.kind) {
    case FaultKind::kDrop:
      // The caller believes the bytes left; the peer never sees them. The
      // stream is now desynced and only a reconnect + retry can heal it.
      return Status::OK();
    case FaultKind::kDelay:
      InjectedDelay(action.param);
      return SendRaw(bytes);
    case FaultKind::kPartialWrite: {
      if (!bytes.empty()) {
        const size_t prefix = action.param % bytes.size();
        (void)SendRaw(std::span<const uint8_t>(bytes.data(), prefix));
      }
      ShutdownBoth();
      return Status::Unavailable("send: injected partial write");
    }
    case FaultKind::kCorrupt:
      if (!bytes.empty()) bytes[action.param % bytes.size()] ^= 0x01;
      return SendRaw(bytes);
    case FaultKind::kDisconnect:
      ShutdownBoth();
      return Status::Unavailable("send: injected disconnect");
    default:
      return SendRaw(bytes);
  }
}

Status Socket::SendAll(std::span<const uint8_t> bytes) const {
  const FaultAction fault = NextFault(fault_site_, ".send");
  if (fault.kind != FaultKind::kNone) {
    std::vector<uint8_t> copy(bytes.begin(), bytes.end());
    return SendFaulted(fault, copy);
  }
  return SendRaw(bytes);
}

Status Socket::SendAllV(std::span<const uint8_t> head,
                        std::span<const uint8_t> body) const {
  const FaultAction fault = NextFault(fault_site_, ".send");
  if (fault.kind != FaultKind::kNone) {
    // Fault paths flatten the gathered write; their cost is irrelevant.
    std::vector<uint8_t> copy;
    copy.reserve(head.size() + body.size());
    copy.insert(copy.end(), head.begin(), head.end());
    copy.insert(copy.end(), body.begin(), body.end());
    return SendFaulted(fault, copy);
  }
  size_t sent = 0;
  const size_t total = head.size() + body.size();
  while (sent < total) {
    iovec iov[2];
    int iov_count = 0;
    if (sent < head.size()) {
      iov[iov_count].iov_base = const_cast<uint8_t*>(head.data() + sent);
      iov[iov_count].iov_len = head.size() - sent;
      ++iov_count;
    }
    const size_t body_sent = sent > head.size() ? sent - head.size() : 0;
    if (body_sent < body.size()) {
      iov[iov_count].iov_base = const_cast<uint8_t*>(body.data() + body_sent);
      iov[iov_count].iov_len = body.size() - body_sent;
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("sendmsg: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(std::span<uint8_t> out) const {
  const FaultAction fault = NextFault(fault_site_, ".recv");
  switch (fault.kind) {
    case FaultKind::kDelay:
      InjectedDelay(fault.param);
      break;
    case FaultKind::kDisconnect:
      ShutdownBoth();
      return Status::Unavailable("recv: injected disconnect");
    default:
      break;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Blocking sockets only see EAGAIN when SO_RCVTIMEO elapsed: the
      // peer went quiet past the configured deadline.
      return Status::DeadlineExceeded("recv: idle deadline elapsed");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Status Socket::RecvAll(std::span<uint8_t> out) const {
  size_t received = 0;
  while (received < out.size()) {
    auto n = RecvSome(out.subspan(received));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (received == 0) return Status::NotFound("end of stream");
      return Status::Corruption("connection closed mid-record");
    }
    received += *n;
  }
  return Status::OK();
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::SetSendTimeout(int seconds) const {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Socket::SetRecvTimeout(int seconds) const {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

}  // namespace ldpjs
