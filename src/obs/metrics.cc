#include "obs/metrics.h"

#include <time.h>

namespace ldpjs {

namespace {
std::atomic<bool> g_obs_enabled{true};
std::atomic<uint32_t> g_next_stripe{0};
}  // namespace

uint64_t NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

bool ObsEnabled() { return g_obs_enabled.load(std::memory_order_relaxed); }

void SetObsEnabled(bool enabled) {
  g_obs_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target observation, 1-based; ceil so p50 of two samples is
  // the first, not an interpolation the buckets cannot support anyway.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank * 1.0 < p * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == 0) return 0;
      if (i >= 64) return ~0ull;
      return (1ull << i) - 1;  // inclusive upper bound of bucket i
    }
  }
  return ~0ull;  // unreachable when count == sum of buckets
}

HistogramSnapshot MergeHistogram(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b) {
  HistogramSnapshot merged;
  merged.sum = a.sum + b.sum;
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    merged.buckets[i] = a.buckets[i] + b.buckets[i];
    merged.count += merged.buckets[i];
  }
  return merged;
}

size_t ObsHistogram::ThreadStripe() {
  thread_local const uint32_t slot =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed);
  return slot % kStripes;
}

HistogramSnapshot ObsHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Stripe& stripe : stripes_) {
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      snap.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  // Derived, not read from a separate counter: the snapshot can never claim
  // more (or fewer) observations than the buckets it just handed out.
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    snap.count += snap.buckets[i];
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

ObsCounter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<ObsCounter>())
             .first;
  }
  return it->second.get();
}

ObsGauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<ObsGauge>())
             .first;
  }
  return it->second.get();
}

ObsHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<ObsHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

HistogramSnapshot MetricsRegistry::HistogramByName(
    std::string_view name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return HistogramSnapshot{};
  return it->second->Snapshot();
}

}  // namespace ldpjs
