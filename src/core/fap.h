// Frequency-Aware Perturbation (FAP, paper §V-B, Algorithm 4).
//
// Given the public frequent-item set FI from phase 1, each phase-2 client
// encodes *target* values exactly like LDPJoinSketch and *non-target* values
// as a uniformly random one-hot v[r] = 1, r ~ U[m], independent of the true
// value. Both paths end in the same Hadamard-sample-and-flip step, so the
// server cannot tell target from non-target reports (Theorem 6: FAP is
// ε-LDP), yet the expected contribution of every non-target report spreads
// uniformly — 1/m per counter (Theorem 8) — and can be subtracted out.
//
// Which values are targets depends on the sketch being built:
//   mode = kHigh: targets are d ∈ FI  (sketch of high-frequency items)
//   mode = kLow : targets are d ∉ FI  (sketch of low-frequency items)
#ifndef LDPJS_CORE_FAP_H_
#define LDPJS_CORE_FAP_H_

#include <cstdint>
#include <unordered_set>

#include "core/ldp_join_sketch.h"

namespace ldpjs {

enum class FapMode {
  kHigh,  ///< the sketch summarizes high-frequency (FI) items
  kLow,   ///< the sketch summarizes low-frequency (non-FI) items
};

class FapClient {
 public:
  /// `frequent_items` is the public FI set broadcast by the server.
  FapClient(const SketchParams& params, double epsilon, FapMode mode,
            std::unordered_set<uint64_t> frequent_items);

  /// Algorithm 4. O(1) per call.
  LdpReport Perturb(uint64_t value, Xoshiro256& rng) const;

  /// Perturbs `values[i]` into `out[i]` drawing from `rng` sequentially:
  /// identical output to calling Perturb in a loop with the same engine
  /// (mirrors LdpJoinSketchClient::PerturbBatch for the batched pipeline).
  void PerturbBatch(std::span<const uint64_t> values, std::span<LdpReport> out,
                    Xoshiro256& rng) const;

  /// True iff `value` is a target value for this sketch's mode.
  bool IsTarget(uint64_t value) const;

  FapMode mode() const { return mode_; }
  const std::unordered_set<uint64_t>& frequent_items() const {
    return frequent_items_;
  }
  const LdpJoinSketchClient& inner_client() const { return inner_; }

 private:
  LdpJoinSketchClient inner_;
  FapMode mode_;
  std::unordered_set<uint64_t> frequent_items_;
};

}  // namespace ldpjs

#endif  // LDPJS_CORE_FAP_H_
