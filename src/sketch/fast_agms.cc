#include "sketch/fast_agms.h"

#include "common/stats.h"
#include "common/status.h"

namespace ldpjs {

FastAgmsSketch::FastAgmsSketch(uint64_t seed, int k, int m)
    : seed_(seed), k_(k), m_(m) {
  LDPJS_CHECK(k >= 1 && m >= 1);
  rows_ = MakeRowHashes(seed, k, static_cast<uint64_t>(m));
  cells_.assign(static_cast<size_t>(k) * static_cast<size_t>(m), 0.0);
}

void FastAgmsSketch::Update(uint64_t d, double weight) {
  for (int j = 0; j < k_; ++j) {
    const auto& row = rows_[static_cast<size_t>(j)];
    const uint64_t col = row.bucket(d);
    cells_[static_cast<size_t>(j) * static_cast<size_t>(m_) + col] +=
        weight * row.sign(d);
  }
}

void FastAgmsSketch::UpdateColumn(const Column& column) {
  for (uint64_t v : column.values()) Update(v);
}

double FastAgmsSketch::JoinEstimate(const FastAgmsSketch& other) const {
  LDPJS_CHECK(k_ == other.k_ && m_ == other.m_);
  LDPJS_CHECK(seed_ == other.seed_);
  std::vector<double> estimators(static_cast<size_t>(k_));
  for (int j = 0; j < k_; ++j) {
    double acc = 0.0;
    for (int x = 0; x < m_; ++x) {
      acc += cell(j, x) * other.cell(j, x);
    }
    estimators[static_cast<size_t>(j)] = acc;
  }
  return Median(estimators);
}

double FastAgmsSketch::FrequencyEstimate(uint64_t d) const {
  std::vector<double> estimators(static_cast<size_t>(k_));
  for (int j = 0; j < k_; ++j) {
    const auto& row = rows_[static_cast<size_t>(j)];
    estimators[static_cast<size_t>(j)] =
        cell(j, static_cast<int>(row.bucket(d))) * row.sign(d);
  }
  return Median(estimators);
}

double FastAgmsSketch::SecondMomentEstimate() const {
  return JoinEstimate(*this);
}

void FastAgmsSketch::Merge(const FastAgmsSketch& other) {
  LDPJS_CHECK(k_ == other.k_ && m_ == other.m_);
  LDPJS_CHECK(seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

size_t FastAgmsSketch::ByteSize() const {
  return cells_.size() * sizeof(double);
}

}  // namespace ldpjs
