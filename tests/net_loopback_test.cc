// TCP front end end-to-end: the acceptance bar is that estimates produced
// via a real loopback socket session are bit-identical to in-process
// ShardedAggregator ingestion, for shard counts {1, 4} and both join
// methods — and that no malformed frame, oversized length, corrupt
// envelope, params mismatch, or mid-stream disconnect can crash the server
// (these tests run under the CI ASan/UBSan job); each is counted in the
// metrics instead.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "core/join_methods.h"
#include "data/datasets.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "net/protocol.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> PerturbColumn(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

TEST(NetLoopbackTest, EstimatesBitIdenticalToInProcessForShardsAndMethods) {
  const JoinWorkload workload = MakeZipfWorkload(1.3, 5000, 20000, /*seed=*/5);
  for (const JoinMethod method :
       {JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus}) {
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      JoinMethodConfig config;
      config.epsilon = 2.0;
      config.sketch = TestParams();
      config.run_seed = 77;
      config.num_shards = shards;

      config.net_loopback = false;
      const double in_process =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;
      config.net_loopback = true;
      const double over_tcp =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;
      EXPECT_EQ(over_tcp, in_process)
          << "method=" << JoinMethodName(method) << " shards=" << shards;
    }
  }
}

TEST(NetLoopbackTest, SendReportsMatchesDirectAbsorbBitForBit) {
  const SketchParams params = TestParams();
  const double epsilon = 3.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 10000, 3);

  FrameServerOptions options;
  options.num_shards = 3;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());
  auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                     epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();
  EXPECT_EQ(sender->server_shards(), 3u);
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();

  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  LdpJoinSketchServer over_tcp = server.Finalize();
  direct.Finalize();
  // Finalized sketches serialize their cells; byte equality is the
  // strongest statement of bit-identity.
  EXPECT_EQ(over_tcp.Serialize(), direct.Serialize());

  const NetMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.reports_ingested, reports.size());
  EXPECT_EQ(metrics.corrupt_frames_rejected, 0u);
  uint64_t shard_reports = 0;
  for (const ShardMetrics& shard : metrics.shards) {
    shard_reports += shard.reports;
  }
  EXPECT_EQ(metrics.shards.size(), 3u);
  EXPECT_EQ(shard_reports, reports.size());
  EXPECT_GE(metrics.queue_high_water, 1u);
}

TEST(NetLoopbackTest, SnapshotMatchesDirectRawLanes) {
  const SketchParams params = TestParams();
  const double epsilon = 1.5;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 6000, 9);

  FrameServerOptions options;
  options.num_shards = 2;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender->SendReports(reports).ok());
  auto snapshot = sender->SnapshotRawSketch();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(sender->Finish().ok());

  // The snapshot is ordered after every frame this connection sent, so it
  // holds exactly the raw lanes a direct absorb of the same reports gives.
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  EXPECT_EQ(*snapshot, direct.Serialize());
  auto restored = LdpJoinSketchServer::Deserialize(*snapshot);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->finalized());
  EXPECT_EQ(restored->total_reports(), reports.size());
}

TEST(NetLoopbackTest, HelloMismatchRejectedAndCounted) {
  const SketchParams params = TestParams();
  FrameServerOptions options;
  FrameServer server(params, 2.0, options);
  ASSERT_TRUE(server.Start().ok());

  SketchParams wrong_m = params;
  wrong_m.m = 512;
  auto mismatch =
      FrameSender::Connect("127.0.0.1", server.port(), wrong_m, 2.0);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);

  auto wrong_epsilon =
      FrameSender::Connect("127.0.0.1", server.port(), params, 2.5);
  EXPECT_FALSE(wrong_epsilon.ok());

  // A matching client still gets in afterwards.
  auto good = FrameSender::Connect("127.0.0.1", server.port(), params, 2.0);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_TRUE(good->Finish().ok());
  server.Stop();
  EXPECT_EQ(server.metrics().handshakes_rejected, 2u);
}

TEST(NetLoopbackTest, MalformedFramesAreCountedAndServerSurvives) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 2;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  SessionHello hello_fields;
  hello_fields.k = static_cast<uint32_t>(params.k);
  hello_fields.m = static_cast<uint32_t>(params.m);
  hello_fields.seed = params.seed;
  hello_fields.epsilon = epsilon;
  const std::vector<uint8_t> hello = EncodeHello(hello_fields);
  auto open_session = [&]() -> Socket {
    auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(socket.ok());
    EXPECT_TRUE(WriteNetFrame(*socket, NetFrameType::kHello, hello).ok());
    auto reply = ReadNetFrame(*socket, kMaxControlFramePayload);
    EXPECT_TRUE(reply.ok() && reply->type == NetFrameType::kHelloOk);
    return std::move(*socket);
  };
  auto expect_error_then_close = [](const Socket& socket) {
    // The server answers with ERROR and stops reading from this peer.
    auto reply = ReadNetFrame(socket, kMaxControlFramePayload);
    if (reply.ok()) {
      EXPECT_EQ(reply->type, NetFrameType::kError);
    }
  };

  {  // Oversized declared length.
    Socket socket = open_session();
    const uint8_t header[5] = {0xFF, 0xFF, 0xFF, 0x7F,
                               static_cast<uint8_t>(NetFrameType::kData)};
    ASSERT_TRUE(socket.SendAll(header).ok());
    expect_error_then_close(socket);
  }
  {  // Well-framed DATA whose LJSB envelope is garbage.
    Socket socket = open_session();
    const std::vector<uint8_t> garbage(64, 0xAB);
    ASSERT_TRUE(WriteNetFrame(socket, NetFrameType::kData, garbage).ok());
    expect_error_then_close(socket);
  }
  {  // Mid-stream disconnect: half a header, then gone.
    Socket socket = open_session();
    const uint8_t partial[2] = {32, 0};
    ASSERT_TRUE(socket.SendAll(partial).ok());
  }
  {  // Port probe: connect and close without a word. Counts as nothing.
    auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(socket.ok());
  }

  // The server still serves a well-behaved client with exact results.
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 5000, 17);
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();

  const NetMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.corrupt_frames_rejected, 3u);
  EXPECT_EQ(metrics.reports_ingested, reports.size());
  // Three corrupt sessions + the probe + the good sender.
  EXPECT_EQ(metrics.connections_accepted, 5u);

  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(server.Finalize().Serialize(), direct.Serialize());
}

// Satellite regression: a FINALIZE payload of any size other than 0
// (anonymous) or 4 (region-tagged) is a protocol violation. It must be
// rejected as corruption — counted, ERROR'd, connection closed — and must
// NEVER advance the finalize barrier: a truncated or garbage region tag
// that counted as an anonymous finalize could end a multi-region
// collection early with data still in flight.
TEST(NetLoopbackTest, MalformedFinalizePayloadsRejectedNotCounted) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  SessionHello hello_fields;
  hello_fields.k = static_cast<uint32_t>(params.k);
  hello_fields.m = static_cast<uint32_t>(params.m);
  hello_fields.seed = params.seed;
  hello_fields.epsilon = epsilon;
  const std::vector<uint8_t> hello = EncodeHello(hello_fields);
  auto open_session = [&]() -> Socket {
    auto socket = Socket::ConnectTcp("127.0.0.1", server.port());
    EXPECT_TRUE(socket.ok());
    EXPECT_TRUE(WriteNetFrame(*socket, NetFrameType::kHello, hello).ok());
    auto reply = ReadNetFrame(*socket, kMaxControlFramePayload);
    EXPECT_TRUE(reply.ok() && reply->type == NetFrameType::kHelloOk);
    return std::move(*socket);
  };

  std::atomic<bool> finalized{false};
  std::thread waiter([&] {
    server.WaitForFinalizeRequest();
    finalized.store(true);
  });

  for (const size_t size : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    Socket socket = open_session();
    const std::vector<uint8_t> payload(size, 0x5A);
    ASSERT_TRUE(
        WriteNetFrame(socket, NetFrameType::kFinalize, payload).ok());
    // The offender gets ERROR (never FINALIZE_OK), then the session ends.
    auto reply = ReadNetFrame(socket, kMaxControlFramePayload);
    ASSERT_TRUE(reply.ok()) << "size=" << size;
    EXPECT_EQ(reply->type, NetFrameType::kError) << "size=" << size;
    auto after = ReadNetFrame(socket, kMaxControlFramePayload);
    EXPECT_FALSE(after.ok()) << "size=" << size;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(finalized.load());  // no malformed size advanced the barrier
  {
    const NetMetrics metrics = server.metrics();
    EXPECT_EQ(metrics.corrupt_frames_rejected, 4u);
  }

  {  // Size 4 — a legitimate region tag — IS the barrier.
    Socket socket = open_session();
    const uint8_t region[4] = {1, 0, 0, 0};
    ASSERT_TRUE(WriteNetFrame(socket, NetFrameType::kFinalize, region).ok());
    auto reply = ReadNetFrame(socket, kMaxControlFramePayload);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, NetFrameType::kFinalizeOk);
  }
  waiter.join();
  EXPECT_TRUE(finalized.load());
  server.Stop();
}

// PING_OK is an ingest barrier: ordered after every DATA frame its
// connection sent, so lanes already hold everything when it returns — the
// cheap alternative to SNAPSHOT the windowed epoch cut relies on.
TEST(NetLoopbackTest, PingIsAnIngestBarrier) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 4;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 20000, 23);
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Ping().ok());
  // Everything is in the lanes NOW — no Stop(), no BYE.
  EXPECT_EQ(server.metrics().reports_ingested, reports.size());
  const LdpJoinSketchServer view = server.FinalizedView();
  EXPECT_EQ(view.total_reports(), reports.size());
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

// Satellite regression (meaningful under the TSan CI job): a metrics
// snapshot taken concurrently with full-rate ingest must be race-free —
// queue_high_water is read lock-free while readers update it under the
// queue lock.
TEST(NetLoopbackTest, MetricsSnapshotRacesIngestCleanly) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4;  // small queue: high-water moves constantly
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread poller([&] {
    uint64_t last_reports = 0;
    while (!done.load()) {
      const NetMetrics metrics = server.metrics();
      // Totals must be monotone under concurrent snapshots.
      EXPECT_GE(metrics.reports_ingested, last_reports);
      last_reports = metrics.reports_ingested;
    }
  });

  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 60000, 29);
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Finish().ok());
  done.store(true);
  poller.join();
  server.Stop();
  EXPECT_EQ(server.metrics().reports_ingested, reports.size());
}

TEST(NetLoopbackTest, ShedBackpressureLosesNothing) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 40000, 23);

  FrameServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 1;  // force backpressure on every burst
  options.backpressure = BackpressurePolicy::kShed;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  FrameSender::Options sender_options;
  sender_options.busy_backoff = {.base_micros = 50, .cap_micros = 2000};
  auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                     epsilon, sender_options);
  ASSERT_TRUE(sender.ok());
  EXPECT_TRUE(sender->acked_data());
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();

  const NetMetrics metrics = server.metrics();
  // Shed frames were retried until accepted: nothing lost, nothing doubled.
  EXPECT_EQ(metrics.reports_ingested, reports.size());
  EXPECT_LE(metrics.queue_high_water, options.queue_capacity + 1);

  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  EXPECT_EQ(server.Finalize().Serialize(), direct.Serialize());
}

TEST(NetLoopbackTest, ShedRetryExhaustionYieldsCleanUnavailable) {
  // A pathological server that sheds every DATA frame: FrameSender must
  // exhaust its retry budget and surface a clean retriable kUnavailable —
  // never report the lost frame as success.
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  auto listener = Socket::ListenTcp(0);
  ASSERT_TRUE(listener.ok());
  std::thread always_busy([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto hello = ReadNetFrame(*conn, kMaxIngestFramePayload);
    ASSERT_TRUE(hello.ok());
    ASSERT_EQ(hello->type, NetFrameType::kHello);
    SessionHelloOk ok;
    ok.num_shards = 1;
    ok.acked_data = true;  // shed-mode session: every DATA is acked
    ASSERT_TRUE(
        WriteNetFrame(*conn, NetFrameType::kHelloOk, EncodeHelloOk(ok)).ok());
    for (;;) {
      auto frame = ReadNetFrame(*conn, kMaxIngestFramePayload);
      if (!frame.ok()) break;  // client gave up and closed
      if (frame->type != NetFrameType::kData) break;
      const uint8_t busy = static_cast<uint8_t>(DataAckCode::kBusy);
      if (!WriteNetFrame(*conn, NetFrameType::kDataAck, {&busy, 1}).ok()) {
        break;
      }
    }
  });

  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 100, 31);
  {
    FrameSender::Options options;
    options.max_busy_retries = 3;
    options.busy_backoff = {.base_micros = 1, .cap_micros = 100};
    auto sender = FrameSender::Connect("127.0.0.1", listener->local_port(),
                                       params, epsilon, options);
    ASSERT_TRUE(sender.ok()) << sender.status().ToString();
    const Status sent = sender->SendReports(reports);
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.code(), StatusCode::kUnavailable);  // retriable, explicit
    // Every attempt was refused; the budget (initial try + 3 retries) was
    // really spent before giving up.
    EXPECT_EQ(sender->busy_retries(), 4u);
  }  // sender closes → the fake server's read fails → thread exits
  always_busy.join();
}

TEST(NetLoopbackTest, ManyConcurrentSendersMergeExactly) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  constexpr size_t kSenders = 4;
  constexpr size_t kPerSender = 8000;
  std::vector<std::vector<LdpReport>> partitions;
  for (size_t s = 0; s < kSenders; ++s) {
    partitions.push_back(PerturbColumn(client, kPerSender, 100 + s));
  }

  FrameServerOptions options;
  options.num_shards = 4;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      auto sender =
          FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
      ASSERT_TRUE(sender.ok());
      ASSERT_TRUE(sender->SendReports(partitions[s]).ok());
      ASSERT_TRUE(sender->Finish().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  // Interleaving across connections is nondeterministic; the estimate is
  // not — raw lanes are order-independent integer adds.
  LdpJoinSketchServer direct(params, epsilon);
  for (const auto& partition : partitions) direct.AbsorbBatch(partition);
  direct.Finalize();
  EXPECT_EQ(server.Finalize().Serialize(), direct.Serialize());
  EXPECT_EQ(server.metrics().reports_ingested, kSenders * kPerSender);
}

}  // namespace
}  // namespace ldpjs
