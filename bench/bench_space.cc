// Fig. 6: absolute error vs space cost on Zipf(alpha = 2.0).
// Paper setting: eps = 10, r = 0.1, theta = 0.001; sketch size is swept.
// Space accounting follows the paper: HCMS / LDPJoinSketch count one sketch
// per table; LDPJoinSketch+ counts both phases (phase-2 space is twice
// phase-1 because of the high/low split). Expected shape: at comparable
// space, LDPJoinSketch+ AE < Apple-HCMS AE.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 6: AE vs space cost, Zipf(2.0), eps=10, r=0.1, "
              "theta=0.001 ==\n\n");
  const uint64_t rows = ScaledRows(40'000'000);
  const JoinWorkload w = MakeZipfWorkload(2.0, 3'000'000, rows, 13);
  const double truth = ExactJoinSize(w.table_a, w.table_b);

  PrintTableHeader({"method", "k", "m", "space_KB", "AE", "RE"});
  for (int m : {256, 512, 1024, 2048, 4096}) {
    JoinMethodConfig config;
    config.epsilon = 10.0;
    config.sketch.k = 18;
    config.sketch.m = m;
    config.sketch.seed = 17;
    config.plus_sample_rate = 0.1;
    config.plus_threshold = 0.001;
    config.run_seed = 3;

    const double sketch_kb =
        static_cast<double>(config.sketch.k) * m * sizeof(double) / 1024.0;
    struct Row {
      JoinMethod method;
      double space_kb;
    };
    const Row rows_to_run[] = {
        {JoinMethod::kAppleHcms, sketch_kb},
        {JoinMethod::kLdpJoinSketch, sketch_kb},
        // Phase 1 sketch + two phase-2 sketches per table.
        {JoinMethod::kLdpJoinSketchPlus, 3 * sketch_kb},
    };
    for (const Row& row : rows_to_run) {
      const ErrorStats stats =
          MeasureJoinError(row.method, w.table_a, w.table_b, truth, config);
      PrintTableRow({std::string(JoinMethodName(row.method)),
                     std::to_string(config.sketch.k), std::to_string(m),
                     Fixed(row.space_kb, 1), Sci(stats.mean_ae),
                     Sci(stats.mean_re)});
    }
  }
  std::printf("\nshape check: AE falls as space grows; LDPJoinSketch+ beats "
              "Apple-HCMS at comparable space.\n");
  return 0;
}
