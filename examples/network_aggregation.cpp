// Network aggregation: the deployment the paper implies — many untrusted
// clients streaming privatized reports to an aggregation service over TCP —
// run for real on 127.0.0.1:
//
//   FrameSender x2 ──LJSP/TCP──► FrameServer ──queues──► ShardedAggregator
//        (HELLO, DATA*, BYE)        (4 shards, shed backpressure)
//
// Two sender connections stream disjoint halves of table A concurrently
// (with a mid-stream raw-lane snapshot), table B is built in process, and
// the final estimate is compared bit-for-bit against a single-node absorb
// of the same reports — the service exactness invariant, now surviving a
// real socket, bounded queues, and shed/retry flow control.
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/ldp_join_sketch.h"
#include "data/datasets.h"
#include "data/join.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"

int main() {
  using namespace ldpjs;

  const JoinWorkload workload =
      MakeZipfWorkload(1.4, 20'000, 200'000, /*seed=*/9);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 12;
  const double epsilon = 3.0;
  LdpJoinSketchClient client(params, epsilon);

  // Perturb table A once; the same reports go over TCP and (for the
  // reference) straight into a single-node sketch.
  const size_t rows = workload.table_a.size();
  std::vector<LdpReport> reports(rows);
  Xoshiro256 rng(1);
  client.PerturbBatch(workload.table_a.values(), reports, rng);

  // --- Aggregation service: 4 shards, shed backpressure, tiny queues so
  // the flow control actually engages.
  FrameServerOptions options;
  options.port = 0;  // ephemeral
  options.num_shards = 4;
  options.queue_capacity = 8;
  options.backpressure = BackpressurePolicy::kShed;
  FrameServer server(params, epsilon, options);
  if (!server.Start().ok()) {
    std::printf("cannot start server\n");
    return 1;
  }
  std::printf("FrameServer on 127.0.0.1:%u (4 shards, queue=8, shed)\n",
              server.port());

  // --- Two concurrent clients, each streaming half the reports.
  auto stream_half = [&](size_t begin, size_t end, bool snapshot) {
    auto sender =
        FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
    if (!sender.ok()) {
      std::printf("connect failed: %s\n", sender.status().ToString().c_str());
      return;
    }
    const std::span<const LdpReport> slice(reports.data() + begin,
                                           end - begin);
    if (!sender->SendReports(slice).ok()) return;
    if (snapshot) {
      // Mid-collection raw-lane snapshot — what a periodic epoch checkpoint
      // would persist. It is un-finalized and mergeable.
      auto bytes = sender->SnapshotRawSketch();
      if (bytes.ok()) {
        auto sketch = LdpJoinSketchServer::Deserialize(*bytes);
        if (sketch.ok()) {
          std::printf("  snapshot after this connection's stream: %llu "
                      "reports in raw lanes (%zu bytes)\n",
                      static_cast<unsigned long long>(
                          sketch->total_reports()),
                      bytes->size());
        }
      }
    }
    if (!sender->Finish().ok()) return;
    std::printf("  connection done: %llu frames, %llu busy retries\n",
                static_cast<unsigned long long>(sender->frames_sent()),
                static_cast<unsigned long long>(sender->busy_retries()));
  };
  std::thread first(stream_half, 0, rows / 2, true);
  std::thread second(stream_half, rows / 2, rows, false);
  first.join();
  second.join();

  server.Stop();
  const NetMetrics metrics = server.metrics();
  std::printf("server: %llu connections, %llu frames, %llu reports, "
              "%llu shed, queue high-water %llu\n",
              static_cast<unsigned long long>(metrics.connections_accepted),
              static_cast<unsigned long long>(metrics.frames_received),
              static_cast<unsigned long long>(metrics.reports_ingested),
              static_cast<unsigned long long>(metrics.frames_shed),
              static_cast<unsigned long long>(metrics.queue_high_water));
  for (size_t s = 0; s < metrics.shards.size(); ++s) {
    std::printf("  shard %zu: %llu frames, %llu reports\n", s,
                static_cast<unsigned long long>(metrics.shards[s].frames),
                static_cast<unsigned long long>(metrics.shards[s].reports));
  }

  // --- Reference: single node absorbing the identical reports.
  LdpJoinSketchServer reference(params, epsilon);
  reference.AbsorbBatch(reports);
  reference.Finalize();
  LdpJoinSketchServer over_tcp = server.Finalize();

  // Table B in process (any path gives the same bits).
  LdpJoinSketchServer sketch_b(params, epsilon);
  std::vector<LdpReport> reports_b(workload.table_b.size());
  Xoshiro256 rng_b(2);
  client.PerturbBatch(workload.table_b.values(), reports_b, rng_b);
  sketch_b.AbsorbBatch(reports_b);
  sketch_b.Finalize();

  const double est_tcp = over_tcp.JoinEstimate(sketch_b);
  const double est_ref = reference.JoinEstimate(sketch_b);
  std::printf("true join size   : %.0f\n", truth);
  std::printf("estimate (TCP)   : %.0f (RE %.3f)\n", est_tcp,
              std::abs(est_tcp - truth) / truth);
  std::printf("TCP == single-node: %s\n", est_tcp == est_ref ? "yes" : "NO");
  std::printf("\nthe network tier adds transport, flow control, and "
              "observability — and changes no bits: shed frames are retried, "
              "queues drain before finalize, and raw integer lanes make the "
              "merge exact for any interleaving.\n");
  return est_tcp == est_ref ? 0 : 1;
}
