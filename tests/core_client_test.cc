#include <cmath>

#include <gtest/gtest.h>

#include "common/hadamard.h"
#include "core/ldp_join_sketch.h"

namespace ldpjs {
namespace {

SketchParams SmallParams(int k = 8, int m = 64) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = 11;
  return params;
}

TEST(LdpClientTest, ReportFieldsInRange) {
  const SketchParams params = SmallParams();
  LdpJoinSketchClient client(params, 2.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const LdpReport r = client.Perturb(static_cast<uint64_t>(i), rng);
    EXPECT_LT(r.j, params.k);
    EXPECT_LT(r.l, static_cast<uint32_t>(params.m));
    EXPECT_TRUE(r.y == 1 || r.y == -1);
  }
}

TEST(LdpClientTest, FlipProbabilityFormula) {
  LdpJoinSketchClient client(SmallParams(), 3.0);
  EXPECT_NEAR(client.flip_probability(), 1.0 / (std::exp(3.0) + 1.0), 1e-12);
}

TEST(LdpClientTest, FastPathMatchesAlgorithmOneReference) {
  // The O(1) fast path must be *identical* to the literal Algorithm 1
  // pipeline, not just distributionally equal: same RNG state, same output.
  const SketchParams params = SmallParams(6, 128);
  LdpJoinSketchClient client(params, 1.5);
  for (uint64_t v = 0; v < 500; ++v) {
    Xoshiro256 rng_fast(1000 + v);
    Xoshiro256 rng_ref(1000 + v);
    const LdpReport fast = client.Perturb(v, rng_fast);
    const LdpReport ref = client.PerturbReference(v, rng_ref);
    ASSERT_EQ(fast.j, ref.j) << "v=" << v;
    ASSERT_EQ(fast.l, ref.l) << "v=" << v;
    ASSERT_EQ(fast.y, ref.y) << "v=" << v;
  }
}

TEST(LdpClientTest, NoFlipsAtHugeEpsilon) {
  const SketchParams params = SmallParams();
  LdpJoinSketchClient client(params, 50.0);
  Xoshiro256 rng(3);
  const auto& rows = client.row_hashes();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = static_cast<uint64_t>(i);
    const LdpReport r = client.Perturb(v, rng);
    const int expected = rows[r.j].sign(v) *
                         HadamardEntry(rows[r.j].bucket(v), r.l);
    EXPECT_EQ(r.y, expected);
  }
}

TEST(LdpClientTest, RowAndCoordinateSamplingIsUniform) {
  const SketchParams params = SmallParams(4, 16);
  LdpJoinSketchClient client(params, 2.0);
  Xoshiro256 rng(5);
  std::vector<int> row_counts(4, 0), col_counts(16, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    const LdpReport r = client.Perturb(9, rng);
    ++row_counts[r.j];
    ++col_counts[r.l];
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(row_counts[static_cast<size_t>(j)] / static_cast<double>(n), 0.25,
                0.01);
  }
  for (int l = 0; l < 16; ++l) {
    EXPECT_NEAR(col_counts[static_cast<size_t>(l)] / static_cast<double>(n),
                1.0 / 16, 0.005);
  }
}

TEST(LdpClientTest, SatisfiesEpsilonLdpClosedForm) {
  // Theorem 1. For any inputs d, d' and output (y, j, l):
  //   Pr[(y,j,l)|d] = (1/km) * (p if y == w_d(j,l) else 1-p),
  // so the worst-case ratio is p/(1-p) = e^ε exactly.
  const double eps = 1.2;
  const SketchParams params = SmallParams(5, 32);
  LdpJoinSketchClient client(params, eps);
  const auto& rows = client.row_hashes();
  const double p = 1.0 - client.flip_probability();
  double max_ratio = 0.0;
  for (uint64_t d = 0; d < 20; ++d) {
    for (uint64_t d2 = 0; d2 < 20; ++d2) {
      for (int j = 0; j < params.k; ++j) {
        for (int l = 0; l < params.m; ++l) {
          const int w1 = rows[static_cast<size_t>(j)].sign(d) *
                         HadamardEntry(rows[static_cast<size_t>(j)].bucket(d),
                                       static_cast<uint64_t>(l));
          const int w2 = rows[static_cast<size_t>(j)].sign(d2) *
                         HadamardEntry(rows[static_cast<size_t>(j)].bucket(d2),
                                       static_cast<uint64_t>(l));
          for (int y : {-1, 1}) {
            const double pr1 = (y == w1) ? p : 1.0 - p;
            const double pr2 = (y == w2) ? p : 1.0 - p;
            max_ratio = std::max(max_ratio, pr1 / pr2);
          }
        }
      }
    }
  }
  EXPECT_LE(max_ratio, std::exp(eps) * (1.0 + 1e-9));
}

TEST(LdpClientTest, OutputSignBalancedOverPerturbation) {
  // E[y] over the b-flip alone is w[l]/c_eps; averaged over l the Hadamard
  // row is balanced except the DC column, so the sign rate is near 1/2.
  LdpJoinSketchClient client(SmallParams(2, 256), 1.0);
  Xoshiro256 rng(7);
  int positives = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    positives += (client.Perturb(1234, rng).y == 1) ? 1 : 0;
  }
  EXPECT_NEAR(positives / static_cast<double>(n), 0.5, 0.02);
}

TEST(LdpClientDeathTest, InvalidParamsAbort) {
  SketchParams bad_m = SmallParams();
  bad_m.m = 100;  // not a power of two
  EXPECT_DEATH(LdpJoinSketchClient(bad_m, 1.0), "LDPJS_CHECK failed");
  EXPECT_DEATH(LdpJoinSketchClient(SmallParams(), 0.0), "LDPJS_CHECK failed");
  EXPECT_DEATH(LdpJoinSketchClient(SmallParams(), -1.0), "LDPJS_CHECK failed");
}

TEST(LdpReportTest, EncodeDecodeRoundTrip) {
  BinaryWriter writer;
  const LdpReport original{-1, 17, 1023};
  EncodeReport(original, writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeReport(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->y, original.y);
  EXPECT_EQ(decoded->j, original.j);
  EXPECT_EQ(decoded->l, original.l);
}

TEST(LdpReportTest, DecodeTruncatedFails) {
  BinaryWriter writer;
  writer.PutU8(1);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(DecodeReport(reader).ok());
}

// Property sweep: fast path == reference path across sketch shapes and
// privacy budgets.
class ClientEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ClientEquivalenceTest, FastEqualsReference) {
  const auto [k, m, eps] = GetParam();
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = 99;
  LdpJoinSketchClient client(params, eps);
  for (uint64_t v = 0; v < 64; ++v) {
    Xoshiro256 rng_fast(v * 31 + 1);
    Xoshiro256 rng_ref(v * 31 + 1);
    const LdpReport fast = client.Perturb(v, rng_fast);
    const LdpReport ref = client.PerturbReference(v, rng_ref);
    ASSERT_EQ(fast.j, ref.j);
    ASSERT_EQ(fast.l, ref.l);
    ASSERT_EQ(fast.y, ref.y);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClientEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 3, 18),
                       ::testing::Values(2, 64, 1024),
                       ::testing::Values(0.1, 1.0, 4.0, 10.0)));

}  // namespace
}  // namespace ldpjs
