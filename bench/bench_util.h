// Shared harness helpers for the figure/table benches: scaled-down default
// row counts (env-overridable), trial loops, and aligned table printing.
//
// Scale: the paper runs 40M-row tables; the default here is
// rows = paper_rows * LDPJS_SCALE_NUM / LDPJS_SCALE_DEN with 1/10 defaults,
// capped by LDPJS_MAX_ROWS (default 4,000,000) so the full suite finishes
// in minutes. All client-side work is O(1) per row, so shapes are preserved.
#ifndef LDPJS_BENCH_BENCH_UTIL_H_
#define LDPJS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/join_methods.h"
#include "data/datasets.h"

namespace ldpjs::bench {

/// Environment variable `name` parsed as u64, or `fallback` if unset/empty.
uint64_t EnvU64(const char* name, uint64_t fallback);

/// Rows to simulate for a dataset whose paper-scale size is `paper_rows`.
uint64_t ScaledRows(uint64_t paper_rows);

/// Number of repeated trials per configuration (env LDPJS_TRIALS, default 2).
int NumTrials();

/// Mean absolute / relative error of `method` over NumTrials() runs with
/// distinct run seeds.
struct ErrorStats {
  double mean_ae = 0.0;
  double mean_re = 0.0;
  double mean_offline_s = 0.0;
  double mean_online_s = 0.0;
  double comm_bits = 0.0;
  double mean_estimate = 0.0;
};
ErrorStats MeasureJoinError(JoinMethod method, const Column& a,
                            const Column& b, double truth,
                            JoinMethodConfig config);

/// Prints a row of right-aligned cells under a fixed-width layout.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Formats a double in compact scientific form ("1.23e+10").
std::string Sci(double v);
/// Formats with fixed decimals.
std::string Fixed(double v, int decimals = 3);

/// Writes `metrics` as one flat JSON object ({"name": value, ...}) to
/// `path`, overwriting. Machine-readable output for CI perf trajectories
/// (BENCH_micro.json); values print with full double precision.
void WriteBenchJson(const std::string& path,
                    const std::vector<std::pair<std::string, double>>& metrics);

}  // namespace ldpjs::bench

#endif  // LDPJS_BENCH_BENCH_UTIL_H_
