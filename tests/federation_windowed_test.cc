// Windowed/sliding federated estimation: the acceptance bar extends PR-4's
// exactness story with the window. Pinned invariants:
//   - the windowed federated estimate over the aligned epochs (E-W, E] is
//     bit-identical to a single-node run ingesting only those epochs'
//     reports, for 2 regions × shards {1,4} × both join clients ×
//     W ∈ {1, 2, all};
//   - the incremental cached view (merge arrivals, subtract expiries)
//     equals a recompute-from-scratch after every arrival, expiry,
//     duplicate-push replay, and region restart;
//   - a restarted region whose epoch numbers collide with its previous
//     incarnation loses nothing (the connect-time epoch sync renumbers).
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_methods.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "federation/windowed_view.h"
#include "net/frame_sender.h"

namespace ldpjs {
namespace {

/// A W far above any epoch count in these tests: "all epochs", exercised
/// through the same incremental cached path as the bounded windows.
constexpr uint64_t kWindowAll = uint64_t{1} << 40;

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 33) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> PerturbColumn(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

/// The simulation's federated deployment assigns block b to region
/// b % regions and cuts after every block (epoch_reports = block size), so
/// region r's epoch e holds exactly block regions·e + r. This rebuilds the
/// sketch a single node ingesting ONLY the blocks inside the window
/// (E-W, E] would produce, with the simulation's exact per-block RNG
/// streams.
template <typename Client>
LdpJoinSketchServer SingleNodeWindowReference(
    const Column& column, const Client& client, const SketchParams& params,
    double epsilon, uint64_t run_seed, size_t regions, uint64_t window) {
  const size_t rows = column.size();
  const size_t blocks = (rows + kIngestBlockSize - 1) / kIngestBlockSize;
  const uint64_t epochs_per_region =
      static_cast<uint64_t>(blocks / regions);  // tests use even splits
  const uint64_t frontier = epochs_per_region - 1;
  LdpJoinSketchServer reference(params, epsilon);
  std::vector<LdpReport> out(kIngestBlockSize);
  for (size_t block = 0; block < blocks; ++block) {
    const uint64_t epoch = static_cast<uint64_t>(block / regions);
    if (epoch > frontier || frontier - epoch >= window) continue;
    const size_t first = block * kIngestBlockSize;
    const size_t count = std::min(kIngestBlockSize, rows - first);
    Xoshiro256 rng = MakeStreamRng(run_seed, block);
    std::span<LdpReport> reports(out.data(), count);
    client.PerturbBatch(
        std::span<const uint64_t>(column.values().data() + first, count),
        reports, rng);
    reference.AbsorbBatch(reports);
  }
  reference.Finalize();
  return reference;
}

// The acceptance sweep, sketch level: the federated sliding-window sketch
// equals the single-node build of only the window's blocks, bit for bit —
// for both client kinds (LDPJoinSketch and the FAP client behind
// LDPJoinSketch+ phase 2), shards {1, 4} per tier, and W ∈ {1, 2, all}.
TEST(FederationWindowedTest, WindowedSketchEqualsSingleNodeWindowIngest) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  // 8 full blocks → 2 regions × 4 epochs each, aligned frontier E = 3.
  const size_t rows = 8 * kIngestBlockSize;
  const Column column =
      MakeZipfWorkload(1.2, 4000, rows, /*seed=*/11).table_a;
  const LdpJoinSketchClient plain(params, epsilon);
  const FapClient fap(params, epsilon, FapMode::kHigh, {1, 2, 3});

  for (const uint64_t window : {uint64_t{1}, uint64_t{2}, kWindowAll}) {
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      SimulationOptions options;
      options.run_seed = 99;
      options.num_shards = shards;
      options.num_regions = 2;
      options.epoch_reports = kIngestBlockSize;
      options.window_epochs = window;

      const LdpJoinSketchServer federated_plain =
          BuildLdpJoinSketch(column, params, epsilon, options);
      EXPECT_EQ(federated_plain.Serialize(),
                SingleNodeWindowReference(column, plain, params, epsilon,
                                          options.run_seed, 2, window)
                    .Serialize())
          << "plain client, W=" << window << " shards=" << shards;

      const LdpJoinSketchServer federated_fap = BuildFapSketch(
          column, params, epsilon, FapMode::kHigh, {1, 2, 3}, options);
      EXPECT_EQ(federated_fap.Serialize(),
                SingleNodeWindowReference(column, fap, params, epsilon,
                                          options.run_seed, 2, window)
                    .Serialize())
          << "FAP client, W=" << window << " shards=" << shards;
    }
  }
}

// The acceptance sweep, estimate level: with W covering every epoch, the
// windowed federated estimate reproduces the in-process estimate bit for
// bit for both join methods — the cached incremental view changes where
// the merge work happens, never the answer.
TEST(FederationWindowedTest, WindowOverAllEpochsMatchesInProcessEstimate) {
  // 32768 rows = 8 full blocks: both regions see the same epoch count, so
  // the aligned frontier covers the whole run.
  const JoinWorkload workload =
      MakeZipfWorkload(1.3, 5000, 8 * kIngestBlockSize, /*seed=*/5);
  for (const JoinMethod method :
       {JoinMethod::kLdpJoinSketch, JoinMethod::kLdpJoinSketchPlus}) {
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      JoinMethodConfig config;
      config.epsilon = 2.0;
      config.sketch = TestParams();
      config.run_seed = 77;
      config.num_shards = shards;

      config.num_regions = 0;
      const double in_process =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;

      config.num_regions = 2;
      config.epoch_reports = kIngestBlockSize;
      config.window_epochs = kWindowAll;
      const double windowed =
          EstimateJoin(method, workload.table_a, workload.table_b, config)
              .estimate;
      EXPECT_EQ(windowed, in_process)
          << "method=" << JoinMethodName(method) << " shards=" << shards;
    }
  }
}

// The incremental accumulator against its own non-incremental reference,
// across arrival, frontier advance, expiry, and a duplicate-push replay —
// driven through a real CentralNode over sockets, asserting after every
// push that (a) incremental == recompute-from-scratch and (b) the window
// holds exactly the expected epochs' reports.
TEST(FederationWindowedTest, IncrementalViewEqualsRecomputeThroughout) {
  const SketchParams params = TestParams();
  const double epsilon = 1.5;
  LdpJoinSketchClient client(params, epsilon);

  // Six distinct epoch payloads, two regions × three epochs.
  std::vector<std::vector<LdpReport>> reports;
  std::vector<std::vector<uint8_t>> snapshots;
  for (size_t i = 0; i < 6; ++i) {
    reports.push_back(PerturbColumn(client, 2000 + 100 * i, 50 + i));
    LdpJoinSketchServer sketch(params, epsilon);
    sketch.AbsorbBatch(reports.back());
    snapshots.push_back(sketch.Serialize());
  }
  // snapshot index: region r epoch e → 2e + r.
  auto snap = [&](uint32_t r, uint64_t e) -> const std::vector<uint8_t>& {
    return snapshots[2 * e + r];
  };

  CentralNodeOptions options;
  options.server.num_shards = 2;
  options.finalize_after = 2;  // two regions gate the aligned frontier
  options.window_epochs = 2;
  CentralNode central(params, epsilon, options);
  ASSERT_TRUE(central.Start().ok());
  const WindowedView& view = *central.window();

  auto expect_window = [&](std::vector<std::pair<uint32_t, uint64_t>> epochs,
                           const char* at) {
    // (a) the incremental accumulator is bit-identical to re-merging the
    // stored in-window snapshots from scratch;
    EXPECT_EQ(view.RawWindow().Serialize(), view.RecomputeRaw().Serialize())
        << at;
    // (b) and to a direct absorb of exactly the expected epochs' reports.
    LdpJoinSketchServer direct(params, epsilon);
    for (const auto& [r, e] : epochs) direct.AbsorbBatch(reports[2 * e + r]);
    EXPECT_EQ(view.RawWindow().Serialize(), direct.Serialize()) << at;
    LdpJoinSketchServer finalized_direct = std::move(direct);
    finalized_direct.Finalize();
    EXPECT_EQ(central.WindowedFinalizedView().Serialize(),
              finalized_direct.Serialize())
        << at;
  };

  auto sender =
      FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());
  auto push = [&](uint32_t r, uint64_t e) {
    auto ack = sender->PushEpochSnapshot(r, e, snap(r, e));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  };

  // Region 0 races ahead: no frontier until region 1 shows up.
  push(0, 0);
  push(0, 1);
  EXPECT_FALSE(view.aligned());
  EXPECT_EQ(view.window_reports(), 0u);
  EXPECT_EQ(view.epochs_pending(), 2u);
  expect_window({}, "before alignment");

  // Region 1 arrives at epoch 0: frontier E=0, window (E-2, 0] holds both
  // regions' epoch 0; region 0's epoch 1 stays pending.
  push(1, 0);
  EXPECT_TRUE(view.aligned());
  EXPECT_EQ(view.frontier(), 0u);
  expect_window({{0, 0}, {1, 0}}, "E=0");

  // Replayed duplicate (the lost-ack retry): dedup keeps the view exact.
  push(0, 1);
  EXPECT_EQ(view.frontier(), 0u);
  expect_window({{0, 0}, {1, 0}}, "after duplicate replay");

  // Region 1 catches up to epoch 1: E=1, window holds epochs {0, 1}.
  push(1, 1);
  EXPECT_EQ(view.frontier(), 1u);
  expect_window({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, "E=1");
  EXPECT_EQ(view.epochs_expired(), 0u);

  // Epoch 2 from both: E=2, window slides to {1, 2} — epoch 0 is
  // subtracted back out, bit-exactly.
  push(0, 2);
  push(1, 2);
  EXPECT_EQ(view.frontier(), 2u);
  expect_window({{0, 1}, {1, 1}, {0, 2}, {1, 2}}, "E=2");
  EXPECT_EQ(view.epochs_expired(), 2u);
  EXPECT_EQ(view.epochs_in_window(), 4u);

  ASSERT_TRUE(sender->Finish().ok());
  central.Stop();
  // The full-history finalize still covers every epoch ever applied.
  LdpJoinSketchServer all(params, epsilon);
  for (const auto& r : reports) all.AbsorbBatch(r);
  all.Finalize();
  EXPECT_EQ(central.Finalize().Serialize(), all.Serialize());
}

// Satellite regression: a restarted region incarnation whose epoch numbers
// collide with its predecessor's (both start at 0 — no wall clock to hide
// the collision) must lose NOTHING: the connect-time sync renumbers the
// colliding snapshots above the central's high-water instead of letting
// the dedup discard them, and the windowed view sees them as fresh epochs.
TEST(FederationWindowedTest, RestartCollisionRenumbersInsteadOfLosingData) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> first = PerturbColumn(client, 5000, 70);
  const std::vector<LdpReport> second = PerturbColumn(client, 6000, 71);
  const std::vector<LdpReport> third = PerturbColumn(client, 7000, 72);

  CentralNodeOptions central_options;
  central_options.finalize_after = 1;
  central_options.window_epochs = kWindowAll;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  RegionalNodeOptions options;
  options.region_id = 9;
  options.central_port = central.port();
  {  // First incarnation ships epochs 0 and 1, then dies.
    RegionalNode incarnation1(params, epsilon, options);
    ASSERT_TRUE(incarnation1.Start().ok());
    auto sender = FrameSender::Connect("127.0.0.1", incarnation1.port(),
                                       params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(first).ok());
    ASSERT_TRUE(sender->Ping().ok());  // ingest barrier before the cut
    ASSERT_TRUE(incarnation1.CutAndShip().ok());
    ASSERT_TRUE(sender->SendReports(second).ok());
    ASSERT_TRUE(sender->Finish().ok());
    ASSERT_TRUE(incarnation1.FlushAndStop().ok());
    EXPECT_EQ(incarnation1.epochs_shipped(), 2u);
    EXPECT_EQ(incarnation1.epochs_renumbered(), 0u);
  }
  {  // The restart: same region_id, epochs start at 0 again — a collision
     // the old wall-clock numbering only dodged probabilistically.
    RegionalNode incarnation2(params, epsilon, options);
    ASSERT_TRUE(incarnation2.Start().ok());
    auto sender = FrameSender::Connect("127.0.0.1", incarnation2.port(),
                                       params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(third).ok());
    ASSERT_TRUE(sender->Finish().ok());
    ASSERT_TRUE(incarnation2.FlushAndStop().ok());
    EXPECT_EQ(incarnation2.duplicate_acks(), 0u);  // not deduped away
    EXPECT_EQ(incarnation2.epochs_renumbered(), 1u);  // 0 → 2
    EXPECT_EQ(incarnation2.next_epoch(), 3u);
  }

  // No snapshot was lost: the window (W=all) holds every report from both
  // incarnations, and the incremental view still equals its recompute.
  const WindowedView& view = *central.window();
  EXPECT_EQ(view.frontier(), 2u);
  EXPECT_EQ(view.window_reports(), first.size() + second.size() + third.size());
  EXPECT_EQ(view.RawWindow().Serialize(), view.RecomputeRaw().Serialize());

  central.Stop();
  LdpJoinSketchServer merged = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(first);
  direct.AbsorbBatch(second);
  direct.AbsorbBatch(third);
  direct.Finalize();
  EXPECT_EQ(merged.Serialize(), direct.Serialize());
}

// The cached finalized view: clean queries return the cached result (equal
// bit for bit to a fresh finalize of the raw window), and a new epoch
// invalidates it.
TEST(FederationWindowedTest, FinalizedViewCachesUntilDirty) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  WindowedView view(params, epsilon, /*window_epochs=*/3,
                    /*expected_regions=*/1);

  LdpJoinSketchServer epoch0(params, epsilon);
  epoch0.AbsorbBatch(PerturbColumn(client, 3000, 80));
  LdpJoinSketchServer epoch0_consumed = epoch0;
  view.OnEpochApplied(0, 0, &epoch0_consumed);

  const LdpJoinSketchServer first_read = view.Finalized();
  const LdpJoinSketchServer second_read = view.Finalized();  // cached
  EXPECT_EQ(first_read.Serialize(), second_read.Serialize());
  LdpJoinSketchServer fresh = view.RawWindow();
  fresh.Finalize();
  EXPECT_EQ(first_read.Serialize(), fresh.Serialize());

  LdpJoinSketchServer epoch1(params, epsilon);
  epoch1.AbsorbBatch(PerturbColumn(client, 4000, 81));
  LdpJoinSketchServer epoch1_consumed = epoch1;
  view.OnEpochApplied(0, 1, &epoch1_consumed);
  const LdpJoinSketchServer third_read = view.Finalized();  // recomputed
  EXPECT_EQ(third_read.total_reports(),
            epoch0.total_reports() + epoch1.total_reports());
  LdpJoinSketchServer both = view.RawWindow();
  both.Finalize();
  EXPECT_EQ(third_read.Serialize(), both.Serialize());
}

// A region first heard from AFTER the frontier aligned (more real regions
// than `expected_regions`) must never drag the frontier backwards: epochs
// already expired out of the accumulator cannot be restored, so a
// regressed window would silently hold the wrong epoch set. The late
// region joins the window going forward instead.
TEST(FederationWindowedTest, LateRegionCannotRegressTheFrontier) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  auto epoch_sketch = [&](size_t n, uint64_t seed) {
    LdpJoinSketchServer sketch(params, epsilon);
    sketch.AbsorbBatch(PerturbColumn(client, n, seed));
    return sketch;
  };

  WindowedView view(params, epsilon, /*window_epochs=*/2,
                    /*expected_regions=*/1);
  std::vector<LdpJoinSketchServer> a;
  for (uint64_t e = 0; e <= 5; ++e) {
    a.push_back(epoch_sketch(1000 + 10 * e, 90 + e));
    LdpJoinSketchServer consumed = a.back();  // the view steals its copy
    view.OnEpochApplied(0, e, &consumed);
  }
  EXPECT_EQ(view.frontier(), 5u);  // aligned on region 0 alone
  EXPECT_EQ(view.epochs_expired(), 4u);

  // A second, unexpected region appears at epoch 0: the frontier must
  // hold at 5, its out-of-window epoch is dropped, and the accumulator is
  // unchanged — still exactly region 0's epochs {4, 5}.
  LdpJoinSketchServer late0 = epoch_sketch(2000, 96);
  view.OnEpochApplied(1, 0, &late0);
  EXPECT_EQ(view.frontier(), 5u);
  LdpJoinSketchServer expected(params, epsilon);
  expected.Merge(a[4]);
  expected.Merge(a[5]);
  EXPECT_EQ(view.RawWindow().Serialize(), expected.Serialize());
  EXPECT_EQ(view.RawWindow().Serialize(), view.RecomputeRaw().Serialize());

  // An in-window push from the late region merges; the frontier advances
  // again only once the late region passes it.
  const LdpJoinSketchServer late5 = epoch_sketch(2500, 97);
  LdpJoinSketchServer late5_consumed = late5;
  view.OnEpochApplied(1, 5, &late5_consumed);
  EXPECT_EQ(view.frontier(), 5u);
  expected.Merge(late5);
  EXPECT_EQ(view.RawWindow().Serialize(), expected.Serialize());
  EXPECT_EQ(view.RawWindow().Serialize(), view.RecomputeRaw().Serialize());
}

// An idle region must not freeze the aligned frontier: its empty cuts
// ship as coalesced heartbeats that advance the central's high-water for
// it, so the active regions' epochs keep entering (and leaving) the
// window.
TEST(FederationWindowedTest, IdleRegionHeartbeatsKeepTheFrontierMoving) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);

  CentralNodeOptions central_options;
  central_options.finalize_after = 2;
  central_options.window_epochs = 2;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  auto make_region = [&](uint32_t id) {
    RegionalNodeOptions options;
    options.region_id = id;
    options.central_port = central.port();
    return std::make_unique<RegionalNode>(params, epsilon, options);
  };
  auto active = make_region(0);
  auto idle = make_region(1);
  ASSERT_TRUE(active->Start().ok());
  ASSERT_TRUE(idle->Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", active->port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  std::vector<std::vector<LdpReport>> epochs;
  for (uint64_t e = 0; e < 4; ++e) {
    epochs.push_back(PerturbColumn(client, 2000 + 100 * e, 120 + e));
    ASSERT_TRUE(sender->SendReports(epochs.back()).ok());
    ASSERT_TRUE(sender->Ping().ok());  // pin the epoch's contents
    ASSERT_TRUE(active->CutAndShip().ok());
    // The idle region cuts on the same cadence with nothing to ship —
    // consecutive empty cuts coalesce into one heartbeat each time.
    ASSERT_TRUE(idle->CutAndShip().ok());
  }

  const WindowedView& view = *central.window();
  EXPECT_EQ(view.frontier(), 3u);  // the heartbeats kept region 1 current
  EXPECT_EQ(view.epochs_expired(), 2u);
  LdpJoinSketchServer expected(params, epsilon);
  expected.AbsorbBatch(epochs[2]);
  expected.AbsorbBatch(epochs[3]);
  EXPECT_EQ(view.RawWindow().Serialize(), expected.Serialize());

  const NetMetrics metrics = central.metrics();
  ASSERT_EQ(metrics.regions.size(), 2u);
  for (const RegionMetrics& region : metrics.regions) {
    if (region.region_id == 0) {
      EXPECT_EQ(region.epochs_applied, 4u);
      EXPECT_EQ(region.empty_epochs, 0u);
    } else {
      EXPECT_EQ(region.epochs_applied, 0u);
      EXPECT_GE(region.empty_epochs, 1u);  // coalesced idle heartbeats
    }
  }

  ASSERT_TRUE(sender->Finish().ok());
  ASSERT_TRUE(active->FlushAndStop().ok());
  ASSERT_TRUE(idle->FlushAndStop().ok());
  central.Stop();
  // Full history is untouched by heartbeats: every report, exactly once.
  LdpJoinSketchServer all(params, epsilon);
  for (const auto& e : epochs) all.AbsorbBatch(e);
  all.Finalize();
  EXPECT_EQ(central.Finalize().Serialize(), all.Serialize());
}

}  // namespace
}  // namespace ldpjs
