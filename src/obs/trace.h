// Span-based trace propagation for sampled report batches.
//
// A trace context is two u64s — a trace id and the wall-clock origin
// timestamp stamped where the batch was encoded — carried on the wire by
// wrapping a DATA/EPOCH_PUSH/QUERY frame in a TRACED envelope (LJSP v4,
// see net/protocol.h). Every tier that touches a sampled batch appends one
// span {trace_id, stage, start_ns, end_ns} to the process-global TraceLog,
// so one batch can be followed client encode → server queue → shard absorb
// → epoch cut → regional ship → central merge → view publish, and the
// difference "view-publish time − origin" is the true ingest-to-queryable
// latency the registry's `ingest_to_queryable_ns` histogram accumulates.
//
// Only sampled operations (1 in trace_every batches) ever touch the log,
// so a mutex-protected bounded ring is cheap enough; the unsampled hot
// path never reaches this file.
#ifndef LDPJS_OBS_TRACE_H_
#define LDPJS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace ldpjs {

/// The two fields that ride the wire. trace_id == 0 means "not traced" —
/// senders draw non-zero ids, so 0 is a safe sentinel everywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t origin_ns = 0;

  bool active() const { return trace_id != 0; }
};

/// One timed stage of a traced batch's life. Stage names used by the
/// shipped tiers: client_encode, client_send, server_queue, shard_absorb,
/// epoch_cut, regional_ship, central_merge, view_publish, query_serve.
struct TraceSpan {
  uint64_t trace_id = 0;
  std::string stage;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// Process-global bounded ring of spans. Writers from any tier in the
/// process (client, shard pump, regional scheduler, central reader) append
/// under one mutex; the ring keeps the most recent kCapacity spans.
class TraceLog {
 public:
  static constexpr size_t kCapacity = 4096;

  static TraceLog& Global();

  void Record(uint64_t trace_id, std::string stage, uint64_t start_ns,
              uint64_t end_ns);

  /// All retained spans for one trace id, in record order.
  std::vector<TraceSpan> Collect(uint64_t trace_id) const;

  size_t size() const;

 private:
  mutable Mutex mu_;
  std::vector<TraceSpan> ring_ LDPJS_GUARDED_BY(mu_);
  size_t next_ LDPJS_GUARDED_BY(mu_) = 0;  // ring insertion point once full
  bool wrapped_ LDPJS_GUARDED_BY(mu_) = false;
};

}  // namespace ldpjs

#endif  // LDPJS_OBS_TRACE_H_
