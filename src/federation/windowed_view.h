// WindowedView: sliding-window join-size estimation on the central tier of
// the federated topology, with cross-region epoch alignment and an
// incrementally cached finalized view.
//
// The central's full-history FinalizedView() answers "the join size over
// everything ever ingested" and re-merges every shard on every query. This
// class answers "the join size over the last W epochs" — and does it
// incrementally, exploiting the same linearity that makes the whole
// topology exact: raw int64 lanes can be *subtracted* as exactly as they
// are merged (LdpJoinSketchServer::SubtractRaw), so sliding the window is
// an O(lanes) update per epoch boundary, never a recompute.
//
// Cross-region alignment: each applied (region, epoch) snapshot is recorded
// here; per region the view tracks a high-water epoch, and the *aligned
// frontier* E is the minimum high-water over regions — the newest epoch
// every region has shipped. The window is the epoch interval (E-W, E].
// Estimates are answered only at the frontier, so a lagging or partitioned
// region can never be silently missing from the window: its absence holds
// E (and therefore the window) back instead of skewing the estimate.
// Until `expected_regions` distinct regions have pushed at least one
// epoch, there is no frontier and the window is empty.
//
// Cache invalidation rules:
//   - a fresh snapshot at epoch e <= E (the laggard region catching the
//     frontier up) merges into the accumulator;
//   - a snapshot at epoch e > E is retained as pending and merges when E
//     reaches it;
//   - when E advances, epochs now outside (E-W, E] are subtracted from the
//     accumulator and their stored snapshots freed;
//   - duplicates never reach this class — the central's (region, epoch)
//     dedup calls the observer exactly once per applied snapshot.
// The finalized view is computed copy-on-read only when the accumulator is
// dirty; a steady-state query returns a copy of the cached finalized
// sketch — no shard merges, no Hadamard transforms.
//
// Memory: one accumulator plus the stored snapshots — at most W in-window
// epochs per region, plus whatever a region has pushed ahead of the
// frontier (bounded in practice by the cut cadence spread between regions).
#ifndef LDPJS_FEDERATION_WINDOWED_VIEW_H_
#define LDPJS_FEDERATION_WINDOWED_VIEW_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "core/ldp_join_sketch.h"

namespace ldpjs {

class WindowedView {
 public:
  /// `window_epochs` >= 1 is W, the number of trailing aligned epochs an
  /// estimate covers (pass a value larger than any run's epoch count for
  /// "all"). `expected_regions` >= 1 gates the frontier: no estimate until
  /// that many distinct regions have pushed.
  WindowedView(const SketchParams& params, double epsilon,
               uint64_t window_epochs, size_t expected_regions);

  WindowedView(const WindowedView&) = delete;
  WindowedView& operator=(const WindowedView&) = delete;

  /// Records one freshly applied (region, epoch) snapshot and slides the
  /// window. Called by the central's epoch observer — exactly once per
  /// (region, epoch), possibly concurrently across regions, in epoch order
  /// within a region (the shipper sends in order and the server's
  /// duplicate acks wait out in-flight merges). The snapshot is consumed
  /// (moved into the epoch store — the caller discards it anyway, so the
  /// k·m lanes are not copied on the ack-latency-critical push path);
  /// nullptr is an empty-epoch heartbeat: the region's high-water (and
  /// possibly the frontier) advances with nothing stored or merged.
  void OnEpochApplied(uint32_t region_id, uint64_t epoch,
                      LdpJoinSketchServer* snapshot);

  /// Finalized copy of the window accumulator — the sketch to estimate
  /// with. Copy-on-read: finalizes only when the accumulator changed since
  /// the last call, otherwise returns a copy of the cached result.
  LdpJoinSketchServer Finalized() const;

  /// Raw-lane copy of the window accumulator (un-finalized; tests merge /
  /// compare it).
  LdpJoinSketchServer RawWindow() const;

  /// The non-incremental reference: re-merges the stored in-window
  /// snapshots from scratch. Bit-identical to RawWindow() by construction —
  /// the invariant the incremental add/subtract path is tested against.
  LdpJoinSketchServer RecomputeRaw() const;

  /// True once `expected_regions` distinct regions have pushed.
  bool aligned() const;
  /// The aligned frontier E (valid only when aligned()).
  uint64_t frontier() const;
  uint64_t window_epochs() const { return window_; }
  /// Reports currently inside the window accumulator.
  uint64_t window_reports() const;
  /// Snapshots currently merged into the accumulator.
  uint64_t epochs_in_window() const;
  /// Snapshots subtracted back out after sliding past the window.
  uint64_t epochs_expired() const;
  /// Snapshots ahead of the frontier, waiting for alignment.
  uint64_t epochs_pending() const;

 private:
  struct StoredEpoch {
    LdpJoinSketchServer sketch;
    bool added = false;  ///< currently merged into the accumulator
  };
  struct RegionWindow {
    uint64_t high_water = 0;  ///< newest epoch this region has pushed
    std::map<uint64_t, StoredEpoch> epochs;
  };

  /// Recomputes the frontier and reconciles the accumulator with the
  /// window (E-W, E]: merge what entered, subtract what expired, free what
  /// slid past. Requires mu_.
  void AdvanceLocked();

  const uint64_t window_;
  const size_t expected_regions_;

  mutable std::mutex mu_;
  std::map<uint32_t, RegionWindow> regions_;
  LdpJoinSketchServer acc_;  ///< raw lanes over the window, incremental
  bool has_frontier_ = false;
  uint64_t frontier_ = 0;
  uint64_t in_window_ = 0;
  uint64_t expired_ = 0;
  mutable bool dirty_ = true;
  mutable std::optional<LdpJoinSketchServer> cached_finalized_;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_WINDOWED_VIEW_H_
