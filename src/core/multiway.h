// Multi-way chain join support under LDP (paper §VI, after COMPASS).
//
// End tables (one join attribute) use plain LDPJoinSketch. A middle table
// T(A, B) with two join attributes is summarized by k replicas of an
// (m1 x m2) matrix sketch: the client samples a replica and coordinates
// (l1, l2), encodes its tuple as
//   y = b · H_m1[h_A(a), l1] · ξ_A(a)·ξ_B(b) · H_m2[l2, h_B(b)],
// and the server accumulates k·c_ε·y at [l1, l2], rotating each replica
// back with M ← H_m1 · M · H_m2 on Finalize. The chain size follows Eq. 27:
//   Est = median_j  v_L[j]^T · M_1[j] · ... · M_p[j] · v_R[j].
//
// Hash coordination: every sketch touching attribute X must be constructed
// from the same attribute seed for X (the end sketches' SketchParams::seed
// and the matrix sketches' left/right seeds).
#ifndef LDPJS_CORE_MULTIWAY_H_
#define LDPJS_CORE_MULTIWAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "core/ldp_join_sketch.h"
#include "data/join.h"

namespace ldpjs {

/// Shape of one middle-table sketch. m_left/m_right must be powers of two.
struct MultiwayParams {
  int k = 18;
  int m_left = 1024;
  int m_right = 1024;
  uint64_t left_seed = 1;   ///< seed of the left join attribute
  uint64_t right_seed = 2;  ///< seed of the right join attribute

  void Validate() const;
};

/// One perturbed middle-table report.
struct MultiwayReport {
  int8_t y;          ///< ±1
  uint16_t replica;  ///< sampled replica in [0, k)
  uint32_t l1;       ///< sampled row coordinate in [0, m_left)
  uint32_t l2;       ///< sampled column coordinate in [0, m_right)
};

class LdpMultiwayClient {
 public:
  LdpMultiwayClient(const MultiwayParams& params, double epsilon);

  /// Perturbs one tuple (a, b). O(1).
  MultiwayReport Perturb(uint64_t a, uint64_t b, Xoshiro256& rng) const;

  const MultiwayParams& params() const { return params_; }

 private:
  MultiwayParams params_;
  double flip_prob_;
  std::vector<RowHashes> left_rows_;
  std::vector<RowHashes> right_rows_;
};

class LdpMultiwayServer {
 public:
  LdpMultiwayServer(const MultiwayParams& params, double epsilon);

  void Absorb(const MultiwayReport& report);
  void Merge(const LdpMultiwayServer& other);

  /// Rotates every replica back: M ← H_m1 · M · H_m2, then applies the
  /// replica/debias scale (already folded into Absorb).
  void Finalize();

  const MultiwayParams& params() const { return params_; }
  bool finalized() const { return finalized_; }
  uint64_t total_reports() const { return total_; }

  /// Replica r as a row-major (m_left x m_right) matrix.
  const double* replica_data(int replica) const;

  /// Versioned "LJM1" byte format (shape, seeds, epsilon, total, cells).
  /// Both raw and finalized states round-trip — the wire query path ships
  /// finalized middles, tests round-trip both.
  std::vector<uint8_t> Serialize() const;
  static Result<LdpMultiwayServer> Deserialize(std::span<const uint8_t> bytes);

 private:
  MultiwayParams params_;
  double epsilon_ = 0.0;
  double c_eps_;
  uint64_t total_ = 0;
  bool finalized_ = false;
  std::vector<double> cells_;  // [k][m_left][m_right]
};

/// Eq. 27 generalized to any chain length: end vector sketches around zero
/// or more middle matrix sketches. Replica j of every sketch is multiplied
/// through; the median over the k replicas is returned. Adjacent dimensions
/// and k must match (checked).
double LdpChainJoinEstimate(
    const LdpJoinSketchServer& end_left,
    const std::vector<const LdpMultiwayServer*>& middles,
    const LdpJoinSketchServer& end_right);

/// Cyclic join estimate (paper §VI discussion), e.g.
/// T1(A,B) ⋈ T2(B,C) ⋈ T3(C,A): per replica, the trace of the product of
/// the cycle's matrix sketches; median over replicas. Attribute seeds must
/// form a ring (each sketch's right seed = next sketch's left seed) and
/// adjacent dimensions must match. Cost O(k · p · m^3) — use moderate m.
double LdpCyclicJoinEstimate(
    const std::vector<const LdpMultiwayServer*>& cycle);

/// Convenience driver: runs the LDP protocol for a whole middle table.
LdpMultiwayServer BuildLdpMultiwaySketch(const PairColumn& pairs,
                                         const MultiwayParams& params,
                                         double epsilon, uint64_t run_seed);

}  // namespace ldpjs

#endif  // LDPJS_CORE_MULTIWAY_H_
