// Optimized Unary Encoding (OUE, Wang et al. USENIX Security'17): the
// strongest simple frequency oracle for small domains. The client one-hot
// encodes its value over the domain and perturbs each bit independently
// with the OUE-optimal probabilities p = 1/2 (keep a 1) and
// q = 1/(e^ε + 1) (flip a 0 to 1). Communication is |D| bits per user —
// the large-domain weakness the paper's sketches remove — but its variance
// per value, 4e^ε/(e^ε−1)², is the benchmark LDP oracles are judged by.
//
// Not part of the paper's competitor set; included as an additional
// baseline for the frequency-estimation experiments and tests.
#ifndef LDPJS_LDP_OUE_H_
#define LDPJS_LDP_OUE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/column.h"

namespace ldpjs {

class OueClient {
 public:
  /// Mechanism over [0, domain), budget epsilon > 0.
  OueClient(uint64_t domain, double epsilon);

  /// Perturbed one-hot vector (domain bits, stored as bytes 0/1).
  std::vector<uint8_t> Perturb(uint64_t value, Xoshiro256& rng) const;

  double keep_prob() const { return 0.5; }
  double flip_prob() const { return flip_prob_; }
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  double flip_prob_;  // q = 1/(e^eps + 1)
};

class OueServer {
 public:
  OueServer(uint64_t domain, double epsilon);

  /// Adds one perturbed bit vector (length must equal the domain).
  void Absorb(const std::vector<uint8_t>& report);

  /// Unbiased estimate f̂(d) = (c(d) − n·q) / (p − q), p = 1/2.
  double EstimateFrequency(uint64_t d) const;

  std::vector<double> EstimateAllFrequencies() const;

  uint64_t total_reports() const { return total_; }

 private:
  uint64_t domain_;
  double flip_prob_;
  uint64_t total_ = 0;
  std::vector<uint64_t> bit_counts_;
};

/// End-to-end helper: perturb all of `column`, return calibrated
/// frequencies. O(rows * domain) — intended for modest domains.
std::vector<double> OueEstimateFrequencies(const Column& column,
                                           double epsilon, uint64_t seed);

}  // namespace ldpjs

#endif  // LDPJS_LDP_OUE_H_
