// LJSP session protocol v1: the framing and handshake the TCP front end
// speaks between FrameSender clients and the FrameServer.
//
// Transport framing (everything little-endian):
//
//   +----------------+--------+----------------------------+
//   | u32 payload_len| u8 type| payload (payload_len bytes)|
//   +----------------+--------+----------------------------+
//
// Session flow:
//
//   client                                server
//     | -- HELLO {magic,ver,k,m,seed,eps} -> |   params must match exactly
//     | <- HELLO_OK {ver,shards,ack_mode} -- |   (else ERROR + close)
//     | -- DATA {LJSB batch envelope} -----> |   ingest into a shard
//     | <- DATA_ACK {code} ---------------- |   (shed mode only; code busy
//     |            ...                       |    means retry the frame)
//     | -- SNAPSHOT ----------------------> |
//     | <- SNAPSHOT_DATA {raw-lane sketch}- |   merged un-finalized lanes
//     | -- PING --------------------------> |   ordered-after-DATA barrier
//     | <- PING_OK ------------------------ |   (no lanes shipped back)
//     | -- BYE ---------------------------> |
//     | <- BYE_OK ------------------------- |   all of this connection's
//     |  close                              |   frames are ingested
//
// A client ending the whole collection sends FINALIZE instead of BYE as
// its last message; FINALIZE_OK carries the same "everything you sent is
// ingested" guarantee (control frames are ordered after the connection's
// DATA), and the server may tear the session down right after confirming.
//
// DATA payloads are exactly the "LJSB" batch-envelope records the in-process
// service ingests (EncodeReportBatch), so the network tier adds framing and
// flow control but never re-encodes reports — which is what makes the TCP
// path bit-identical to in-process ingestion.
#ifndef LDPJS_NET_PROTOCOL_H_
#define LDPJS_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "common/socket.h"
#include "common/status.h"
#include "core/params.h"

namespace ldpjs {

inline constexpr uint32_t kNetMagic = 0x50534A4CU;  // "LJSP" little-endian
/// v2: HELLO may announce a region id and HELLO_OK answers with the
/// server's next-expected epoch for that region (the restart/resume sync);
/// EPOCH_PUSH_OK carries the same next-epoch alongside its ack code; PING/
/// PING_OK give clients a cheap ordered-after-DATA ingest barrier. v1
/// peers are rejected at the handshake with a clear error.
///
/// v3: the HELLO carries the client's version and the HELLO_OK echoes the
/// negotiated one (min of the two sides), so v2 peers keep working
/// unchanged; on a v3 session the client may send QUERY frames — join-size
/// / frequency / frequent-items / multiway-chain / AQP range estimates
/// answered from the server's RCU-published finalized view (see
/// service/published_view.h) without ever touching the ingest locks. A v2
/// session sending QUERY gets ERROR + close.
///
/// v4: observability. Negotiated in HELLO exactly like v3 (the HELLO/
/// HELLO_OK layout is unchanged, only the accepted band widens), so v2/v3
/// peers keep working byte-for-byte. On a v4 session the client may send
/// STATS_REQUEST (answered immediately with a STATS JSON frame, never
/// behind the ingest drain barrier) and may wrap a DATA/EPOCH_PUSH/QUERY
/// frame in a TRACED envelope carrying a compact trace context — a u64
/// trace id plus the wall-clock origin timestamp stamped where the batch
/// was encoded — so a sampled batch can be timed across every tier it
/// crosses. Untraced frames are byte-identical to v3, preserving the
/// bit-identity invariant of the ingest path.
///
/// v5: fleet observability. Negotiated in HELLO exactly like v3/v4 (the
/// HELLO/HELLO_OK layout is unchanged, only the accepted band widens), so
/// v2..v4 peers keep working byte-for-byte. On a v5 session a regional
/// aggregator may ship its full stats snapshot upstream with STATS_PUSH —
/// counters, gauges, and *raw* log2 histogram buckets, never precomputed
/// percentiles, because bucket arrays merge losslessly by elementwise
/// addition (the same mergeability argument that federates the sketches)
/// — and any client may ask the central for its merged fleet view with
/// FLEET_STATS_REQUEST. A v4-or-older session sending either gets ERROR +
/// close; a v5 client talking to a v4 server refuses locally without
/// touching the wire.
inline constexpr uint8_t kNetVersion = 5;
/// Oldest protocol version this build still speaks.
inline constexpr uint8_t kNetMinVersion = 2;

/// Frame types. Client→server: kHello, kData, kSnapshot, kFinalize, kBye,
/// kEpochPush, kPing. Server→client: kHelloOk, kDataAck, kSnapshotData,
/// kFinalizeOk, kByeOk, kError, kEpochPushOk, kPingOk.
enum class NetFrameType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kData = 3,
  kDataAck = 4,
  kSnapshot = 5,
  kSnapshotData = 6,
  /// Payload: empty (anonymous — every request counts), or u32 region_id
  /// (federation: a region's forwarded FINALIZE counts once per region no
  /// matter how many times a retry resends it).
  kFinalize = 7,
  kFinalizeOk = 8,
  kBye = 9,
  kByeOk = 10,
  kError = 11,
  /// Federation: a regional aggregator ships one epoch's raw-lane snapshot
  /// upstream. Payload: u32 region_id, u64 epoch, then the serialized
  /// un-finalized sketch — or zero sketch bytes for an empty-epoch
  /// heartbeat (the region had nothing to ship but its epoch clock still
  /// advances, so an idle region never freezes the windowed view's
  /// aligned frontier). Ordered after the connection's DATA like the
  /// other non-DATA frames; never shed.
  kEpochPush = 12,
  /// Ack for kEpochPush: an EpochPushAckCode byte plus the server's
  /// next-expected epoch for the pushing region (see EpochPushAck).
  /// `kDuplicate` makes a retried push after an ambiguous failure
  /// exactly-once — the central tier dedups on (region_id, epoch) and
  /// never double-merges.
  kEpochPushOk = 13,
  /// Ingest barrier: an empty no-op frame, ordered after every DATA frame
  /// its connection sent (like the other control frames) and answered with
  /// kPingOk. PING_OK is therefore proof that everything sent before it is
  /// in the lanes — the cheap barrier epoch-sensitive drivers use before a
  /// cut, where SNAPSHOT (which ships the full lanes back) would be waste.
  kPing = 14,
  kPingOk = 15,
  /// v3 read path: one query against the server's published finalized view.
  /// Payload: a QueryRequest (see below). Unlike the other non-DATA frames
  /// a QUERY is NOT ordered after the connection's DATA — it is answered
  /// immediately from the latest published snapshot, so a query can never
  /// stall (or be stalled by) ingest or the finalize barrier. Clients that
  /// want "my own writes visible" send PING first: the server republishes
  /// at every PING barrier and epoch boundary.
  kQuery = 16,
  /// Payload: a QueryResponse — the answer plus the identity (sequence /
  /// epoch / report count) of the published view that produced it.
  kQueryOk = 17,
  /// v4 read path: ask the server for its stats snapshot. Empty payload;
  /// answered immediately with kStats (like QUERY, a stats scrape is never
  /// ordered behind the connection's DATA — an ops probe must not stall on
  /// a busy ingest queue).
  kStatsRequest = 18,
  /// Payload: one UTF-8 JSON object (see obs/stats_export.h) — the same
  /// serializer output the SIGUSR1 dump and the JSONL exporter emit.
  kStats = 19,
  /// v4 trace envelope: u8 inner frame type (kData, kEpochPush or kQuery)
  /// + u64 trace_id + u64 origin_ns, then the inner frame's payload
  /// unchanged to the end of the frame. The receiver unwraps, notes the
  /// trace context, and handles the inner frame exactly as if it had
  /// arrived bare — tracing rides alongside the bytes, it never re-encodes
  /// them.
  kTraced = 20,
  /// v5 fleet telemetry: a regional node ships its stats snapshot to the
  /// central. Payload: a FleetSnapshot (see obs/fleet_stats.h) — u32
  /// region_id, u64 capture timestamp, then the registry's counters,
  /// gauges, and histograms with raw bucket arrays. Like STATS_REQUEST it
  /// is answered immediately (telemetry must not stall behind a busy
  /// ingest queue), and a lost or failed push is harmless — the next one
  /// carries the cumulative totals again.
  kStatsPush = 21,
  /// Ack for kStatsPush (empty payload): the snapshot is in the central's
  /// per-region fleet store.
  kStatsPushOk = 22,
  /// v5 fleet read path: ask the central for its merged fleet view. Empty
  /// payload; answered immediately with kFleetStats.
  kFleetStatsRequest = 23,
  /// Payload: a FleetView (see obs/fleet_stats.h) — every region's last
  /// pushed snapshot plus the exactly-merged cluster histograms and the
  /// per-region / cluster health verdicts.
  kFleetStats = 24,
};

/// Hard cap on client→server frame payloads. A batch envelope is at most
/// 9 + 4096·9 bytes, so anything near this cap is garbage; bounding it
/// keeps a malicious length prefix from making the server allocate.
inline constexpr size_t kMaxIngestFramePayload = 64 * 1024;

/// Cap on server→client payloads (snapshots carry k·m raw i64 lanes).
inline constexpr size_t kMaxControlFramePayload = size_t{256} * 1024 * 1024;

/// Cap on a QUERY frame payload. The heavy kinds carry serialized sketches
/// (a probe sketch is k·m doubles; a multiway middle is k·m1·m2), so this
/// admits realistic probes and moderate middle matrices while keeping a
/// hostile length prefix from making the server allocate unboundedly.
inline constexpr size_t kMaxQueryFramePayload = size_t{32} * 1024 * 1024;

/// Caps on the O(domain)/O(width) query kinds: a frequent-items or range
/// scan costs O(domain·k) server-side, so an unbounded request is a DoS.
/// Requests above these are rejected with InvalidArgument, never evaluated.
inline constexpr uint64_t kMaxQueryDomain = uint64_t{1} << 22;
inline constexpr uint64_t kMaxQueryRangeWidth = uint64_t{1} << 22;
/// Cap on middle sketches in one multiway-chain query.
inline constexpr size_t kMaxQueryMiddles = 8;

/// DATA_ACK payload (one byte).
enum class DataAckCode : uint8_t {
  kAbsorbed = 0,
  kBusy = 1,  ///< shed by backpressure — retriable
};

/// HELLO payload: the sketch session parameters. The server accepts a
/// connection only if every field matches its own configuration bit for bit
/// (mismatched params would silently poison lanes, never mergeable).
/// A regional aggregator's upstream session additionally announces its
/// region id, so the HELLO_OK can carry the server's next-expected epoch
/// for that region — the sync a restarted incarnation uses to number its
/// epochs above everything its predecessor already shipped.
struct SessionHello {
  /// The client's protocol version. The server accepts any version in
  /// [kNetMinVersion, kNetVersion] and answers with the negotiated session
  /// version (the minimum of the two sides) in HELLO_OK.
  uint8_t version = kNetVersion;
  uint32_t k = 0;
  uint32_t m = 0;
  uint64_t seed = 0;
  double epsilon = 0.0;
  bool has_region = false;
  uint32_t region_id = 0;
};

std::vector<uint8_t> EncodeHello(const SessionHello& hello);
Result<SessionHello> DecodeHello(std::span<const uint8_t> payload);

/// HELLO_OK payload: protocol version echo plus the server's shard count
/// and whether every DATA frame will be acked (shed-mode flow control).
/// `region_next_epoch` answers a region-announcing HELLO with the first
/// epoch the server has NOT applied for that region (0 when the region has
/// never pushed, or when the HELLO carried no region).
struct SessionHelloOk {
  uint8_t version = kNetVersion;
  uint32_t num_shards = 0;
  bool acked_data = false;
  uint64_t region_next_epoch = 0;
};

std::vector<uint8_t> EncodeHelloOk(const SessionHelloOk& ok);
Result<SessionHelloOk> DecodeHelloOk(std::span<const uint8_t> payload);

/// EPOCH_PUSH_OK result code.
enum class EpochPushAckCode : uint8_t {
  kApplied = 0,    ///< snapshot merged into the central lanes
  kDuplicate = 1,  ///< (region, epoch) already applied — retry resolved
};

/// EPOCH_PUSH_OK payload: the ack code plus the server's next-expected
/// epoch for the pushing region (its high-water + 1, after this push). The
/// shipper folds it into its own numbering, so region and central converge
/// on an epoch sequence even across restarts and clock steps.
struct EpochPushAck {
  EpochPushAckCode code = EpochPushAckCode::kApplied;
  uint64_t next_epoch = 0;
};

std::vector<uint8_t> EncodeEpochPushAck(const EpochPushAck& ack);
Result<EpochPushAck> DecodeEpochPushAck(std::span<const uint8_t> payload);

/// EPOCH_PUSH payload header; the serialized raw-lane sketch follows it to
/// the end of the frame (no inner length prefix — the transport frame
/// already delimits it).
struct EpochPush {
  uint32_t region_id = 0;
  uint64_t epoch = 0;
  std::span<const uint8_t> raw_sketch;  ///< zero-copy view into the payload
};

/// Transport bytes an EPOCH_PUSH adds on top of the sketch itself.
inline constexpr size_t kEpochPushHeaderBytes = 12;

std::vector<uint8_t> EncodeEpochPush(uint32_t region_id, uint64_t epoch,
                                     std::span<const uint8_t> raw_sketch);
/// The decoded view borrows `payload` — keep it alive.
Result<EpochPush> DecodeEpochPush(std::span<const uint8_t> payload);

/// Upper bound on a well-formed EPOCH_PUSH payload for `params`-shaped
/// sessions: push header + the measured size of a serialized raw-lane
/// sketch of that shape. Anything larger is garbage, so servers read
/// session frames with max(kMaxIngestFramePayload, this) and a malicious
/// length prefix still cannot make them allocate unboundedly.
size_t EpochPushPayloadBound(const SketchParams& params);

/// What a QUERY asks of the published view. Every kind is answered from
/// one immutable snapshot, so the reply is internally consistent even
/// while ingest and epoch cuts run concurrently.
enum class QueryKind : uint8_t {
  /// Join size |view ⋈ probe|: the probe payload is a serialized
  /// LdpJoinSketchServer for the other table (raw lanes are finalized
  /// server-side; params/seed must match the view's sketch).
  kJoinSize = 0,
  /// Thm-7 frequency estimate f̂(key).
  kFrequency = 1,
  /// Values in [0, domain) with f̂ > threshold (FAP phase 1). Sorted
  /// ascending in the reply; domain capped by kMaxQueryDomain.
  kFrequentItems = 2,
  /// Chain join |view ⋈ M_1 ⋈ ... ⋈ M_p ⋈ probe| (Eq. 27): the payload
  /// carries p serialized finalized LdpMultiwayServer middles plus the
  /// right-end probe sketch; the published view is the left end.
  kMultiwayChain = 3,
  /// AQP COUNT(*) WHERE key in [lo, hi] (width capped).
  kRangeCount = 4,
  /// AQP join size restricted to keys in [lo, hi]: Σ f̂_view·f̂_probe.
  kPredicateJoin = 5,
};

/// One decoded QUERY payload. Only the fields for `kind` are meaningful;
/// the codec writes/reads exactly the fields that kind defines, so a
/// truncated or over-long payload is always Corruption.
struct QueryRequest {
  QueryKind kind = QueryKind::kFrequency;
  uint64_t key = 0;           ///< kFrequency
  uint64_t domain = 0;        ///< kFrequentItems
  double threshold = 0.0;     ///< kFrequentItems
  uint64_t range_lo = 0;      ///< kRangeCount, kPredicateJoin
  uint64_t range_hi = 0;      ///< kRangeCount, kPredicateJoin
  /// Serialized LdpJoinSketchServer probe (kJoinSize, kMultiwayChain's
  /// right end, kPredicateJoin).
  std::vector<uint8_t> probe_sketch;
  /// Serialized finalized LdpMultiwayServer middles (kMultiwayChain).
  std::vector<std::vector<uint8_t>> middles;
};

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(std::span<const uint8_t> payload);

/// One QUERY_OK payload: the answer plus the identity of the published
/// view that produced it. `value` is bit-exact over the wire (doubles are
/// memcpy round-trips), which is what lets a served answer be pinned
/// bit-identical to the in-process estimate on the same view.
struct QueryResponse {
  QueryKind kind = QueryKind::kFrequency;
  uint64_t view_sequence = 0;  ///< publication counter of the view
  bool view_aligned = false;   ///< windowed views: frontier established
  uint64_t view_epoch = 0;     ///< aligned frontier (windowed) else 0
  uint64_t view_reports = 0;   ///< reports inside the view's sketch
  double value = 0.0;          ///< scalar answer (all kinds)
  std::vector<uint64_t> items; ///< kFrequentItems: sorted ascending
};

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response);
Result<QueryResponse> DecodeQueryResponse(std::span<const uint8_t> payload);

/// One decoded TRACED envelope (v4): the inner frame type, the trace
/// context, and a zero-copy view of the inner payload.
struct TracedFrame {
  NetFrameType inner_type = NetFrameType::kData;
  uint64_t trace_id = 0;
  uint64_t origin_ns = 0;
  std::span<const uint8_t> inner_payload;  ///< borrows the outer payload
};

/// Bytes a TRACED envelope adds in front of the inner payload
/// (u8 inner type + u64 trace id + u64 origin timestamp).
inline constexpr size_t kTracedHeaderBytes = 17;

std::vector<uint8_t> EncodeTraced(NetFrameType inner_type, uint64_t trace_id,
                                  uint64_t origin_ns,
                                  std::span<const uint8_t> inner_payload);
/// The decoded view borrows `payload` — keep it alive. Rejects inner types
/// other than kData/kEpochPush/kQuery (wrapping a control frame would let
/// tracing bypass the drain-barrier ordering those frames rely on).
Result<TracedFrame> DecodeTraced(std::span<const uint8_t> payload);

/// ERROR payload: one status-code byte plus the message bytes. The decoded
/// Status is what the failing server-side operation returned, so a client
/// can distinguish a retriable condition from a protocol violation.
std::vector<uint8_t> EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::span<const uint8_t> payload);

/// One parsed transport frame (payload bytes owned).
struct NetFrame {
  NetFrameType type = NetFrameType::kError;
  std::vector<uint8_t> payload;
};

/// Writes one frame (u32 len + u8 type + payload) to the socket.
Status WriteNetFrame(const Socket& socket, NetFrameType type,
                     std::span<const uint8_t> payload);

/// Reads one frame (empty payloads are valid — the control frames carry
/// none). A clean close on a frame boundary returns NotFound (end of
/// session); a close mid-frame, an unknown type, or a payload above
/// `max_payload` returns Corruption without reading further.
Result<NetFrame> ReadNetFrame(const Socket& socket, size_t max_payload);

}  // namespace ldpjs

#endif  // LDPJS_NET_PROTOCOL_H_
