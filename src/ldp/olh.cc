#include "ldp/olh.h"

#include <cmath>

#include "common/status.h"
#include "common/thread_pool.h"

namespace ldpjs {

namespace {
uint32_t ResolveG(const FlhParams& params) {
  if (params.g != 0) {
    LDPJS_CHECK(params.g >= 2);
    return params.g;
  }
  const double optimal = std::round(std::exp(params.epsilon) + 1.0);
  return static_cast<uint32_t>(std::max(2.0, optimal));
}
}  // namespace

FlhClient::FlhClient(const FlhParams& params)
    : params_(params), g_(ResolveG(params)) {
  LDPJS_CHECK(params.epsilon > 0.0);
  LDPJS_CHECK(params.pool_size >= 1);
  const double e = std::exp(params.epsilon);
  keep_prob_ = e / (e + static_cast<double>(g_) - 1.0);
  pool_.reserve(params.pool_size);
  for (uint32_t i = 0; i < params.pool_size; ++i) {
    pool_.emplace_back(Mix64(params.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))));
  }
}

uint32_t FlhClient::HashValue(uint32_t index, uint64_t value) const {
  // Multiply-shift reduction of the 64-bit tabulation hash onto [0, g).
  const uint64_t h = pool_[index](value);
  return static_cast<uint32_t>(
      (static_cast<__uint128_t>(h) * g_) >> 64);
}

FlhReport FlhClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  FlhReport report;
  report.hash_index = static_cast<uint32_t>(rng.NextBounded(params_.pool_size));
  const uint32_t hashed = HashValue(report.hash_index, value);
  if (rng.NextBernoulli(keep_prob_)) {
    report.value = hashed;
  } else {
    // Uniform over the other g - 1 outputs.
    uint32_t other = static_cast<uint32_t>(rng.NextBounded(g_ - 1));
    if (other >= hashed) ++other;
    report.value = other;
  }
  return report;
}

FlhServer::FlhServer(const FlhParams& params)
    : hasher_(params), g_(hasher_.g()) {
  const double e = std::exp(params.epsilon);
  keep_prob_ = e / (e + static_cast<double>(g_) - 1.0);
  counts_.assign(static_cast<size_t>(params.pool_size) * g_, 0);
}

void FlhServer::Absorb(const FlhReport& report) {
  LDPJS_CHECK(report.hash_index < hasher_.pool_size());
  LDPJS_CHECK(report.value < g_);
  ++counts_[static_cast<size_t>(report.hash_index) * g_ + report.value];
  ++total_;
}

double FlhServer::EstimateFrequency(uint64_t d) const {
  double support = 0.0;
  for (uint32_t i = 0; i < hasher_.pool_size(); ++i) {
    support += static_cast<double>(
        counts_[static_cast<size_t>(i) * g_ + hasher_.HashValue(i, d)]);
  }
  const double n = static_cast<double>(total_);
  const double inv_g = 1.0 / static_cast<double>(g_);
  return (support - n * inv_g) / (keep_prob_ - inv_g);
}

std::vector<double> FlhServer::EstimateAllFrequencies(uint64_t domain) const {
  std::vector<double> out(domain);
  SharedParallelFor(static_cast<size_t>(domain),
                    static_cast<size_t>(domain) * hasher_.pool_size(),
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t d = begin; d < end; ++d) {
                        out[d] = EstimateFrequency(static_cast<uint64_t>(d));
                      }
                    });
  return out;
}

std::vector<double> FlhEstimateFrequencies(const Column& column,
                                           const FlhParams& params,
                                           uint64_t run_seed) {
  FlhClient client(params);
  FlhServer server(params);
  Xoshiro256 rng(run_seed);
  for (uint64_t v : column.values()) {
    server.Absorb(client.Perturb(v, rng));
  }
  return server.EstimateAllFrequencies(column.domain());
}

}  // namespace ldpjs
