// WindowedView: sliding-window join-size estimation on the central tier of
// the federated topology, with cross-region epoch alignment and an
// incrementally cached finalized view.
//
// The central's full-history FinalizedView() answers "the join size over
// everything ever ingested" and re-merges every shard on every query. This
// class answers "the join size over the last W epochs" — and does it
// incrementally, exploiting the same linearity that makes the whole
// topology exact: raw int64 lanes can be *subtracted* as exactly as they
// are merged (LdpJoinSketchServer::SubtractRaw), so sliding the window is
// an O(lanes) update per epoch boundary, never a recompute.
//
// Cross-region alignment: each applied (region, epoch) snapshot is recorded
// here; per region the view tracks a high-water epoch, and the *aligned
// frontier* E is the minimum high-water over regions — the newest epoch
// every region has shipped. The window is the epoch interval (E-W, E].
// Estimates are answered only at the frontier, so a lagging or partitioned
// region can never be silently missing from the window: its absence holds
// E (and therefore the window) back instead of skewing the estimate.
// Until `expected_regions` distinct regions have pushed at least one
// epoch, there is no frontier and the window is empty.
//
// Accumulator maintenance rules:
//   - a fresh snapshot at epoch e <= E (the laggard region catching the
//     frontier up) merges into the accumulator;
//   - a snapshot at epoch e > E is retained as pending and merges when E
//     reaches it;
//   - when E advances, epochs now outside (E-W, E] are subtracted from the
//     accumulator and their stored snapshots freed;
//   - duplicates never reach this class — the central's (region, epoch)
//     dedup calls the observer exactly once per applied snapshot.
//
// Read side (RCU publication): whenever an applied epoch changes the
// accumulator or moves the frontier, the WRITER finalizes a copy and
// publishes it as an immutable PublishedView through an atomic
// shared_ptr swap. Readers call Published() — one atomic load, no copy,
// and no lock shared with the ingest/observer path — and estimate against
// a snapshot that can never change underneath them. This replaces the old
// copy-on-read cache, which copied the whole k·m sketch under mu_ on
// EVERY call even when clean and serialized readers against writers.
//
// Memory: one accumulator plus the stored snapshots — at most W in-window
// epochs per region, plus whatever a region has pushed ahead of the
// frontier (bounded in practice by the cut cadence spread between regions) —
// plus the published snapshot (readers may briefly keep predecessors alive).
#ifndef LDPJS_FEDERATION_WINDOWED_VIEW_H_
#define LDPJS_FEDERATION_WINDOWED_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/thread_annotations.h"
#include "core/ldp_join_sketch.h"
#include "service/published_view.h"

namespace ldpjs {

class WindowedView {
 public:
  /// `window_epochs` >= 1 is W, the number of trailing aligned epochs an
  /// estimate covers (pass a value larger than any run's epoch count for
  /// "all"). `expected_regions` >= 1 gates the frontier: no estimate until
  /// that many distinct regions have pushed.
  WindowedView(const SketchParams& params, double epsilon,
               uint64_t window_epochs, size_t expected_regions);

  WindowedView(const WindowedView&) = delete;
  WindowedView& operator=(const WindowedView&) = delete;

  /// Records one freshly applied (region, epoch) snapshot and slides the
  /// window. Called by the central's epoch observer — exactly once per
  /// (region, epoch), possibly concurrently across regions, in epoch order
  /// within a region (the shipper sends in order and the server's
  /// duplicate acks wait out in-flight merges). The snapshot is consumed
  /// (moved into the epoch store — the caller discards it anyway, so the
  /// k·m lanes are not copied on the ack-latency-critical push path);
  /// nullptr is an empty-epoch heartbeat: the region's high-water (and
  /// possibly the frontier) advances with nothing stored or merged.
  void OnEpochApplied(uint32_t region_id, uint64_t epoch,
                      LdpJoinSketchServer* snapshot);

  /// The latest published immutable window view — one atomic load, no
  /// locks shared with OnEpochApplied, never null (an empty view is
  /// published at construction). THE steady-state read path: estimate
  /// directly against Published()->sketch.
  std::shared_ptr<const PublishedView> Published() const {
    return publisher_.Current();
  }

  /// Finalized copy of the window accumulator — the sketch to estimate
  /// with. Compatibility wrapper over Published(): still lock-free (the
  /// writer publishes at every change), but copies the sketch — hot read
  /// paths should hold Published() instead.
  LdpJoinSketchServer Finalized() const { return Published()->sketch; }

  /// Raw-lane copy of the window accumulator (un-finalized; tests merge /
  /// compare it).
  LdpJoinSketchServer RawWindow() const;

  /// The non-incremental reference: re-merges the stored in-window
  /// snapshots from scratch. Bit-identical to RawWindow() by construction —
  /// the invariant the incremental add/subtract path is tested against.
  LdpJoinSketchServer RecomputeRaw() const;

  /// True once `expected_regions` distinct regions have pushed.
  bool aligned() const;
  /// The aligned frontier E (valid only when aligned()).
  uint64_t frontier() const;
  uint64_t window_epochs() const { return window_; }
  /// Reports currently inside the window accumulator.
  uint64_t window_reports() const;
  /// Snapshots currently merged into the accumulator.
  uint64_t epochs_in_window() const;
  /// Snapshots subtracted back out after sliding past the window.
  uint64_t epochs_expired() const;
  /// Snapshots ahead of the frontier, waiting for alignment.
  uint64_t epochs_pending() const;

 private:
  struct StoredEpoch {
    LdpJoinSketchServer sketch;
    bool added = false;  ///< currently merged into the accumulator
  };
  struct RegionWindow {
    uint64_t high_water = 0;  ///< newest epoch this region has pushed
    std::map<uint64_t, StoredEpoch> epochs;
  };

  /// Recomputes the frontier and reconciles the accumulator with the
  /// window (E-W, E]: merge what entered, subtract what expired, free what
  /// slid past. Sets dirty_ when the accumulator changed.
  void AdvanceLocked() LDPJS_REQUIRES(mu_);

  /// Finalizes a copy of the accumulator and swaps it into the publisher
  /// (writer side only — readers never come here).
  void PublishLocked() LDPJS_REQUIRES(mu_);

  const uint64_t window_;
  const size_t expected_regions_;

  mutable Mutex mu_;
  std::map<uint32_t, RegionWindow> regions_ LDPJS_GUARDED_BY(mu_);
  /// Raw lanes over the window, incremental.
  LdpJoinSketchServer acc_ LDPJS_GUARDED_BY(mu_);
  bool has_frontier_ LDPJS_GUARDED_BY(mu_) = false;
  uint64_t frontier_ LDPJS_GUARDED_BY(mu_) = 0;
  uint64_t in_window_ LDPJS_GUARDED_BY(mu_) = 0;
  uint64_t expired_ LDPJS_GUARDED_BY(mu_) = 0;
  /// Accumulator changed since the last publish.
  bool dirty_ LDPJS_GUARDED_BY(mu_) = false;
  /// Last published (aligned, frontier) — republish when either moves even
  /// if the accumulator did not (e.g. heartbeat-only frontier advance).
  bool pub_aligned_ LDPJS_GUARDED_BY(mu_) = false;
  uint64_t pub_frontier_ LDPJS_GUARDED_BY(mu_) = 0;
  ViewPublisher publisher_;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_WINDOWED_VIEW_H_
