// Command-line driver. Two faces:
//
// Experiment mode (no subcommand, the original interface): run any join-
// size method on any of the simulated Table-II workloads.
//
//   ldpjs_cli --method ldpjoinsketch+ --dataset movielens --rows 1000000 \
//             --epsilon 2 --k 18 --m 1024 --trials 3 [--shards 4] [--net 1]
//
// Network mode (subcommands) — the distributed deployment, on real sockets:
//
//   ldpjs_cli serve --port 7542 --shards 4 --seed 1 --out sketch_a.bin
//   ldpjs_cli send  --port 7542 --table a --rows 200000 --seed 1 --finalize 1
//   ldpjs_cli estimate --sketch-a a.bin --sketch-b b.bin [--check 1 ...]
//
// `serve` aggregates one table's reports until a client sends FINALIZE,
// then drains, finalizes once, writes the serialized finalized sketch to
// --out, and dumps the per-connection/per-shard metrics. `send` replays the
// exact per-block perturbation the in-process simulation would run (same
// counter-based RNG streams, same seed derivations), so `estimate --check`
// can assert the network path reproduced the in-process estimate bit for
// bit.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/join_methods.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "tools/flags.h"

namespace {

using namespace ldpjs;

JoinMethod ParseMethod(const std::string& name) {
  if (name == "fagms") return JoinMethod::kFagms;
  if (name == "krr") return JoinMethod::kKrr;
  if (name == "hcms") return JoinMethod::kAppleHcms;
  if (name == "flh") return JoinMethod::kFlh;
  if (name == "ldpjoinsketch") return JoinMethod::kLdpJoinSketch;
  if (name == "ldpjoinsketch+") return JoinMethod::kLdpJoinSketchPlus;
  std::fprintf(stderr,
               "unknown method '%s' (fagms|krr|hcms|flh|ldpjoinsketch|"
               "ldpjoinsketch+)\n",
               name.c_str());
  std::exit(2);
}

DatasetId ParseDataset(const std::string& name) {
  if (name == "zipf") return DatasetId::kZipf;
  if (name == "gaussian") return DatasetId::kGaussian;
  if (name == "movielens") return DatasetId::kMovieLens;
  if (name == "tpcds") return DatasetId::kTpcds;
  if (name == "twitter") return DatasetId::kTwitter;
  if (name == "facebook") return DatasetId::kFacebook;
  std::fprintf(stderr,
               "unknown dataset '%s' "
               "(zipf|gaussian|movielens|tpcds|twitter|facebook)\n",
               name.c_str());
  std::exit(2);
}

/// Workload + sketch-seed derivations shared by every mode, so the network
/// subcommands regenerate exactly what the in-process experiment runs.
void DefineWorkloadFlags(tools::Flags& flags) {
  flags.Define("dataset", "zipf", "workload (Table II)");
  flags.Define("alpha", "1.1", "zipf skew (zipf dataset only)");
  flags.Define("rows", "1000000", "rows per table");
  flags.Define("epsilon", "4.0", "LDP budget");
  flags.Define("k", "18", "sketch rows");
  flags.Define("m", "1024", "sketch columns (power of two)");
  flags.Define("seed", "1", "workload + run seed");
}

JoinWorkload WorkloadFromFlags(const tools::Flags& flags) {
  const DatasetId dataset = ParseDataset(flags.GetString("dataset"));
  const uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return (dataset == DatasetId::kZipf)
             ? MakeZipfWorkload(flags.GetDouble("alpha"),
                                GetDatasetSpec(dataset).domain, rows, seed)
             : MakeWorkload(dataset, rows, seed);
}

SketchParams SketchFromFlags(const tools::Flags& flags) {
  SketchParams params;
  params.k = static_cast<int>(flags.GetInt("k"));
  params.m = static_cast<int>(flags.GetInt("m"));
  params.seed =
      Mix64(static_cast<uint64_t>(flags.GetInt("seed")) ^ 0x5EEDULL);
  return params;
}

bool WriteFile(const std::string& path, std::span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

bool ReadFile(const std::string& path, std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  bytes.resize(size < 0 ? 0 : static_cast<size_t>(size));
  const bool ok =
      bytes.empty() || std::fread(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  std::fclose(f);
  return ok;
}

void DumpMetrics(const NetMetrics& metrics) {
  std::printf("connections    : %llu accepted, %llu rejected handshakes\n",
              static_cast<unsigned long long>(metrics.connections_accepted),
              static_cast<unsigned long long>(metrics.handshakes_rejected));
  std::printf("frames         : %llu ok, %llu corrupt rejected, %llu shed\n",
              static_cast<unsigned long long>(metrics.frames_received),
              static_cast<unsigned long long>(metrics.corrupt_frames_rejected),
              static_cast<unsigned long long>(metrics.frames_shed));
  std::printf("bytes          : %llu\n",
              static_cast<unsigned long long>(metrics.bytes_received));
  std::printf("reports        : %llu\n",
              static_cast<unsigned long long>(metrics.reports_ingested));
  std::printf("queue high-water: %llu frames\n",
              static_cast<unsigned long long>(metrics.queue_high_water));
  for (const ConnectionMetrics& c : metrics.connections) {
    std::printf(
        "  conn %llu: frames=%llu bytes=%llu reports=%llu corrupt=%llu "
        "shed=%llu hwm=%llu\n",
        static_cast<unsigned long long>(c.id),
        static_cast<unsigned long long>(c.frames_received),
        static_cast<unsigned long long>(c.bytes_received),
        static_cast<unsigned long long>(c.reports_ingested),
        static_cast<unsigned long long>(c.corrupt_frames_rejected),
        static_cast<unsigned long long>(c.frames_shed),
        static_cast<unsigned long long>(c.queue_high_water));
  }
  for (size_t s = 0; s < metrics.shards.size(); ++s) {
    std::printf("  shard %zu: frames=%llu reports=%llu\n", s,
                static_cast<unsigned long long>(metrics.shards[s].frames),
                static_cast<unsigned long long>(metrics.shards[s].reports));
  }
}

// ---------------------------------------------------------------------------
// serve: TCP aggregation front end for one table's reports.
// ---------------------------------------------------------------------------
int RunServe(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("port", "7542", "TCP port to listen on");
  flags.Define("shards", "1", "aggregation shards");
  flags.Define("queue", "64", "per-connection ingest queue capacity");
  flags.Define("backpressure", "block", "full-queue policy: block|shed");
  flags.Define("out", "", "write the finalized sketch here when done");
  flags.Parse(argc, argv);

  FrameServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.num_shards = static_cast<size_t>(flags.GetInt("shards"));
  options.queue_capacity = static_cast<size_t>(flags.GetInt("queue"));
  const std::string policy = flags.GetString("backpressure");
  if (policy == "block") {
    options.backpressure = BackpressurePolicy::kBlock;
  } else if (policy == "shed") {
    options.backpressure = BackpressurePolicy::kShed;
  } else {
    std::fprintf(stderr, "unknown backpressure policy '%s' (block|shed)\n",
                 policy.c_str());
    return 2;
  }

  const SketchParams params = SketchFromFlags(flags);
  FrameServer server(params, flags.GetDouble("epsilon"), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving LJSP on port %u (k=%d, m=%d, shards=%zu, queue=%zu, "
              "%s)\n",
              server.port(), params.k, params.m, options.num_shards,
              options.queue_capacity, policy.c_str());
  std::fflush(stdout);

  server.WaitForFinalizeRequest();
  server.Stop();
  const NetMetrics metrics = server.metrics();
  LdpJoinSketchServer sketch = server.Finalize();
  DumpMetrics(metrics);
  std::printf("finalized sketch: %llu reports\n",
              static_cast<unsigned long long>(sketch.total_reports()));
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    const std::vector<uint8_t> bytes = sketch.Serialize();
    if (!WriteFile(out, bytes)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), bytes.size());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// send: perturb one table exactly like the in-process simulation and stream
// the frames to a serve instance.
// ---------------------------------------------------------------------------
int RunSend(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("host", "127.0.0.1", "server host");
  flags.Define("port", "7542", "server port");
  flags.Define("table", "a", "which join column to stream: a|b");
  flags.Define("trial", "0", "perturbation trial index (matches --trials)");
  flags.Define("finalize", "0", "send FINALIZE when done (1 = yes)");
  flags.Parse(argc, argv);

  const std::string table = flags.GetString("table");
  if (table != "a" && table != "b") {
    std::fprintf(stderr, "--table must be a or b\n");
    return 2;
  }
  const JoinWorkload workload = WorkloadFromFlags(flags);
  const Column& column = table == "a" ? workload.table_a : workload.table_b;
  const SketchParams params = SketchFromFlags(flags);
  const double epsilon = flags.GetDouble("epsilon");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint64_t trial = static_cast<uint64_t>(flags.GetInt("trial"));
  // The exact derivation chain of experiment mode: per-trial run seed, then
  // the per-table tweak RunLdpJoinSketch applies.
  const uint64_t trial_seed = Mix64(seed ^ (0xF1A6ULL + trial));
  const uint64_t run_seed =
      Mix64(trial_seed ^ (table == "a" ? 0xA3ULL : 0xB3ULL));

  auto sender = FrameSender::Connect(flags.GetString("host"),
                                     static_cast<uint16_t>(
                                         flags.GetInt("port")),
                                     params, epsilon);
  if (!sender.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 sender.status().ToString().c_str());
    return 1;
  }

  LdpJoinSketchClient client(params, epsilon);
  const uint64_t* values = column.values().data();
  const size_t rows = column.size();
  std::vector<LdpReport> block(kIngestBlockSize);
  BinaryWriter frame;
  for (size_t first = 0; first < rows; first += kIngestBlockSize) {
    const size_t count = std::min(kIngestBlockSize, rows - first);
    const size_t block_index = first / kIngestBlockSize;
    Xoshiro256 rng = MakeStreamRng(run_seed, block_index);
    std::span<LdpReport> out(block.data(), count);
    client.PerturbBatch(std::span<const uint64_t>(values + first, count),
                        out, rng);
    frame = BinaryWriter();
    EncodeReportBatch(out, frame);
    const Status sent = sender->SendEncodedBatch(frame.buffer());
    if (!sent.ok()) {
      std::fprintf(stderr, "send failed at block %zu: %s\n", block_index,
                   sent.ToString().c_str());
      return 1;
    }
  }
  // Either exchange is the proof that every streamed frame is in the
  // lanes; FINALIZE additionally ends the server's collection, and is the
  // session's final message (no BYE after it).
  const Status finished = flags.GetInt("finalize") != 0
                              ? sender->RequestFinalize()
                              : sender->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", finished.ToString().c_str());
    return 1;
  }
  std::printf("streamed table %s: %llu frames, %llu bytes, %llu reports "
              "(%llu busy retries)\n",
              table.c_str(),
              static_cast<unsigned long long>(sender->frames_sent()),
              static_cast<unsigned long long>(sender->bytes_sent()),
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(sender->busy_retries()));
  return 0;
}

// ---------------------------------------------------------------------------
// estimate: join two finalized sketch files; optionally check against the
// in-process run of the same experiment.
// ---------------------------------------------------------------------------
int RunEstimate(int argc, char** argv) {
  tools::Flags flags;
  DefineWorkloadFlags(flags);
  flags.Define("sketch-a", "", "finalized sketch file for table a");
  flags.Define("sketch-b", "", "finalized sketch file for table b");
  flags.Define("check", "0",
               "1 = recompute in-process (trial 0) and require a bit-"
               "identical estimate");
  flags.Parse(argc, argv);

  auto load = [](const std::string& path) -> Result<LdpJoinSketchServer> {
    std::vector<uint8_t> bytes;
    if (!ReadFile(path, bytes)) {
      return Status::NotFound("cannot read " + path);
    }
    return LdpJoinSketchServer::Deserialize(bytes);
  };
  auto sketch_a = load(flags.GetString("sketch-a"));
  auto sketch_b = load(flags.GetString("sketch-b"));
  if (!sketch_a.ok() || !sketch_b.ok()) {
    std::fprintf(stderr, "cannot load sketches: %s / %s\n",
                 sketch_a.ok() ? "ok" : sketch_a.status().ToString().c_str(),
                 sketch_b.ok() ? "ok" : sketch_b.status().ToString().c_str());
    return 1;
  }
  if (!sketch_a->finalized() || !sketch_b->finalized()) {
    std::fprintf(stderr, "estimate needs finalized sketches\n");
    return 1;
  }
  const double estimate = sketch_a->JoinEstimate(*sketch_b);
  std::printf("network estimate   : %.17g\n", estimate);

  if (flags.GetInt("check") != 0) {
    JoinMethodConfig config;
    config.epsilon = flags.GetDouble("epsilon");
    config.sketch = SketchFromFlags(flags);
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
    config.run_seed = Mix64(seed ^ 0xF1A6ULL);  // trial 0
    const JoinWorkload workload = WorkloadFromFlags(flags);
    const JoinMethodResult in_process =
        EstimateJoin(JoinMethod::kLdpJoinSketch, workload.table_a,
                     workload.table_b, config);
    std::printf("in-process estimate: %.17g\n", in_process.estimate);
    if (in_process.estimate != estimate) {
      std::printf("MISMATCH: network path diverged from in-process run\n");
      return 1;
    }
    std::printf("bit-identical: yes\n");
    const double truth = ExactJoinSize(workload.table_a, workload.table_b);
    std::printf("true join size     : %.6e (RE %.4f)\n", truth,
                RelativeError(truth, estimate));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// experiment mode (original interface).
// ---------------------------------------------------------------------------
int RunExperiment(int argc, char** argv) {
  tools::Flags flags;
  flags.Define("method", "ldpjoinsketch", "estimator to run");
  DefineWorkloadFlags(flags);
  flags.Define("sample-rate", "0.1", "LDPJoinSketch+ phase-1 rate r");
  flags.Define("threshold", "0.001", "LDPJoinSketch+ FI threshold theta");
  flags.Define("flh-pool", "256", "FLH hash pool size");
  flags.Define("trials", "3", "perturbation repetitions");
  flags.Define("threads", "0", "simulation threads (0 = hardware)");
  flags.Define("shards", "0",
               "aggregation-service shards (0 = in-process ingest; N routes "
               "reports through the sharded wire path — same estimates)");
  flags.Define("net", "0",
               "1 = ship wire frames over a TCP loopback session "
               "(FrameServer/FrameSender) — same estimates");
  flags.Parse(argc, argv);

  const JoinMethod method = ParseMethod(flags.GetString("method"));
  const uint64_t rows = static_cast<uint64_t>(flags.GetInt("rows"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  const JoinWorkload workload = WorkloadFromFlags(flags);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  JoinMethodConfig config;
  config.epsilon = flags.GetDouble("epsilon");
  config.sketch = SketchFromFlags(flags);
  config.plus_sample_rate = flags.GetDouble("sample-rate");
  config.plus_threshold = flags.GetDouble("threshold");
  config.flh_pool_size = static_cast<uint32_t>(flags.GetInt("flh-pool"));
  config.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  config.num_shards = static_cast<size_t>(flags.GetInt("shards"));
  config.net_loopback = flags.GetInt("net") != 0;

  const int trials = static_cast<int>(flags.GetInt("trials"));
  RunningStats estimates, res, offline, online;
  double comm_bits = 0;
  for (int t = 0; t < trials; ++t) {
    config.run_seed = Mix64(seed ^ (0xF1A6ULL + static_cast<uint64_t>(t)));
    const JoinMethodResult result =
        EstimateJoin(method, workload.table_a, workload.table_b, config);
    estimates.Add(result.estimate);
    res.Add(RelativeError(truth, result.estimate));
    offline.Add(result.offline_seconds);
    online.Add(result.online_seconds);
    comm_bits = result.comm_bits;
  }

  std::printf("method         : %s\n",
              std::string(JoinMethodName(method)).c_str());
  std::printf("dataset        : %s (%llu rows/table, domain %llu)\n",
              workload.name.c_str(), static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(workload.table_a.domain()));
  std::printf("epsilon        : %.3f   sketch (k=%d, m=%d)\n", config.epsilon,
              config.sketch.k, config.sketch.m);
  std::printf("true join size : %.6e\n", truth);
  std::printf("estimate       : %.6e (mean of %d trials, stddev %.3e)\n",
              estimates.mean(), trials, estimates.stddev());
  std::printf("relative error : %.4f (mean)\n", res.mean());
  std::printf("offline/online : %.3f s / %.3f s\n", offline.mean(),
              online.mean());
  std::printf("uplink traffic : %.3e bits total\n", comm_bits);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && argv[1][0] != '-') {
    const std::string subcommand = argv[1];
    if (subcommand == "serve") return RunServe(argc - 1, argv + 1);
    if (subcommand == "send") return RunSend(argc - 1, argv + 1);
    if (subcommand == "estimate") return RunEstimate(argc - 1, argv + 1);
    std::fprintf(stderr,
                 "unknown subcommand '%s' (serve|send|estimate, or flags "
                 "only for experiment mode)\n",
                 subcommand.c_str());
    return 2;
  }
  return RunExperiment(argc, argv);
}
