// Durable regional spooling: the write-ahead log that makes a regional
// crash lose zero epochs. Unit tests pin the WAL format's recovery
// semantics (round-trip, compaction, torn-tail truncation, region
// mismatch refusal); the end-to-end tests kill a regional node with
// un-shipped snapshots and prove the restarted incarnation resumes from
// the spool to a federated estimate bit-identical to a run that never
// crashed — including the exactly-once resolution of an epoch whose
// push merged but whose ack died with the process.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/socket.h"
#include "core/ldp_join_sketch.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "federation/snapshot_spool.h"
#include "net/frame_sender.h"
#include "obs/metrics.h"

namespace ldpjs {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.k = 6;
  params.m = 256;
  params.seed = 21;
  return params;
}

std::vector<LdpReport> PerturbColumn(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

/// Fresh scratch directory per test (recreated, so reruns are clean).
std::string ScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("ldpjs_spool_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string SpoolPath(const std::string& dir, uint32_t region_id) {
  return dir + "/region-" + std::to_string(region_id) + ".spool";
}

constexpr size_t kSpoolHeaderBytes = 16;  // "LJSSPOOL" + version + region

TEST(SnapshotSpoolTest, RoundTripRecoversPendingEpochsWithAttemptFlags) {
  const std::string dir = ScratchDir("roundtrip");
  const std::vector<uint8_t> sketch0(64, 0xA0);
  const std::vector<uint8_t> sketch1(96, 0xB1);
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 3, &recovered).ok());
    EXPECT_TRUE(recovered.empty());
    ASSERT_TRUE(spool.AppendSnapshot(0, sketch0).ok());
    ASSERT_TRUE(spool.AppendSnapshot(1, sketch1).ok());
    ASSERT_TRUE(spool.MarkAttempted(0).ok());
    EXPECT_GT(spool.bytes_written(), sketch0.size() + sketch1.size());
  }
  SnapshotSpool reopened;
  std::vector<SpoolEntry> recovered;
  ASSERT_TRUE(reopened.Open(dir, 3, &recovered).ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].epoch, 0u);
  EXPECT_EQ(recovered[0].raw_sketch, sketch0);
  EXPECT_TRUE(recovered[0].attempted);  // number frozen across the crash
  EXPECT_EQ(recovered[1].epoch, 1u);
  EXPECT_EQ(recovered[1].raw_sketch, sketch1);
  EXPECT_FALSE(recovered[1].attempted);
  EXPECT_EQ(reopened.epochs_resumed(), 2u);
  EXPECT_GT(reopened.bytes_resumed(), 0u);
}

TEST(SnapshotSpoolTest, ShippedEpochsCompactAwayAndEmptySpoolShrinks) {
  const std::string dir = ScratchDir("compact");
  const std::vector<uint8_t> sketch(128, 0xCC);
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 9, &recovered).ok());
    ASSERT_TRUE(spool.AppendSnapshot(0, sketch).ok());
    ASSERT_TRUE(spool.AppendSnapshot(1, sketch).ok());
    ASSERT_TRUE(spool.MarkShipped(0).ok());
    ASSERT_TRUE(spool.MarkShipped(1).ok());
    // The live set emptied: the spool truncates back to its header
    // instead of growing with the region's lifetime.
    EXPECT_EQ(std::filesystem::file_size(SpoolPath(dir, 9)),
              kSpoolHeaderBytes);
  }
  // Renumber records survive a cycle too: spool one entry, renumber it,
  // and recovery must surface the new number.
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 9, &recovered).ok());
    EXPECT_TRUE(recovered.empty());  // shipped epochs stayed gone
    ASSERT_TRUE(spool.AppendSnapshot(0, sketch).ok());
    ASSERT_TRUE(spool.RecordRenumber(0, 7).ok());
  }
  SnapshotSpool reopened;
  std::vector<SpoolEntry> recovered;
  ASSERT_TRUE(reopened.Open(dir, 9, &recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].epoch, 7u);
  // Recovery compacted: the reopened file holds exactly the live entry.
  EXPECT_LT(std::filesystem::file_size(SpoolPath(dir, 9)),
            kSpoolHeaderBytes + 2 * (sketch.size() + 64));
}

TEST(SnapshotSpoolTest, TornTailAndCorruptRecordsTruncatedAtRecovery) {
  const std::string dir = ScratchDir("torn");
  const std::vector<uint8_t> sketch(80, 0x5A);
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 1, &recovered).ok());
    ASSERT_TRUE(spool.AppendSnapshot(0, sketch).ok());
    ASSERT_TRUE(spool.AppendSnapshot(1, sketch).ok());
  }
  const std::string path = SpoolPath(dir, 1);

  {  // A crash mid-append tears the tail: a half-written record.
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    const char garbage[] = {0x40, 0x00, 0x00, 0x00, 0x01, 0x77};
    torn.write(garbage, sizeof(garbage));
  }
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 1, &recovered).ok());
    ASSERT_EQ(recovered.size(), 2u);  // both intact records survive
  }

  {  // Flip the last byte (inside the final record's checksum): that
     // record is dropped, everything before it survives.
    std::fstream flip(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    flip.seekg(-1, std::ios::end);
    char byte = 0;
    flip.get(byte);
    flip.seekp(-1, std::ios::end);
    flip.put(static_cast<char>(byte ^ 0x01));
  }
  SnapshotSpool spool;
  std::vector<SpoolEntry> recovered;
  ASSERT_TRUE(spool.Open(dir, 1, &recovered).ok());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].epoch, 0u);
  EXPECT_EQ(recovered[0].raw_sketch, sketch);
}

TEST(SnapshotSpoolTest, TraceContextSurvivesRecoveryAndCompaction) {
  const std::string dir = ScratchDir("trace");
  const std::vector<uint8_t> sketch(48, 0xD4);
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 8, &recovered).ok());
    ASSERT_TRUE(spool.AppendSnapshot(0, sketch).ok());
    ASSERT_TRUE(spool.RecordTrace(0, 0xABCDEF, 123456789).ok());
    ASSERT_TRUE(spool.AppendSnapshot(1, sketch).ok());  // untraced epoch
  }
  {
    SnapshotSpool reopened;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(reopened.Open(dir, 8, &recovered).ok());
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[0].trace_id, 0xABCDEFu);
    EXPECT_EQ(recovered[0].origin_ns, 123456789u);
    EXPECT_EQ(recovered[1].trace_id, 0u);  // untraced stays untraced
    EXPECT_EQ(recovered[1].origin_ns, 0u);
  }
  // The first reopen compacted the file; the trace must have been
  // re-emitted with its epoch, so a SECOND recovery still sees it.
  SnapshotSpool again;
  std::vector<SpoolEntry> recovered;
  ASSERT_TRUE(again.Open(dir, 8, &recovered).ok());
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(recovered[0].origin_ns, 123456789u);
}

TEST(SnapshotSpoolTest, RefusesASpoolBelongingToAnotherRegion) {
  const std::string dir = ScratchDir("region_mismatch");
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 4, &recovered).ok());
    ASSERT_TRUE(spool.AppendSnapshot(0, std::vector<uint8_t>(32, 1)).ok());
  }
  // Masquerade region 4's spool as region 5's.
  std::filesystem::copy_file(SpoolPath(dir, 4), SpoolPath(dir, 5));
  SnapshotSpool spool;
  std::vector<SpoolEntry> recovered;
  const Status opened = spool.Open(dir, 5, &recovered);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.code(), StatusCode::kCorruption);
}

// The tentpole durability scenario: a regional node is killed mid-run
// with two un-shipped epochs (the central was unreachable), its spool
// tail is torn by the crash, and a fresh incarnation on the same spool
// resumes — the final federated estimate is bit-identical to a run that
// never crashed, with zero epochs lost.
TEST(FederationSpoolTest, CrashRestartResumesUnshippedEpochsBitIdentical) {
  const std::string dir = ScratchDir("crash_restart");
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> first = PerturbColumn(client, 4000, 70);
  const std::vector<LdpReport> second = PerturbColumn(client, 3000, 71);

  // Reserve a port with nothing listening: the central is "down" for the
  // whole first incarnation.
  uint16_t central_port = 0;
  {
    auto probe = Socket::ListenTcp(0);
    ASSERT_TRUE(probe.ok());
    central_port = probe->local_port();
  }

  RegionalNodeOptions options;
  options.region_id = 2;
  options.central_port = central_port;
  options.spool_dir = dir;
  options.max_ship_attempts = 2;
  options.ship_backoff = {.base_micros = 1000, .cap_micros = 4000};
  {
    RegionalNode incarnation1(params, epsilon, options);
    ASSERT_TRUE(incarnation1.Start().ok());
    auto sender = FrameSender::Connect("127.0.0.1", incarnation1.port(),
                                       params, epsilon);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(first).ok());
    ASSERT_TRUE(sender->Ping().ok());  // ingest barrier before the cut
    EXPECT_EQ(incarnation1.CutAndShip().code(), StatusCode::kUnavailable);
    ASSERT_TRUE(sender->SendReports(second).ok());
    ASSERT_TRUE(sender->Finish().ok());
    EXPECT_EQ(incarnation1.FlushAndStop().code(), StatusCode::kUnavailable);
    EXPECT_EQ(incarnation1.pending_snapshots(), 2u);
    EXPECT_EQ(incarnation1.spool_errors(), 0u);
    // Destruction without a successful flush — the "crash". The pending
    // queue dies with the process; the spool is now the only copy.
  }
  {  // The crash also tore a half-written record onto the spool's tail.
    std::ofstream torn(SpoolPath(dir, 2), std::ios::binary | std::ios::app);
    const char garbage[] = {0x7F, 0x01, 0x00, 0x00, 0x03};
    torn.write(garbage, sizeof(garbage));
  }

  // The central comes back; the restarted incarnation recovers the two
  // epochs from the spool and ships them.
  CentralNodeOptions central_options;
  central_options.server.port = central_port;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  {
    RegionalNode incarnation2(params, epsilon, options);
    ASSERT_TRUE(incarnation2.Start().ok());
    EXPECT_EQ(incarnation2.spool_epochs_resumed(), 2u);
    EXPECT_EQ(incarnation2.pending_snapshots(), 2u);
    ASSERT_TRUE(incarnation2.FlushAndStop().ok());
    EXPECT_EQ(incarnation2.pending_snapshots(), 0u);
    EXPECT_EQ(incarnation2.epochs_shipped(), 2u);
    const NetMetrics m = incarnation2.metrics();
    EXPECT_GT(m.spool_bytes_resumed, 0u);
    EXPECT_EQ(m.spool_epochs_resumed, 2u);
  }
  // Everything shipped: the spool compacted back to its bare header.
  EXPECT_EQ(std::filesystem::file_size(SpoolPath(dir, 2)),
            kSpoolHeaderBytes);

  central.Stop();
  LdpJoinSketchServer federated = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(first);
  direct.AbsorbBatch(second);
  direct.Finalize();
  EXPECT_EQ(federated.Serialize(), direct.Serialize());
  EXPECT_EQ(federated.total_reports(), first.size() + second.size());
}

// A crash-replayed epoch ships TRACED with the original client origin: the
// trace claimed at the cut is spooled (kTrace) beside the epoch, the
// restarted incarnation recovers it into the pending snapshot, and the
// replayed push carries it — so the central still produces an
// ingest-to-queryable sample spanning the ORIGINAL send, crash included.
// The restarted incarnation ingests nothing itself, so any new i2q sample
// after the restart can only come from the replayed traced push.
TEST(FederationSpoolTest, CrashReplayedEpochStillShipsTraced) {
  const std::string dir = ScratchDir("trace_replay");
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 2000, 90);

  uint16_t central_port = 0;
  {
    auto probe = Socket::ListenTcp(0);
    ASSERT_TRUE(probe.ok());
    central_port = probe->local_port();
  }

  RegionalNodeOptions options;
  options.region_id = 5;
  options.central_port = central_port;
  options.spool_dir = dir;
  options.max_ship_attempts = 2;
  options.ship_backoff = {.base_micros = 1000, .cap_micros = 4000};
  {
    RegionalNode incarnation1(params, epsilon, options);
    ASSERT_TRUE(incarnation1.Start().ok());
    FrameSender::Options traced;
    traced.trace_every = 1;  // every batch traced → the cut claims one
    auto sender = FrameSender::Connect("127.0.0.1", incarnation1.port(),
                                       params, epsilon, traced);
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(sender->SendReports(reports).ok());
    ASSERT_TRUE(sender->Ping().ok());  // absorb barrier before the cut
    EXPECT_EQ(incarnation1.CutAndShip().code(), StatusCode::kUnavailable);
    ASSERT_TRUE(sender->Finish().ok());
    // "Crash": destruction with the traced epoch only in the spool.
  }

  const uint64_t i2q_before =
      MetricsRegistry::Default().HistogramByName("ingest_to_queryable_ns")
          .count;

  CentralNodeOptions central_options;
  central_options.server.port = central_port;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());
  {
    RegionalNode incarnation2(params, epsilon, options);
    ASSERT_TRUE(incarnation2.Start().ok());
    EXPECT_EQ(incarnation2.spool_epochs_resumed(), 1u);
    ASSERT_TRUE(incarnation2.FlushAndStop().ok());
    EXPECT_EQ(incarnation2.epochs_shipped(), 1u);
  }
  // The replayed push carried the recovered trace: the central's view
  // publish produced a fresh end-to-end sample.
  EXPECT_GT(MetricsRegistry::Default()
                .HistogramByName("ingest_to_queryable_ns")
                .count,
            i2q_before);
  central.Stop();
}

// Exactly-once across a crash in the ambiguous window: the push merged
// at the central, but the ack — and the regional process — died before
// MarkShipped. The spool's attempted flag froze the epoch number, so
// the restarted incarnation retries the SAME (region, epoch) and the
// central's dedup resolves it to exactly-once, never double-merging.
TEST(FederationSpoolTest, AttemptedEpochRetriesAsDuplicateNotDoubleCount) {
  const std::string dir = ScratchDir("ambiguous_ack");
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 5000, 80);
  LdpJoinSketchServer epoch_sketch(params, epsilon);
  epoch_sketch.AbsorbBatch(reports);
  const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

  CentralNodeOptions central_options;
  CentralNode central(params, epsilon, central_options);
  ASSERT_TRUE(central.Start().ok());

  // Simulate the pre-crash incarnation: epoch 0 spooled, marked
  // attempted, pushed and MERGED at the central — then death before the
  // ack could be processed.
  {
    SnapshotSpool spool;
    std::vector<SpoolEntry> recovered;
    ASSERT_TRUE(spool.Open(dir, 6, &recovered).ok());
    ASSERT_TRUE(spool.AppendSnapshot(0, snapshot).ok());
    ASSERT_TRUE(spool.MarkAttempted(0).ok());
  }
  {
    auto sender =
        FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
    ASSERT_TRUE(sender.ok());
    auto ack = sender->PushEpochSnapshot(6, 0, snapshot);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->code, EpochPushAckCode::kApplied);
  }

  RegionalNodeOptions options;
  options.region_id = 6;
  options.central_port = central.port();
  options.spool_dir = dir;
  RegionalNode restarted(params, epsilon, options);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.spool_epochs_resumed(), 1u);
  ASSERT_TRUE(restarted.FlushAndStop().ok());
  // The retry resolved as a duplicate — and was NOT renumbered into a
  // fresh epoch (which would have double-counted the merged one).
  EXPECT_EQ(restarted.duplicate_acks(), 1u);
  EXPECT_EQ(restarted.epochs_renumbered(), 0u);

  central.Stop();
  LdpJoinSketchServer federated = central.Finalize();
  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);  // exactly once
  direct.Finalize();
  EXPECT_EQ(federated.Serialize(), direct.Serialize());
}

}  // namespace
}  // namespace ldpjs
