// The stats surface: one serializer behind NetMetricsToJson, the SIGUSR1
// dump, the JSONL exporter, and the LJSP v4 STATS frame. The acceptance
// bar has three parts:
//   1. Schema compatibility — every NetMetrics JSON key that existed
//      before the observability layer still appears, by exact name, so
//      dashboards scraping the SIGUSR1 dump survive the upgrade.
//   2. The STATS frame round-trips the same JSON over a live session,
//      including the derived ingest-to-queryable SLO keys and the obs
//      registry section — and is refused on a pre-v4 session without
//      touching the wire.
//   3. Per-kind query rejections surface as their own rows.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ldp_join_sketch.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "net/net_metrics.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 21) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

/// Every top-level key the pre-observability NetMetricsToJson emitted.
/// Renaming or dropping any of these breaks deployed scrapers — the list
/// is frozen; additions are fine.
const char* const kLegacyKeys[] = {
    "connections_accepted", "connections_active", "handshakes_rejected",
    "frames_received", "bytes_received", "reports_ingested",
    "corrupt_frames_rejected", "frames_shed", "queue_high_water",
    "epochs_applied", "epoch_duplicates_ignored", "accept_failures",
    "accept_fatal", "idle_reaped", "connections_folded",
    "retries_attempted", "backoff_millis", "faults_injected",
    "spool_bytes_written", "spool_bytes_resumed", "spool_epochs_resumed",
    "query_frames", "queries_rejected", "views_published", "query_kinds",
    "connections", "shards", "regions",
};

void ExpectHasKey(const std::string& json, const std::string& key) {
  EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos)
      << "missing key " << key << " in " << json;
}

TEST(NetStatsTest, LegacyJsonKeysUnchanged) {
  const std::string json = NetMetricsToJson(NetMetrics{});
  for (const char* key : kLegacyKeys) ExpectHasKey(json, key);
}

TEST(NetStatsTest, RegistrySerializationAddsObsSection) {
  MetricsRegistry registry;
  registry.GetCounter("widgets")->Add(3);
  registry.GetGauge("view_last_publish_unix_ns")->Set(NowNanos());
  registry.GetHistogram("ingest_to_queryable_ns")->Record(2000000);
  const std::string json = StatsToJson(NetMetrics{}, &registry);
  for (const char* key : kLegacyKeys) ExpectHasKey(json, key);
  ExpectHasKey(json, "ingest_to_queryable_p50_ms");
  ExpectHasKey(json, "ingest_to_queryable_p99_ms");
  ExpectHasKey(json, "query_rejected_kinds");
  ExpectHasKey(json, "obs");
  ExpectHasKey(json, "enabled");
  ExpectHasKey(json, "widgets");
  ExpectHasKey(json, "view_staleness_ms");
  // 2ms recorded → p99 reads its bucket's upper bound ((2^21 − 1) ns =
  // 2.09715 ms), serialized in milliseconds.
  EXPECT_NE(json.find("\"ingest_to_queryable_p99_ms\":2.09715"),
            std::string::npos)
      << json;
  // An EMPTY registry still emits the SLO keys, as finite numbers.
  MetricsRegistry empty;
  const std::string bare = StatsToJson(NetMetrics{}, &empty);
  EXPECT_NE(bare.find("\"ingest_to_queryable_p99_ms\":0"),
            std::string::npos)
      << bare;
}

TEST(NetStatsTest, StatsFrameRoundTripsOverLiveSession) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServerOptions options;
  options.num_shards = 2;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok()) << sender.status().ToString();

  // Some ingest so the scrape reflects live counters.
  std::vector<uint64_t> values(300);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i % 50;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(5);
  LdpJoinSketchClient client(params, epsilon);
  client.PerturbBatch(values, reports, rng);
  ASSERT_TRUE(sender->SendReports(reports).ok());
  ASSERT_TRUE(sender->Ping().ok());

  auto json = sender->Stats();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  for (const char* key : kLegacyKeys) ExpectHasKey(*json, key);
  ExpectHasKey(*json, "ingest_to_queryable_p50_ms");
  ExpectHasKey(*json, "ingest_to_queryable_p99_ms");
  ExpectHasKey(*json, "obs");
  ExpectHasKey(*json, "histograms");
  ExpectHasKey(*json, "shard0_queue_wait_ns");
  ExpectHasKey(*json, "shard0_absorb_ns");
  EXPECT_NE(json->find("\"reports_ingested\":300"), std::string::npos)
      << *json;
  // The scrape must match what the server would dump on SIGUSR1 for the
  // frozen counter prefix (obs histograms keep moving between the two
  // serializations, so compare only up to the first derived key).
  const std::string local = server.StatsJson();
  const size_t frozen = json->find("\"ingest_to_queryable_p50_ms\"");
  ASSERT_NE(frozen, std::string::npos);
  EXPECT_EQ(json->substr(0, frozen), local.substr(0, frozen));

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

TEST(NetStatsTest, PerKindRejectionsGetOwnRows) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  FrameServer server(params, epsilon, FrameServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  // A frequent-items scan over an unbounded domain is rejected (the
  // session survives), and the rejection lands on its kind's row.
  QueryRequest bad;
  bad.kind = QueryKind::kFrequentItems;
  bad.domain = 1ull << 40;
  EXPECT_FALSE(sender->Query(bad).ok());

  const NetMetrics m = server.metrics();
  EXPECT_EQ(m.queries_rejected, 1u);
  bool found = false;
  for (const QueryKindMetrics& row : m.query_rejected_kinds) {
    if (row.kind == "frequent_items") {
      found = true;
      EXPECT_EQ(row.served, 1u);
    }
  }
  EXPECT_TRUE(found) << "no frequent_items row in query_rejected_kinds";
  const std::string json = NetMetricsToJson(m);
  EXPECT_NE(json.find("\"query_rejected_kinds\":{\"frequent_items\":1}"),
            std::string::npos)
      << json;

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

}  // namespace
}  // namespace ldpjs
