#include "data/column.h"

#include <algorithm>

namespace ldpjs {

Column::Column(std::vector<uint64_t> values, uint64_t domain)
    : values_(std::move(values)), domain_(domain) {
  LDPJS_CHECK(domain_ >= 1);
  for (uint64_t v : values_) LDPJS_CHECK(v < domain_);
}

std::vector<uint64_t> Column::Frequencies() const {
  std::vector<uint64_t> freq(domain_, 0);
  for (uint64_t v : values_) ++freq[v];
  return freq;
}

uint64_t Column::CountDistinct() const {
  std::vector<uint64_t> freq = Frequencies();
  uint64_t distinct = 0;
  for (uint64_t f : freq) distinct += (f > 0) ? 1 : 0;
  return distinct;
}

Column Column::Prefix(size_t n) const {
  n = std::min(n, values_.size());
  return Column(std::vector<uint64_t>(values_.begin(),
                                      values_.begin() + static_cast<std::ptrdiff_t>(n)),
                domain_);
}

std::vector<Column> Column::Split(size_t parts) const {
  LDPJS_CHECK(parts >= 1);
  std::vector<Column> out;
  out.reserve(parts);
  const size_t chunk = (values_.size() + parts - 1) / std::max<size_t>(parts, 1);
  for (size_t p = 0; p < parts; ++p) {
    const size_t begin = std::min(values_.size(), p * chunk);
    const size_t end = std::min(values_.size(), begin + chunk);
    out.emplace_back(
        std::vector<uint64_t>(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                              values_.begin() + static_cast<std::ptrdiff_t>(end)),
        domain_);
  }
  return out;
}

void Column::Append(uint64_t value) {
  LDPJS_CHECK(value < domain_);
  values_.push_back(value);
}

}  // namespace ldpjs
