// Column: the unit of data every protocol in this library consumes — a flat
// sequence of join-attribute values drawn from a finite domain [0, domain).
// One Column models the private join column of one table; each entry is one
// user's sensitive value.
#ifndef LDPJS_DATA_COLUMN_H_
#define LDPJS_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ldpjs {

class Column {
 public:
  Column() = default;

  /// Takes ownership of `values`; every value must be < domain.
  Column(std::vector<uint64_t> values, uint64_t domain);

  const std::vector<uint64_t>& values() const { return values_; }
  uint64_t domain() const { return domain_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  uint64_t operator[](size_t i) const { return values_[i]; }

  /// Dense frequency vector f[d] for d in [0, domain).
  std::vector<uint64_t> Frequencies() const;

  /// Number of distinct values actually present.
  uint64_t CountDistinct() const;

  /// First `n` rows as a new Column (sampling prefix; generators shuffle).
  Column Prefix(size_t n) const;

  /// Splits into `parts` contiguous, near-equal slices (user group split for
  /// LDPJoinSketch+ phase 2). Returns `parts` columns covering all rows.
  std::vector<Column> Split(size_t parts) const;

  void Append(uint64_t value);

 private:
  std::vector<uint64_t> values_;
  uint64_t domain_ = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_DATA_COLUMN_H_
