// The one evaluator behind every QUERY answer. Both the wire path
// (FrameServer's QUERY handler) and the in-process path (tests, the CLI's
// --check recomputation) call AnswerQuery on the same PublishedView, so a
// served answer is bit-identical to the local estimate by construction —
// same code, same view, and doubles ride the wire as exact memcpy
// round-trips.
//
// Hostile input: every core estimator downstream (JoinEstimate,
// LdpChainJoinEstimate, RangeCountEstimate, ...) enforces its contract
// with LDPJS_CHECK — an abort, correct for in-process misuse but never
// acceptable for bytes that arrived over a socket. AnswerQuery therefore
// pre-validates everything a request could get wrong (corrupt or
// mismatched probe sketches, chain dimension mismatches, unbounded
// domain/range scans) and returns InvalidArgument/Corruption instead of
// ever letting a hostile payload reach a CHECK.
#ifndef LDPJS_SERVICE_QUERY_ENGINE_H_
#define LDPJS_SERVICE_QUERY_ENGINE_H_

#include "common/result.h"
#include "net/protocol.h"
#include "service/published_view.h"

namespace ldpjs {

/// Evaluates `request` against `view`, filling the response's answer and
/// view-identity fields. Pure: no locks, no globals — safe to call
/// concurrently from any number of reader threads on the same view.
Result<QueryResponse> AnswerQuery(const PublishedView& view,
                                  const QueryRequest& request);

}  // namespace ldpjs

#endif  // LDPJS_SERVICE_QUERY_ENGINE_H_
