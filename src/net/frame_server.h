// FrameServer: the TCP ingestion front end of the sharded aggregation
// service — and, in the federated deployment, both the regional ingest tier
// (it can cut epoch snapshots of its raw lanes) and the central tier (it
// merges EPOCH_PUSH snapshots shipped upstream by regions). Accepts many
// concurrent client connections, speaks the LJSP session protocol (see
// net/protocol.h), and feeds every decoded DATA frame into a
// ShardedAggregator.
//
// Threading model (shard-affine multi-pump ingest):
//   - one acceptor thread;
//   - one reader thread per connection, which does the HELLO handshake,
//     parses transport frames, routes DATA frames onto bounded *per-shard*
//     ingest queues (connection-local round-robin), and handles the
//     connection's control frames itself;
//   - one ingest pump thread per shard, the sole writer of that shard's
//     lanes, draining that shard's queue. N shards ingest on N cores.
//
// Ordering: a control frame (SNAPSHOT / EPOCH_PUSH / FINALIZE / BYE) is
// handled only after every DATA frame its connection sent before it has
// been absorbed (the reader waits for its in-flight count to reach zero),
// so SNAPSHOT_DATA / BYE_OK keep their "everything you sent is in the
// lanes" guarantee. Ordering across connections is unspecified, which is
// fine — raw integer lanes make the merged sketch independent of frame
// routing and interleaving (the service exactness invariant), which is also
// why multi-pump ingest is bit-identical to the old single-pump server.
//
// Backpressure (bounded memory): each shard's queue holds at most
// `queue_capacity` frames. kBlock parks the reader until the pump makes
// space — the kernel receive buffer fills and TCP flow control pushes back
// on the client. kShed refuses the DATA frame with a retriable busy ack
// instead (the client retries; see FrameSender). Control frames are never
// queued, so they are never shed. Either way the server's memory is one
// sketch per shard plus the shard queues — never proportional to client
// traffic.
//
// Untrusted input: a malformed transport frame, an oversized length prefix,
// a corrupt LJSB envelope or pushed sketch, a mid-frame disconnect, or a
// HELLO with mismatched sketch params can never crash the server or touch a
// lane — each is counted in the metrics and the offending connection is
// closed.
#ifndef LDPJS_NET_FRAME_SERVER_H_
#define LDPJS_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/ldp_join_sketch.h"
#include "net/net_metrics.h"
#include "net/protocol.h"
#include "obs/events.h"
#include "obs/fleet_stats.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/published_view.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {

enum class BackpressurePolicy {
  kBlock,  ///< park the reader; TCP flow control slows the client
  kShed,   ///< refuse DATA with a busy ack; client retries
};

struct FrameServerOptions {
  uint16_t port = 0;          ///< 0 = ephemeral; read back with port()
  size_t num_shards = 1;      ///< aggregation shards == ingest pumps (>= 1)
  size_t queue_capacity = 64; ///< max queued frames per shard
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// SO_SNDTIMEO on accepted sockets: a client that requests a reply
  /// (SNAPSHOT, acks) but stops reading can stall a server-side write for
  /// at most this long before the write fails and the connection is cut.
  /// 0 disables the guard.
  int send_timeout_seconds = 30;
  /// SO_RCVTIMEO on accepted sockets — the idle-connection watchdog: a
  /// client that goes silent for this long is reaped (counted in
  /// idle_reaped) and its fd/thread reclaimed. 0 (default) disables the
  /// deadline: a regional shipper legitimately idles between epochs, so
  /// only deployments that know their traffic cadence should arm this.
  int idle_timeout_seconds = 0;
  /// Fault-injection site label stamped on every accepted socket (chaos
  /// runs check "<fault_site>.send"/".recv"). Empty — the default —
  /// disables injection on server-side connections.
  std::string fault_site;
  /// Called exactly once per fresh (region, epoch) EPOCH_PUSH, after the
  /// snapshot is merged into the lanes and before the push is acked — the
  /// (region, epoch) dedup guarantees the exactly-once, and a retried
  /// push's duplicate ack waits for the original's observer call, so a
  /// region's epochs are observed strictly in order. `snapshot` is the
  /// decoded, validated raw-lane snapshot — the server discards it after
  /// the call, so the observer may move from it — or nullptr for an
  /// empty-epoch heartbeat (an idle region advancing its epoch clock;
  /// nothing merged). Invoked on the pushing connection's reader thread,
  /// concurrently across regions; the observer synchronizes itself (see
  /// federation/WindowedView). Keep it cheap — the pushing region waits on
  /// the ack behind it.
  std::function<void(uint32_t region_id, uint64_t epoch,
                     LdpJoinSketchServer* snapshot)>
      epoch_observer;
  /// Where QUERY frames read from. Unset (default): the server's own
  /// published lifetime view (everything merged so far, republished at
  /// every EPOCH_PUSH, PING barrier, and FINALIZE). Set it to route
  /// queries elsewhere — a windowed CentralNode points it at its
  /// WindowedView's publisher so QUERY answers cover the sliding window.
  /// Must be cheap and lock-free (called per query on reader threads);
  /// must never return null.
  std::function<std::shared_ptr<const PublishedView>()> query_view_source;
  /// What a STATS frame snapshots. Unset (default): the server's own
  /// metrics(). A RegionalNode points it at its augmented metrics() so a
  /// stats scrape of the regional ingest port also sees the ship-side
  /// counters (retries, backoff, spool) the bare server cannot know.
  std::function<NetMetrics()> stats_metrics_source;
  /// Thresholds for the health evaluator — both this server's own "health"
  /// verdict and, on a central, the per-region verdicts over STATS_PUSH
  /// snapshots. Transitions land in events().
  HealthOptions health;
};

class FrameServer {
 public:
  /// Params/epsilon every client HELLO must match bit for bit.
  FrameServer(const SketchParams& params, double epsilon,
              const FrameServerOptions& options);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and starts the acceptor and per-shard pump threads.
  Status Start();

  /// Bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Blocks until at least `count` FINALIZE frames have been processed
  /// (a central aggregator fed by N regions waits for N).
  void WaitForFinalizeRequests(size_t count);
  void WaitForFinalizeRequest() { WaitForFinalizeRequests(1); }

  /// Epoch cut (regional tier): quiesces every shard, serializes the merged
  /// raw lanes of everything ingested since the last cut, and resets the
  /// lanes in place. Frames still queued simply land in the next epoch —
  /// merging every cut is bit-identical to never cutting. Callable while
  /// the server is live or after Stop() (the final flush), but not after
  /// Finalize().
  ShardedAggregator::EpochCut CutEpochSnapshot();

  /// The trace context of the oldest traced DATA frame absorbed since the
  /// last cut, claimed by CutEpochSnapshot() — a RegionalNode attaches it
  /// to the cut's pending snapshot so the context (and its client-side
  /// origin timestamp) rides the EPOCH_PUSH upstream and the central tier
  /// can record true client→central ingest-to-queryable latency. Inactive
  /// context when no traced frame landed in the cut epoch.
  TraceContext TakeCutTrace();

  /// A finalized copy of everything currently in the lanes, without
  /// disturbing collection — how a central aggregator answers estimates at
  /// an epoch boundary while regions keep streaming. Takes every shard
  /// lock and copies k·m lanes per call; steady-state readers should hold
  /// CurrentPublishedView() instead.
  LdpJoinSketchServer FinalizedView() const;

  /// The latest RCU-published lifetime view (atomic load, no ingest
  /// locks). Published at Start (empty), at every applied EPOCH_PUSH, at
  /// every PING barrier, and at FINALIZE — so "ping, then query" reads
  /// your own writes. Never null after Start.
  std::shared_ptr<const PublishedView> CurrentPublishedView() const {
    return publisher_.Current();
  }

  /// Merges and finalizes the current lanes and publishes them as a fresh
  /// view (what PING does implicitly). Callable any time after Start.
  void PublishView();

  /// Disconnects every currently attached client (their queued frames are
  /// still drained; the listener stays open, so clients may reconnect).
  /// An ops action — kick all sessions — and the chaos hook the federation
  /// tests use to force a mid-epoch regional disconnect/retry.
  void DisconnectClients();

  /// Shutdown: stops accepting, disconnects any client still attached
  /// (its already-queued frames are still drained — but a client is only
  /// guaranteed fully ingested if its Finish()/BYE_OK completed first),
  /// drains all shard queues, joins threads. Idempotent.
  void Stop();

  /// Merged + finalized sketch — callable exactly once, after Stop(), so
  /// the global k·c_ε debias and row transforms happen exactly once over
  /// fully drained queues. Bit-identical to a single node absorbing the
  /// same reports.
  LdpJoinSketchServer Finalize();

  /// Consistent snapshot of the per-connection/per-shard/per-region
  /// counters.
  NetMetrics metrics() const;

  /// The JSON a STATS frame answers with: the stats_metrics_source (or the
  /// server's own metrics()) serialized together with the process-global
  /// registry through the one shared serializer (obs/stats_export.h) —
  /// plus, since v5, "health" (this server's own verdict), "fleet" (the
  /// merged view over pushed region snapshots; empty regions list when
  /// nothing has pushed), and "events" (the bounded transition ring).
  std::string StatsJson() const;

  /// The merged fleet view over every STATS_PUSH received so far, rendered
  /// now — what a FLEET_STATS frame answers with.
  FleetView CurrentFleetView() const;

  /// The structured event ring (health transitions, reconnects, spool
  /// replays, idle reaps). RegionalNode records its ship-side events here
  /// so one scrape of the node tells the whole story.
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

 private:
  struct Connection {
    uint64_t id = 0;
    Socket socket;
    /// Negotiated LJSP version (min of client's HELLO and ours). QUERY is
    /// only legal at >= 3; a v2 session sending one gets ERROR + close.
    uint8_t version = kNetVersion;
    std::thread reader;
    /// Serializes socket writes (acks, replies). A nested struct cannot
    /// name the owning server's mu_ in a GUARDED_BY, so the two fields
    /// below carry their discipline as comments; the enclosing class's
    /// annotated methods are where the analysis enforces it.
    Mutex write_mu;
    bool reader_done = false;  ///< guarded by FrameServer::mu_
    uint64_t data_inflight = 0;  ///< queued-but-unabsorbed DATA; mu_
    size_t next_shard = 0;     ///< connection-local round-robin cursor
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> reports_ingested{0};
    std::atomic<uint64_t> corrupt_frames{0};
    std::atomic<uint64_t> frames_shed{0};
  };
  struct PumpItem {
    Connection* conn;             ///< kept alive until inflight drains
    std::vector<uint8_t> payload;
    /// Wrapped DATA keeps the outer TRACED payload and points past its
    /// header — the LJSB bytes are never copied or re-encoded.
    size_t payload_offset = 0;
    uint64_t enqueue_ns = 0;      ///< queue-wait timing (obs enabled only)
    TraceContext trace;           ///< inactive unless the frame was TRACED
  };
  /// One shard's ingest lane: a bounded queue drained by a dedicated pump,
  /// plus the mutex that makes the shard's aggregator state lockable by
  /// snapshot/cut/merge paths without stopping the other pumps.
  struct ShardLane {
    std::deque<PumpItem> queue;        ///< guarded by FrameServer::mu_
    CondVar work_cv;                   ///< pump waits for queue items
    std::thread pump;
    mutable Mutex agg_mu;              ///< guards aggregator shard state
    /// Written by readers under mu_, but read lock-free by metrics paths —
    /// atomic so a TSan-clean snapshot never has to take the queue lock.
    std::atomic<uint64_t> queue_high_water{0};
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> reports{0};
    /// Cached registry instruments (stable pointers, see obs/metrics.h):
    /// per-shard queue-wait and absorb-time distributions.
    ObsHistogram* queue_wait_hist = nullptr;
    ObsHistogram* absorb_hist = nullptr;
  };
  struct RegionState {
    uint64_t next_epoch = 0;  ///< pushes below this are duplicates
    /// Epochs reserved but not yet merged+observed. A retry of one of
    /// these waits for the original to complete before its duplicate ack,
    /// so "kDuplicate" always means "applied", never "in flight" — and
    /// the epoch observer sees a region's epochs strictly in order even
    /// when a connection dies mid-merge and the shipper retries on a
    /// fresh one.
    std::set<uint64_t> inflight;
    RegionMetrics metrics;
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void PumpLoop(size_t shard);
  void ProcessData(size_t shard, PumpItem& item);
  /// Blocks until every DATA frame `conn` enqueued has been absorbed — the
  /// ordering barrier control frames ride on.
  void WaitConnDrained(Connection* conn);
  void HandleSnapshot(Connection& conn);
  void HandleEpochPush(Connection& conn, std::span<const uint8_t> payload,
                       const TraceContext& trace);
  /// Answers one QUERY from the published view. Returns false when the
  /// connection should be closed (corrupt payload). Never waits on the
  /// drain barrier — queries cannot stall, or be stalled by, ingest.
  bool HandleQuery(Connection& conn, std::span<const uint8_t> payload,
                   const TraceContext& trace);
  /// Answers one STATS_REQUEST with the StatsJson() payload. Like QUERY,
  /// never behind the drain barrier — an ops probe must not stall behind
  /// a busy ingest queue.
  void HandleStats(Connection& conn);
  /// Absorbs one STATS_PUSH into the fleet store (health transitions go to
  /// the event log) and acks. Returns false when the connection should be
  /// closed (corrupt payload). Never behind the drain barrier: a stats
  /// push is telemetry, ordered after nothing.
  bool HandleStatsPush(Connection& conn, std::span<const uint8_t> payload);
  /// Answers one FLEET_STATS_REQUEST with the encoded CurrentFleetView().
  void HandleFleetStats(Connection& conn);
  /// Notes a traced frame absorbed into the lanes: the pending-publish and
  /// pending-cut slots keep the oldest unclaimed origin, so the claimed
  /// latency is the conservative (worst) one across a publish interval.
  void NoteAbsorbedTrace(const TraceContext& trace);
  void RecordQueryOutcome(size_t kind_index, uint64_t start_ns, bool rejected);
  bool AllReadersDone() const LDPJS_REQUIRES(mu_);
  void ReapFinishedConnections() LDPJS_EXCLUDES(mu_);
  ConnectionMetrics SnapshotConnection(const Connection& conn) const;
  void SendError(Connection& conn, const Status& status);
  bool HelloMatches(const SessionHello& hello) const;
  /// Merges every shard's lanes under all shard locks (consistent cut).
  /// The lock set is dynamic (one agg_mu per lane), which the static
  /// analysis cannot model — the definition opts out and documents why.
  LdpJoinSketchServer MergeShardsLocked() const
      LDPJS_NO_THREAD_SAFETY_ANALYSIS;
  /// Cuts the epoch under all shard locks (same dynamic-lock-set opt-out).
  ShardedAggregator::EpochCut CutAllShards()
      LDPJS_NO_THREAD_SAFETY_ANALYSIS;

  SketchParams params_;
  double epsilon_;
  FrameServerOptions options_;
  size_t max_session_payload_;    ///< DATA cap or EPOCH_PUSH bound
  ShardedAggregator aggregator_;  ///< shard s owned by pump s (agg_mu)
  std::vector<std::unique_ptr<ShardLane>> lanes_;
  std::atomic<size_t> push_shard_{0};  ///< EPOCH_PUSH merge round-robin

  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;

  mutable Mutex mu_;
  CondVar space_cv_;     ///< readers wait for queue space
  CondVar drain_cv_;     ///< waits for inflight==0 / readers
  CondVar finalize_cv_;
  /// Live connections only: once a connection's reader has exited and its
  /// in-flight frames are absorbed, it is reaped (thread joined, counters
  /// folded into departed_) — server memory does not grow with the total
  /// number of clients ever served.
  std::vector<std::unique_ptr<Connection>> connections_ LDPJS_GUARDED_BY(mu_);
  /// Final per-conn snapshots, newest last. Bounded: once it exceeds
  /// kMaxDepartedRows the oldest rows are folded into departed_folded_ —
  /// a reconnect storm grows counters, never memory.
  std::deque<ConnectionMetrics> departed_ LDPJS_GUARDED_BY(mu_);
  /// Accumulator of folded rows / rows folded so far.
  ConnectionMetrics departed_folded_ LDPJS_GUARDED_BY(mu_);
  uint64_t connections_folded_ LDPJS_GUARDED_BY(mu_) = 0;
  std::map<uint32_t, RegionState> regions_ LDPJS_GUARDED_BY(mu_);
  bool started_ LDPJS_GUARDED_BY(mu_) = false;
  bool stopping_ LDPJS_GUARDED_BY(mu_) = false;
  bool stopped_ LDPJS_GUARDED_BY(mu_) = false;
  /// Finalize barrier state: anonymous FINALIZEs count
  /// every time, region-tagged ones once per region — a region retrying a
  /// FINALIZE whose ack was lost cannot end a multi-region collection
  /// early. The effective count is anonymous + |regions|.
  size_t anonymous_finalizes_ LDPJS_GUARDED_BY(mu_) = 0;
  std::set<uint32_t> finalized_regions_ LDPJS_GUARDED_BY(mu_);
  bool finalized_ LDPJS_GUARDED_BY(mu_) = false;
  /// RCU-published lifetime view (see CurrentPublishedView).
  ViewPublisher publisher_;
  /// Query counters: answered frames, rejected (corrupt/invalid/v2), and
  /// per-kind served/rejected rows. Lock-free — queries never touch mu_.
  /// Slot 6 of the rejected array is "unknown": the kind never decoded.
  std::atomic<uint64_t> query_frames_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> query_kind_served_[6] = {};
  std::atomic<uint64_t> query_kind_rejected_[7] = {};
  /// Pending trace slots (tiny critical sections; only sampled frames and
  /// publish/cut paths ever touch them). publish: claimed by PublishView()
  /// — serve-tier ingest-to-queryable. cut: claimed by CutEpochSnapshot()
  /// — handed to the regional shipper via TakeCutTrace().
  Mutex obs_mu_;
  TraceContext pending_publish_trace_ LDPJS_GUARDED_BY(obs_mu_);
  TraceContext pending_cut_trace_ LDPJS_GUARDED_BY(obs_mu_);
  TraceContext last_cut_trace_ LDPJS_GUARDED_BY(obs_mu_);
  /// Cached registry instruments (stable pointers into the process-global
  /// registry; per-shard ones live on the lanes).
  ObsHistogram* ingest_to_queryable_hist_ = nullptr;
  ObsHistogram* query_latency_hist_ = nullptr;
  ObsHistogram* query_error_latency_hist_ = nullptr;
  ObsHistogram* query_kind_latency_[6] = {};
  ObsGauge* view_last_publish_gauge_ = nullptr;
  /// v5 fleet state. Both are internally synchronized; `mutable` because
  /// StatsJson() — a const read — evaluates local health and must record
  /// the transition it observes (the read is when a state change becomes
  /// visible, so that is when the event exists).
  mutable FleetStore fleet_;
  mutable EventLog events_;
  mutable std::atomic<uint8_t> local_health_state_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> handshakes_rejected_{0};
  std::atomic<uint64_t> accept_failures_{0};      ///< transient, retried
  std::atomic<uint64_t> accept_fatal_{0};         ///< acceptor stopped
  std::atomic<uint64_t> idle_reaped_{0};          ///< hung clients cut
  std::atomic<uint64_t> accept_backoff_micros_{0};
};

}  // namespace ldpjs

#endif  // LDPJS_NET_FRAME_SERVER_H_
