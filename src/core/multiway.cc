#include "core/multiway.h"

#include <cmath>
#include <span>

#include "common/hadamard.h"
#include "common/stats.h"

namespace ldpjs {

void MultiwayParams::Validate() const {
  LDPJS_CHECK(k >= 1);
  LDPJS_CHECK(m_left >= 2 && IsPowerOfTwo(static_cast<uint64_t>(m_left)));
  LDPJS_CHECK(m_right >= 2 && IsPowerOfTwo(static_cast<uint64_t>(m_right)));
}

LdpMultiwayClient::LdpMultiwayClient(const MultiwayParams& params,
                                     double epsilon)
    : params_(params) {
  params_.Validate();
  LDPJS_CHECK(epsilon > 0.0);
  flip_prob_ = 1.0 / (std::exp(epsilon) + 1.0);
  left_rows_ = MakeRowHashes(params.left_seed, params.k,
                             static_cast<uint64_t>(params.m_left));
  right_rows_ = MakeRowHashes(params.right_seed, params.k,
                              static_cast<uint64_t>(params.m_right));
}

MultiwayReport LdpMultiwayClient::Perturb(uint64_t a, uint64_t b,
                                          Xoshiro256& rng) const {
  MultiwayReport report;
  report.replica =
      static_cast<uint16_t>(rng.NextBounded(static_cast<uint64_t>(params_.k)));
  report.l1 = static_cast<uint32_t>(
      rng.NextBounded(static_cast<uint64_t>(params_.m_left)));
  report.l2 = static_cast<uint32_t>(
      rng.NextBounded(static_cast<uint64_t>(params_.m_right)));
  const RowHashes& left = left_rows_[report.replica];
  const RowHashes& right = right_rows_[report.replica];
  // y = H_m1[h_A(a), l1] · ξ_A(a) ξ_B(b) · H_m2[l2, h_B(b)], each factor O(1).
  int w = HadamardEntry(left.bucket(a), report.l1) * left.sign(a) *
          right.sign(b) * HadamardEntry(report.l2, right.bucket(b));
  if (rng.NextBernoulli(flip_prob_)) w = -w;
  report.y = static_cast<int8_t>(w);
  return report;
}

LdpMultiwayServer::LdpMultiwayServer(const MultiwayParams& params,
                                     double epsilon)
    : params_(params), epsilon_(epsilon), c_eps_(DebiasFactor(epsilon)) {
  params_.Validate();
  cells_.assign(static_cast<size_t>(params.k) *
                    static_cast<size_t>(params.m_left) *
                    static_cast<size_t>(params.m_right),
                0.0);
}

void LdpMultiwayServer::Absorb(const MultiwayReport& report) {
  LDPJS_CHECK(!finalized_);
  LDPJS_CHECK(report.replica < params_.k);
  LDPJS_CHECK(report.l1 < static_cast<uint32_t>(params_.m_left));
  LDPJS_CHECK(report.l2 < static_cast<uint32_t>(params_.m_right));
  const size_t idx = (static_cast<size_t>(report.replica) *
                          static_cast<size_t>(params_.m_left) +
                      report.l1) *
                         static_cast<size_t>(params_.m_right) +
                     report.l2;
  cells_[idx] += static_cast<double>(params_.k) * c_eps_ * report.y;
  ++total_;
}

void LdpMultiwayServer::Merge(const LdpMultiwayServer& other) {
  LDPJS_CHECK(!finalized_ && !other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k);
  LDPJS_CHECK(params_.m_left == other.params_.m_left);
  LDPJS_CHECK(params_.m_right == other.params_.m_right);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void LdpMultiwayServer::Finalize() {
  LDPJS_CHECK(!finalized_);
  const size_t m1 = static_cast<size_t>(params_.m_left);
  const size_t m2 = static_cast<size_t>(params_.m_right);
  std::vector<double> column(m1);
  for (int r = 0; r < params_.k; ++r) {
    double* matrix =
        cells_.data() + static_cast<size_t>(r) * m1 * m2;
    // M ← H_m1 · M: FWHT down each column.
    for (size_t c = 0; c < m2; ++c) {
      for (size_t row = 0; row < m1; ++row) column[row] = matrix[row * m2 + c];
      FastWalshHadamardTransform(std::span<double>(column));
      for (size_t row = 0; row < m1; ++row) matrix[row * m2 + c] = column[row];
    }
    // M ← M · H_m2: FWHT along each row.
    for (size_t row = 0; row < m1; ++row) {
      FastWalshHadamardTransform(std::span<double>(matrix + row * m2, m2));
    }
  }
  finalized_ = true;
}

namespace {

/// "LJM1" little-endian: the multiway counterpart of the sketch's LJS2.
constexpr uint32_t kMultiwayMagic = 0x314D4A4CU;
constexpr uint8_t kMultiwayVersion = 1;
/// Deserialization bound on k·m_left·m_right — a hostile shape must be
/// rejected before the cell vector is allocated.
constexpr uint64_t kMaxMultiwayCells = uint64_t{1} << 27;

}  // namespace

std::vector<uint8_t> LdpMultiwayServer::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kMultiwayMagic);
  writer.PutU8(kMultiwayVersion);
  writer.PutU32(static_cast<uint32_t>(params_.k));
  writer.PutU32(static_cast<uint32_t>(params_.m_left));
  writer.PutU32(static_cast<uint32_t>(params_.m_right));
  writer.PutU64(params_.left_seed);
  writer.PutU64(params_.right_seed);
  writer.PutDouble(epsilon_);
  writer.PutU64(total_);
  writer.PutU8(finalized_ ? 1 : 0);
  writer.PutDoubleVector(cells_);
  return writer.TakeBuffer();
}

Result<LdpMultiwayServer> LdpMultiwayServer::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  auto magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMultiwayMagic) {
    return Status::Corruption("missing LJM1 multiway sketch magic");
  }
  auto version = reader.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kMultiwayVersion) {
    return Status::Corruption("unsupported multiway sketch version " +
                              std::to_string(*version));
  }
  auto k = reader.GetU32();
  if (!k.ok()) return k.status();
  auto m_left = reader.GetU32();
  if (!m_left.ok()) return m_left.status();
  auto m_right = reader.GetU32();
  if (!m_right.ok()) return m_right.status();
  auto left_seed = reader.GetU64();
  if (!left_seed.ok()) return left_seed.status();
  auto right_seed = reader.GetU64();
  if (!right_seed.ok()) return right_seed.status();
  auto epsilon = reader.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto total = reader.GetU64();
  if (!total.ok()) return total.status();
  auto finalized = reader.GetU8();
  if (!finalized.ok()) return finalized.status();
  if (*k < 1 || *k > 0xffff || *m_left < 2 || *m_right < 2 ||
      !IsPowerOfTwo(*m_left) || !IsPowerOfTwo(*m_right)) {
    return Status::Corruption("invalid multiway sketch shape");
  }
  const uint64_t expected_cells =
      static_cast<uint64_t>(*k) * static_cast<uint64_t>(*m_left) *
      static_cast<uint64_t>(*m_right);
  if (expected_cells > kMaxMultiwayCells) {
    return Status::Corruption("multiway sketch shape too large");
  }
  if (!(*epsilon > 0.0)) return Status::Corruption("invalid epsilon");
  auto cells = reader.GetDoubleVector();
  if (!cells.ok()) return cells.status();
  if (cells->size() != expected_cells) {
    return Status::Corruption("multiway cell count does not match shape");
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after multiway sketch");
  }
  MultiwayParams params;
  params.k = static_cast<int>(*k);
  params.m_left = static_cast<int>(*m_left);
  params.m_right = static_cast<int>(*m_right);
  params.left_seed = *left_seed;
  params.right_seed = *right_seed;
  LdpMultiwayServer server(params, *epsilon);
  server.total_ = *total;
  server.finalized_ = *finalized != 0;
  server.cells_ = std::move(*cells);
  return server;
}

const double* LdpMultiwayServer::replica_data(int replica) const {
  LDPJS_CHECK(replica >= 0 && replica < params_.k);
  return cells_.data() + static_cast<size_t>(replica) *
                             static_cast<size_t>(params_.m_left) *
                             static_cast<size_t>(params_.m_right);
}

double LdpChainJoinEstimate(
    const LdpJoinSketchServer& end_left,
    const std::vector<const LdpMultiwayServer*>& middles,
    const LdpJoinSketchServer& end_right) {
  LDPJS_CHECK(end_left.finalized() && end_right.finalized());
  const int k = end_left.params().k;
  LDPJS_CHECK(end_right.params().k == k);
  for (const auto* mid : middles) {
    LDPJS_CHECK(mid->finalized());
    LDPJS_CHECK(mid->params().k == k);
  }

  std::vector<double> estimators(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    std::vector<double> vec(static_cast<size_t>(end_left.params().m));
    for (int x = 0; x < end_left.params().m; ++x) {
      vec[static_cast<size_t>(x)] = end_left.cell(j, x);
    }
    for (const auto* mid : middles) {
      const size_t m1 = static_cast<size_t>(mid->params().m_left);
      const size_t m2 = static_cast<size_t>(mid->params().m_right);
      LDPJS_CHECK(m1 == vec.size());
      std::vector<double> next(m2, 0.0);
      const double* matrix = mid->replica_data(j);
      for (size_t row = 0; row < m1; ++row) {
        const double vr = vec[row];
        if (vr == 0.0) continue;
        const double* matrix_row = matrix + row * m2;
        for (size_t col = 0; col < m2; ++col) next[col] += vr * matrix_row[col];
      }
      vec = std::move(next);
    }
    LDPJS_CHECK(static_cast<size_t>(end_right.params().m) == vec.size());
    double acc = 0.0;
    for (int x = 0; x < end_right.params().m; ++x) {
      acc += vec[static_cast<size_t>(x)] * end_right.cell(j, x);
    }
    estimators[static_cast<size_t>(j)] = acc;
  }
  return Median(estimators);
}

namespace {

/// Dense row-major product C = A(rows x inner) * B(inner x cols).
std::vector<double> MatMul(const double* a, size_t rows, size_t inner,
                           const double* b, size_t cols) {
  std::vector<double> c(rows * cols, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < inner; ++j) {
      const double v = a[i * inner + j];
      if (v == 0.0) continue;
      const double* b_row = b + j * cols;
      double* c_row = c.data() + i * cols;
      for (size_t x = 0; x < cols; ++x) c_row[x] += v * b_row[x];
    }
  }
  return c;
}

}  // namespace

double LdpCyclicJoinEstimate(
    const std::vector<const LdpMultiwayServer*>& cycle) {
  LDPJS_CHECK(cycle.size() >= 2);
  const int k = cycle[0]->params().k;
  for (size_t i = 0; i < cycle.size(); ++i) {
    const auto* current = cycle[i];
    const auto* next = cycle[(i + 1) % cycle.size()];
    LDPJS_CHECK(current->finalized());
    LDPJS_CHECK(current->params().k == k);
    LDPJS_CHECK(current->params().m_right == next->params().m_left);
  }
  std::vector<double> estimators(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    const size_t rows = static_cast<size_t>(cycle[0]->params().m_left);
    size_t cols = static_cast<size_t>(cycle[0]->params().m_right);
    std::vector<double> acc(cycle[0]->replica_data(j),
                            cycle[0]->replica_data(j) + rows * cols);
    for (size_t t = 1; t < cycle.size(); ++t) {
      const size_t next_cols = static_cast<size_t>(cycle[t]->params().m_right);
      acc = MatMul(acc.data(), rows, cols, cycle[t]->replica_data(j),
                   next_cols);
      cols = next_cols;
    }
    LDPJS_CHECK(rows == cols);
    double trace = 0.0;
    for (size_t i = 0; i < rows; ++i) trace += acc[i * cols + i];
    estimators[static_cast<size_t>(j)] = trace;
  }
  return Median(estimators);
}

LdpMultiwayServer BuildLdpMultiwaySketch(const PairColumn& pairs,
                                         const MultiwayParams& params,
                                         double epsilon, uint64_t run_seed) {
  LdpMultiwayClient client(params, epsilon);
  LdpMultiwayServer server(params, epsilon);
  for (size_t i = 0; i < pairs.size(); ++i) {
    Xoshiro256 rng(DeriveStreamSeed(run_seed, static_cast<uint64_t>(i)));
    server.Absorb(client.Perturb(pairs.left[i], pairs.right[i], rng));
  }
  server.Finalize();
  return server;
}

}  // namespace ldpjs
