// Unified empirical ε-LDP audit across every client mechanism in the
// library. For each mechanism we histogram the full output distribution for
// two adversarially chosen inputs and assert
//   max_y Pr[y | x] / Pr[y | x'] <= e^ε (with sampling slack),
// parameterized over ε (TEST_P). This complements the closed-form proofs in
// the per-mechanism tests: it would catch implementation bugs like reusing
// the RNG across the index draw and the flip draw.
#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "core/multiway.h"
#include "ldp/hcms.h"
#include "ldp/krr.h"
#include "ldp/olh.h"

namespace ldpjs {
namespace {

// Empirical output histogram of `sample(value, rng)` serialized to a key.
using Sampler = std::function<std::string(uint64_t, Xoshiro256&)>;

std::map<std::string, double> Histogram(const Sampler& sample, uint64_t value,
                                        int n, uint64_t seed) {
  std::map<std::string, double> hist;
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    hist[sample(value, rng)] += 1.0 / n;
  }
  return hist;
}

// Max ratio over outputs with mass above `min_mass` in both histograms.
double MaxRatio(const std::map<std::string, double>& h1,
                const std::map<std::string, double>& h2, double min_mass) {
  double max_ratio = 0.0;
  for (const auto& [key, p1] : h1) {
    auto it = h2.find(key);
    if (it == h2.end()) continue;
    if (p1 < min_mass || it->second < min_mass) continue;
    max_ratio = std::max(max_ratio, p1 / it->second);
    max_ratio = std::max(max_ratio, it->second / p1);
  }
  return max_ratio;
}

class PrivacyAuditTest : public ::testing::TestWithParam<double> {
 protected:
  // Slack: empirical ratios of binomial estimates fluctuate; 25% headroom
  // at these sample sizes keeps the test deterministic-in-practice while
  // still catching any real leak (which shows up as ratios >> e^ε).
  void Audit(const Sampler& sampler, uint64_t x1, uint64_t x2) {
    const double eps = GetParam();
    const int n = 600000;
    const auto h1 = Histogram(sampler, x1, n, 17);
    const auto h2 = Histogram(sampler, x2, n, 18);
    const double ratio = MaxRatio(h1, h2, 2e-4);
    EXPECT_GT(ratio, 0.0) << "histograms never overlapped";
    EXPECT_LE(ratio, std::exp(eps) * 1.25) << "eps=" << eps;
  }
};

TEST_P(PrivacyAuditTest, LdpJoinSketchClient) {
  SketchParams params;
  params.k = 2;
  params.m = 8;
  params.seed = 3;
  LdpJoinSketchClient client(params, GetParam());
  Audit(
      [&](uint64_t v, Xoshiro256& rng) {
        const LdpReport r = client.Perturb(v, rng);
        return std::to_string(r.y) + "/" + std::to_string(r.j) + "/" +
               std::to_string(r.l);
      },
      1, 7);
}

TEST_P(PrivacyAuditTest, FapTargetVsNonTarget) {
  SketchParams params;
  params.k = 2;
  params.m = 8;
  params.seed = 3;
  // FI = {1}: value 1 is a target under kHigh, value 7 is a non-target.
  FapClient client(params, GetParam(), FapMode::kHigh, {1});
  Audit(
      [&](uint64_t v, Xoshiro256& rng) {
        const LdpReport r = client.Perturb(v, rng);
        return std::to_string(r.y) + "/" + std::to_string(r.j) + "/" +
               std::to_string(r.l);
      },
      1, 7);
}

TEST_P(PrivacyAuditTest, MultiwayClient) {
  MultiwayParams params;
  params.k = 2;
  params.m_left = 4;
  params.m_right = 4;
  params.left_seed = 3;
  params.right_seed = 4;
  LdpMultiwayClient client(params, GetParam());
  // Tuples (a, b) encoded as a*16+b for the audit inputs.
  Audit(
      [&](uint64_t packed, Xoshiro256& rng) {
        const MultiwayReport r =
            client.Perturb(packed / 16, packed % 16, rng);
        return std::to_string(r.y) + "/" + std::to_string(r.replica) + "/" +
               std::to_string(r.l1) + "/" + std::to_string(r.l2);
      },
      1 * 16 + 2, 3 * 16 + 5);
}

TEST_P(PrivacyAuditTest, Krr) {
  KrrClient client(6, GetParam());
  Audit(
      [&](uint64_t v, Xoshiro256& rng) {
        return std::to_string(client.Perturb(v, rng));
      },
      0, 5);
}

TEST_P(PrivacyAuditTest, Flh) {
  FlhParams params;
  params.epsilon = GetParam();
  params.pool_size = 4;
  params.seed = 5;
  FlhClient client(params);
  Audit(
      [&](uint64_t v, Xoshiro256& rng) {
        const FlhReport r = client.Perturb(v, rng);
        return std::to_string(r.hash_index) + "/" + std::to_string(r.value);
      },
      2, 9);
}

TEST_P(PrivacyAuditTest, Hcms) {
  HcmsParams params;
  params.epsilon = GetParam();
  params.k = 2;
  params.m = 8;
  params.seed = 7;
  HcmsClient client(params);
  Audit(
      [&](uint64_t v, Xoshiro256& rng) {
        const HcmsReport r = client.Perturb(v, rng);
        return std::to_string(r.y) + "/" + std::to_string(r.j) + "/" +
               std::to_string(r.l);
      },
      3, 8);
}

INSTANTIATE_TEST_SUITE_P(Budgets, PrivacyAuditTest,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace ldpjs
