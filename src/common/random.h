// Deterministic, fast pseudo-random generators.
//
// SplitMix64 seeds and derives independent streams; Xoshiro256++ is the
// general-purpose engine (satisfies UniformRandomBitGenerator, so it plugs
// into <random> distributions). Every randomized component in the library
// takes an explicit seed so that runs are reproducible.
#ifndef LDPJS_COMMON_RANDOM_H_
#define LDPJS_COMMON_RANDOM_H_

#include <bit>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace ldpjs {

/// One step of the SplitMix64 sequence starting at `x`; updates `x`.
/// Good avalanche properties; used for seeding and stream derivation.
uint64_t SplitMix64Next(uint64_t& x);

/// Stateless mix: maps x to a well-distributed 64-bit value (SplitMix64
/// finalizer).
uint64_t Mix64(uint64_t x);

/// Derives the seed of substream `index` of the run identified by
/// `run_seed`. Streams of different runs are decorrelated even when the
/// run seeds differ only by a small constant: naive Mix64(seed ^ index)
/// evaluates the finalizer at constant-XOR input pairs across runs, whose
/// outputs correlate enough to bias cross-sketch inner products by several
/// percent (observed; see DESIGN.md). This derivation first randomizes the
/// run offset, then walks a Weyl sequence from it — the access pattern
/// SplitMix64 is designed for.
uint64_t DeriveStreamSeed(uint64_t run_seed, uint64_t index);

class Xoshiro256;

/// Counter-based stream construction: the engine for substream `index` of
/// run `run_seed`. Batched pipelines seed one stream per fixed-size block of
/// users (not per user) and draw sequentially within the block, which
/// amortizes the engine setup across the block while keeping runs
/// reproducible and shard-independent.
Xoshiro256 MakeStreamRng(uint64_t run_seed, uint64_t index);

namespace internal {
inline uint64_t Rotl64(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace internal

/// Xoshiro256++ engine (Blackman & Vigna). Period 2^256 - 1.
/// The per-draw methods are defined inline: every client perturbation makes
/// several draws, so a cross-TU call per draw dominates the hot path.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Xoshiro256(uint64_t seed = 0xdeadbeefcafef00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() {
    const uint64_t result = internal::Rotl64(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = internal::Rotl64(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Requires bound > 0. For a power-of-two bound the Lemire recipe reduces
  /// algebraically to taking the top log2(bound) bits (the rejection branch
  /// is unreachable), so that case short-circuits to a shift — same value,
  /// same single draw.
  uint64_t NextBounded(uint64_t bound) {
    LDPJS_CHECK(bound > 0);
    if ((bound & (bound - 1)) == 0) {
      // bound == 2^b: the Lemire product (x·2^b) >> 64 is x >> (64 − b), and
      // the rejection condition (x·2^b mod 2^64) < 2^b can only hold when
      // its threshold (2^64 − 2^b) mod 2^b == 0 makes the loop a no-op.
      const uint64_t x = (*this)();
      const int b = std::countr_zero(bound);
      return b == 0 ? 0 : (x >> (64 - b));
    }
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Box-Muller (caches the second deviate).
  double NextGaussian();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Precomputed integer threshold T such that, for a fresh draw x,
/// (x >> 11) < T  ⟺  NextDouble() < p  — the same Bernoulli event without
/// the int→double convert and multiply per draw. Exact: NextDouble() is
/// (x >> 11)·2⁻⁵³ with no rounding, so the comparison against p is the
/// integer comparison against ⌈p·2⁵³⌉ (p·2⁵³ computed exactly by ldexp).
uint64_t BernoulliThreshold(double p);

}  // namespace ldpjs

#endif  // LDPJS_COMMON_RANDOM_H_
