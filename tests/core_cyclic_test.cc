// Cyclic join support (paper §VI discussion): exact ground truth, the
// non-private COMPASS estimator and the LDP estimator on small rings.
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/multiway.h"
#include "data/join.h"
#include "sketch/compass.h"

namespace ldpjs {
namespace {

PairColumn MakeSkewedPairs(uint64_t domain, size_t rows, uint64_t seed) {
  PairColumn out;
  out.left_domain = domain;
  out.right_domain = domain;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    out.left.push_back(std::min(rng.NextBounded(domain),
                                rng.NextBounded(domain)));
    out.right.push_back(std::min(rng.NextBounded(domain),
                                 rng.NextBounded(domain)));
  }
  return out;
}

TEST(ExactCyclicTest, TwoCycleHandComputed) {
  // T1(A,B) ⋈ T2(B,A): pairs (a,b) in T1 joined with (b,a) in T2.
  // T1 = {(0,1), (0,1), (1,0)}; T2 = {(1,0), (0,1)}.
  // trace(F1·F2): F1[0][1]=2, F1[1][0]=1; F2[1][0]=1, F2[0][1]=1.
  // (F1·F2)[0][0] = F1[0][1]*F2[1][0] = 2; (F1·F2)[1][1] = 1*1 = 1 → 3.
  PairColumn t1, t2;
  t1.left = {0, 0, 1};
  t1.right = {1, 1, 0};
  t1.left_domain = t1.right_domain = 2;
  t2.left = {1, 0};
  t2.right = {0, 1};
  t2.left_domain = t2.right_domain = 2;
  EXPECT_EQ(ExactCyclicJoinSize({t1, t2}), 3.0);
}

TEST(ExactCyclicTest, ThreeCycleMatchesBruteForce) {
  const uint64_t domain = 6;
  Xoshiro256 rng(3);
  std::vector<PairColumn> tables(3);
  for (auto& t : tables) {
    t.left_domain = t.right_domain = domain;
    for (int i = 0; i < 30; ++i) {
      t.left.push_back(rng.NextBounded(domain));
      t.right.push_back(rng.NextBounded(domain));
    }
  }
  double brute = 0;
  for (size_t i = 0; i < tables[0].size(); ++i) {
    for (size_t j = 0; j < tables[1].size(); ++j) {
      if (tables[1].left[j] != tables[0].right[i]) continue;
      for (size_t l = 0; l < tables[2].size(); ++l) {
        if (tables[2].left[l] == tables[1].right[j] &&
            tables[2].right[l] == tables[0].left[i]) {
          brute += 1;
        }
      }
    }
  }
  EXPECT_EQ(ExactCyclicJoinSize({tables[0], tables[1], tables[2]}), brute);
}

TEST(ExactCyclicDeathTest, RingDomainMismatchAborts) {
  PairColumn t1, t2;
  t1.left_domain = 2;
  t1.right_domain = 3;
  t2.left_domain = 3;
  t2.right_domain = 4;  // != t1.left_domain, breaks the ring
  EXPECT_DEATH(ExactCyclicJoinSize({t1, t2}), "LDPJS_CHECK failed");
}

TEST(CompassCyclicTest, ThreeCycleTracksExact) {
  const uint64_t domain = 24;
  const size_t rows = 40000;
  const int k = 11, m = 128;
  const uint64_t seed_a = 1, seed_b = 2, seed_c = 3;
  const PairColumn t1 = MakeSkewedPairs(domain, rows, 11);
  const PairColumn t2 = MakeSkewedPairs(domain, rows, 12);
  const PairColumn t3 = MakeSkewedPairs(domain, rows, 13);
  const double truth = ExactCyclicJoinSize({t1, t2, t3});
  ASSERT_GT(truth, 0.0);

  FastAgmsMatrixSketch s1(seed_a, seed_b, k, m, m);
  FastAgmsMatrixSketch s2(seed_b, seed_c, k, m, m);
  FastAgmsMatrixSketch s3(seed_c, seed_a, k, m, m);
  s1.UpdatePairColumn(t1);
  s2.UpdatePairColumn(t2);
  s3.UpdatePairColumn(t3);
  const double est = CompassCyclicJoinEstimate({&s1, &s2, &s3});
  EXPECT_NEAR(est / truth, 1.0, 0.4);
}

TEST(LdpCyclicTest, ThreeCycleTracksExactAtLargeEpsilon) {
  const uint64_t domain = 16;
  const size_t rows = 200000;
  const int k = 18, m = 32;
  const double eps = 10.0;
  const uint64_t seed_a = 5, seed_b = 6, seed_c = 7;
  const PairColumn t1 = MakeSkewedPairs(domain, rows, 21);
  const PairColumn t2 = MakeSkewedPairs(domain, rows, 22);
  const PairColumn t3 = MakeSkewedPairs(domain, rows, 23);
  const double truth = ExactCyclicJoinSize({t1, t2, t3});
  ASSERT_GT(truth, 0.0);

  auto make = [&](const PairColumn& t, uint64_t ls, uint64_t rs,
                  uint64_t run_seed) {
    MultiwayParams params;
    params.k = k;
    params.m_left = m;
    params.m_right = m;
    params.left_seed = ls;
    params.right_seed = rs;
    return BuildLdpMultiwaySketch(t, params, eps, run_seed);
  };
  const LdpMultiwayServer s1 = make(t1, seed_a, seed_b, 31);
  const LdpMultiwayServer s2 = make(t2, seed_b, seed_c, 32);
  const LdpMultiwayServer s3 = make(t3, seed_c, seed_a, 33);
  const double est = LdpCyclicJoinEstimate({&s1, &s2, &s3});
  EXPECT_NEAR(est / truth, 1.0, 0.8);
}

TEST(LdpCyclicDeathTest, DimensionMismatchAborts) {
  MultiwayParams p1;
  p1.k = 2;
  p1.m_left = 32;
  p1.m_right = 64;
  MultiwayParams p2 = p1;
  p2.m_left = 32;  // != p1.m_right
  p2.m_right = 32;
  LdpMultiwayServer s1(p1, 1.0), s2(p2, 1.0);
  s1.Finalize();
  s2.Finalize();
  EXPECT_DEATH(LdpCyclicJoinEstimate({&s1, &s2}), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
