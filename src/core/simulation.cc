#include "core/simulation.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/serialize.h"
#include "common/thread_pool.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {

namespace {

/// Shards the column's blocks across a thread pool; each block perturbs its
/// users through `client` with one counter-based RNG stream and lands in a
/// shard-local server via AbsorbBatch. Shard servers are merged (integer
/// lane adds, so the order cannot matter) and finalized.
/// The distributed deployment path: blocks perturb in parallel as usual but
/// each block is *encoded* as a wire frame (batch-envelope record behind a
/// length prefix) instead of absorbed locally; the concatenated stream then
/// flows through a ShardedAggregator with options.num_shards shards. Blocks
/// draw from the same counter-based streams as the in-process path, and the
/// aggregator's raw-lane merge is exact, so the returned sketch is
/// bit-identical to RunProtocol's for the same run_seed.
template <typename Client>
LdpJoinSketchServer RunProtocolOverWire(const Column& column,
                                        const SketchParams& params,
                                        double epsilon,
                                        const SimulationOptions& options,
                                        const Client& client) {
  ThreadPool pool(options.num_threads);
  const uint64_t* values = column.values().data();
  const size_t rows = column.size();
  const size_t blocks = (rows + kIngestBlockSize - 1) / kIngestBlockSize;
  std::vector<std::vector<uint8_t>> frames(blocks);
  pool.ParallelFor(blocks, [&](size_t, size_t begin, size_t end) {
    std::vector<LdpReport> reports(kIngestBlockSize);
    for (size_t block = begin; block < end; ++block) {
      const size_t first = block * kIngestBlockSize;
      const size_t count = std::min(kIngestBlockSize, rows - first);
      Xoshiro256 rng = MakeStreamRng(options.run_seed, block);
      std::span<LdpReport> out(reports.data(), count);
      client.PerturbBatch(std::span<const uint64_t>(values + first, count),
                          out, rng);
      BinaryWriter writer;
      EncodeReportBatch(out, writer);
      frames[block] = writer.TakeBuffer();
    }
  });

  if (options.num_regions > 0) {
    // Federated deployment rehearsal: the identical frame bytes go over
    // real TCP sockets into N regional FrameServers, whose raw-lane epoch
    // snapshots ship upstream (EPOCH_PUSH) to a central aggregator. Raw
    // integer lanes merge exactly across the whole topology, so this is
    // bit-identical to the in-process span hand-off below — for any region
    // count, epoch schedule, and shard count per tier.
    const size_t n_shards = std::max<size_t>(1, options.num_shards);
    CentralNodeOptions central_options;
    central_options.server.num_shards = n_shards;
    central_options.window_epochs = options.window_epochs;
    // The windowed view's aligned frontier waits for every region it
    // expects to hear from. Blocks round-robin over regions, so a run with
    // fewer blocks than regions leaves the tail regions with no data and
    // nothing to push — they must not gate the frontier forever.
    central_options.window_expected_regions =
        std::min(options.num_regions, blocks);
    CentralNode central(params, epsilon, central_options);
    LDPJS_CHECK(central.Start().ok());

    std::vector<std::unique_ptr<RegionalNode>> regions;
    std::vector<FrameSender> senders;
    for (size_t r = 0; r < options.num_regions; ++r) {
      RegionalNodeOptions region_options;
      region_options.region_id = static_cast<uint32_t>(r);
      region_options.central_port = central.port();
      region_options.server.num_shards = n_shards;
      regions.push_back(std::make_unique<RegionalNode>(params, epsilon,
                                                       region_options));
      LDPJS_CHECK(regions.back()->Start().ok());
      auto sender = FrameSender::Connect("127.0.0.1", regions.back()->port(),
                                         params, epsilon);
      LDPJS_CHECK(sender.ok());
      senders.push_back(std::move(*sender));
    }

    std::vector<uint64_t> reports_since_cut(options.num_regions, 0);
    for (size_t block = 0; block < frames.size(); ++block) {
      const size_t region = block % options.num_regions;
      LDPJS_CHECK(senders[region].SendEncodedBatch(frames[block]).ok());
      const size_t first = block * kIngestBlockSize;
      reports_since_cut[region] += std::min(kIngestBlockSize, rows - first);
      if (options.epoch_reports > 0 &&
          reports_since_cut[region] >= options.epoch_reports) {
        if (options.window_epochs > 0) {
          // Windowed estimates are epoch-content-sensitive, so pin the
          // contents down: the PING_OK barrier proves every frame this
          // sender pushed is in the region's lanes before the cut.
          LDPJS_CHECK(senders[region].Ping().ok());
        }
        // Without the barrier the cut races the region's pumps mid-stream
        // — whatever has been absorbed goes in this epoch, the rest in the
        // next; any split is exact for the full-history estimate.
        LDPJS_CHECK(regions[region]->CutAndShip().ok());
        reports_since_cut[region] = 0;
      }
    }
    for (size_t r = 0; r < options.num_regions; ++r) {
      // BYE/BYE_OK: the region has ingested everything this sender sent,
      // then the flush cuts the final epoch and ships it upstream.
      LDPJS_CHECK(senders[r].Finish().ok());
      LDPJS_CHECK(regions[r]->FlushAndStop().ok());
    }
    central.Stop();
    if (options.window_epochs > 0) {
      // The sliding-window estimate over the last W aligned epochs,
      // answered from the central's incrementally cached accumulator.
      return central.WindowedFinalizedView();
    }
    return central.Finalize();
  }

  if (options.net_loopback) {
    // Full deployment rehearsal: the identical frame bytes go over a real
    // TCP socket into a FrameServer. Raw integer lanes make the estimate
    // independent of frame→shard routing, so this is bit-identical to the
    // in-process span hand-off below.
    FrameServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.num_shards = std::max<size_t>(1, options.num_shards);
    FrameServer server(params, epsilon, server_options);
    LDPJS_CHECK(server.Start().ok());
    auto sender =
        FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
    LDPJS_CHECK(sender.ok());
    for (const std::vector<uint8_t>& frame : frames) {
      LDPJS_CHECK(sender->SendEncodedBatch(frame).ok());
    }
    // FINALIZE_OK doubles as the ingest barrier (ordered after every DATA
    // frame this connection sent), so no BYE follows it.
    LDPJS_CHECK(sender->RequestFinalize().ok());
    server.WaitForFinalizeRequest();
    server.Stop();
    return server.Finalize();
  }

  // Hand the per-block frame buffers to the service as spans — the same
  // frame i → shard i mod N routing a concatenated IngestStream would use,
  // without materializing a second copy of the whole wire stream.
  std::vector<std::span<const uint8_t>> frame_spans(frames.begin(),
                                                    frames.end());
  ShardedAggregator aggregator(params, epsilon, options.num_shards);
  const Status status = aggregator.IngestFrames(frame_spans);
  LDPJS_CHECK(status.ok());  // self-generated frames: corruption impossible
  return aggregator.Finalize();
}

template <typename Client>
LdpJoinSketchServer RunProtocol(const Column& column,
                                const SketchParams& params, double epsilon,
                                const SimulationOptions& options,
                                const Client& client) {
  if (options.num_shards > 0 || options.net_loopback ||
      options.num_regions > 0) {
    return RunProtocolOverWire(column, params, epsilon, options, client);
  }
  ThreadPool pool(options.num_threads);
  const size_t shards = pool.num_threads();
  std::vector<LdpJoinSketchServer> partials(
      shards, LdpJoinSketchServer(params, epsilon));

  const uint64_t* values = column.values().data();
  const size_t rows = column.size();
  const size_t blocks = (rows + kIngestBlockSize - 1) / kIngestBlockSize;
  pool.ParallelFor(blocks, [&](size_t shard, size_t begin, size_t end) {
    LdpJoinSketchServer& server = partials[shard];
    std::vector<LdpReport> reports(kIngestBlockSize);
    for (size_t block = begin; block < end; ++block) {
      const size_t first = block * kIngestBlockSize;
      const size_t count = std::min(kIngestBlockSize, rows - first);
      Xoshiro256 rng = MakeStreamRng(options.run_seed, block);
      std::span<LdpReport> out(reports.data(), count);
      client.PerturbBatch(std::span<const uint64_t>(values + first, count),
                          out, rng);
      server.AbsorbBatch(out);
    }
  });

  LdpJoinSketchServer server(params, epsilon);
  for (const LdpJoinSketchServer& partial : partials) server.Merge(partial);
  server.Finalize();
  return server;
}

}  // namespace

LdpJoinSketchServer BuildLdpJoinSketch(const Column& column,
                                       const SketchParams& params,
                                       double epsilon,
                                       const SimulationOptions& options) {
  LdpJoinSketchClient client(params, epsilon);
  return RunProtocol(column, params, epsilon, options, client);
}

LdpJoinSketchServer BuildFapSketch(
    const Column& column, const SketchParams& params, double epsilon,
    FapMode mode, const std::unordered_set<uint64_t>& frequent_items,
    const SimulationOptions& options) {
  FapClient client(params, epsilon, mode, frequent_items);
  return RunProtocol(column, params, epsilon, options, client);
}

}  // namespace ldpjs
