#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "data/alias_sampler.h"
#include "data/datasets.h"
#include "data/gaussian.h"
#include "data/zipf.h"

namespace ldpjs {
namespace {

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({1.0, 3.0});
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(AliasSamplerTest, EmpiricalMatchesWeights) {
  AliasSampler sampler({1.0, 2.0, 3.0, 4.0});
  Xoshiro256 rng(11);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < 4; ++i) {
    const double expected = (static_cast<double>(i) + 1.0) / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected, 0.01)
        << "index " << i;
  }
}

TEST(AliasSamplerTest, SingleBucketAlwaysZero) {
  AliasSampler sampler({5.0});
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({1.0, 0.0, 1.0});
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerDeathTest, AllZeroWeightsAbort) {
  EXPECT_DEATH(AliasSampler({0.0, 0.0}), "LDPJS_CHECK failed");
}

TEST(AliasSamplerDeathTest, NegativeWeightAborts) {
  EXPECT_DEATH(AliasSampler({1.0, -1.0}), "LDPJS_CHECK failed");
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfParams params;
  params.domain = 1000;
  params.rows = 5000;
  params.seed = 7;
  const Column a = GenerateZipf(params);
  const Column b = GenerateZipf(params);
  EXPECT_EQ(a.values(), b.values());
}

TEST(ZipfTest, ValuesWithinDomain) {
  ZipfParams params;
  params.domain = 100;
  params.rows = 10000;
  const Column c = GenerateZipf(params);
  EXPECT_EQ(c.size(), params.rows);
  for (uint64_t v : c.values()) EXPECT_LT(v, params.domain);
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  ZipfParams params;
  params.alpha = 1.5;
  params.domain = 1000;
  params.rows = 100000;
  const Column c = GenerateZipf(params);
  const auto freq = c.Frequencies();
  for (uint64_t d = 1; d < 20; ++d) {
    EXPECT_GE(freq[0], freq[d]) << "rank " << d + 1;
  }
}

TEST(ZipfTest, FrequencyRatioMatchesAlpha) {
  // f(rank 1)/f(rank 2) ≈ 2^alpha.
  ZipfParams params;
  params.alpha = 2.0;
  params.domain = 10000;
  params.rows = 400000;
  params.seed = 13;
  const Column c = GenerateZipf(params);
  const auto freq = c.Frequencies();
  const double ratio =
      static_cast<double>(freq[0]) / static_cast<double>(freq[1]);
  EXPECT_NEAR(ratio, 4.0, 0.35);
}

TEST(ZipfTest, HigherAlphaFewerDistinct) {
  ZipfParams low;
  low.alpha = 1.1;
  low.domain = 50000;
  low.rows = 100000;
  ZipfParams high = low;
  high.alpha = 2.5;
  EXPECT_GT(GenerateZipf(low).CountDistinct(),
            GenerateZipf(high).CountDistinct());
}

TEST(GaussianTest, MomentsMatchParameters) {
  GaussianParams params;
  params.mu = 5000;
  params.sigma = 300;
  params.domain = 10000;
  params.rows = 200000;
  const Column c = GenerateGaussian(params);
  double sum = 0;
  for (uint64_t v : c.values()) sum += static_cast<double>(v);
  const double mean = sum / static_cast<double>(c.size());
  EXPECT_NEAR(mean, params.mu, 5.0);
  double var = 0;
  for (uint64_t v : c.values()) {
    var += (static_cast<double>(v) - mean) * (static_cast<double>(v) - mean);
  }
  var /= static_cast<double>(c.size());
  EXPECT_NEAR(std::sqrt(var), params.sigma, 10.0);
}

TEST(GaussianTest, ClampsToDomain) {
  GaussianParams params;
  params.mu = 0;  // half the mass would fall below 0 without clamping
  params.sigma = 50;
  params.domain = 100;
  params.rows = 10000;
  const Column c = GenerateGaussian(params);
  for (uint64_t v : c.values()) EXPECT_LT(v, params.domain);
}

TEST(UniformTest, CoversDomainEvenly) {
  const Column c = GenerateUniform(10, 100000, 3);
  const auto freq = c.Frequencies();
  for (uint64_t d = 0; d < 10; ++d) {
    EXPECT_NEAR(static_cast<double>(freq[d]), 10000.0, 600.0);
  }
}

TEST(DatasetsTest, AllSpecsMatchTableTwo) {
  const auto specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kMovieLens).domain, 83'239u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kMovieLens).paper_rows, 67'664'324u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTpcds).domain, 18'000u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTwitter).domain, 77'072u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kFacebook).domain, 4'039u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kGaussian).domain, 80'000u);
}

TEST(DatasetsTest, WorkloadHasTwoIndependentTables) {
  const JoinWorkload w = MakeWorkload(DatasetId::kFacebook, 20000, 5);
  EXPECT_EQ(w.table_a.size(), 20000u);
  EXPECT_EQ(w.table_b.size(), 20000u);
  EXPECT_EQ(w.table_a.domain(), w.table_b.domain());
  EXPECT_NE(w.table_a.values(), w.table_b.values());
}

TEST(DatasetsTest, WorkloadDeterministicInSeed) {
  const JoinWorkload w1 = MakeWorkload(DatasetId::kTpcds, 5000, 9);
  const JoinWorkload w2 = MakeWorkload(DatasetId::kTpcds, 5000, 9);
  const JoinWorkload w3 = MakeWorkload(DatasetId::kTpcds, 5000, 10);
  EXPECT_EQ(w1.table_a.values(), w2.table_a.values());
  EXPECT_NE(w1.table_a.values(), w3.table_a.values());
}

TEST(DatasetsTest, ZipfWorkloadUsesRequestedSkew) {
  const JoinWorkload heavy = MakeZipfWorkload(2.0, 10000, 50000, 3);
  const JoinWorkload light = MakeZipfWorkload(1.1, 10000, 50000, 3);
  EXPECT_LT(heavy.table_a.CountDistinct(), light.table_a.CountDistinct());
}

// Property sweep: every dataset generator respects its spec's domain.
class DatasetParamTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetParamTest, ValuesStayInSpecDomain) {
  const DatasetSpec spec = GetDatasetSpec(GetParam());
  const JoinWorkload w = MakeWorkload(GetParam(), 10000, 1);
  EXPECT_EQ(w.table_a.domain(), spec.domain);
  for (uint64_t v : w.table_a.values()) EXPECT_LT(v, spec.domain);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetParamTest,
                         ::testing::Values(DatasetId::kZipf,
                                           DatasetId::kGaussian,
                                           DatasetId::kMovieLens,
                                           DatasetId::kTpcds,
                                           DatasetId::kTwitter,
                                           DatasetId::kFacebook));

}  // namespace
}  // namespace ldpjs
