#include "core/ldp_join_sketch.h"

#include <cmath>
#include <span>

#include "common/hadamard.h"
#include "common/stats.h"

namespace ldpjs {

double DebiasFactor(double epsilon) {
  LDPJS_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  return (e + 1.0) / (e - 1.0);
}

void EncodeReport(const LdpReport& report, BinaryWriter& writer) {
  writer.PutU8(report.y >= 0 ? 1 : 0);
  writer.PutU32(report.j);
  writer.PutU32(report.l);
}

Result<LdpReport> DecodeReport(BinaryReader& reader) {
  auto y = reader.GetU8();
  if (!y.ok()) return y.status();
  auto j = reader.GetU32();
  if (!j.ok()) return j.status();
  auto l = reader.GetU32();
  if (!l.ok()) return l.status();
  if (*j > 0xffff) return Status::Corruption("row index out of range");
  LdpReport report;
  report.y = (*y != 0) ? int8_t{1} : int8_t{-1};
  report.j = static_cast<uint16_t>(*j);
  report.l = *l;
  return report;
}

LdpJoinSketchClient::LdpJoinSketchClient(const SketchParams& params,
                                         double epsilon)
    : params_(params), epsilon_(epsilon) {
  params_.Validate();
  LDPJS_CHECK(epsilon > 0.0);
  flip_prob_ = 1.0 / (std::exp(epsilon) + 1.0);
  rows_ = MakeRowHashes(params.seed, params.k, static_cast<uint64_t>(params.m));
}

LdpReport LdpJoinSketchClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  LdpReport report;
  report.j =
      static_cast<uint16_t>(rng.NextBounded(static_cast<uint64_t>(params_.k)));
  report.l =
      static_cast<uint32_t>(rng.NextBounded(static_cast<uint64_t>(params_.m)));
  const RowHashes& row = rows_[report.j];
  // w[l] = ξ_j(d) · H_m[h_j(d), l]; the one-hot structure makes this O(1).
  int w = row.sign(value) * HadamardEntry(row.bucket(value), report.l);
  if (rng.NextBernoulli(flip_prob_)) w = -w;
  report.y = static_cast<int8_t>(w);
  return report;
}

LdpReport LdpJoinSketchClient::PerturbReference(uint64_t value,
                                                Xoshiro256& rng) const {
  LdpReport report;
  report.j =
      static_cast<uint16_t>(rng.NextBounded(static_cast<uint64_t>(params_.k)));
  report.l =
      static_cast<uint32_t>(rng.NextBounded(static_cast<uint64_t>(params_.m)));
  const RowHashes& row = rows_[report.j];
  // Algorithm 1 literally: v ← 0; v[h_j(d)] ← ξ_j(d); w ← v·H_m; y ← b·w[l].
  std::vector<double> v(static_cast<size_t>(params_.m), 0.0);
  v[row.bucket(value)] = row.sign(value);
  FastWalshHadamardTransform(std::span<double>(v));
  int w = v[report.l] > 0 ? 1 : -1;
  if (rng.NextBernoulli(flip_prob_)) w = -w;
  report.y = static_cast<int8_t>(w);
  return report;
}

LdpJoinSketchServer::LdpJoinSketchServer(const SketchParams& params,
                                         double epsilon)
    : params_(params), epsilon_(epsilon), c_eps_(DebiasFactor(epsilon)) {
  params_.Validate();
  rows_ = MakeRowHashes(params.seed, params.k, static_cast<uint64_t>(params.m));
  cells_.assign(static_cast<size_t>(params.k) * static_cast<size_t>(params.m),
                0.0);
}

void LdpJoinSketchServer::Absorb(const LdpReport& report) {
  LDPJS_CHECK(!finalized_);
  LDPJS_CHECK(report.j < params_.k);
  LDPJS_CHECK(report.l < static_cast<uint32_t>(params_.m));
  cells_[static_cast<size_t>(report.j) * static_cast<size_t>(params_.m) +
         report.l] += static_cast<double>(params_.k) * c_eps_ * report.y;
  ++total_;
}

void LdpJoinSketchServer::Merge(const LdpJoinSketchServer& other) {
  LDPJS_CHECK(!finalized_ && !other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void LdpJoinSketchServer::Finalize() {
  LDPJS_CHECK(!finalized_);
  for (int j = 0; j < params_.k; ++j) {
    FastWalshHadamardTransform(std::span<double>(
        cells_.data() + static_cast<size_t>(j) * static_cast<size_t>(params_.m),
        static_cast<size_t>(params_.m)));
  }
  finalized_ = true;
}

double LdpJoinSketchServer::JoinEstimate(
    const LdpJoinSketchServer& other) const {
  LDPJS_CHECK(finalized_ && other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  std::vector<double> estimators(static_cast<size_t>(params_.k));
  for (int j = 0; j < params_.k; ++j) {
    double acc = 0.0;
    for (int x = 0; x < params_.m; ++x) {
      acc += cell(j, x) * other.cell(j, x);
    }
    estimators[static_cast<size_t>(j)] = acc;
  }
  return Median(estimators);
}

double LdpJoinSketchServer::TheoreticalErrorBound(
    const LdpJoinSketchServer& other) const {
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  const double k = static_cast<double>(params_.k);
  const double slack = (k * c_eps_ * c_eps_ - 1.0) / 2.0;
  return 4.0 / std::sqrt(static_cast<double>(params_.m)) *
         (static_cast<double>(total_) + slack) *
         (static_cast<double>(other.total_) + slack);
}

double LdpJoinSketchServer::FrequencyEstimate(uint64_t d) const {
  LDPJS_CHECK(finalized_);
  double acc = 0.0;
  for (int j = 0; j < params_.k; ++j) {
    const RowHashes& row = rows_[static_cast<size_t>(j)];
    acc += cell(j, static_cast<int>(row.bucket(d))) * row.sign(d);
  }
  return acc / static_cast<double>(params_.k);
}

std::vector<double> LdpJoinSketchServer::EstimateAllFrequencies(
    uint64_t domain) const {
  std::vector<double> out(domain);
  for (uint64_t d = 0; d < domain; ++d) out[d] = FrequencyEstimate(d);
  return out;
}

void LdpJoinSketchServer::SubtractUniformMass(double total_mass) {
  LDPJS_CHECK(finalized_);
  const double per_cell = total_mass / static_cast<double>(params_.m);
  for (double& cell_value : cells_) cell_value -= per_cell;
}

std::vector<uint8_t> LdpJoinSketchServer::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(static_cast<uint32_t>(params_.k));
  writer.PutU32(static_cast<uint32_t>(params_.m));
  writer.PutU64(params_.seed);
  writer.PutDouble(epsilon_);
  writer.PutU64(total_);
  writer.PutU8(finalized_ ? 1 : 0);
  writer.PutDoubleVector(cells_);
  return writer.TakeBuffer();
}

Result<LdpJoinSketchServer> LdpJoinSketchServer::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  auto k = reader.GetU32();
  if (!k.ok()) return k.status();
  auto m = reader.GetU32();
  if (!m.ok()) return m.status();
  auto seed = reader.GetU64();
  if (!seed.ok()) return seed.status();
  auto epsilon = reader.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto total = reader.GetU64();
  if (!total.ok()) return total.status();
  auto finalized = reader.GetU8();
  if (!finalized.ok()) return finalized.status();
  auto cells = reader.GetDoubleVector();
  if (!cells.ok()) return cells.status();

  if (*k < 1 || *m < 2 || !IsPowerOfTwo(*m)) {
    return Status::Corruption("invalid sketch shape");
  }
  if (*epsilon <= 0.0) return Status::Corruption("invalid epsilon");
  if (cells->size() != static_cast<size_t>(*k) * static_cast<size_t>(*m)) {
    return Status::Corruption("cell count does not match shape");
  }
  SketchParams params;
  params.k = static_cast<int>(*k);
  params.m = static_cast<int>(*m);
  params.seed = *seed;
  LdpJoinSketchServer server(params, *epsilon);
  server.total_ = *total;
  server.finalized_ = (*finalized != 0);
  server.cells_ = std::move(*cells);
  return server;
}

}  // namespace ldpjs
