// Fixed-size thread pool used to simulate millions of LDP clients in
// parallel. ParallelFor shards an index range deterministically, so callers
// that derive per-index RNG streams get bit-identical results regardless of
// the number of worker threads.
#ifndef LDPJS_COMMON_THREAD_POOL_H_
#define LDPJS_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ldpjs {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(shard, begin, end) over [0, total) split into one contiguous
  /// shard per worker; blocks until all shards complete. Shard boundaries
  /// depend only on (total, num_threads), not on scheduling. A single-shard
  /// run executes inline on the calling thread (no queue round trip).
  /// Completion is tracked per call, so concurrent ParallelFor calls on one
  /// pool do not wait on each other's work. Not reentrant: calling it from
  /// inside a task of the same pool deadlocks (the workers are occupied).
  void ParallelFor(size_t total,
                   const std::function<void(size_t shard, size_t begin,
                                            size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ LDPJS_GUARDED_BY(mutex_);
  CondVar task_ready_;
  CondVar all_done_;
  size_t in_flight_ LDPJS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ LDPJS_GUARDED_BY(mutex_) = false;
};

/// Lazily constructed process-wide pool (hardware-concurrency workers) used
/// by server-side hot loops — finalize transforms, join inner products, and
/// domain-sized frequency scans — where threading is an implementation
/// detail rather than a simulation parameter. All users shard work item-
/// independently, so results do not depend on the worker count. Like any
/// ParallelFor, it must not be re-entered from one of its own tasks.
ThreadPool& SharedThreadPool();

/// Below this many estimated element-operations, sharding across the shared
/// pool costs more than it saves.
inline constexpr size_t kMinSharedParallelWork = size_t{1} << 14;

/// Shards fn over [0, total) on SharedThreadPool() when `work` — the
/// caller's estimate of total element operations — reaches
/// kMinSharedParallelWork; otherwise runs fn(0, 0, total) inline. The two
/// paths compute identical results for item-independent fn, so callers use
/// this unconditionally and stay deterministic.
void SharedParallelFor(size_t total, size_t work,
                       const std::function<void(size_t shard, size_t begin,
                                                size_t end)>& fn);

}  // namespace ldpjs

#endif  // LDPJS_COMMON_THREAD_POOL_H_
