// Multi-epoch streaming: an aggregator that periodically snapshots its raw
// lanes (serialize → reset) and merges the snapshots later must be bit-
// identical to one continuous ingest. This is the paper's deployment story
// over time — collection windows that close, ship their sketch, and start
// fresh — and it holds exactly because every pre-finalize representation is
// raw int64 lanes under integer addition.
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "core/ldp_join_sketch.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.k = 5;
  params.m = 128;
  params.seed = 31;
  return params;
}

/// Wire frames (LJSB envelopes) for `n` perturbed reports, one frame per
/// ingest-sized block.
std::vector<std::vector<uint8_t>> MakeFrames(const SketchParams& params,
                                             double epsilon, size_t n,
                                             uint64_t seed) {
  LdpJoinSketchClient client(params, epsilon);
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (seed + i * 7919) % 2000;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  std::vector<std::vector<uint8_t>> frames;
  for (size_t first = 0; first < n; first += kMaxWireBatchReports) {
    const size_t count = std::min(kMaxWireBatchReports, n - first);
    BinaryWriter writer;
    EncodeReportBatch({reports.data() + first, count}, writer);
    frames.push_back(writer.TakeBuffer());
  }
  return frames;
}

TEST(ServiceEpochTest, EpochSnapshotsMergeBitIdenticalToContinuousIngest) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  const std::vector<std::vector<uint8_t>> frames =
      MakeFrames(params, epsilon, 30000, 11);

  // Continuous: one aggregator sees every frame.
  ShardedAggregator continuous(params, epsilon, 3);
  for (const auto& frame : frames) {
    ASSERT_TRUE(continuous.IngestFrame(frame).ok());
  }

  // Epoched: a fresh aggregator per window; each window's raw-lane
  // snapshot is serialized (as a shipping aggregator would) and merged
  // across epochs afterwards.
  constexpr size_t kEpochs = 4;
  std::vector<std::vector<uint8_t>> snapshots;
  const size_t per_epoch = (frames.size() + kEpochs - 1) / kEpochs;
  for (size_t e = 0; e < kEpochs; ++e) {
    ShardedAggregator epoch(params, epsilon, 3);
    const size_t begin = e * per_epoch;
    const size_t end = std::min(frames.size(), begin + per_epoch);
    for (size_t i = begin; i < end; ++i) {
      ASSERT_TRUE(epoch.IngestFrame(frames[i]).ok());
    }
    snapshots.push_back(epoch.MergeShards().Serialize());
  }

  LdpJoinSketchServer merged(params, epsilon);
  for (const auto& snapshot : snapshots) {
    auto epoch_sketch = LdpJoinSketchServer::Deserialize(snapshot);
    ASSERT_TRUE(epoch_sketch.ok()) << epoch_sketch.status().ToString();
    ASSERT_FALSE(epoch_sketch->finalized());
    merged.Merge(*epoch_sketch);
  }

  // Raw lanes identical before finalize…
  EXPECT_EQ(merged.Serialize(), continuous.MergeShards().Serialize());
  // …and cells identical after.
  LdpJoinSketchServer continuous_final = continuous.Finalize();
  merged.Finalize();
  EXPECT_EQ(merged.Serialize(), continuous_final.Serialize());
}

TEST(ServiceEpochTest, EpochsSurviveChangingShardCounts) {
  const SketchParams params = TestParams();
  const double epsilon = 1.0;
  const std::vector<std::vector<uint8_t>> frames =
      MakeFrames(params, epsilon, 25000, 42);

  ShardedAggregator continuous(params, epsilon, 1);
  for (const auto& frame : frames) {
    ASSERT_TRUE(continuous.IngestFrame(frame).ok());
  }

  // Each epoch runs a different shard width (a redeploy mid-collection);
  // exactness must not care.
  const size_t shard_widths[] = {1, 4, 2, 3};
  LdpJoinSketchServer merged(params, epsilon);
  size_t next = 0;
  const size_t per_epoch = (frames.size() + 3) / 4;
  for (size_t e = 0; e < 4; ++e) {
    ShardedAggregator epoch(params, epsilon, shard_widths[e]);
    for (size_t i = 0; i < per_epoch && next < frames.size(); ++i, ++next) {
      ASSERT_TRUE(epoch.IngestFrame(frames[next]).ok());
    }
    auto snapshot = LdpJoinSketchServer::Deserialize(
        epoch.MergeShards().Serialize());
    ASSERT_TRUE(snapshot.ok());
    merged.Merge(*snapshot);
  }
  EXPECT_EQ(merged.Serialize(), continuous.MergeShards().Serialize());

  // Estimates from the epoch-merged sketch agree exactly too.
  const std::vector<std::vector<uint8_t>> frames_b =
      MakeFrames(params, epsilon, 25000, 43);
  ShardedAggregator aggregator_b(params, epsilon, 2);
  for (const auto& frame : frames_b) {
    ASSERT_TRUE(aggregator_b.IngestFrame(frame).ok());
  }
  LdpJoinSketchServer other = aggregator_b.Finalize();
  LdpJoinSketchServer continuous_final = continuous.Finalize();
  merged.Finalize();
  EXPECT_EQ(merged.JoinEstimate(other), continuous_final.JoinEstimate(other));
}

}  // namespace
}  // namespace ldpjs
