// Shard-affine multi-pump ingest: a FrameServer with N shards runs N pump
// threads over N bounded queues. Raw integer lanes make any frame→shard
// routing exact, so multi-pump must be bit-identical to the single-pump
// shape (shards=1) and to a direct absorb — the refactor is purely a
// throughput decision, and these tests pin that it can never change an
// answer or break the session ordering guarantees.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame_sender.h"
#include "net/frame_server.h"

namespace ldpjs {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.k = 6;
  params.m = 256;
  params.seed = 33;
  return params;
}

std::vector<LdpReport> PerturbColumn(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t seed) {
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = (i * 2654435761u) % 1500;
  std::vector<LdpReport> reports(n);
  Xoshiro256 rng(seed);
  client.PerturbBatch(values, reports, rng);
  return reports;
}

LdpJoinSketchServer RunThroughServer(const SketchParams& params,
                                     double epsilon, size_t shards,
                                     const std::vector<LdpReport>& reports,
                                     NetMetrics* metrics_out) {
  FrameServerOptions options;
  options.num_shards = shards;
  FrameServer server(params, epsilon, options);
  EXPECT_TRUE(server.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  EXPECT_TRUE(sender.ok());
  EXPECT_TRUE(sender->SendReports(reports).ok());
  EXPECT_TRUE(sender->Finish().ok());
  server.Stop();
  if (metrics_out != nullptr) *metrics_out = server.metrics();
  return server.Finalize();
}

TEST(NetMultipumpTest, MultiPumpBitIdenticalToSinglePumpAndDirect) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = PerturbColumn(client, 40000, 3);

  LdpJoinSketchServer direct(params, epsilon);
  direct.AbsorbBatch(reports);
  direct.Finalize();
  const std::vector<uint8_t> want = direct.Serialize();

  NetMetrics single_metrics, multi_metrics;
  LdpJoinSketchServer single =
      RunThroughServer(params, epsilon, 1, reports, &single_metrics);
  LdpJoinSketchServer multi =
      RunThroughServer(params, epsilon, 4, reports, &multi_metrics);
  EXPECT_EQ(single.Serialize(), want);
  EXPECT_EQ(multi.Serialize(), want);

  // The multi-pump server really spread the work: 40000 reports = 10 DATA
  // frames round-robined over 4 shard queues, so every pump ingested.
  ASSERT_EQ(multi_metrics.shards.size(), 4u);
  uint64_t shard_frames = 0;
  for (const ShardMetrics& shard : multi_metrics.shards) {
    EXPECT_GT(shard.frames, 0u);
    shard_frames += shard.frames;
  }
  EXPECT_EQ(shard_frames, 10u);  // ceil(40000 / 4096) DATA frames
  EXPECT_EQ(multi_metrics.reports_ingested, reports.size());
  EXPECT_EQ(single_metrics.reports_ingested, reports.size());
}

// SNAPSHOT between bursts of DATA must observe exactly the frames sent
// before it on this connection — the per-connection in-flight barrier that
// replaces single-pump queue ordering.
TEST(NetMultipumpTest, SnapshotOrderedAfterConnectionDataAcrossPumps) {
  const SketchParams params = TestParams();
  const double epsilon = 1.5;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> first = PerturbColumn(client, 12000, 5);
  const std::vector<LdpReport> second = PerturbColumn(client, 9000, 6);

  FrameServerOptions options;
  options.num_shards = 4;
  options.queue_capacity = 2;  // force real queueing across the pumps
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());
  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
  ASSERT_TRUE(sender.ok());

  LdpJoinSketchServer direct(params, epsilon);
  ASSERT_TRUE(sender->SendReports(first).ok());
  direct.AbsorbBatch(first);
  auto snapshot1 = sender->SnapshotRawSketch();
  ASSERT_TRUE(snapshot1.ok());
  EXPECT_EQ(*snapshot1, direct.Serialize());

  ASSERT_TRUE(sender->SendReports(second).ok());
  direct.AbsorbBatch(second);
  auto snapshot2 = sender->SnapshotRawSketch();
  ASSERT_TRUE(snapshot2.ok());
  EXPECT_EQ(*snapshot2, direct.Serialize());

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
  direct.Finalize();
  EXPECT_EQ(server.Finalize().Serialize(), direct.Serialize());
}

// Concurrent senders against the multi-pump server still merge exactly,
// and shed backpressure still loses nothing with per-shard queues.
TEST(NetMultipumpTest, ConcurrentSendersAndShedBackpressureStayExact) {
  const SketchParams params = TestParams();
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  constexpr size_t kSenders = 4;
  std::vector<std::vector<LdpReport>> partitions;
  for (size_t s = 0; s < kSenders; ++s) {
    partitions.push_back(PerturbColumn(client, 10000, 50 + s));
  }

  FrameServerOptions options;
  options.num_shards = 3;
  options.queue_capacity = 1;  // shed on nearly every burst
  options.backpressure = BackpressurePolicy::kShed;
  FrameServer server(params, epsilon, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      FrameSender::Options sender_options;
      sender_options.busy_backoff = {.base_micros = 20, .cap_micros = 1000};
      auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                         epsilon, sender_options);
      ASSERT_TRUE(sender.ok());
      ASSERT_TRUE(sender->SendReports(partitions[s]).ok());
      ASSERT_TRUE(sender->Finish().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  LdpJoinSketchServer direct(params, epsilon);
  for (const auto& partition : partitions) direct.AbsorbBatch(partition);
  direct.Finalize();
  const NetMetrics metrics = server.metrics();
  EXPECT_EQ(server.Finalize().Serialize(), direct.Serialize());
  EXPECT_EQ(metrics.reports_ingested, kSenders * 10000);
  EXPECT_LE(metrics.queue_high_water, options.queue_capacity + 1);
}

}  // namespace
}  // namespace ldpjs
