// One shard of the streaming aggregation service: ingests length-prefixed
// wire frames of batch-envelope records ("LJSB", see EncodeReportBatch)
// into a shard-local un-finalized sketch.
//
// Memory is bounded and allocated once: frames decode into a small ring of
// fixed-size LdpReport buffers (kMaxWireBatchReports each), so a shard that
// has absorbed a billion reports holds exactly one sketch plus the ring —
// no per-report or per-frame allocation on the ingest path. Input is
// untrusted wire bytes: a frame that is truncated, corrupt, or carries
// coordinates outside this shard's sketch shape is rejected with Corruption
// *before* any lane is touched, so a bad frame never poisons the shard.
#ifndef LDPJS_SERVICE_AGGREGATOR_SHARD_H_
#define LDPJS_SERVICE_AGGREGATOR_SHARD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/ldp_join_sketch.h"

namespace ldpjs {

/// Decode buffers in a shard's ring. One is strictly enough for the current
/// synchronous decode→absorb loop; a small ring keeps the last few decoded
/// batches addressable for overlapped decode/absorb or debugging without
/// growing the footprint (4 × 4096 × 12 B ≈ 192 KiB per shard).
inline constexpr size_t kShardDecodeRingSize = 4;

class AggregatorShard {
 public:
  /// Params/epsilon must match the clients' (and every other shard's).
  AggregatorShard(const SketchParams& params, double epsilon);

  /// Decodes one batch-envelope frame payload through the ring and absorbs
  /// it into the shard sketch. Validates every report against the sketch
  /// shape (j < k, l < m) after the codec's own checks; any failure leaves
  /// the shard untouched and returns Corruption.
  Status IngestFrame(std::span<const uint8_t> frame);

  /// Adds another un-finalized raw-lane sketch into this shard (the central
  /// tier's merge of a regional epoch snapshot). Caller must have validated
  /// params/epsilon compatibility; exact integer lane addition.
  void MergeRaw(const LdpJoinSketchServer& other);

  /// Exact inverse of MergeRaw: retracts a previously merged raw-lane
  /// sketch (an expired sliding-window epoch). The retracted reports stay
  /// in the lifetime counters — they *were* ingested — so reports_ingested
  /// remains monotonic across retractions, like it does across Reset().
  void SubtractRaw(const LdpJoinSketchServer& other);

  /// Epoch cut: zeroes the shard's lanes in place so a new collection
  /// window starts fresh. Lifetime counters (frames/reports ingested) keep
  /// accumulating across resets, so service metrics stay monotonic.
  void Reset();

  /// Shard-local raw-lane sketch (un-finalized; merge it, don't query it).
  const LdpJoinSketchServer& sketch() const { return sketch_; }

  uint64_t frames_ingested() const { return frames_; }
  /// Reports absorbed over the shard's lifetime, across every epoch reset.
  uint64_t reports_ingested() const {
    return shipped_reports_ + sketch_.total_reports();
  }

 private:
  LdpJoinSketchServer sketch_;
  std::vector<LdpReport> ring_;  // kShardDecodeRingSize buffers, contiguous
  size_t next_buffer_ = 0;
  uint64_t frames_ = 0;
  uint64_t shipped_reports_ = 0;  // reports cut away by past Reset() calls
};

}  // namespace ldpjs

#endif  // LDPJS_SERVICE_AGGREGATOR_SHARD_H_
