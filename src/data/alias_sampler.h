// Walker alias method: O(1) sampling from an arbitrary discrete
// distribution after O(n) preprocessing. Backbone of the Zipf and simulated
// real-dataset generators (40M draws from multi-million-entry domains).
#ifndef LDPJS_DATA_ALIAS_SAMPLER_H_
#define LDPJS_DATA_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ldpjs {

class AliasSampler {
 public:
  /// Builds alias tables for the (unnormalized, non-negative, not all zero)
  /// weight vector. O(weights.size()).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  uint64_t Sample(Xoshiro256& rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for tests).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // acceptance probability per bucket
  std::vector<uint32_t> alias_;    // alias index per bucket
  std::vector<double> normalized_; // normalized input weights
};

}  // namespace ldpjs

#endif  // LDPJS_DATA_ALIAS_SAMPLER_H_
