#include "core/simulation.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace ldpjs {

namespace {

/// Shards the column's blocks across a thread pool; each block perturbs its
/// users through `client` with one counter-based RNG stream and lands in a
/// shard-local server via AbsorbBatch. Shard servers are merged (integer
/// lane adds, so the order cannot matter) and finalized.
template <typename Client>
LdpJoinSketchServer RunProtocol(const Column& column,
                                const SketchParams& params, double epsilon,
                                const SimulationOptions& options,
                                const Client& client) {
  ThreadPool pool(options.num_threads);
  const size_t shards = pool.num_threads();
  std::vector<LdpJoinSketchServer> partials(
      shards, LdpJoinSketchServer(params, epsilon));

  const uint64_t* values = column.values().data();
  const size_t rows = column.size();
  const size_t blocks = (rows + kIngestBlockSize - 1) / kIngestBlockSize;
  pool.ParallelFor(blocks, [&](size_t shard, size_t begin, size_t end) {
    LdpJoinSketchServer& server = partials[shard];
    std::vector<LdpReport> reports(kIngestBlockSize);
    for (size_t block = begin; block < end; ++block) {
      const size_t first = block * kIngestBlockSize;
      const size_t count = std::min(kIngestBlockSize, rows - first);
      Xoshiro256 rng = MakeStreamRng(options.run_seed, block);
      std::span<LdpReport> out(reports.data(), count);
      client.PerturbBatch(std::span<const uint64_t>(values + first, count),
                          out, rng);
      server.AbsorbBatch(out);
    }
  });

  LdpJoinSketchServer server(params, epsilon);
  for (const LdpJoinSketchServer& partial : partials) server.Merge(partial);
  server.Finalize();
  return server;
}

}  // namespace

LdpJoinSketchServer BuildLdpJoinSketch(const Column& column,
                                       const SketchParams& params,
                                       double epsilon,
                                       const SimulationOptions& options) {
  LdpJoinSketchClient client(params, epsilon);
  return RunProtocol(column, params, epsilon, options, client);
}

LdpJoinSketchServer BuildFapSketch(
    const Column& column, const SketchParams& params, double epsilon,
    FapMode mode, const std::unordered_set<uint64_t>& frequent_items,
    const SimulationOptions& options) {
  FapClient client(params, epsilon, mode, frequent_items);
  return RunProtocol(column, params, epsilon, options, client);
}

}  // namespace ldpjs
