// LJSP transport + handshake codec: framing round trips, every truncation/
// corruption surfaces as a clean Status (these run under the CI ASan/UBSan
// job), and clean end-of-stream is distinguishable from a mid-frame cut.
#include <sys/socket.h>

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "net/protocol.h"

namespace ldpjs {
namespace {

/// A connected AF_UNIX stream pair wrapped in the Socket RAII type — the
/// transport functions only need a stream fd, so tests skip TCP setup.
std::pair<Socket, Socket> StreamPair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(NetProtocolTest, HelloRoundTrips) {
  SessionHello hello;
  hello.k = 18;
  hello.m = 1024;
  hello.seed = 0xDEADBEEFULL;
  hello.epsilon = 4.0;
  const std::vector<uint8_t> bytes = EncodeHello(hello);
  auto decoded = DecodeHello(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->k, hello.k);
  EXPECT_EQ(decoded->m, hello.m);
  EXPECT_EQ(decoded->seed, hello.seed);
  EXPECT_EQ(decoded->epsilon, hello.epsilon);
  EXPECT_FALSE(decoded->has_region);
}

TEST(NetProtocolTest, HelloCarriesRegionAnnouncement) {
  SessionHello hello;
  hello.k = 6;
  hello.m = 256;
  hello.has_region = true;
  hello.region_id = 0xABCD1234u;
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_region);
  EXPECT_EQ(decoded->region_id, 0xABCD1234u);
  // The flag byte is strict: anything but 0/1 is corruption, not "true".
  std::vector<uint8_t> bad = EncodeHello(hello);
  bad[bad.size() - 5] = 2;  // the has_region byte (before the u32 region)
  EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, HelloRejectsBadMagicVersionAndTruncation) {
  SessionHello hello;
  hello.k = 4;
  hello.m = 64;
  std::vector<uint8_t> bytes = EncodeHello(hello);
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;  // magic
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[4] = 99;  // version
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<uint8_t> bad(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeHello(bad).ok()) << "cut=" << cut;
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);  // trailing byte
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
}

TEST(NetProtocolTest, HelloOkRoundTrips) {
  SessionHelloOk ok;
  ok.num_shards = 7;
  ok.acked_data = true;
  ok.region_next_epoch = 0x1122334455667788ULL;
  auto decoded = DecodeHelloOk(EncodeHelloOk(ok));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, kNetVersion);
  EXPECT_EQ(decoded->num_shards, 7u);
  EXPECT_TRUE(decoded->acked_data);
  EXPECT_EQ(decoded->region_next_epoch, 0x1122334455667788ULL);
}

TEST(NetProtocolTest, EpochPushAckRoundTripsAndRejectsGarbage) {
  EpochPushAck ack;
  ack.code = EpochPushAckCode::kDuplicate;
  ack.next_epoch = 42;
  const std::vector<uint8_t> bytes = EncodeEpochPushAck(ack);
  auto decoded = DecodeEpochPushAck(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, EpochPushAckCode::kDuplicate);
  EXPECT_EQ(decoded->next_epoch, 42u);
  // Unknown code byte, truncation, and trailing bytes are all corruption.
  std::vector<uint8_t> bad = bytes;
  bad[0] = 9;
  EXPECT_EQ(DecodeEpochPushAck(bad).status().code(), StatusCode::kCorruption);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeEpochPushAck(truncated).ok()) << "cut=" << cut;
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_EQ(DecodeEpochPushAck(trailing).status().code(),
            StatusCode::kCorruption);
}

TEST(NetProtocolTest, PingFramesAreKnownTypes) {
  auto [a, b] = StreamPair();
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kPing, {}).ok());
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kPingOk, {}).ok());
  auto ping = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->type, NetFrameType::kPing);
  EXPECT_TRUE(ping->payload.empty());
  auto ping_ok = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(ping_ok.ok());
  EXPECT_EQ(ping_ok->type, NetFrameType::kPingOk);
}

TEST(NetProtocolTest, ErrorPayloadRoundTripsStatus) {
  const Status status = Status::Unavailable("queue full, retry");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message(), "queue full, retry");
  // Garbage code byte degrades to Internal, never to OK.
  EXPECT_FALSE(DecodeErrorPayload(std::vector<uint8_t>{0}).ok());
  EXPECT_FALSE(DecodeErrorPayload(std::vector<uint8_t>{}).ok());
}

TEST(NetProtocolTest, WireFrameLayout) {
  auto [a, b] = StreamPair();
  const std::vector<uint8_t> payload = {0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kData, payload).ok());
  uint8_t bytes[8];
  ASSERT_TRUE(b.RecvAll(bytes).ok());
  EXPECT_EQ(bytes[0], 3u);  // u32 little-endian length
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[2], 0u);
  EXPECT_EQ(bytes[3], 0u);
  EXPECT_EQ(bytes[4], static_cast<uint8_t>(NetFrameType::kData));
  EXPECT_EQ(bytes[5], 0xAA);
  EXPECT_EQ(bytes[7], 0xCC);
}

TEST(NetProtocolTest, WriteThenReadOverSocket) {
  auto [a, b] = StreamPair();
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kData, payload).ok());
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kBye, {}).ok());
  auto first = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, NetFrameType::kData);
  EXPECT_EQ(first->payload, payload);
  auto second = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, NetFrameType::kBye);
  EXPECT_TRUE(second->payload.empty());
}

TEST(NetProtocolTest, CleanCloseIsEndOfSessionNotCorruption) {
  auto [a, b] = StreamPair();
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST(NetProtocolTest, MidHeaderCloseIsCorruption) {
  auto [a, b] = StreamPair();
  const uint8_t partial[3] = {9, 0, 0};  // 3 of the 5 header bytes
  ASSERT_TRUE(a.SendAll(partial).ok());
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, MidPayloadCloseIsCorruption) {
  auto [a, b] = StreamPair();
  // Declares 100 payload bytes, delivers 10.
  const uint8_t header[5] = {100, 0, 0, 0,
                             static_cast<uint8_t>(NetFrameType::kData)};
  const uint8_t partial[10] = {};
  ASSERT_TRUE(a.SendAll(header).ok());
  ASSERT_TRUE(a.SendAll(partial).ok());
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, OversizedLengthPrefixRejectedWithoutReading) {
  auto [a, b] = StreamPair();
  // 16 MiB declared against a 64 KiB cap: must fail on the header alone.
  const uint32_t huge = 16u << 20;
  const uint8_t header[5] = {static_cast<uint8_t>(huge),
                             static_cast<uint8_t>(huge >> 8),
                             static_cast<uint8_t>(huge >> 16),
                             static_cast<uint8_t>(huge >> 24),
                             static_cast<uint8_t>(NetFrameType::kData)};
  ASSERT_TRUE(a.SendAll(header).ok());
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, UnknownFrameTypeRejected) {
  auto [a, b] = StreamPair();
  const uint8_t header[5] = {0, 0, 0, 0, 0xEE};
  ASSERT_TRUE(a.SendAll(header).ok());
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ldpjs
