// The single stats serializer: the STATS frame, the SIGUSR1 dump, the
// periodic JSONL exporter, and the legacy NetMetricsToJson all emit through
// StatsToJson, so the schema cannot drift into per-caller dialects.
//
// Output shape:
//   - every pre-existing NetMetrics key, unchanged in name and type, at the
//     top level (totals, then query_kinds / connections / shards / regions);
//   - "query_rejected_kinds": {kind: count} — per-kind reject attribution;
//   - when a registry is supplied, "obs": {counters, gauges, histograms}
//     where each histogram carries count/sum/mean/p50/p90/p99/p999, plus
//     derived top-level doubles "ingest_to_queryable_p50_ms",
//     "ingest_to_queryable_p99_ms" and "view_staleness_ms" (0.0 while the
//     corresponding series is empty, so consumers can always parse them).
#ifndef LDPJS_OBS_STATS_EXPORT_H_
#define LDPJS_OBS_STATS_EXPORT_H_

#include <string>
#include <string_view>

#include "net/net_metrics.h"
#include "obs/metrics.h"

namespace ldpjs {

/// Renders a NetMetrics snapshot — and, when `registry` is non-null, the
/// registry's instruments — as one JSON object. `registry == nullptr`
/// reproduces the pre-obs NetMetricsToJson output byte-compatibly (modulo
/// the additive query_rejected_kinds key).
///
/// `extra_sections`, when non-empty, is spliced verbatim before the closing
/// brace (the caller supplies `"key":value[,...]` without a leading comma).
/// The fleet sections — "health", "fleet", "events" — arrive this way so
/// this serializer does not depend on the server layer, and so they land
/// AFTER every frozen legacy key (the schema-freeze tests pin the prefix).
std::string StatsToJson(const NetMetrics& metrics,
                        const MetricsRegistry* registry,
                        std::string_view extra_sections = {});

}  // namespace ldpjs

#endif  // LDPJS_OBS_STATS_EXPORT_H_
