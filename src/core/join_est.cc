#include "core/join_est.h"

#include <algorithm>

namespace ldpjs {

namespace {

/// Expected number of non-target reports aggregated into the sketch.
double NonTargetMass(const JoinEstSide& side, FapMode mode,
                     const JoinEstOptions& options) {
  LDPJS_CHECK(side.table_rows > 0.0);
  // Non-targets of a low-frequency sketch are the FI items and vice versa.
  const double full_table_mass =
      (mode == FapMode::kLow)
          ? side.high_freq_mass
          : std::max(0.0, side.table_rows - side.high_freq_mass);
  if (options.paper_literal_subtraction) return full_table_mass;
  return full_table_mass * side.group_rows / side.table_rows;
}

}  // namespace

double JoinEst(const JoinEstSide& side_a, const JoinEstSide& side_b,
               FapMode mode, const JoinEstOptions& options) {
  LDPJS_CHECK(side_a.sketch != nullptr && side_b.sketch != nullptr);
  LDPJS_CHECK(side_a.sketch->finalized() && side_b.sketch->finalized());
  LdpJoinSketchServer ma = *side_a.sketch;
  LdpJoinSketchServer mb = *side_b.sketch;
  ma.SubtractUniformMass(NonTargetMass(side_a, mode, options));
  mb.SubtractUniformMass(NonTargetMass(side_b, mode, options));
  return ma.JoinEstimate(mb);
}

}  // namespace ldpjs
