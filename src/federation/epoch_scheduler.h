// EpochScheduler: drives the federated collection cadence. Fires a tick
// callback — epoch cut → snapshot ship, see RegionalNode — either on a
// fixed wall-clock period (the deployed mode) or only on explicit
// TriggerNow() calls (the deterministic mode tests and report-count-driven
// simulations use). Ticks run on the scheduler's own thread, strictly
// serialized: a tick that runs long (e.g. a ship retrying against a dead
// central) delays the next tick instead of overlapping it, so there is
// never more than one cut in flight per region.
#ifndef LDPJS_FEDERATION_EPOCH_SCHEDULER_H_
#define LDPJS_FEDERATION_EPOCH_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace ldpjs {

class EpochScheduler {
 public:
  /// `tick` receives the 0-based epoch index it is cutting. `period` == 0
  /// means manual mode: the thread only fires on TriggerNow().
  EpochScheduler(std::chrono::milliseconds period,
                 std::function<void(uint64_t epoch)> tick);
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  void Start();

  /// Requests one immediate tick (coalesced if one is already pending) and
  /// returns once it has completed — the synchronous cut tests and final
  /// flushes rely on.
  void TriggerNow();

  /// Stops the thread; no tick runs after this returns. Idempotent.
  void Stop();

  uint64_t epochs_fired() const;

 private:
  void Loop();

  std::chrono::milliseconds period_;
  std::function<void(uint64_t)> tick_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stopping_ = false;
  bool trigger_pending_ = false;
  uint64_t next_epoch_ = 0;   ///< epochs fired so far
  uint64_t completed_ = 0;    ///< ticks fully executed
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_EPOCH_SCHEDULER_H_
