#include "common/serialize.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutDouble(3.14159);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.GetU8(), 7);
  EXPECT_EQ(*reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*reader.GetI64(), -42);
  EXPECT_EQ(*reader.GetDouble(), 3.14159);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, DoubleVectorRoundTrip) {
  BinaryWriter writer;
  std::vector<double> values{1.5, -2.5, 0.0, 1e300, -1e-300};
  writer.PutDoubleVector(values);
  BinaryReader reader(writer.buffer());
  auto result = reader.GetDoubleVector();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, values);
}

TEST(SerializeTest, EmptyVectorRoundTrip) {
  BinaryWriter writer;
  writer.PutDoubleVector(std::vector<double>{});
  BinaryReader reader(writer.buffer());
  auto result = reader.GetDoubleVector();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(SerializeTest, SpecialDoublesSurvive) {
  BinaryWriter writer;
  writer.PutDouble(std::numeric_limits<double>::infinity());
  writer.PutDouble(-0.0);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.GetDouble(), std::numeric_limits<double>::infinity());
  const double neg_zero = *reader.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
}

TEST(SerializeTest, BytesRoundTrip) {
  BinaryWriter writer;
  std::vector<uint8_t> payload{1, 2, 3, 255};
  writer.PutBytes(payload);
  BinaryReader reader(writer.buffer());
  auto len = reader.GetU64();
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, payload.size());
  EXPECT_EQ(reader.remaining(), payload.size());
}

TEST(SerializeTest, TruncatedReadReportsCorruption) {
  BinaryWriter writer;
  writer.PutU32(99);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.GetU32().ok());
  auto fail = reader.GetU64();
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, OversizedVectorLengthRejected) {
  // A length prefix claiming more doubles than bytes remain must fail
  // cleanly instead of allocating.
  BinaryWriter writer;
  writer.PutU64(1ULL << 60);
  BinaryReader reader(writer.buffer());
  auto result = reader.GetDoubleVector();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, TakeBufferMovesOutData) {
  BinaryWriter writer;
  writer.PutU8(1);
  auto buffer = writer.TakeBuffer();
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(SerializeTest, RemainingTracksPosition) {
  BinaryWriter writer;
  writer.PutU32(5);
  writer.PutU32(6);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.GetU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.AtEnd());
  ASSERT_TRUE(reader.GetU32().ok());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace ldpjs
