// Small statistics helpers shared by estimators, tests and benches.
#ifndef LDPJS_COMMON_STATS_H_
#define LDPJS_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ldpjs {

/// Median of the values (copies and partially sorts). Even-sized inputs
/// return the mean of the two middle elements. Requires non-empty input.
double Median(std::span<const double> values);

/// Arithmetic mean. Requires non-empty input.
double Mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator). Requires >= 2 values.
double SampleVariance(std::span<const double> values);

/// q-th quantile (0 <= q <= 1) by linear interpolation on the sorted copy.
double Quantile(std::span<const double> values, double q);

/// Streaming mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Error metrics used throughout the paper's evaluation (§VII-A).
/// AE = |true - est| averaged by the caller over trials; RE = AE / |true|.
double AbsoluteError(double truth, double estimate);
double RelativeError(double truth, double estimate);

/// Mean squared error between two equal-length vectors (frequency MSE).
double MeanSquaredError(std::span<const double> truth,
                        std::span<const double> estimate);

}  // namespace ldpjs

#endif  // LDPJS_COMMON_STATS_H_
