// FrameServer: the TCP ingestion front end of the sharded aggregation
// service. Accepts many concurrent client connections, speaks the LJSP
// session protocol (see net/protocol.h), and feeds every decoded DATA frame
// into a ShardedAggregator.
//
// Threading model:
//   - one acceptor thread;
//   - one reader thread per connection, which does the HELLO handshake,
//     parses transport frames, and pushes them onto the connection's
//     bounded ingest queue;
//   - one ingest pump thread, the sole owner of the ShardedAggregator,
//     which drains the queues round-robin. Frames stay ordered within a
//     connection (so SNAPSHOT/FINALIZE/BYE observe every frame the client
//     sent before them); ordering across connections is unspecified, which
//     is fine — raw integer lanes make the merged sketch independent of
//     frame routing and interleaving (the service exactness invariant).
//
// Backpressure (bounded memory): each connection's queue holds at most
// `queue_capacity` frames. kBlock parks the reader until the pump makes
// space — the kernel receive buffer fills and TCP flow control pushes back
// on the client. kShed refuses the DATA frame with a retriable busy ack
// instead (the client retries; see FrameSender). Control frames are never
// shed. Either way the server's memory is one sketch per shard plus the
// queues — never proportional to what clients send.
//
// Untrusted input: a malformed transport frame, an oversized length prefix,
// a corrupt LJSB envelope, a mid-frame disconnect, or a HELLO with
// mismatched sketch params can never crash the server or touch a lane —
// each is counted in the metrics and the offending connection is closed.
#ifndef LDPJS_NET_FRAME_SERVER_H_
#define LDPJS_NET_FRAME_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "net/net_metrics.h"
#include "net/protocol.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {

enum class BackpressurePolicy {
  kBlock,  ///< park the reader; TCP flow control slows the client
  kShed,   ///< refuse DATA with a busy ack; client retries
};

struct FrameServerOptions {
  uint16_t port = 0;          ///< 0 = ephemeral; read back with port()
  size_t num_shards = 1;      ///< aggregation shards (>= 1)
  size_t queue_capacity = 64; ///< max queued frames per connection
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// SO_SNDTIMEO on accepted sockets: a client that requests a reply
  /// (SNAPSHOT, acks) but stops reading can stall a server-side write for
  /// at most this long before the write fails and the connection is cut —
  /// the single-threaded ingest pump must never be parked forever on one
  /// peer's socket. 0 disables the guard.
  int send_timeout_seconds = 30;
};

class FrameServer {
 public:
  /// Params/epsilon every client HELLO must match bit for bit.
  FrameServer(const SketchParams& params, double epsilon,
              const FrameServerOptions& options);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and starts the acceptor and pump threads.
  Status Start();

  /// Bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Blocks until some client's FINALIZE frame has been processed.
  void WaitForFinalizeRequest();

  /// Shutdown: stops accepting, disconnects any client still attached
  /// (its already-queued frames are still drained — but a client is only
  /// guaranteed fully ingested if its Finish()/BYE_OK completed first),
  /// drains all ingest queues, joins threads. Idempotent.
  void Stop();

  /// Merged + finalized sketch — callable exactly once, after Stop(), so
  /// the global k·c_ε debias and row transforms happen exactly once over
  /// fully drained queues. Bit-identical to a single node absorbing the
  /// same reports.
  LdpJoinSketchServer Finalize();

  /// Consistent snapshot of the per-connection / per-shard counters.
  NetMetrics metrics() const;

 private:
  struct Item {
    NetFrameType type;
    std::vector<uint8_t> payload;
  };
  struct Connection {
    uint64_t id = 0;
    Socket socket;
    std::thread reader;
    std::mutex write_mu;       ///< serializes socket writes (acks, replies)
    std::deque<Item> queue;    ///< guarded by FrameServer::mu_
    bool reader_done = false;  ///< guarded by FrameServer::mu_
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> reports_ingested{0};
    std::atomic<uint64_t> corrupt_frames{0};
    std::atomic<uint64_t> frames_shed{0};
    std::atomic<uint64_t> queue_high_water{0};
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void PumpLoop();
  void ProcessItem(Connection& conn, const Item& item);
  void ReapFinishedConnections();
  ConnectionMetrics SnapshotConnection(const Connection& conn) const;
  void SendError(Connection& conn, const Status& status);
  bool HelloMatches(const SessionHello& hello) const;

  SketchParams params_;
  double epsilon_;
  FrameServerOptions options_;
  ShardedAggregator aggregator_;  ///< pump thread only once started
  size_t pump_shard_ = 0;         ///< mirrors the aggregator's round-robin
  std::vector<std::atomic<uint64_t>> shard_frames_;
  std::vector<std::atomic<uint64_t>> shard_reports_;

  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread pump_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;      ///< pump waits for queued items
  std::condition_variable space_cv_;     ///< readers wait for queue space
  std::condition_variable finalize_cv_;
  /// Live connections only: once a connection's reader has exited and its
  /// queue is drained, the pump joins the thread, folds its counters into
  /// departed_, and frees the slot — server memory does not grow with the
  /// total number of clients ever served.
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<ConnectionMetrics> departed_;  ///< final per-conn snapshots
  bool started_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  bool finalize_requested_ = false;
  bool finalized_ = false;
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> handshakes_rejected_{0};
};

}  // namespace ldpjs

#endif  // LDPJS_NET_FRAME_SERVER_H_
