#include "federation/central_node.h"

namespace ldpjs {

CentralNode::CentralNode(const SketchParams& params, double epsilon,
                         const CentralNodeOptions& options)
    : server_(params, epsilon, options.server),
      finalize_after_(options.finalize_after == 0 ? 1
                                                  : options.finalize_after) {}

}  // namespace ldpjs
