// Parallel client/server simulation drivers.
//
// Each user's RNG stream is derived from Mix64(run_seed ^ global_index), so
// a run is reproducible and independent of sharding; shard-local sketches
// are merged in shard order, so results are bit-identical for a fixed
// thread count.
#ifndef LDPJS_CORE_SIMULATION_H_
#define LDPJS_CORE_SIMULATION_H_

#include <cstdint>
#include <unordered_set>

#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "data/column.h"

namespace ldpjs {

struct SimulationOptions {
  uint64_t run_seed = 42;   ///< perturbation randomness (distinct from hash seed)
  size_t num_threads = 0;   ///< 0 = hardware concurrency
};

/// Runs the full LDPJoinSketch protocol over `column`: every value is
/// perturbed by an O(1) client and absorbed server-side. Returns the
/// finalized sketch.
LdpJoinSketchServer BuildLdpJoinSketch(const Column& column,
                                       const SketchParams& params,
                                       double epsilon,
                                       const SimulationOptions& options);

/// Same, but clients perturb with FAP (phase 2 of LDPJoinSketch+).
LdpJoinSketchServer BuildFapSketch(
    const Column& column, const SketchParams& params, double epsilon,
    FapMode mode, const std::unordered_set<uint64_t>& frequent_items,
    const SimulationOptions& options);

}  // namespace ldpjs

#endif  // LDPJS_CORE_SIMULATION_H_
