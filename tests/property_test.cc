// Cross-cutting property tests: serialization robustness under arbitrary
// truncation/corruption, Parseval's identity for the FWHT (the identity the
// noise analysis rests on), facade invariants, and protocol determinism
// across thread counts.
#include <cmath>

#include <gtest/gtest.h>

#include "common/hadamard.h"
#include "common/stats.h"
#include "core/join_methods.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "ldp/frequency_oracle.h"
#include "sketch/agms.h"
#include "sketch/fast_agms.h"

namespace ldpjs {
namespace {

TEST(SerializationRobustnessTest, ArbitraryTruncationNeverCrashes) {
  SketchParams params;
  params.k = 3;
  params.m = 64;
  params.seed = 5;
  LdpJoinSketchServer server(params, 2.0);
  LdpJoinSketchClient client(params, 2.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    server.Absorb(client.Perturb(static_cast<uint64_t>(i % 7), rng));
  }
  server.Finalize();
  const auto bytes = server.Serialize();
  // Every prefix must either parse to a valid sketch or fail cleanly.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    auto result = LdpJoinSketchServer::Deserialize(prefix);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_TRUE(LdpJoinSketchServer::Deserialize(bytes).ok());
}

TEST(SerializationRobustnessTest, SingleByteCorruptionDetectedOrBenign) {
  SketchParams params;
  params.k = 2;
  params.m = 32;
  params.seed = 9;
  LdpJoinSketchServer server(params, 1.5);
  server.Finalize();
  const auto bytes = server.Serialize();
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto copy = bytes;
    const size_t pos = rng.NextBounded(copy.size());
    copy[pos] = static_cast<uint8_t>(rng.NextBounded(256));
    // Must not crash; may fail (Corruption) or parse to some sketch whose
    // shape invariants hold.
    auto result = LdpJoinSketchServer::Deserialize(copy);
    if (result.ok()) {
      EXPECT_GE(result->params().k, 1);
      EXPECT_TRUE(IsPowerOfTwo(static_cast<uint64_t>(result->params().m)));
    }
  }
}

TEST(ParsevalTest, FwhtPreservesScaledNorm) {
  // ||H_m x||^2 = m ||x||^2 — used to derive the sampling-noise variance of
  // the sketch cells.
  Xoshiro256 rng(7);
  for (size_t m : {8u, 64u, 512u}) {
    std::vector<double> x(m);
    double norm = 0;
    for (double& v : x) {
      v = rng.NextGaussian();
      norm += v * v;
    }
    FastWalshHadamardTransform(std::span<double>(x));
    double transformed_norm = 0;
    for (double v : x) transformed_norm += v * v;
    EXPECT_NEAR(transformed_norm, static_cast<double>(m) * norm,
                1e-6 * transformed_norm);
  }
}

TEST(FacadeTest, CommBitsMatchCostModel) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 1 << 14, 20000, 3);
  JoinMethodConfig config;
  config.epsilon = 4.0;
  config.sketch.k = 18;
  config.sketch.m = 1024;
  config.flh_pool_size = 64;
  const double users = 2.0 * static_cast<double>(w.table_a.size());
  EXPECT_EQ(
      EstimateJoin(JoinMethod::kKrr, w.table_a, w.table_b, config).comm_bits,
      CommCostModel::KrrBitsPerUser(w.table_a.domain()) * users);
  EXPECT_EQ(EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b,
                         config)
                .comm_bits,
            CommCostModel::HadamardSketchBitsPerUser(18, 1024) * users);
}

TEST(FacadeTest, PlusAndBaseShareReportFormat) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 500, 30000, 5);
  JoinMethodConfig config;
  config.sketch.k = 18;
  config.sketch.m = 1024;
  const double base =
      EstimateJoin(JoinMethod::kLdpJoinSketch, w.table_a, w.table_b, config)
          .comm_bits;
  const double plus = EstimateJoin(JoinMethod::kLdpJoinSketchPlus, w.table_a,
                                   w.table_b, config)
                          .comm_bits;
  EXPECT_EQ(base, plus);
}

TEST(DeterminismTest, FullPlusPipelineIdenticalAcrossRepeats) {
  const JoinWorkload w = MakeZipfWorkload(1.6, 800, 60000, 7);
  LdpJoinSketchPlusParams params;
  params.sketch.k = 12;
  params.sketch.m = 512;
  params.sketch.seed = 3;
  params.epsilon = 4.0;
  params.simulation.run_seed = 11;
  params.simulation.num_threads = 3;
  const auto r1 = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  const auto r2 = EstimateJoinSizePlus(w.table_a, w.table_b, params);
  EXPECT_EQ(r1.estimate, r2.estimate);
  EXPECT_EQ(r1.low_estimate, r2.low_estimate);
  EXPECT_EQ(r1.high_estimate, r2.high_estimate);
  EXPECT_EQ(r1.frequent_item_count, r2.frequent_item_count);
}

TEST(AgmsFamilyTest, AgmsAndFastAgmsAgreeOnTheSameData) {
  // Both are unbiased estimators of the same quantity; on a moderately
  // skewed workload their estimates should agree within their error bars.
  const JoinWorkload w = MakeZipfWorkload(1.6, 400, 20000, 9);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  AgmsSketch aa(3, 5, 64), ab(3, 5, 64);
  FastAgmsSketch fa(3, 5, 512), fb(3, 5, 512);
  for (uint64_t v : w.table_a.values()) {
    aa.Update(v);
  }
  for (uint64_t v : w.table_b.values()) {
    ab.Update(v);
  }
  fa.UpdateColumn(w.table_a);
  fb.UpdateColumn(w.table_b);
  EXPECT_NEAR(aa.JoinEstimate(ab) / truth, 1.0, 0.3);
  EXPECT_NEAR(fa.JoinEstimate(fb) / truth, 1.0, 0.15);
}

TEST(ScenarioTest, PrivateDiscoveryRankingPreservesOverlapOrder) {
  // Mirror of examples/dataset_discovery.cpp as a regression test: the
  // privately estimated join sizes must rank candidates by true overlap.
  const uint64_t domain = 5000;
  const uint64_t rows = 60000;
  const JoinWorkload query_pop = MakeZipfWorkload(1.5, domain, rows, 21);
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 23;
  SimulationOptions sim;
  sim.run_seed = 31;
  const LdpJoinSketchServer query =
      BuildLdpJoinSketch(query_pop.table_a, params, 4.0, sim);

  std::vector<double> estimates;
  const double overlaps[] = {0.8, 0.4, 0.05};
  for (int c = 0; c < 3; ++c) {
    const JoinWorkload pop =
        MakeZipfWorkload(1.5, domain, rows, 100 + static_cast<uint64_t>(c));
    std::vector<uint64_t> values;
    for (size_t i = 0; i < pop.table_b.size(); ++i) {
      const bool shared =
          (static_cast<double>(i % 100) / 100.0) < overlaps[c];
      values.push_back(shared ? pop.table_b[i]
                              : (pop.table_b[i] + domain / 2) % domain);
    }
    sim.run_seed = 50 + static_cast<uint64_t>(c);
    const LdpJoinSketchServer sketch =
        BuildLdpJoinSketch(Column(std::move(values), domain), params, 4.0, sim);
    estimates.push_back(query.JoinEstimate(sketch));
  }
  EXPECT_GT(estimates[0], estimates[1]);
  EXPECT_GT(estimates[1], estimates[2]);
}

TEST(ScenarioTest, CosineSimilarityFromSketchesMatchesTruth) {
  // Mirror of examples/private_similarity.cpp.
  const uint64_t domain = 3000;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 80000, 25);
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 27;
  SimulationOptions sim;
  auto build = [&](const Column& c, uint64_t seed) {
    sim.run_seed = seed;
    return BuildLdpJoinSketch(c, params, 4.0, sim);
  };
  const auto sa = build(w.table_a, 1), sb = build(w.table_b, 2);
  const auto sa2 = build(w.table_a, 3), sb2 = build(w.table_b, 4);
  const double cosine =
      sa.JoinEstimate(sb) / (std::sqrt(std::abs(sa.JoinEstimate(sa2))) *
                             std::sqrt(std::abs(sb.JoinEstimate(sb2))));
  const auto fa = w.table_a.Frequencies();
  const auto fb = w.table_b.Frequencies();
  double inner = 0, na = 0, nb = 0;
  for (uint64_t d = 0; d < domain; ++d) {
    inner += static_cast<double>(fa[d]) * static_cast<double>(fb[d]);
    na += static_cast<double>(fa[d]) * static_cast<double>(fa[d]);
    nb += static_cast<double>(fb[d]) * static_cast<double>(fb[d]);
  }
  const double truth = inner / (std::sqrt(na) * std::sqrt(nb));
  EXPECT_NEAR(cosine, truth, 0.1);
}

}  // namespace
}  // namespace ldpjs
