#include "core/ldp_join_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>

#include "common/hadamard.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace ldpjs {

namespace {

/// Serialization magic for format v2 ("LJS2" little-endian). The pre-v2
/// format had no header and started with the u32 row count, which is always
/// far below this value, so v2 buffers are unambiguous and v1 buffers fail
/// the magic check instead of parsing as garbage.
constexpr uint32_t kSketchMagic = 0x32534A4CU;  // "LJS2"
constexpr uint8_t kSketchVersion = 2;

/// Batch-envelope record magic ("LJSB" little-endian): the LJS2 framing
/// family's record type for a block of packed reports on the wire.
constexpr uint32_t kBatchMagic = 0x42534A4CU;  // "LJSB"
constexpr uint8_t kBatchVersion = 1;

/// int64 lane accumulation, the inner loop of Merge (and of every shard
/// merge in the aggregation service). The restrict qualification promises
/// the compiler dst and src never alias, so the loop auto-vectorizes into
/// packed 64-bit adds instead of scalar load/add/store chains.
void AddLanes(int64_t* __restrict dst, const int64_t* __restrict src,
              size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// AddLanes' inverse, same vectorizable shape — the sliding-window retract.
void SubLanes(int64_t* __restrict dst, const int64_t* __restrict src,
              size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

}  // namespace

double DebiasFactor(double epsilon) {
  LDPJS_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  return (e + 1.0) / (e - 1.0);
}

void EncodeReport(const LdpReport& report, BinaryWriter& writer) {
  LDPJS_CHECK(report.y == 1 || report.y == -1);
  writer.PutU8(report.y == 1 ? 1 : 0);
  writer.PutU32(report.j);
  writer.PutU32(report.l);
}

Result<LdpReport> DecodeReport(BinaryReader& reader) {
  auto y = reader.GetU8();
  if (!y.ok()) return y.status();
  auto j = reader.GetU32();
  if (!j.ok()) return j.status();
  auto l = reader.GetU32();
  if (!l.ok()) return l.status();
  if (*y > 1) return Status::Corruption("report sign byte is not 0 or 1");
  if (*j > 0xffff) return Status::Corruption("row index out of range");
  LdpReport report;
  report.y = (*y == 1) ? int8_t{1} : int8_t{-1};
  report.j = static_cast<uint16_t>(*j);
  report.l = *l;
  return report;
}

void EncodeReportBatch(std::span<const LdpReport> reports,
                       BinaryWriter& writer) {
  LDPJS_CHECK(reports.size() <= kMaxWireBatchReports);
  writer.PutU32(kBatchMagic);
  writer.PutU8(kBatchVersion);
  writer.PutU32(static_cast<uint32_t>(reports.size()));
  for (const LdpReport& report : reports) EncodeReport(report, writer);
}

Result<size_t> DecodeReportBatch(BinaryReader& reader,
                                 std::span<LdpReport> out) {
  auto magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kBatchMagic) {
    return Status::Corruption("missing LJSB batch-envelope magic");
  }
  auto version = reader.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kBatchVersion) {
    return Status::Corruption("unsupported batch-envelope version " +
                              std::to_string(*version));
  }
  auto count = reader.GetU32();
  if (!count.ok()) return count.status();
  // Checked multiply FIRST, on the raw declared count: the byte size handed
  // to GetRaw must not be able to wrap size_t (on a 32-bit size_t,
  // 0xffffffff · 9 wraps to a small number, which would pass the bounds
  // check and send the decode loop far past the buffer). The caps below
  // make this unreachable today; it stays as defense in depth against a
  // retuned kMaxWireBatchReports or a reordered check.
  static_assert(kMaxWireBatchReports <= SIZE_MAX / kWireReportBytes,
                "max batch byte size must fit size_t");
  if (*count > SIZE_MAX / kWireReportBytes) {
    return Status::Corruption("batch count " + std::to_string(*count) +
                              " overflows the wire byte size");
  }
  if (*count > kMaxWireBatchReports) {
    return Status::Corruption("batch count " + std::to_string(*count) +
                              " exceeds the wire batch limit");
  }
  if (*count > out.size()) {
    return Status::Corruption("batch count " + std::to_string(*count) +
                              " exceeds the decode buffer");
  }
  const size_t n = *count;
  auto raw = reader.GetRaw(n * kWireReportBytes);
  if (!raw.ok()) return raw.status();
  const uint8_t* bytes = raw->data();
  const auto load_u32le = [](const uint8_t* p) {
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  };
  for (size_t i = 0; i < n; ++i, bytes += kWireReportBytes) {
    const uint8_t y = bytes[0];
    const uint32_t j = load_u32le(bytes + 1);
    const uint32_t l = load_u32le(bytes + 5);
    if (y > 1) return Status::Corruption("report sign byte is not 0 or 1");
    if (j > 0xffff) return Status::Corruption("row index out of range");
    out[i] = LdpReport{y == 1 ? int8_t{1} : int8_t{-1},
                       static_cast<uint16_t>(j), l};
  }
  return n;
}

LdpJoinSketchClient::LdpJoinSketchClient(const SketchParams& params,
                                         double epsilon)
    : params_(params), epsilon_(epsilon) {
  params_.Validate();
  LDPJS_CHECK(epsilon > 0.0);
  flip_prob_ = 1.0 / (std::exp(epsilon) + 1.0);
  flip_threshold_ = BernoulliThreshold(flip_prob_);
  m_log2_ = std::countr_zero(static_cast<uint64_t>(params.m));
  rows_ = MakeRowHashes(params.seed, params.k, static_cast<uint64_t>(params.m));
}

LdpReport LdpJoinSketchClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  const ReportDraws d = SampleReportDraws(rng);
  const RowHashes& row = rows_[d.j];
  // w[l] = ξ_j(d) · H_m[h_j(d), l]; the one-hot structure makes this O(1).
  int w = row.sign(value) * HadamardEntry(row.bucket(value), d.l);
  if (d.flip) w = -w;
  return LdpReport{static_cast<int8_t>(w), d.j, d.l};
}

void LdpJoinSketchClient::PerturbBatch(std::span<const uint64_t> values,
                                       std::span<LdpReport> out,
                                       Xoshiro256& rng) const {
  LDPJS_CHECK(values.size() == out.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = Perturb(values[i], rng);
  }
}

LdpReport LdpJoinSketchClient::PerturbReference(uint64_t value,
                                                Xoshiro256& rng) const {
  const ReportDraws d = SampleReportDraws(rng);
  const RowHashes& row = rows_[d.j];
  // Algorithm 1 literally: v ← 0; v[h_j(d)] ← ξ_j(d); w ← v·H_m; y ← b·w[l].
  std::vector<double> v(static_cast<size_t>(params_.m), 0.0);
  v[row.bucket(value)] = row.sign(value);
  FastWalshHadamardTransform(std::span<double>(v));
  int w = v[d.l] > 0 ? 1 : -1;
  if (d.flip) w = -w;
  return LdpReport{static_cast<int8_t>(w), d.j, d.l};
}

LdpJoinSketchServer::LdpJoinSketchServer(const SketchParams& params,
                                         double epsilon)
    : params_(params), epsilon_(epsilon), c_eps_(DebiasFactor(epsilon)) {
  params_.Validate();
  rows_ = MakeRowHashes(params.seed, params.k, static_cast<uint64_t>(params.m));
  lanes_.assign(static_cast<size_t>(params.k) * static_cast<size_t>(params.m),
                0);
}

void LdpJoinSketchServer::Absorb(const LdpReport& report) {
  LDPJS_CHECK(!finalized_);
  LDPJS_CHECK(report.j < params_.k);
  LDPJS_CHECK(report.l < static_cast<uint32_t>(params_.m));
  LDPJS_CHECK(report.y == 1 || report.y == -1);
  lanes_[static_cast<size_t>(report.j) * static_cast<size_t>(params_.m) +
         report.l] += report.y;
  ++total_;
}

void LdpJoinSketchServer::AbsorbBatch(std::span<const LdpReport> reports) {
  LDPJS_CHECK(!finalized_);
  const uint32_t k = static_cast<uint32_t>(params_.k);
  const uint32_t m = static_cast<uint32_t>(params_.m);
  int64_t* __restrict lanes = lanes_.data();
  // m is validated to be a power of two, so the row offset is a shift.
  const int m_log2 = std::countr_zero(static_cast<uint64_t>(params_.m));
  // Single fused pass, deliberately. The lane scatter is a read-modify-
  // write through a data-dependent index, which no auto-vectorizer can turn
  // into SIMD (duplicate indices must serialize), and the validity branches
  // are perfectly predicted on well-formed input — so they cost nothing
  // next to the RMW, and a bad report aborts before it can touch a lane.
  // The split alternative — a branchless, vectorizable validation pass
  // followed by a bare scatter pass — was measured at 0.85-0.9x of this
  // loop even chunked L1-resident (see absorb_fused_vs_split_speedup in
  // BENCH_micro.json): the second sweep over the reports costs more than
  // the predicted branches ever did. The SIMD win for lane accumulation is
  // in Merge's contiguous AddLanes instead.
  for (const LdpReport& r : reports) {
    LDPJS_CHECK(r.j < k);
    LDPJS_CHECK(r.l < m);
    LDPJS_CHECK(r.y == 1 || r.y == -1);
    lanes[(static_cast<size_t>(r.j) << m_log2) | r.l] += r.y;
  }
  total_ += reports.size();
}

void LdpJoinSketchServer::Merge(const LdpJoinSketchServer& other) {
  LDPJS_CHECK(!finalized_ && !other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  // AddLanes' restrict contract forbids overlap, so a self-merge — well-
  // defined under the old indexed loop — must be rejected, not miscompiled.
  LDPJS_CHECK(this != &other);
  AddLanes(lanes_.data(), other.lanes_.data(), lanes_.size());
  total_ += other.total_;
}

void LdpJoinSketchServer::SubtractRaw(const LdpJoinSketchServer& other) {
  LDPJS_CHECK(!finalized_ && !other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  LDPJS_CHECK(this != &other);
  // Subtracting a sketch that was never merged in would leave a negative
  // report count — a caller bug, not a data condition.
  LDPJS_CHECK(total_ >= other.total_);
  SubLanes(lanes_.data(), other.lanes_.data(), lanes_.size());
  total_ -= other.total_;
}

void LdpJoinSketchServer::ResetLanes() {
  LDPJS_CHECK(!finalized_);
  std::fill(lanes_.begin(), lanes_.end(), int64_t{0});
  total_ = 0;
}

void LdpJoinSketchServer::Finalize() {
  LDPJS_CHECK(!finalized_);
  const size_t m = static_cast<size_t>(params_.m);
  const size_t rows = static_cast<size_t>(params_.k);
  cells_.resize(lanes_.size());
  const double scale = static_cast<double>(params_.k) * c_eps_;
  SharedParallelFor(rows, lanes_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      double* cell_row = cells_.data() + j * m;
      const int64_t* lane_row = lanes_.data() + j * m;
      for (size_t x = 0; x < m; ++x) {
        cell_row[x] = scale * static_cast<double>(lane_row[x]);
      }
      FastWalshHadamardTransform(std::span<double>(cell_row, m));
    }
  });
  lanes_.clear();
  lanes_.shrink_to_fit();
  finalized_ = true;
}

double LdpJoinSketchServer::JoinEstimate(
    const LdpJoinSketchServer& other) const {
  LDPJS_CHECK(finalized_ && other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  const size_t m = static_cast<size_t>(params_.m);
  const size_t rows = static_cast<size_t>(params_.k);
  std::vector<double> estimators(rows);
  SharedParallelFor(rows, cells_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      const double* a = cells_.data() + j * m;
      const double* b = other.cells_.data() + j * m;
      double acc = 0.0;
      for (size_t x = 0; x < m; ++x) acc += a[x] * b[x];
      estimators[j] = acc;
    }
  });
  return Median(estimators);
}

double LdpJoinSketchServer::TheoreticalErrorBound(
    const LdpJoinSketchServer& other) const {
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  const double k = static_cast<double>(params_.k);
  const double slack = (k * c_eps_ * c_eps_ - 1.0) / 2.0;
  return 4.0 / std::sqrt(static_cast<double>(params_.m)) *
         (static_cast<double>(total_) + slack) *
         (static_cast<double>(other.total_) + slack);
}

double LdpJoinSketchServer::FrequencyEstimate(uint64_t d) const {
  LDPJS_CHECK(finalized_);
  double acc = 0.0;
  for (int j = 0; j < params_.k; ++j) {
    const RowHashes& row = rows_[static_cast<size_t>(j)];
    acc += cell(j, static_cast<int>(row.bucket(d))) * row.sign(d);
  }
  return acc / static_cast<double>(params_.k);
}

std::vector<double> LdpJoinSketchServer::EstimateAllFrequencies(
    uint64_t domain) const {
  LDPJS_CHECK(finalized_);
  std::vector<double> out(domain);
  SharedParallelFor(static_cast<size_t>(domain),
                    static_cast<size_t>(domain) *
                        static_cast<size_t>(params_.k),
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t d = begin; d < end; ++d) {
                        out[d] = FrequencyEstimate(static_cast<uint64_t>(d));
                      }
                    });
  return out;
}

void LdpJoinSketchServer::SubtractUniformMass(double total_mass) {
  LDPJS_CHECK(finalized_);
  const double per_cell = total_mass / static_cast<double>(params_.m);
  for (double& cell_value : cells_) cell_value -= per_cell;
}

std::vector<uint8_t> LdpJoinSketchServer::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kSketchMagic);
  writer.PutU8(kSketchVersion);
  writer.PutU32(static_cast<uint32_t>(params_.k));
  writer.PutU32(static_cast<uint32_t>(params_.m));
  writer.PutU64(params_.seed);
  writer.PutDouble(epsilon_);
  writer.PutU64(total_);
  writer.PutU8(finalized_ ? 1 : 0);
  if (finalized_) {
    writer.PutDoubleVector(cells_);
  } else {
    writer.PutI64Vector(lanes_);
  }
  return writer.TakeBuffer();
}

Result<LdpJoinSketchServer> LdpJoinSketchServer::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  auto magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kSketchMagic) {
    return Status::Corruption(
        "missing LJS2 sketch magic: buffer is either corrupt or in the "
        "pre-integer-lane (v1) format, which is no longer readable");
  }
  auto version = reader.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kSketchVersion) {
    return Status::Corruption("unsupported sketch format version " +
                              std::to_string(*version));
  }
  auto k = reader.GetU32();
  if (!k.ok()) return k.status();
  auto m = reader.GetU32();
  if (!m.ok()) return m.status();
  auto seed = reader.GetU64();
  if (!seed.ok()) return seed.status();
  auto epsilon = reader.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto total = reader.GetU64();
  if (!total.ok()) return total.status();
  auto finalized = reader.GetU8();
  if (!finalized.ok()) return finalized.status();

  if (*k < 1 || *k > 0xffff || *m < 2 || !IsPowerOfTwo(*m)) {
    return Status::Corruption("invalid sketch shape");
  }
  if (!(*epsilon > 0.0)) return Status::Corruption("invalid epsilon");
  const size_t expected_cells =
      static_cast<size_t>(*k) * static_cast<size_t>(*m);
  SketchParams params;
  params.k = static_cast<int>(*k);
  params.m = static_cast<int>(*m);
  params.seed = *seed;
  LdpJoinSketchServer server(params, *epsilon);
  server.total_ = *total;
  if (*finalized != 0) {
    auto cells = reader.GetDoubleVector();
    if (!cells.ok()) return cells.status();
    if (cells->size() != expected_cells) {
      return Status::Corruption("cell count does not match shape");
    }
    server.finalized_ = true;
    server.cells_ = std::move(*cells);
    server.lanes_.clear();
    server.lanes_.shrink_to_fit();
  } else {
    auto lanes = reader.GetI64Vector();
    if (!lanes.ok()) return lanes.status();
    if (lanes->size() != expected_cells) {
      return Status::Corruption("lane count does not match shape");
    }
    server.lanes_ = std::move(*lanes);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after sketch");
  }
  return server;
}

}  // namespace ldpjs
