#include "core/freq_items.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace ldpjs {

namespace {

/// Evaluates `hot(d)` for every d in [0, domain) — sharded across the
/// shared pool for large domains (each evaluation is an O(k) sketch scan) —
/// and returns the flagged values in ascending order, matching the
/// insertion order of a serial scan exactly.
template <typename HotFn>
std::unordered_set<uint64_t> CollectHotValues(uint64_t domain, size_t work,
                                              const HotFn& hot) {
  std::unordered_set<uint64_t> items;
  if (work < kMinSharedParallelWork) {
    for (uint64_t d = 0; d < domain; ++d) {
      if (hot(d)) items.insert(d);
    }
    return items;
  }
  std::vector<uint8_t> flags(domain, 0);
  SharedParallelFor(static_cast<size_t>(domain), work,
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t d = begin; d < end; ++d) {
                        flags[d] = hot(static_cast<uint64_t>(d)) ? 1 : 0;
                      }
                    });
  for (uint64_t d = 0; d < domain; ++d) {
    if (flags[d]) items.insert(d);
  }
  return items;
}

size_t ScanWork(const LdpJoinSketchServer& sketch, uint64_t domain) {
  return static_cast<size_t>(domain) * static_cast<size_t>(sketch.params().k);
}

}  // namespace

std::unordered_set<uint64_t> FindFrequentItems(
    const LdpJoinSketchServer& sketch, uint64_t domain, double threshold) {
  return CollectHotValues(domain, ScanWork(sketch, domain), [&](uint64_t d) {
    return sketch.FrequencyEstimate(d) > threshold;
  });
}

std::unordered_set<uint64_t> FindFrequentItemsUnion(
    const LdpJoinSketchServer& sketch_a, const LdpJoinSketchServer& sketch_b,
    uint64_t domain, double threshold_a, double threshold_b) {
  return CollectHotValues(
      domain, ScanWork(sketch_a, domain) + ScanWork(sketch_b, domain),
      [&](uint64_t d) {
        return sketch_a.FrequencyEstimate(d) > threshold_a ||
               sketch_b.FrequencyEstimate(d) > threshold_b;
      });
}

double EstimateFrequentMass(const LdpJoinSketchServer& sketch,
                            const std::unordered_set<uint64_t>& items,
                            double scale) {
  double mass = 0.0;
  for (uint64_t d : items) {
    mass += std::max(0.0, sketch.FrequencyEstimate(d));
  }
  return mass * scale;
}

}  // namespace ldpjs
