#include "data/join.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/datasets.h"

namespace ldpjs {
namespace {

TEST(ExactJoinTest, HandComputedExample) {
  // f_A = {0:2, 1:1}, f_B = {0:3, 2:1}; join = 2*3 = 6.
  Column a({0, 0, 1}, 3);
  Column b({0, 0, 0, 2}, 3);
  EXPECT_EQ(ExactJoinSize(a, b), 6.0);
}

TEST(ExactJoinTest, DisjointColumnsGiveZero) {
  Column a({0, 1}, 4);
  Column b({2, 3}, 4);
  EXPECT_EQ(ExactJoinSize(a, b), 0.0);
}

TEST(ExactJoinTest, SelfJoinEqualsSecondMoment) {
  Column a({0, 0, 1, 2, 2, 2}, 5);
  EXPECT_EQ(ExactJoinSize(a, a), FrequencyMomentF2(a));
  EXPECT_EQ(FrequencyMomentF2(a), 4.0 + 1.0 + 9.0);
}

TEST(ExactJoinTest, FrequencyVectorOverload) {
  std::vector<uint64_t> fa{2, 0, 5};
  std::vector<uint64_t> fb{1, 7, 2};
  EXPECT_EQ(ExactJoinSize(fa, fb), 2.0 + 0.0 + 10.0);
}

TEST(ExactJoinDeathTest, MismatchedDomainsAbort) {
  Column a({0}, 2);
  Column b({0}, 3);
  EXPECT_DEATH(ExactJoinSize(a, b), "LDPJS_CHECK failed");
}

TEST(MomentsTest, F1IsRowCount) {
  Column a({1, 1, 2}, 4);
  EXPECT_EQ(FrequencyMomentF1(a), 3.0);
}

TEST(ChainJoinTest, TwoWayWithEmptyMiddlesMatchesPairwiseJoin) {
  Column a({0, 0, 1}, 3);
  Column b({0, 1, 1}, 3);
  EXPECT_EQ(ExactChainJoinSize(a, {}, b), ExactJoinSize(a, b));
}

TEST(ChainJoinTest, ThreeWayHandComputed) {
  // T1(A) = {0, 0}; T2(A,B) = {(0,1), (0,2), (1,1)}; T3(B) = {1, 1, 2}.
  // Paths: T1 has two rows with A=0. T2 rows with A=0: (0,1), (0,2).
  // (0,1) joins two T3 rows with B=1 -> 2*2=4; (0,2) joins one row -> 2*1=2.
  Column t1({0, 0}, 2);
  PairColumn t2;
  t2.left = {0, 0, 1};
  t2.right = {1, 2, 1};
  t2.left_domain = 2;
  t2.right_domain = 3;
  Column t3({1, 1, 2}, 3);
  EXPECT_EQ(ExactChainJoinSize(t1, {t2}, t3), 6.0);
}

TEST(ChainJoinTest, FourWayMatchesBruteForce) {
  // Small random instance, brute force over all row combinations.
  const JoinWorkload w = MakeZipfWorkload(1.2, 8, 60, 17);
  Column t1 = w.table_a.Prefix(20);
  Column t4 = w.table_b.Prefix(20);
  PairColumn t2, t3;
  t2.left_domain = t2.right_domain = 8;
  t3.left_domain = t3.right_domain = 8;
  Xoshiro256 rng(5);
  for (int i = 0; i < 25; ++i) {
    t2.left.push_back(rng.NextBounded(8));
    t2.right.push_back(rng.NextBounded(8));
    t3.left.push_back(rng.NextBounded(8));
    t3.right.push_back(rng.NextBounded(8));
  }
  double brute = 0;
  for (uint64_t v1 : t1.values()) {
    for (size_t i = 0; i < t2.size(); ++i) {
      if (t2.left[i] != v1) continue;
      for (size_t j = 0; j < t3.size(); ++j) {
        if (t3.left[j] != t2.right[i]) continue;
        for (uint64_t v4 : t4.values()) {
          if (v4 == t3.right[j]) brute += 1;
        }
      }
    }
  }
  EXPECT_EQ(ExactChainJoinSize(t1, {t2, t3}, t4), brute);
}

TEST(ChainJoinDeathTest, DomainMismatchAborts) {
  Column t1({0}, 2);
  PairColumn mid;
  mid.left = {0};
  mid.right = {0};
  mid.left_domain = 3;  // != t1.domain()
  mid.right_domain = 2;
  Column t3({0}, 2);
  EXPECT_DEATH(ExactChainJoinSize(t1, {mid}, t3), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
