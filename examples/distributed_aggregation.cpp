// Distributed aggregation: the aggregator rarely lives in one process. This
// example runs the full wire path of a deployment:
//
//   clients → (encoded LdpReport bytes) → regional aggregators
//           → (serialized raw sketches)  → central server
//           → merge → finalize → estimate
//
// exercising EncodeReport/DecodeReport and sketch Serialize/Deserialize,
// and showing that sharded aggregation is lossless: the merged estimate
// equals a single-aggregator run bit for bit. Table B takes the newer
// route — batch-envelope wire frames into a ShardedAggregator — which is
// the same exactness story with the per-report decode loop replaced by
// DecodeReportBatch and the shard fan-out handled by the service tier.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ldp_join_sketch.h"
#include "data/datasets.h"
#include "data/join.h"
#include "service/sharded_aggregator.h"

int main() {
  using namespace ldpjs;

  const JoinWorkload workload =
      MakeZipfWorkload(1.5, 50'000, 400'000, /*seed=*/3);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);

  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 7;
  const double epsilon = 4.0;

  LdpJoinSketchClient client(params, epsilon);

  // --- Phase 1: each client serializes one report onto the "wire".
  auto perturb_column_to_wire = [&](const Column& column, uint64_t run_seed) {
    BinaryWriter wire;
    for (size_t i = 0; i < column.size(); ++i) {
      Xoshiro256 rng(DeriveStreamSeed(run_seed, static_cast<uint64_t>(i)));
      EncodeReport(client.Perturb(column[i], rng), wire);
    }
    return wire.TakeBuffer();
  };
  const std::vector<uint8_t> wire_a = perturb_column_to_wire(workload.table_a, 11);
  const std::vector<uint8_t> wire_b = perturb_column_to_wire(workload.table_b, 12);
  std::printf("wire traffic: %.2f MB for %zu users (%.1f bytes/user)\n",
              static_cast<double>(wire_a.size() + wire_b.size()) / (1 << 20),
              workload.table_a.size() + workload.table_b.size(),
              static_cast<double>(wire_a.size()) /
                  static_cast<double>(workload.table_a.size()));

  // --- Phase 2: four regional aggregators each decode a slice of table A's
  // stream into their own raw sketch, then ship the serialized sketch.
  const int kRegions = 4;
  std::vector<std::vector<uint8_t>> regional_sketches;
  {
    BinaryReader reader(wire_a);
    const size_t per_region = workload.table_a.size() / kRegions + 1;
    for (int r = 0; r < kRegions; ++r) {
      LdpJoinSketchServer regional(params, epsilon);
      for (size_t i = 0; i < per_region && !reader.AtEnd(); ++i) {
        auto report = DecodeReport(reader);
        if (!report.ok()) {
          std::printf("decode error: %s\n", report.status().ToString().c_str());
          return 1;
        }
        regional.Absorb(*report);
      }
      regional_sketches.push_back(regional.Serialize());
    }
  }

  // --- Phase 3: the central server deserializes and merges the regions.
  LdpJoinSketchServer central_a(params, epsilon);
  for (const auto& bytes : regional_sketches) {
    auto region = LdpJoinSketchServer::Deserialize(bytes);
    if (!region.ok()) {
      std::printf("corrupt sketch: %s\n", region.status().ToString().c_str());
      return 1;
    }
    central_a.Merge(*region);
  }
  central_a.Finalize();

  // Table B runs through the streaming aggregation service instead: the
  // same per-report wire bytes, re-framed as length-prefixed batch
  // envelopes and ingested shard-parallel by a ShardedAggregator.
  LdpJoinSketchServer central_b(params, epsilon);
  {
    std::vector<LdpReport> block(kMaxWireBatchReports);
    BinaryReader reader(wire_b);
    BinaryWriter stream;
    while (!reader.AtEnd()) {
      size_t count = 0;
      while (count < kMaxWireBatchReports && !reader.AtEnd()) {
        auto report = DecodeReport(reader);
        if (!report.ok()) return 1;
        block[count++] = *report;
      }
      BinaryWriter frame;
      EncodeReportBatch(std::span<const LdpReport>(block.data(), count), frame);
      stream.PutFrame(frame.buffer());
    }
    ShardedAggregator service(params, epsilon, kRegions);
    const Status status = service.IngestStream(stream.buffer());
    if (!status.ok()) {
      std::printf("service ingest error: %s\n", status.ToString().c_str());
      return 1;
    }
    central_b = service.Finalize();
  }

  const double estimate = central_a.JoinEstimate(central_b);
  std::printf("true join size     : %.0f\n", truth);
  std::printf("sharded estimate   : %.0f (RE %.3f)\n", estimate,
              std::abs(estimate - truth) / truth);
  std::printf("error bound (Thm 5): +/- %.3e at confidence %.4f\n",
              central_a.TheoreticalErrorBound(central_b),
              1.0 - std::exp(-params.k / 4.0));
  std::printf("\nsharded aggregation is exact: merging raw sketches commutes "
              "with absorption, so regions can aggregate independently.\n");
  return 0;
}
