#include "common/hadamard.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ldpjs {
namespace {

TEST(IsPowerOfTwoTest, Cases) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 40) + 1));
}

TEST(HadamardEntryTest, OrderTwoMatrix) {
  // H_2 = [[1, 1], [1, -1]].
  EXPECT_EQ(HadamardEntry(0, 0), 1);
  EXPECT_EQ(HadamardEntry(0, 1), 1);
  EXPECT_EQ(HadamardEntry(1, 0), 1);
  EXPECT_EQ(HadamardEntry(1, 1), -1);
}

TEST(HadamardEntryTest, MatchesRecursiveConstruction) {
  // Verify the popcount closed form against the Sylvester recursion
  // H_2m = [[H_m, H_m], [H_m, -H_m]] for m up to 64.
  for (uint64_t m = 2; m <= 64; m *= 2) {
    for (uint64_t i = 0; i < m; ++i) {
      for (uint64_t j = 0; j < m; ++j) {
        const int parent = HadamardEntry(i, j);
        EXPECT_EQ(HadamardEntry(i, j + m), parent);
        EXPECT_EQ(HadamardEntry(i + m, j), parent);
        EXPECT_EQ(HadamardEntry(i + m, j + m), -parent);
      }
    }
  }
}

TEST(HadamardEntryTest, MatrixIsSymmetric) {
  const uint64_t m = 64;
  for (uint64_t i = 0; i < m; ++i) {
    for (uint64_t j = 0; j < m; ++j) {
      EXPECT_EQ(HadamardEntry(i, j), HadamardEntry(j, i));
    }
  }
}

TEST(MakeHadamardMatrixTest, RowsAreOrthogonal) {
  const uint64_t m = 32;
  const auto h = MakeHadamardMatrix(m);
  for (uint64_t i = 0; i < m; ++i) {
    for (uint64_t j = 0; j < m; ++j) {
      int dot = 0;
      for (uint64_t x = 0; x < m; ++x) dot += h[i][x] * h[j][x];
      EXPECT_EQ(dot, i == j ? static_cast<int>(m) : 0);
    }
  }
}

TEST(FwhtTest, MatchesNaiveTransform) {
  Xoshiro256 rng(123);
  for (size_t m : {1u, 2u, 4u, 8u, 32u, 128u, 256u}) {
    std::vector<double> data(m);
    for (double& v : data) v = rng.NextDouble() * 10 - 5;
    std::vector<double> expected = NaiveHadamardTransform(data);
    FastWalshHadamardTransform(std::span<double>(data));
    for (size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(data[i], expected[i], 1e-9) << "m=" << m << " i=" << i;
    }
  }
}

TEST(FwhtTest, InvolutionUpToScale) {
  // H_m * H_m = m * I, so transforming twice scales by m.
  Xoshiro256 rng(321);
  const size_t m = 64;
  std::vector<double> data(m), original;
  for (double& v : data) v = rng.NextDouble();
  original = data;
  FastWalshHadamardTransform(std::span<double>(data));
  FastWalshHadamardTransform(std::span<double>(data));
  for (size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(data[i], original[i] * static_cast<double>(m), 1e-9);
  }
}

TEST(FwhtTest, OneHotProducesHadamardRow) {
  // The transform of e_r is row r of H_m — the identity the O(1) client
  // fast path depends on.
  const size_t m = 128;
  for (size_t r : {0u, 1u, 63u, 127u}) {
    std::vector<double> data(m, 0.0);
    data[r] = 1.0;
    FastWalshHadamardTransform(std::span<double>(data));
    for (size_t l = 0; l < m; ++l) {
      EXPECT_EQ(data[l], HadamardEntry(r, l));
    }
  }
}

TEST(FwhtDeathTest, RejectsNonPowerOfTwo) {
  std::vector<double> data(3, 0.0);
  EXPECT_DEATH(FastWalshHadamardTransform(std::span<double>(data)),
               "LDPJS_CHECK failed");
}

TEST(FwhtTest, SizeOneIsIdentity) {
  std::vector<double> data{3.5};
  FastWalshHadamardTransform(std::span<double>(data));
  EXPECT_EQ(data[0], 3.5);
}

}  // namespace
}  // namespace ldpjs
