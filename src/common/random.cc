#include "common/random.h"

#include <cmath>

namespace ldpjs {

uint64_t SplitMix64Next(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64Next(state);
}

uint64_t DeriveStreamSeed(uint64_t run_seed, uint64_t index) {
  const uint64_t offset = Mix64(run_seed ^ 0xa0761d6478bd642fULL);
  return Mix64(offset + index * 0x9e3779b97f4a7c15ULL);
}

Xoshiro256 MakeStreamRng(uint64_t run_seed, uint64_t index) {
  return Xoshiro256(DeriveStreamSeed(run_seed, index));
}

uint64_t BernoulliThreshold(double p) {
  if (p <= 0.0) return 0;                   // (x >> 11) < 0 never holds
  if (p >= 1.0) return uint64_t{1} << 53;   // (x >> 11) < 2^53 always holds
  return static_cast<uint64_t>(std::ceil(std::ldexp(p, 53)));
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with rejection of u1 == 0.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace ldpjs
