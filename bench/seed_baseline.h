// Frozen replica of the pre-integer-lane (v1 "seed") ingestion hot path,
// kept verbatim-in-spirit so bench_micro can report speedups against a
// stable baseline the library no longer contains. Matches the seed's cost
// profile: every RNG draw and hash evaluation is an out-of-line call, the
// sign hash is the canonical Horner evaluation with per-step reductions,
// every user re-seeds a fresh engine from its stream index, and the server
// pays a double FMA (k·c_ε·y) per absorbed report.
//
// Bench-only code: nothing in src/ may depend on this header.
#ifndef LDPJS_BENCH_SEED_BASELINE_H_
#define LDPJS_BENCH_SEED_BASELINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hadamard.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/ldp_join_sketch.h"

namespace ldpjs::bench {

/// v1 Xoshiro256++ with the draw methods out-of-line, as the seed compiled
/// them (they lived in random.cc, so every draw was a cross-TU call).
class SeedXoshiro {
 public:
  explicit SeedXoshiro(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64Next(sm);
  }
  __attribute__((noinline)) uint64_t Next() {
    const uint64_t result = ((s_[0] + s_[3]) << 23 | (s_[0] + s_[3]) >> 41) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = (s_[3] << 45) | (s_[3] >> 19);
    return result;
  }
  __attribute__((noinline)) uint64_t NextBounded(uint64_t bound) {
    // v1 always ran the Lemire multiply, with no power-of-two fast path.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }
  __attribute__((noinline)) bool NextBernoulli(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t s_[4];
};

/// v1 bucket hash: simple tabulation with 64-bit table entries (16 KiB per
/// row) and 128-bit multiply-shift reduction, evaluated out-of-line.
class SeedBucketHash {
 public:
  SeedBucketHash(uint64_t seed, uint64_t m) : m_(m) {
    uint64_t sm = seed;
    for (auto& table : tables_) {
      for (auto& entry : table) entry = SplitMix64Next(sm);
    }
  }
  __attribute__((noinline)) uint64_t Bucket(uint64_t x) const {
    uint64_t h = 0;
    for (size_t byte = 0; byte < 8; ++byte) {
      h ^= tables_[byte][(x >> (8 * byte)) & 0xff];
    }
    return static_cast<uint64_t>((static_cast<__uint128_t>(h) * m_) >> 64);
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
  uint64_t m_;
};

/// v1 sign hash: canonical Horner over GF(2^61 - 1), one reduction per
/// step, coefficients behind a vector, evaluated out-of-line.
class SeedSignHash {
 public:
  explicit SeedSignHash(uint64_t seed) {
    const PolynomialHash poly(seed, 4);
    coeffs_ = poly.coeffs();
  }
  __attribute__((noinline)) int Sign(uint64_t x) const {
    uint64_t xr = x % kMersenne61;
    uint64_t acc = coeffs_[0];
    for (size_t i = 1; i < coeffs_.size(); ++i) {
      acc = internal::AddMod61(internal::MulMod61(acc, xr), coeffs_[i]);
    }
    return (acc >> 30) & 1 ? +1 : -1;
  }

 private:
  std::vector<uint64_t> coeffs_;
};

/// v1 client: same math as LdpJoinSketchClient::Perturb, three sequential
/// draws (row, coordinate, flip), out-of-line hash/RNG calls.
class SeedClient {
 public:
  SeedClient(const SketchParams& params, double epsilon)
      : params_(params), flip_prob_(1.0 / (std::exp(epsilon) + 1.0)) {
    for (int j = 0; j < params.k; ++j) {
      // Same per-row seed derivation as MakeRowHashes.
      const uint64_t row_seed =
          Mix64(params.seed ^
                (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1)));
      buckets_.emplace_back(Mix64(row_seed ^ 0xb7e151628aed2a6bULL),
                            static_cast<uint64_t>(params.m));
      signs_.emplace_back(Mix64(row_seed ^ 0x243f6a8885a308d3ULL));
    }
  }

  LdpReport Perturb(uint64_t value, SeedXoshiro& rng) const {
    LdpReport report;
    report.j = static_cast<uint16_t>(
        rng.NextBounded(static_cast<uint64_t>(params_.k)));
    report.l = static_cast<uint32_t>(
        rng.NextBounded(static_cast<uint64_t>(params_.m)));
    int w = signs_[report.j].Sign(value) *
            HadamardEntry(buckets_[report.j].Bucket(value), report.l);
    if (rng.NextBernoulli(flip_prob_)) w = -w;
    report.y = static_cast<int8_t>(w);
    return report;
  }

 private:
  SketchParams params_;
  double flip_prob_;
  std::vector<SeedBucketHash> buckets_;
  std::vector<SeedSignHash> signs_;
};

/// v1 server: double cells with the debias scale applied per absorbed
/// report (k·c_ε·y FMA), serial row transforms in Finalize.
class SeedServer {
 public:
  SeedServer(const SketchParams& params, double epsilon)
      : k_(params.k), m_(params.m), c_eps_(DebiasFactor(epsilon)) {
    cells_.assign(static_cast<size_t>(k_) * static_cast<size_t>(m_), 0.0);
  }

  __attribute__((noinline)) void Absorb(const LdpReport& r) {
    LDPJS_CHECK(!finalized_);
    LDPJS_CHECK(r.j < k_);
    LDPJS_CHECK(r.l < static_cast<uint32_t>(m_));
    cells_[static_cast<size_t>(r.j) * static_cast<size_t>(m_) + r.l] +=
        static_cast<double>(k_) * c_eps_ * r.y;
    ++total_;
  }

  void Finalize() {
    for (int j = 0; j < k_; ++j) {
      FastWalshHadamardTransform(std::span<double>(
          cells_.data() + static_cast<size_t>(j) * static_cast<size_t>(m_),
          static_cast<size_t>(m_)));
    }
    finalized_ = true;
  }

  double JoinEstimate(const SeedServer& other) const {
    std::vector<double> estimators(static_cast<size_t>(k_));
    for (int j = 0; j < k_; ++j) {
      double acc = 0.0;
      for (int x = 0; x < m_; ++x) {
        const size_t idx = static_cast<size_t>(j) * static_cast<size_t>(m_) +
                           static_cast<size_t>(x);
        acc += cells_[idx] * other.cells_[idx];
      }
      estimators[static_cast<size_t>(j)] = acc;
    }
    return Median(estimators);
  }

  uint64_t total_reports() const { return total_; }

 private:
  int k_;
  int m_;
  double c_eps_;
  uint64_t total_ = 0;
  bool finalized_ = false;
  std::vector<double> cells_;
};

}  // namespace ldpjs::bench

#endif  // LDPJS_BENCH_SEED_BASELINE_H_
