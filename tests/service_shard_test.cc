// Sharded streaming aggregation service: for ANY shard count, ANY frame
// sizing, and ANY interleaving, the merged raw lanes — and therefore the
// finalized cells and join estimates — must be bit-identical to a single
// node absorbing the same reports. Not "close": identical to the last ulp.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k, int m, uint64_t seed) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<LdpReport> RandomReports(const LdpJoinSketchClient& client,
                                     size_t n, uint64_t domain,
                                     uint64_t seed) {
  std::vector<uint64_t> values(n);
  Xoshiro256 value_rng(seed);
  for (auto& v : values) v = value_rng.NextBounded(domain);
  std::vector<LdpReport> reports(n);
  Xoshiro256 perturb_rng(seed ^ 0xFACEULL);
  client.PerturbBatch(values, reports, perturb_rng);
  return reports;
}

/// Splits `reports` into wire frames of random sizes drawn from `rng`
/// (1 .. kMaxWireBatchReports reports each) and concatenates them into one
/// length-prefixed stream — a random batch interleaving.
std::vector<uint8_t> RandomStream(std::span<const LdpReport> reports,
                                  Xoshiro256& rng) {
  BinaryWriter stream;
  size_t pos = 0;
  while (pos < reports.size()) {
    const size_t want = 1 + rng.NextBounded(kMaxWireBatchReports);
    const size_t count = std::min(want, reports.size() - pos);
    BinaryWriter frame;
    EncodeReportBatch(reports.subspan(pos, count), frame);
    stream.PutFrame(frame.buffer());
    pos += count;
  }
  return stream.TakeBuffer();
}

void ExpectLanesEqual(const LdpJoinSketchServer& a,
                      const LdpJoinSketchServer& b) {
  ASSERT_EQ(a.total_reports(), b.total_reports());
  for (int j = 0; j < a.params().k; ++j) {
    for (int x = 0; x < a.params().m; ++x) {
      ASSERT_EQ(a.lane(j, x), b.lane(j, x)) << "lane (" << j << "," << x << ")";
    }
  }
}

TEST(ServiceShardPropertyTest, AnyShardCountMatchesSingleNodeBitExactly) {
  // Property sweep: shard counts {1,2,3,8,16} with a fresh random epsilon,
  // report set, and frame interleaving per count.
  Xoshiro256 meta_rng(20240717);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{8},
                        size_t{16}}) {
    const double epsilon = 0.5 + 5.5 * meta_rng.NextDouble();
    const SketchParams params = TestParams(5, 256, 31 + shards);
    LdpJoinSketchClient client(params, epsilon);
    const size_t n = 20000 + meta_rng.NextBounded(20000);
    const std::vector<LdpReport> reports =
        RandomReports(client, n, 997, meta_rng());

    LdpJoinSketchServer single(params, epsilon);
    for (size_t first = 0; first < n; first += kMaxWireBatchReports) {
      const size_t count = std::min(kMaxWireBatchReports, n - first);
      single.AbsorbBatch(std::span<const LdpReport>(&reports[first], count));
    }

    const std::vector<uint8_t> stream = RandomStream(reports, meta_rng);
    ShardedAggregator aggregator(params, epsilon, shards);
    const Status status = aggregator.IngestStream(stream);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(aggregator.num_shards(), shards);
    EXPECT_EQ(aggregator.reports_ingested(), n);

    ExpectLanesEqual(aggregator.MergeShards(), single);

    // Join estimates against an independent sketch agree to the last ulp.
    LdpJoinSketchServer other(params, epsilon);
    const std::vector<LdpReport> other_reports =
        RandomReports(client, 15000, 997, meta_rng());
    other.AbsorbBatch(other_reports);
    other.Finalize();
    LdpJoinSketchServer sharded_final = aggregator.Finalize();
    single.Finalize();
    EXPECT_EQ(sharded_final.JoinEstimate(other), single.JoinEstimate(other));
    EXPECT_EQ(sharded_final.FrequencyEstimate(13),
              single.FrequencyEstimate(13));
  }
}

TEST(ServiceShardPropertyTest, ReroutedInterleavingsAgreeWithEachOther) {
  // The same reports through two different interleavings and shard counts
  // must still merge to identical lanes — routing is never load-bearing.
  const SketchParams params = TestParams(4, 128, 9);
  const double epsilon = 2.0;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = RandomReports(client, 30000, 501, 77);
  Xoshiro256 frame_rng_a(1), frame_rng_b(2);
  ShardedAggregator agg_a(params, epsilon, 3), agg_b(params, epsilon, 16);
  ASSERT_TRUE(agg_a.IngestStream(RandomStream(reports, frame_rng_a)).ok());
  ASSERT_TRUE(agg_b.IngestStream(RandomStream(reports, frame_rng_b)).ok());
  ExpectLanesEqual(agg_a.MergeShards(), agg_b.MergeShards());
}

TEST(ServiceShardTest, StreamingIngestFrameMatchesBulkIngestStream) {
  const SketchParams params = TestParams(4, 128, 5);
  const double epsilon = 1.5;
  LdpJoinSketchClient client(params, epsilon);
  const std::vector<LdpReport> reports = RandomReports(client, 25000, 300, 3);

  // Frame-at-a-time (round-robin) vs one bulk stream of the same frames.
  ShardedAggregator streaming(params, epsilon, 4), bulk(params, epsilon, 4);
  BinaryWriter stream;
  size_t pos = 0;
  Xoshiro256 rng(11);
  while (pos < reports.size()) {
    const size_t count = std::min(1 + rng.NextBounded(3000),
                                  reports.size() - pos);
    BinaryWriter frame;
    EncodeReportBatch(std::span<const LdpReport>(&reports[pos], count), frame);
    ASSERT_TRUE(streaming.IngestFrame(frame.buffer()).ok());
    stream.PutFrame(frame.buffer());
    pos += count;
  }
  ASSERT_TRUE(bulk.IngestStream(stream.buffer()).ok());
  EXPECT_EQ(streaming.frames_ingested(), bulk.frames_ingested());
  ExpectLanesEqual(streaming.MergeShards(), bulk.MergeShards());
}

TEST(ServiceShardTest, SimulationWirePathBitIdenticalToInProcessPath) {
  // The --shards driver mode: same run_seed, in-process vs wire-sharded
  // ingestion, identical finalized cells for both client types.
  const SketchParams params = TestParams(6, 256, 21);
  const JoinWorkload w = MakeZipfWorkload(1.4, 300, 30000, 19);
  SimulationOptions in_process;
  in_process.run_seed = 99;
  SimulationOptions wired = in_process;
  wired.num_shards = 3;
  wired.num_threads = 2;  // thread count must stay irrelevant on the wire path

  const LdpJoinSketchServer direct =
      BuildLdpJoinSketch(w.table_a, params, 3.0, in_process);
  const LdpJoinSketchServer sharded =
      BuildLdpJoinSketch(w.table_a, params, 3.0, wired);
  ASSERT_EQ(direct.total_reports(), sharded.total_reports());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(direct.cell(j, x), sharded.cell(j, x));
    }
  }

  const std::unordered_set<uint64_t> frequent{1, 2, 7};
  const LdpJoinSketchServer fap_direct = BuildFapSketch(
      w.table_b, params, 3.0, FapMode::kLow, frequent, in_process);
  const LdpJoinSketchServer fap_sharded = BuildFapSketch(
      w.table_b, params, 3.0, FapMode::kLow, frequent, wired);
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(fap_direct.cell(j, x), fap_sharded.cell(j, x));
    }
  }
}

TEST(ServiceShardTest, DefaultShardCountFollowsSharedPool) {
  const SketchParams params = TestParams(2, 64, 1);
  ShardedAggregator aggregator(params, 1.0, 0);
  EXPECT_GE(aggregator.num_shards(), 1u);
}

}  // namespace
}  // namespace ldpjs
