#include "common/hash.h"

#include <algorithm>

#include "common/random.h"

namespace ldpjs {

PolynomialHash::PolynomialHash(uint64_t seed, int degree_plus_one) {
  LDPJS_CHECK(degree_plus_one >= 1);
  coeffs_.resize(static_cast<size_t>(degree_plus_one));
  uint64_t sm = seed;
  for (auto& c : coeffs_) {
    do {
      c = SplitMix64Next(sm) & kMersenne61;
    } while (c >= kMersenne61);  // rejection keeps the draw uniform in [0, p)
  }
  // Non-zero leading coefficient so the family has full degree.
  while (coeffs_[0] == 0) {
    coeffs_[0] = SplitMix64Next(sm) & kMersenne61;
    if (coeffs_[0] >= kMersenne61) coeffs_[0] = 0;
  }
}

BucketHash::BucketHash(uint64_t seed, uint64_t m) : m_(m) {
  LDPJS_CHECK(m >= 1);
  LDPJS_CHECK(m <= (uint64_t{1} << 32));
  uint64_t sm = seed;
  for (auto& table : tables_) {
    // Keep the low 32 bits of each SplitMix64 draw (uniform on 32 bits).
    for (auto& entry : table) {
      entry = static_cast<uint32_t>(SplitMix64Next(sm));
    }
  }
}

SignHash::SignHash(uint64_t seed) {
  const PolynomialHash poly(seed, /*degree_plus_one=*/4);
  std::copy(poly.coeffs().begin(), poly.coeffs().end(), c_.begin());
}

std::vector<RowHashes> MakeRowHashes(uint64_t seed, int k, uint64_t m) {
  LDPJS_CHECK(k >= 1);
  std::vector<RowHashes> rows;
  rows.reserve(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    const uint64_t row_seed =
        Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1)));
    rows.push_back(RowHashes{BucketHash(Mix64(row_seed ^ 0xb7e151628aed2a6bULL), m),
                             SignHash(Mix64(row_seed ^ 0x243f6a8885a308d3ULL))});
  }
  return rows;
}

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) entry = SplitMix64Next(sm);
  }
}

}  // namespace ldpjs
