// LJSP transport + handshake codec: framing round trips, every truncation/
// corruption surfaces as a clean Status (these run under the CI ASan/UBSan
// job), and clean end-of-stream is distinguishable from a mid-frame cut.
#include <sys/socket.h>

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "net/protocol.h"

namespace ldpjs {
namespace {

/// A connected AF_UNIX stream pair wrapped in the Socket RAII type — the
/// transport functions only need a stream fd, so tests skip TCP setup.
std::pair<Socket, Socket> StreamPair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(NetProtocolTest, HelloRoundTrips) {
  SessionHello hello;
  hello.k = 18;
  hello.m = 1024;
  hello.seed = 0xDEADBEEFULL;
  hello.epsilon = 4.0;
  const std::vector<uint8_t> bytes = EncodeHello(hello);
  auto decoded = DecodeHello(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->k, hello.k);
  EXPECT_EQ(decoded->m, hello.m);
  EXPECT_EQ(decoded->seed, hello.seed);
  EXPECT_EQ(decoded->epsilon, hello.epsilon);
  EXPECT_FALSE(decoded->has_region);
}

TEST(NetProtocolTest, HelloCarriesRegionAnnouncement) {
  SessionHello hello;
  hello.k = 6;
  hello.m = 256;
  hello.has_region = true;
  hello.region_id = 0xABCD1234u;
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_region);
  EXPECT_EQ(decoded->region_id, 0xABCD1234u);
  // The flag byte is strict: anything but 0/1 is corruption, not "true".
  std::vector<uint8_t> bad = EncodeHello(hello);
  bad[bad.size() - 5] = 2;  // the has_region byte (before the u32 region)
  EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, HelloRejectsBadMagicVersionAndTruncation) {
  SessionHello hello;
  hello.k = 4;
  hello.m = 64;
  std::vector<uint8_t> bytes = EncodeHello(hello);
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;  // magic
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[4] = 99;  // version
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<uint8_t> bad(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeHello(bad).ok()) << "cut=" << cut;
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);  // trailing byte
    EXPECT_EQ(DecodeHello(bad).status().code(), StatusCode::kCorruption);
  }
}

TEST(NetProtocolTest, HelloVersionBandIsStrict) {
  SessionHello hello;
  hello.k = 18;
  hello.m = 1024;
  // v2 peers stay welcome (the band's floor), v3 is the default.
  hello.version = 2;
  auto v2 = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2);
  hello.version = kNetVersion;
  auto v3 = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->version, kNetVersion);
  // v1 (below the floor) and a from-the-future v4 are both rejected.
  for (const uint8_t version : {uint8_t{1}, uint8_t{kNetVersion + 1}}) {
    hello.version = version;
    EXPECT_EQ(DecodeHello(EncodeHello(hello)).status().code(),
              StatusCode::kCorruption)
        << "version=" << static_cast<int>(version);
  }
}

TEST(NetProtocolTest, HelloOkRoundTrips) {
  SessionHelloOk ok;
  ok.num_shards = 7;
  ok.acked_data = true;
  ok.region_next_epoch = 0x1122334455667788ULL;
  auto decoded = DecodeHelloOk(EncodeHelloOk(ok));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, kNetVersion);
  EXPECT_EQ(decoded->num_shards, 7u);
  EXPECT_TRUE(decoded->acked_data);
  EXPECT_EQ(decoded->region_next_epoch, 0x1122334455667788ULL);
}

TEST(NetProtocolTest, EpochPushAckRoundTripsAndRejectsGarbage) {
  EpochPushAck ack;
  ack.code = EpochPushAckCode::kDuplicate;
  ack.next_epoch = 42;
  const std::vector<uint8_t> bytes = EncodeEpochPushAck(ack);
  auto decoded = DecodeEpochPushAck(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, EpochPushAckCode::kDuplicate);
  EXPECT_EQ(decoded->next_epoch, 42u);
  // Unknown code byte, truncation, and trailing bytes are all corruption.
  std::vector<uint8_t> bad = bytes;
  bad[0] = 9;
  EXPECT_EQ(DecodeEpochPushAck(bad).status().code(), StatusCode::kCorruption);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeEpochPushAck(truncated).ok()) << "cut=" << cut;
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_EQ(DecodeEpochPushAck(trailing).status().code(),
            StatusCode::kCorruption);
}

TEST(NetProtocolTest, PingFramesAreKnownTypes) {
  auto [a, b] = StreamPair();
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kPing, {}).ok());
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kPingOk, {}).ok());
  auto ping = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->type, NetFrameType::kPing);
  EXPECT_TRUE(ping->payload.empty());
  auto ping_ok = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(ping_ok.ok());
  EXPECT_EQ(ping_ok->type, NetFrameType::kPingOk);
}

/// One request per QueryKind with every kind-relevant field set to a
/// distinctive value, so a codec that drops or reorders a field cannot
/// round-trip canonically.
std::vector<QueryRequest> AllQueryKinds() {
  std::vector<QueryRequest> requests;
  QueryRequest join;
  join.kind = QueryKind::kJoinSize;
  join.probe_sketch = {1, 2, 3, 4, 5, 6, 7, 8};
  requests.push_back(join);
  QueryRequest freq;
  freq.kind = QueryKind::kFrequency;
  freq.key = 0x0123456789ABCDEFULL;
  requests.push_back(freq);
  QueryRequest topk;
  topk.kind = QueryKind::kFrequentItems;
  topk.domain = 4096;
  topk.threshold = 2.5;
  requests.push_back(topk);
  QueryRequest chain;
  chain.kind = QueryKind::kMultiwayChain;
  chain.middles = {{9, 8, 7}, {6, 5}};
  chain.probe_sketch = {4, 3, 2, 1};
  requests.push_back(chain);
  QueryRequest range;
  range.kind = QueryKind::kRangeCount;
  range.range_lo = 100;
  range.range_hi = 900;
  requests.push_back(range);
  QueryRequest pred;
  pred.kind = QueryKind::kPredicateJoin;
  pred.range_lo = 7;
  pred.range_hi = 77;
  pred.probe_sketch = {0xAA, 0xBB};
  requests.push_back(pred);
  return requests;
}

TEST(NetProtocolTest, QueryRequestRoundTripsEveryKind) {
  for (const QueryRequest& request : AllQueryKinds()) {
    SCOPED_TRACE(static_cast<int>(request.kind));
    const std::vector<uint8_t> bytes = EncodeQueryRequest(request);
    auto decoded = DecodeQueryRequest(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, request.kind);
    // Canonical: re-encoding the decoded request reproduces the bytes, so
    // every kind-relevant field survived exactly.
    EXPECT_EQ(EncodeQueryRequest(*decoded), bytes);
  }
}

TEST(NetProtocolTest, QueryRequestRejectsTruncationGarbageAndTrailing) {
  // Unknown kind byte up front.
  EXPECT_EQ(DecodeQueryRequest(std::vector<uint8_t>{6}).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(DecodeQueryRequest(std::vector<uint8_t>{}).ok());
  for (const QueryRequest& request : AllQueryKinds()) {
    SCOPED_TRACE(static_cast<int>(request.kind));
    const std::vector<uint8_t> bytes = EncodeQueryRequest(request);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<uint8_t> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_FALSE(DecodeQueryRequest(truncated).ok()) << "cut=" << cut;
    }
    std::vector<uint8_t> trailing = bytes;
    trailing.push_back(0);
    EXPECT_EQ(DecodeQueryRequest(trailing).status().code(),
              StatusCode::kCorruption);
  }
}

TEST(NetProtocolTest, TracedRoundTripsAndRejectsTruncationAndBadInner) {
  const QueryRequest request = AllQueryKinds().front();
  const std::vector<uint8_t> inner = EncodeQueryRequest(request);
  const std::vector<uint8_t> bytes =
      EncodeTraced(NetFrameType::kQuery, 0xABCDULL, 77, inner);
  auto decoded = DecodeTraced(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->inner_type, NetFrameType::kQuery);
  EXPECT_EQ(decoded->trace_id, 0xABCDULL);
  EXPECT_EQ(decoded->origin_ns, 77u);
  ASSERT_TRUE(DecodeQueryRequest(decoded->inner_payload).ok());
  // Truncating anywhere inside the 17-byte envelope header fails cleanly.
  for (size_t cut = 0; cut < kTracedHeaderBytes; ++cut) {
    const std::vector<uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeTraced(truncated).ok()) << "cut=" << cut;
  }
  // Wrapping a control frame (FINALIZE would bypass the drain barrier) is
  // rejected up front.
  const std::vector<uint8_t> control =
      EncodeTraced(NetFrameType::kFinalize, 1, 1, {});
  EXPECT_EQ(DecodeTraced(control).status().code(), StatusCode::kCorruption);
  // The envelope itself is length-transparent: trailing bytes land in
  // inner_payload, where the inner codec rejects them.
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  auto reparsed = DecodeTraced(trailing);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(DecodeQueryRequest(reparsed->inner_payload).status().code(),
            StatusCode::kCorruption);
}

TEST(NetProtocolTest, QueryResponseRoundTripsBitExactAndRejectsGarbage) {
  QueryResponse response;
  response.kind = QueryKind::kFrequentItems;
  response.view_sequence = 41;
  response.view_aligned = true;
  response.view_epoch = 0xFEEDF00DULL;
  response.view_reports = 123456789;
  response.value = 0x1.fedcba9876543p+42;  // exercises every mantissa bit
  response.items = {3, 1, 4, 1, 5, 9};
  const std::vector<uint8_t> bytes = EncodeQueryResponse(response);
  auto decoded = DecodeQueryResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, response.kind);
  EXPECT_EQ(decoded->view_sequence, response.view_sequence);
  EXPECT_EQ(decoded->view_aligned, response.view_aligned);
  EXPECT_EQ(decoded->view_epoch, response.view_epoch);
  EXPECT_EQ(decoded->view_reports, response.view_reports);
  EXPECT_EQ(decoded->value, response.value);  // exact — memcpy round trip
  EXPECT_EQ(decoded->items, response.items);

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeQueryResponse(truncated).ok()) << "cut=" << cut;
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_EQ(DecodeQueryResponse(trailing).status().code(),
            StatusCode::kCorruption);
  std::vector<uint8_t> bad_kind = bytes;
  bad_kind[0] = 6;
  EXPECT_EQ(DecodeQueryResponse(bad_kind).status().code(),
            StatusCode::kCorruption);
}

TEST(NetProtocolTest, ErrorPayloadRoundTripsStatus) {
  const Status status = Status::Unavailable("queue full, retry");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message(), "queue full, retry");
  // Garbage code byte degrades to Internal, never to OK.
  EXPECT_FALSE(DecodeErrorPayload(std::vector<uint8_t>{0}).ok());
  EXPECT_FALSE(DecodeErrorPayload(std::vector<uint8_t>{}).ok());
}

TEST(NetProtocolTest, WireFrameLayout) {
  auto [a, b] = StreamPair();
  const std::vector<uint8_t> payload = {0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kData, payload).ok());
  uint8_t bytes[8];
  ASSERT_TRUE(b.RecvAll(bytes).ok());
  EXPECT_EQ(bytes[0], 3u);  // u32 little-endian length
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[2], 0u);
  EXPECT_EQ(bytes[3], 0u);
  EXPECT_EQ(bytes[4], static_cast<uint8_t>(NetFrameType::kData));
  EXPECT_EQ(bytes[5], 0xAA);
  EXPECT_EQ(bytes[7], 0xCC);
}

TEST(NetProtocolTest, WriteThenReadOverSocket) {
  auto [a, b] = StreamPair();
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kData, payload).ok());
  ASSERT_TRUE(WriteNetFrame(a, NetFrameType::kBye, {}).ok());
  auto first = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, NetFrameType::kData);
  EXPECT_EQ(first->payload, payload);
  auto second = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, NetFrameType::kBye);
  EXPECT_TRUE(second->payload.empty());
}

TEST(NetProtocolTest, CleanCloseIsEndOfSessionNotCorruption) {
  auto [a, b] = StreamPair();
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST(NetProtocolTest, MidHeaderCloseIsCorruption) {
  auto [a, b] = StreamPair();
  const uint8_t partial[3] = {9, 0, 0};  // 3 of the 5 header bytes
  ASSERT_TRUE(a.SendAll(partial).ok());
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, MidPayloadCloseIsCorruption) {
  auto [a, b] = StreamPair();
  // Declares 100 payload bytes, delivers 10.
  const uint8_t header[5] = {100, 0, 0, 0,
                             static_cast<uint8_t>(NetFrameType::kData)};
  const uint8_t partial[10] = {};
  ASSERT_TRUE(a.SendAll(header).ok());
  ASSERT_TRUE(a.SendAll(partial).ok());
  a.Close();
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, OversizedLengthPrefixRejectedWithoutReading) {
  auto [a, b] = StreamPair();
  // 16 MiB declared against a 64 KiB cap: must fail on the header alone.
  const uint32_t huge = 16u << 20;
  const uint8_t header[5] = {static_cast<uint8_t>(huge),
                             static_cast<uint8_t>(huge >> 8),
                             static_cast<uint8_t>(huge >> 16),
                             static_cast<uint8_t>(huge >> 24),
                             static_cast<uint8_t>(NetFrameType::kData)};
  ASSERT_TRUE(a.SendAll(header).ok());
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, UnknownFrameTypeRejected) {
  auto [a, b] = StreamPair();
  const uint8_t header[5] = {0, 0, 0, 0, 0xEE};
  ASSERT_TRUE(a.SendAll(header).ok());
  auto frame = ReadNetFrame(b, kMaxIngestFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace ldpjs
