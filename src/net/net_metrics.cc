#include "net/net_metrics.h"

#include "obs/stats_export.h"

namespace ldpjs {

std::string NetMetricsToJson(const NetMetrics& m) {
  // One serializer for every consumer — STATS frame, SIGUSR1 dump, JSONL
  // exporter, and this legacy entry point — so the schema cannot fork.
  // Passing no registry reproduces the counters-only shape.
  return StatsToJson(m, nullptr);
}

}  // namespace ldpjs
