// EpochScheduler: drives the federated collection cadence. Fires a tick
// callback — epoch cut → snapshot ship, see RegionalNode — either on a
// fixed wall-clock period (the deployed mode) or only on explicit
// TriggerNow() calls (the deterministic mode tests and report-count-driven
// simulations use). Ticks run on the scheduler's own thread, strictly
// serialized: a tick that runs long (e.g. a ship retrying against a dead
// central) delays the next tick instead of overlapping it, so there is
// never more than one cut in flight per region.
#ifndef LDPJS_FEDERATION_EPOCH_SCHEDULER_H_
#define LDPJS_FEDERATION_EPOCH_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/thread_annotations.h"

namespace ldpjs {

class EpochScheduler {
 public:
  /// `tick` receives the 0-based epoch index it is cutting. `period` == 0
  /// means manual mode: the thread only fires on TriggerNow().
  EpochScheduler(std::chrono::milliseconds period,
                 std::function<void(uint64_t epoch)> tick);
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  void Start();

  /// Requests one immediate tick (coalesced if one is already pending) and
  /// returns once it has completed — the synchronous cut tests and final
  /// flushes rely on.
  void TriggerNow();

  /// Stops the thread; no tick runs after this returns. Idempotent.
  void Stop();

  uint64_t epochs_fired() const;

 private:
  void Loop();

  std::chrono::milliseconds period_;
  std::function<void(uint64_t)> tick_;
  std::thread thread_;

  mutable Mutex mu_;
  CondVar cv_;
  bool started_ LDPJS_GUARDED_BY(mu_) = false;
  bool stopping_ LDPJS_GUARDED_BY(mu_) = false;
  bool trigger_pending_ LDPJS_GUARDED_BY(mu_) = false;
  /// Epochs fired so far.
  uint64_t next_epoch_ LDPJS_GUARDED_BY(mu_) = 0;
  /// Ticks fully executed.
  uint64_t completed_ LDPJS_GUARDED_BY(mu_) = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_FEDERATION_EPOCH_SCHEDULER_H_
