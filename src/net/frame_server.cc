#include "net/frame_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "common/backoff.h"
#include "common/fault_injector.h"
#include "obs/stats_export.h"
#include "service/query_engine.h"

namespace ldpjs {

namespace {

/// Transport header bytes per frame (u32 length + u8 type).
constexpr size_t kFrameHeaderBytes = 5;

/// Bound on retained departed-connection metrics rows; older rows fold
/// into one accumulator so totals stay exact under reconnect storms.
constexpr size_t kMaxDepartedRows = 64;

}  // namespace

FrameServer::FrameServer(const SketchParams& params, double epsilon,
                         const FrameServerOptions& options)
    : params_(params),
      epsilon_(epsilon),
      options_(options),
      max_session_payload_(
          std::max({kMaxIngestFramePayload, EpochPushPayloadBound(params) + 64,
                    kMaxQueryFramePayload + 64})),
      aggregator_(params, epsilon,
                  options.num_shards == 0 ? 1 : options.num_shards) {
  LDPJS_CHECK(options_.queue_capacity >= 1);
  lanes_.reserve(aggregator_.num_shards());
  MetricsRegistry& registry = MetricsRegistry::Default();
  for (size_t s = 0; s < aggregator_.num_shards(); ++s) {
    auto lane = std::make_unique<ShardLane>();
    const std::string prefix = "shard" + std::to_string(s);
    lane->queue_wait_hist = registry.GetHistogram(prefix + "_queue_wait_ns");
    lane->absorb_hist = registry.GetHistogram(prefix + "_absorb_ns");
    lanes_.push_back(std::move(lane));
  }
  ingest_to_queryable_hist_ = registry.GetHistogram("ingest_to_queryable_ns");
  query_latency_hist_ = registry.GetHistogram("query_latency_ns");
  query_error_latency_hist_ = registry.GetHistogram("query_error_latency_ns");
  static constexpr const char* kKindNames[6] = {
      "join_size", "frequency",   "frequent_items",
      "multiway",  "range_count", "predicate_join"};
  for (size_t i = 0; i < 6; ++i) {
    query_kind_latency_[i] =
        registry.GetHistogram(std::string("query_") + kKindNames[i] +
                              "_latency_ns");
  }
  view_last_publish_gauge_ = registry.GetGauge("view_last_publish_unix_ns");
}

FrameServer::~FrameServer() {
  bool need_stop;
  {
    // The destructor races nothing by contract, but started_/stopped_ are
    // mu_-guarded state — read them like everyone else.
    MutexLock lock(mu_);
    need_stop = started_ && !stopped_;
  }
  if (need_stop) Stop();
}

Status FrameServer::Start() {
  auto listener = Socket::ListenTcp(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.local_port();
  {
    MutexLock lock(mu_);
    LDPJS_CHECK(!started_);
    started_ = true;
  }
  // Initial empty publication: CurrentPublishedView() is never null once
  // the server is up, so query paths have no "not yet published" branch.
  PublishView();
  acceptor_ = std::thread(&FrameServer::AcceptLoop, this);
  for (size_t s = 0; s < lanes_.size(); ++s) {
    lanes_[s]->pump = std::thread(&FrameServer::PumpLoop, this, s);
  }
  return Status::OK();
}

void FrameServer::AcceptLoop() {
  // Jittered backoff between transient accept failures: bursts of aborted
  // handshakes or buffer pressure back the acceptor off without parking it
  // on a fixed interval.
  Backoff backoff(
      BackoffOptions{.base_micros = 1000, .cap_micros = 200000, .seed = 1});
  for (;;) {
    // Reap ahead of each accept, so a server that has handled millions of
    // short-lived clients holds live connections plus one metrics row per
    // departed one, not their queues/threads/sockets.
    ReapFinishedConnections();
    auto socket = listener_.Accept();
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    if (!socket.ok()) {
      if (socket.status().code() == StatusCode::kInternal) {
        // Process-scoped accept failure (fd exhaustion, bad listener):
        // every retry would fail identically, so spinning only burns a
        // core. Count it and stop accepting; existing sessions continue.
        accept_fatal_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      backoff.SleepNext();
      accept_backoff_micros_.store(backoff.total_micros(),
                                   std::memory_order_relaxed);
      continue;
    }
    backoff.Reset();  // a successful accept ends the incident
    if (options_.send_timeout_seconds > 0) {
      socket->SetSendTimeout(options_.send_timeout_seconds);
    }
    if (options_.idle_timeout_seconds > 0) {
      socket->SetRecvTimeout(options_.idle_timeout_seconds);
    }
    if (!options_.fault_site.empty()) {
      socket->set_fault_site(options_.fault_site);
    }
    auto conn = std::make_unique<Connection>();
    conn->id = connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn->socket = std::move(*socket);
    Connection* raw = conn.get();
    // The thread handle must be fully assigned BEFORE the connection is
    // visible to the reaper: a reader that exits instantly (e.g. a HELLO
    // mismatch) must never be reaped while raw->reader is still an empty
    // handle — registration under mu_ is the happens-before edge.
    raw->reader = std::thread(&FrameServer::ReaderLoop, this, raw);
    {
      MutexLock lock(mu_);
      connections_.push_back(std::move(conn));
      // A Stop() racing this accept has already swept the registered
      // sockets; cover the newcomer so its reader is unblocked too.
      if (stopping_) raw->socket.ShutdownBoth();
    }
  }
}

bool FrameServer::HelloMatches(const SessionHello& hello) const {
  // Epsilon compares as bits: the debias scale must match exactly or the
  // client's flip probability and the server's c_eps disagree.
  uint64_t theirs = 0, ours = 0;
  std::memcpy(&theirs, &hello.epsilon, sizeof(theirs));
  std::memcpy(&ours, &epsilon_, sizeof(ours));
  return hello.k == static_cast<uint32_t>(params_.k) &&
         hello.m == static_cast<uint32_t>(params_.m) &&
         hello.seed == params_.seed && theirs == ours;
}

void FrameServer::SendError(Connection& conn, const Status& status) {
  // Best effort: the peer may already be gone.
  MutexLock g(conn.write_mu);
  (void)WriteNetFrame(conn.socket, NetFrameType::kError,
                      EncodeErrorPayload(status));
}

void FrameServer::WaitConnDrained(Connection* conn) {
  MutexLock lock(mu_);
  while (conn->data_inflight != 0) drain_cv_.Wait(mu_);
}

void FrameServer::ReaderLoop(Connection* conn) {
  bool session_open = false;
  // --- Handshake: exactly one HELLO with matching session params. --------
  auto hello_frame = ReadNetFrame(conn->socket, kMaxIngestFramePayload);
  if (hello_frame.ok() && hello_frame->type == NetFrameType::kHello) {
    conn->bytes_received.fetch_add(
        kFrameHeaderBytes + hello_frame->payload.size(),
        std::memory_order_relaxed);
    auto hello = DecodeHello(hello_frame->payload);
    if (!hello.ok()) {
      conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, hello.status());
    } else if (!HelloMatches(*hello)) {
      handshakes_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, Status::FailedPrecondition(
                           "session params mismatch: server sketch is k=" +
                           std::to_string(params_.k) +
                           " m=" + std::to_string(params_.m)));
    } else {
      // Version negotiation: the session speaks min(theirs, ours). A v2
      // peer keeps its exact v2 session; QUERY is gated on >= 3 below.
      conn->version = std::min(hello->version, kNetVersion);
      SessionHelloOk ok;
      ok.version = conn->version;
      ok.num_shards = static_cast<uint32_t>(aggregator_.num_shards());
      ok.acked_data = options_.backpressure == BackpressurePolicy::kShed;
      if (hello->has_region) {
        // The epoch sync a (re)connecting regional shipper runs on: the
        // first epoch this server has NOT applied for that region. A
        // region it has never heard from reads as 0 — the region keeps its
        // own numbering. Read-only: a HELLO must not create a region row.
        MutexLock lock(mu_);
        auto it = regions_.find(hello->region_id);
        if (it != regions_.end()) ok.region_next_epoch = it->second.next_epoch;
      }
      MutexLock g(conn->write_mu);
      session_open =
          WriteNetFrame(conn->socket, NetFrameType::kHelloOk, EncodeHelloOk(ok))
              .ok();
    }
  } else if (!hello_frame.ok() &&
             hello_frame.status().code() == StatusCode::kNotFound) {
    // Clean close before HELLO: a port probe, not an error.
  } else if (!hello_frame.ok() &&
             hello_frame.status().code() == StatusCode::kDeadlineExceeded) {
    // Connected but never spoke: the idle deadline reaps it.
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    ObsEvent reap;
    reap.kind = "idle_reap";
    reap.cause = "connection silent before HELLO";
    events_.Record(std::move(reap));
    conn->socket.ShutdownBoth();
  } else {
    conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    SendError(*conn, Status::Corruption("expected HELLO"));
  }

  // --- Frame loop: route DATA to a shard queue, handle control inline. ---
  while (session_open) {
    auto frame = ReadNetFrame(conn->socket, max_session_payload_);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        // The peer went silent past the idle deadline: reap the
        // connection so a hung client cannot pin a thread and fd forever.
        // Its already-queued frames still drain — reaping loses nothing.
        idle_reaped_.fetch_add(1, std::memory_order_relaxed);
        ObsEvent reap;
        reap.kind = "idle_reap";
        reap.cause = "session idle past deadline";
        events_.Record(std::move(reap));
        SendError(*conn, frame.status());
        conn->socket.ShutdownBoth();
        break;
      }
      if (frame.status().code() != StatusCode::kNotFound) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn, frame.status());
        // Shut the socket down NOW, not when the next accept/exit reaps the
        // Connection: a peer mid-send on an oversized frame is blocked in
        // send() with a full socket buffer, and only an RST unblocks it.
        // Leaving the fd open parks that peer until unrelated traffic
        // arrives — on an otherwise idle server, forever.
        conn->socket.ShutdownBoth();
      }
      break;
    }
    // v4 trace envelope: unwrap it here so every downstream handler sees
    // exactly the inner frame it would have seen on a bare session — the
    // trace context rides alongside, it never changes the bytes handled.
    TraceContext trace;
    size_t payload_offset = 0;
    NetFrameType effective_type = frame->type;
    if (frame->type == NetFrameType::kTraced) {
      if (conn->version < 4) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn, Status::FailedPrecondition(
                             "TRACED requires LJSP v4; session negotiated v" +
                             std::to_string(conn->version)));
        conn->socket.ShutdownBoth();
        break;
      }
      auto traced = DecodeTraced(frame->payload);
      if (!traced.ok()) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn, traced.status());
        conn->socket.ShutdownBoth();
        break;
      }
      trace.trace_id = traced->trace_id;
      trace.origin_ns = traced->origin_ns;
      payload_offset = kTracedHeaderBytes;
      effective_type = traced->inner_type;
    }
    const std::span<const uint8_t> payload =
        std::span<const uint8_t>(frame->payload).subspan(payload_offset);
    const bool is_data = effective_type == NetFrameType::kData;
    const bool is_query = effective_type == NetFrameType::kQuery;
    const bool is_stats = effective_type == NetFrameType::kStatsRequest;
    const bool is_stats_push = effective_type == NetFrameType::kStatsPush;
    const bool is_fleet_stats =
        effective_type == NetFrameType::kFleetStatsRequest;
    const bool is_control = effective_type == NetFrameType::kSnapshot ||
                            effective_type == NetFrameType::kEpochPush ||
                            effective_type == NetFrameType::kFinalize ||
                            effective_type == NetFrameType::kPing ||
                            effective_type == NetFrameType::kBye;
    if (!is_data && !is_control && !is_query && !is_stats && !is_stats_push &&
        !is_fleet_stats) {
      conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(*conn, Status::Corruption("unexpected client frame type"));
      conn->socket.ShutdownBoth();
      break;
    }
    conn->frames_received.fetch_add(1, std::memory_order_relaxed);
    conn->bytes_received.fetch_add(kFrameHeaderBytes + frame->payload.size(),
                                   std::memory_order_relaxed);

    if (is_stats) {
      // Like QUERY, deliberately NOT behind WaitConnDrained: an ops probe
      // must never stall behind (or hold up) a busy ingest queue.
      if (conn->version < 4) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn,
                  Status::FailedPrecondition(
                      "STATS_REQUEST requires LJSP v4; session negotiated v" +
                      std::to_string(conn->version)));
        conn->socket.ShutdownBoth();
        break;
      }
      HandleStats(*conn);
      continue;
    }

    if (is_stats_push || is_fleet_stats) {
      // v5 fleet frames: telemetry, never behind the drain barrier — a
      // region's stats push must land even while its data frames queue,
      // and a dashboard scrape must never stall behind ingest.
      if (conn->version < 5) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        SendError(*conn,
                  Status::FailedPrecondition(
                      std::string(is_stats_push ? "STATS_PUSH"
                                                : "FLEET_STATS_REQUEST") +
                      " requires LJSP v5; session negotiated v" +
                      std::to_string(conn->version)));
        conn->socket.ShutdownBoth();
        break;
      }
      if (is_stats_push) {
        if (!HandleStatsPush(*conn, payload)) break;
      } else {
        HandleFleetStats(*conn);
      }
      continue;
    }

    if (is_query) {
      // Deliberately NOT behind WaitConnDrained: a query reads the latest
      // published view and nothing else, so it can never stall behind —
      // or hold up — ingest or the finalize barrier.
      if (conn->version < 3) {
        conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
        queries_rejected_.fetch_add(1, std::memory_order_relaxed);
        query_kind_rejected_[6].fetch_add(1, std::memory_order_relaxed);
        SendError(*conn, Status::FailedPrecondition(
                             "QUERY requires LJSP v3; session negotiated v" +
                             std::to_string(conn->version)));
        conn->socket.ShutdownBoth();
        break;
      }
      if (!HandleQuery(*conn, payload, trace)) break;
      continue;
    }

    if (is_data) {
      // Shard-affine routing: connection-local round-robin spreads a single
      // heavy sender across every pump; any routing is bit-identical.
      const size_t shard = conn->next_shard;
      conn->next_shard = (conn->next_shard + 1) % lanes_.size();
      ShardLane& lane = *lanes_[shard];
      bool shed = false;
      {
        MutexLock lock(mu_);
        if (options_.backpressure == BackpressurePolicy::kShed &&
            lane.queue.size() >= options_.queue_capacity && !stopping_) {
          shed = true;
        } else {
          // Block policy: park until the shard's pump makes space. During a
          // stopping drain the frame is admitted regardless so the reader
          // can reach the client's close — memory stays bounded at
          // capacity + 1 per shard.
          while (lane.queue.size() >= options_.queue_capacity && !stopping_) {
            space_cv_.Wait(mu_);
          }
          ++conn->data_inflight;
          PumpItem item;
          item.conn = conn;
          item.payload = std::move(frame->payload);
          item.payload_offset = payload_offset;
          item.trace = trace;
          if (ObsEnabled()) item.enqueue_ns = NowNanos();
          lane.queue.push_back(std::move(item));
          // Writers are serialized by mu_, so load-then-store cannot lose
          // an update; the atomic exists for the lock-free metrics read.
          const uint64_t depth = lane.queue.size();
          if (depth > lane.queue_high_water.load(std::memory_order_relaxed)) {
            lane.queue_high_water.store(depth, std::memory_order_relaxed);
          }
        }
      }
      if (shed) {
        conn->frames_shed.fetch_add(1, std::memory_order_relaxed);
        const uint8_t busy = static_cast<uint8_t>(DataAckCode::kBusy);
        MutexLock g(conn->write_mu);
        if (!WriteNetFrame(conn->socket, NetFrameType::kDataAck, {&busy, 1})
                 .ok()) {
          session_open = false;
        }
        continue;
      }
      lane.work_cv.NotifyOne();
      if (options_.backpressure == BackpressurePolicy::kShed) {
        const uint8_t ok = static_cast<uint8_t>(DataAckCode::kAbsorbed);
        MutexLock g(conn->write_mu);
        if (!WriteNetFrame(conn->socket, NetFrameType::kDataAck, {&ok, 1})
                 .ok()) {
          session_open = false;
        }
      }
      continue;
    }

    // Control frames are ordered after every DATA frame this connection
    // sent: wait for the pumps to absorb the connection's in-flight frames,
    // then act — so SNAPSHOT_DATA / EPOCH_PUSH_OK / FINALIZE_OK / BYE_OK
    // keep their "your data is in the lanes" meaning under multi-pump.
    WaitConnDrained(conn);
    switch (effective_type) {
      case NetFrameType::kSnapshot:
        HandleSnapshot(*conn);
        break;
      case NetFrameType::kEpochPush:
        HandleEpochPush(*conn, payload, trace);
        break;
      case NetFrameType::kFinalize: {
        if (frame->payload.size() != 0 && frame->payload.size() != 4) {
          // Only 0 (anonymous) or 4 (u32 region tag) are well-formed. A
          // truncated/garbage tag must never fall through to the barrier
          // below — counting it (as anything) could end a multi-region
          // collection early. Reject, count, and close the offender.
          conn->corrupt_frames.fetch_add(1, std::memory_order_relaxed);
          SendError(*conn, Status::Corruption("malformed FINALIZE payload"));
          conn->socket.ShutdownBoth();
          session_open = false;
          break;
        }
        // The finalizing client's frames are all drained (barrier above):
        // publish them so queries arriving after the collection ends see
        // the complete view.
        PublishView();
        {
          MutexLock g(conn->write_mu);
          if (!WriteNetFrame(conn->socket, NetFrameType::kFinalizeOk, {})
                   .ok()) {
            conn->socket.ShutdownBoth();
          }
        }
        {
          MutexLock lock(mu_);
          if (frame->payload.size() == 4) {
            // Region-tagged: idempotent — a retried forward after a lost
            // FINALIZE_OK counts the region once, never twice.
            uint32_t region = 0;
            for (int i = 0; i < 4; ++i) {
              region |= static_cast<uint32_t>(frame->payload[i]) << (8 * i);
            }
            finalized_regions_.insert(region);
          } else {
            ++anonymous_finalizes_;
          }
        }
        finalize_cv_.NotifyAll();
        break;
      }
      case NetFrameType::kPing: {
        // The WaitConnDrained above is the whole point: PING_OK promises
        // "everything you sent is in the lanes" without shipping them back.
        // Republish before acking, so "ping, then query" reads your own
        // writes from the published view.
        PublishView();
        MutexLock g(conn->write_mu);
        if (!WriteNetFrame(conn->socket, NetFrameType::kPingOk, {}).ok()) {
          conn->socket.ShutdownBoth();
        }
        break;
      }
      case NetFrameType::kBye: {
        MutexLock g(conn->write_mu);
        (void)WriteNetFrame(conn->socket, NetFrameType::kByeOk, {});
        session_open = false;  // client is done sending
        break;
      }
      default:
        break;
    }
  }

  // Reap peers that finished before us (we cannot reap ourselves — the
  // next exiting reader, the next accept, or Stop picks this one up), so
  // an idle listener retains only the final straggler(s) instead of
  // accumulating fds and unjoined threads until the next accept.
  ReapFinishedConnections();
  {
    MutexLock lock(mu_);
    conn->reader_done = true;
  }
  drain_cv_.NotifyAll();
}

void FrameServer::HandleSnapshot(Connection& conn) {
  // Raw-lane snapshot of everything ingested so far (multi-epoch
  // streaming: snapshots merge bit-exactly across epochs).
  const std::vector<uint8_t> bytes = MergeShardsLocked().Serialize();
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kSnapshotData, bytes).ok()) {
    // The peer stopped reading (send timed out) or vanished; cut it.
    conn.socket.ShutdownBoth();
  }
}

void FrameServer::HandleEpochPush(Connection& conn,
                                  std::span<const uint8_t> payload,
                                  const TraceContext& trace) {
  const uint64_t merge_start_ns =
      (ObsEnabled() && trace.active()) ? NowNanos() : 0;
  auto push = DecodeEpochPush(payload);
  if (!push.ok()) {
    conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, push.status());
    conn.socket.ShutdownBoth();
    return;
  }
  // An empty sketch is the idle-region heartbeat: it advances the
  // region's epoch clock (dedup + high-water + ack) without merging a
  // lane, so a region with no traffic cannot freeze the windowed view's
  // aligned frontier for everyone else.
  const bool heartbeat = push->raw_sketch.empty();
  // Decode + validate the pushed sketch before reserving the epoch, so a
  // corrupt push never consumes an epoch number and never needs a
  // reservation rollback — and the decoded sketch is shared by the shard
  // merge and the windowed-view epoch store without a second deserialize.
  std::optional<LdpJoinSketchServer> snapshot;
  if (!heartbeat) {
    auto decoded = aggregator_.DecodeCompatibleSketch(push->raw_sketch);
    if (!decoded.ok()) {
      conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, decoded.status());
      conn.socket.ShutdownBoth();
      return;
    }
    snapshot.emplace(std::move(*decoded));
  }
  EpochPushAck ack;
  bool fresh = false;
  {
    MutexLock lock(mu_);
    RegionState& region = regions_[push->region_id];
    region.metrics.region_id = push->region_id;
    if (push->epoch < region.next_epoch) {
      // Already reserved. If the original push is still merging on a dead
      // connection's reader thread, wait it out: a kDuplicate ack must
      // mean "applied" — the shipper will ship the NEXT epoch on reading
      // it, and the windowed view's observer relies on seeing a region's
      // epochs in order.
      while (region.inflight.count(push->epoch) != 0) drain_cv_.Wait(mu_);
      ++region.metrics.duplicates_ignored;
      ack.code = EpochPushAckCode::kDuplicate;
    } else {
      // Reserve the epoch under mu_, merge outside it: a concurrent retry
      // of the same (region, epoch) blocks above until this merge
      // completes, while the k·m-lane merge holds only the target shard's
      // lock — a large snapshot never stalls every reader and pump on the
      // global mutex.
      region.next_epoch = push->epoch + 1;
      region.inflight.insert(push->epoch);
      fresh = true;
    }
  }
  if (fresh) {
    if (!heartbeat) {
      const size_t shard =
          push_shard_.fetch_add(1, std::memory_order_relaxed) % lanes_.size();
      MutexLock agg(lanes_[shard]->agg_mu);
      aggregator_.MergeRawSketch(shard, *snapshot);
    }
    {
      MutexLock lock(mu_);
      RegionState& region = regions_[push->region_id];
      if (heartbeat) {
        ++region.metrics.empty_epochs;
      } else {
        ++region.metrics.epochs_applied;
        region.metrics.reports_merged += snapshot->total_reports();
        region.metrics.snapshot_bytes += push->raw_sketch.size();
      }
      region.metrics.next_epoch = region.next_epoch;
    }
    if (options_.epoch_observer) {
      // After the lanes, before the ack: once the region reads
      // EPOCH_PUSH_OK, windowed views already contain the epoch. The
      // observer may steal the snapshot — it is dead after this call.
      options_.epoch_observer(push->region_id, push->epoch,
                              heartbeat ? nullptr : &*snapshot);
    }
    if (ObsEnabled() && trace.active()) {
      TraceLog::Global().Record(trace.trace_id, "central_merge",
                                merge_start_ns, NowNanos());
      // Park the propagated context for the PublishView below to claim: the
      // recorded ingest-to-queryable latency then spans the full circuit,
      // client encode → regional absorb → epoch cut → ship → central merge
      // → published (queryable) view.
      NoteAbsorbedTrace(trace);
    }
    // Same before-the-ack rule for the lifetime view: once the region
    // reads EPOCH_PUSH_OK, queries serve a view containing the epoch.
    PublishView();
    {
      MutexLock lock(mu_);
      regions_[push->region_id].inflight.erase(push->epoch);
    }
    drain_cv_.NotifyAll();
  }
  {
    MutexLock lock(mu_);
    ack.next_epoch = regions_[push->region_id].next_epoch;
  }
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kEpochPushOk,
                     EncodeEpochPushAck(ack))
           .ok()) {
    conn.socket.ShutdownBoth();
  }
}

bool FrameServer::AllReadersDone() const {
  for (const auto& conn : connections_) {
    if (!conn->reader_done) return false;
  }
  return true;
}

void FrameServer::ReapFinishedConnections() {
  // A connection whose reader exited and whose queued frames are all
  // absorbed is finished for good: join the thread, keep its final counter
  // snapshot, free everything else.
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(mu_);
    for (auto& conn : connections_) {
      if (conn->reader_done && conn->data_inflight == 0) {
        // Counters are final here: the reader mutates them only before
        // setting reader_done, the pumps only while inflight is non-zero.
        // Snapshot into departed_ in the same critical section that removes
        // the live entry, so a concurrent metrics() always sees the
        // connection exactly once and aggregate totals stay monotonic.
        ConnectionMetrics final_row = SnapshotConnection(*conn);
        final_row.active = false;
        departed_.push_back(final_row);
        finished.push_back(std::move(conn));
      }
    }
    std::erase_if(connections_,
                  [](const std::unique_ptr<Connection>& c) { return !c; });
    // Bound the departed rows: under a reconnect storm (millions of
    // short-lived sessions) the oldest rows fold into one accumulator, so
    // metrics memory is O(kMaxDepartedRows) while every total stays exact
    // and monotone.
    while (departed_.size() > kMaxDepartedRows) {
      const ConnectionMetrics& old = departed_.front();
      departed_folded_.frames_received += old.frames_received;
      departed_folded_.bytes_received += old.bytes_received;
      departed_folded_.reports_ingested += old.reports_ingested;
      departed_folded_.corrupt_frames_rejected += old.corrupt_frames_rejected;
      departed_folded_.frames_shed += old.frames_shed;
      departed_.pop_front();
      ++connections_folded_;
    }
  }
  for (auto& conn : finished) conn->reader.join();
}

void FrameServer::PumpLoop(size_t shard) {
  ShardLane& lane = *lanes_[shard];
  for (;;) {
    PumpItem item;
    {
      MutexLock lock(mu_);
      // Sleep until there is an item to pump, or — during shutdown, once
      // every reader has exited (no producer remains) — the queue is dry.
      while (lane.queue.empty() && !(stopping_ && AllReadersDone())) {
        lane.work_cv.Wait(mu_);
      }
      if (lane.queue.empty()) return;  // fully drained
      item = std::move(lane.queue.front());
      lane.queue.pop_front();
    }
    space_cv_.NotifyAll();
    ProcessData(shard, item);
    {
      MutexLock lock(mu_);
      --item.conn->data_inflight;
    }
    drain_cv_.NotifyAll();
  }
}

void FrameServer::ProcessData(size_t shard, PumpItem& item) {
  Connection& conn = *item.conn;
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(item.payload).subspan(item.payload_offset);
  ShardLane& lane = *lanes_[shard];
  // Two clock reads per frame when observability is on (a frame carries up
  // to 4096 reports, so this is well under the 2% overhead pin); zero when
  // off — enqueue_ns stays 0 and the branch below is not taken.
  const uint64_t dequeue_ns = item.enqueue_ns != 0 ? NowNanos() : 0;
  Status status;
  uint64_t delta = 0;
  {
    MutexLock agg(lane.agg_mu);
    const uint64_t before = aggregator_.shard(shard).reports_ingested();
    status = aggregator_.IngestFrameToShard(shard, payload);
    delta = aggregator_.shard(shard).reports_ingested() - before;
  }
  if (!status.ok()) {
    // A rejected frame left every lane untouched (shard contract); count
    // it, tell the client, and cut the connection — a client producing
    // corrupt envelopes cannot be trusted with the session.
    conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, status);
    conn.socket.ShutdownBoth();
    return;
  }
  conn.reports_ingested.fetch_add(delta, std::memory_order_relaxed);
  lane.frames.fetch_add(1, std::memory_order_relaxed);
  lane.reports.fetch_add(delta, std::memory_order_relaxed);
  if (dequeue_ns != 0) {
    const uint64_t done_ns = NowNanos();
    lane.queue_wait_hist->Record(
        dequeue_ns > item.enqueue_ns ? dequeue_ns - item.enqueue_ns : 0);
    lane.absorb_hist->Record(done_ns > dequeue_ns ? done_ns - dequeue_ns : 0);
    if (item.trace.active()) {
      TraceLog::Global().Record(item.trace.trace_id, "server_queue",
                                item.enqueue_ns, dequeue_ns);
      TraceLog::Global().Record(item.trace.trace_id, "shard_absorb",
                                dequeue_ns, done_ns);
      NoteAbsorbedTrace(item.trace);
    }
  }
}

void FrameServer::NoteAbsorbedTrace(const TraceContext& trace) {
  MutexLock lock(obs_mu_);
  // Keep the oldest unclaimed origin in each slot, so the latency claimed
  // at the next publish/cut is the conservative one for the interval.
  if (!pending_publish_trace_.active() ||
      trace.origin_ns < pending_publish_trace_.origin_ns) {
    pending_publish_trace_ = trace;
  }
  if (!pending_cut_trace_.active() ||
      trace.origin_ns < pending_cut_trace_.origin_ns) {
    pending_cut_trace_ = trace;
  }
}

void FrameServer::WaitForFinalizeRequests(size_t count) {
  MutexLock lock(mu_);
  while (anonymous_finalizes_ + finalized_regions_.size() < count) {
    finalize_cv_.Wait(mu_);
  }
}

LdpJoinSketchServer FrameServer::MergeShardsLocked() const {
  // Dynamic lock set — one agg_mu per lane, all held across the merge —
  // which is why the declaration opts out of the static analysis.
  for (const auto& lane : lanes_) lane->agg_mu.Lock();
  LdpJoinSketchServer merged = aggregator_.MergeShards();
  for (const auto& lane : lanes_) lane->agg_mu.Unlock();
  return merged;
}

ShardedAggregator::EpochCut FrameServer::CutAllShards() {
  // Same dynamic-lock-set opt-out as MergeShardsLocked.
  for (const auto& lane : lanes_) lane->agg_mu.Lock();
  ShardedAggregator::EpochCut cut = aggregator_.CutEpoch();
  for (const auto& lane : lanes_) lane->agg_mu.Unlock();
  return cut;
}

ShardedAggregator::EpochCut FrameServer::CutEpochSnapshot() {
  {
    MutexLock lock(mu_);
    LDPJS_CHECK(!finalized_);
  }
  const uint64_t cut_start_ns = ObsEnabled() ? NowNanos() : 0;
  ShardedAggregator::EpochCut cut = CutAllShards();
  TraceContext claimed;
  {
    // Claim the oldest traced frame absorbed since the last cut: it is in
    // this cut's snapshot now, and TakeCutTrace() hands it to the shipper.
    MutexLock lock(obs_mu_);
    last_cut_trace_ = pending_cut_trace_;
    pending_cut_trace_ = TraceContext{};
    claimed = last_cut_trace_;
  }
  if (cut_start_ns != 0 && claimed.active()) {
    TraceLog::Global().Record(claimed.trace_id, "epoch_cut", cut_start_ns,
                              NowNanos());
  }
  return cut;
}

TraceContext FrameServer::TakeCutTrace() {
  MutexLock lock(obs_mu_);
  TraceContext trace = last_cut_trace_;
  last_cut_trace_ = TraceContext{};
  return trace;
}

LdpJoinSketchServer FrameServer::FinalizedView() const {
  LdpJoinSketchServer merged = MergeShardsLocked();
  merged.Finalize();
  return merged;
}

void FrameServer::PublishView() {
  const uint64_t publish_start_ns = ObsEnabled() ? NowNanos() : 0;
  LdpJoinSketchServer merged = MergeShardsLocked();
  merged.Finalize();
  // The lifetime view has no window frontier: aligned=false, epoch=0.
  publisher_.Publish(std::move(merged), /*aligned=*/false, /*epoch=*/0);
  if (publish_start_ns == 0) return;
  const uint64_t now = NowNanos();
  view_last_publish_gauge_->Set(now);
  TraceContext claimed;
  {
    MutexLock lock(obs_mu_);
    claimed = pending_publish_trace_;
    pending_publish_trace_ = TraceContext{};
  }
  if (claimed.active()) {
    // The claimed frame's reports just became queryable: the distance from
    // its client-side origin to this publish IS the ingest-to-queryable
    // latency (origin-preserving TRACED EPOCH_PUSH makes the same reading
    // span client→central on the federated path).
    ingest_to_queryable_hist_->Record(
        now > claimed.origin_ns ? now - claimed.origin_ns : 0);
    TraceLog::Global().Record(claimed.trace_id, "view_publish",
                              publish_start_ns, now);
  }
}

void FrameServer::RecordQueryOutcome(size_t kind_index, uint64_t start_ns,
                                     bool rejected) {
  if (start_ns == 0) return;  // obs was off when the query arrived
  const uint64_t now = NowNanos();
  const uint64_t elapsed = now > start_ns ? now - start_ns : 0;
  if (rejected) {
    query_error_latency_hist_->Record(elapsed);
    return;
  }
  query_latency_hist_->Record(elapsed);
  if (kind_index < 6) query_kind_latency_[kind_index]->Record(elapsed);
}

bool FrameServer::HandleQuery(Connection& conn,
                              std::span<const uint8_t> payload,
                              const TraceContext& trace) {
  const uint64_t start_ns = ObsEnabled() ? NowNanos() : 0;
  auto request = DecodeQueryRequest(payload);
  if (!request.ok()) {
    // Undecodable bytes: protocol violation — cut the connection like any
    // other corrupt frame. The kind never decoded, so the reject lands on
    // the "unknown" attribution row.
    conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    query_kind_rejected_[6].fetch_add(1, std::memory_order_relaxed);
    RecordQueryOutcome(6, start_ns, /*rejected=*/true);
    SendError(conn, request.status());
    conn.socket.ShutdownBoth();
    return false;
  }
  const size_t kind_index = static_cast<size_t>(request->kind);
  const std::shared_ptr<const PublishedView> view =
      options_.query_view_source ? options_.query_view_source()
                                 : publisher_.Current();
  auto response = AnswerQuery(*view, *request);
  if (!response.ok()) {
    // Semantically invalid (mismatched probe shape, oversized domain...):
    // answer with the error and keep the session — the next query may be
    // well-formed.
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    query_kind_rejected_[kind_index].fetch_add(1, std::memory_order_relaxed);
    RecordQueryOutcome(kind_index, start_ns, /*rejected=*/true);
    SendError(conn, response.status());
    return true;
  }
  query_frames_.fetch_add(1, std::memory_order_relaxed);
  query_kind_served_[kind_index].fetch_add(1, std::memory_order_relaxed);
  RecordQueryOutcome(kind_index, start_ns, /*rejected=*/false);
  if (start_ns != 0 && trace.active()) {
    TraceLog::Global().Record(trace.trace_id, "query_serve", start_ns,
                              NowNanos());
  }
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kQueryOk,
                     EncodeQueryResponse(*response))
           .ok()) {
    conn.socket.ShutdownBoth();
    return false;
  }
  return true;
}

void FrameServer::HandleStats(Connection& conn) {
  const std::string json = StatsJson();
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kStats,
                     std::span<const uint8_t>(
                         reinterpret_cast<const uint8_t*>(json.data()),
                         json.size()))
           .ok()) {
    conn.socket.ShutdownBoth();
  }
}

bool FrameServer::HandleStatsPush(Connection& conn,
                                  std::span<const uint8_t> payload) {
  auto snapshot = DecodeFleetSnapshot(payload);
  if (!snapshot.ok()) {
    conn.corrupt_frames.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, snapshot.status());
    conn.socket.ShutdownBoth();
    return false;
  }
  const uint32_t region_id = snapshot->region_id;
  const FleetStore::ApplyResult result =
      fleet_.Apply(std::move(*snapshot), NowNanos(), options_.health);
  if (result.region_changed) {
    ObsEvent event;
    event.kind = "health_transition";
    event.region_id = region_id;
    event.from = HealthStateName(result.previous.state);
    event.to = HealthStateName(result.current.state);
    event.cause = result.current.cause;
    events_.Record(std::move(event));
  }
  if (result.cluster_changed) {
    ObsEvent event;
    event.kind = "health_transition";
    event.region_id = region_id;
    event.from = HealthStateName(result.cluster_previous.state);
    event.to = HealthStateName(result.cluster_current.state);
    event.cause = "cluster: " + result.cluster_current.cause;
    events_.Record(std::move(event));
  }
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kStatsPushOk, {}).ok()) {
    conn.socket.ShutdownBoth();
    return false;
  }
  return true;
}

void FrameServer::HandleFleetStats(Connection& conn) {
  const std::vector<uint8_t> payload = EncodeFleetView(CurrentFleetView());
  MutexLock g(conn.write_mu);
  if (!WriteNetFrame(conn.socket, NetFrameType::kFleetStats, payload).ok()) {
    conn.socket.ShutdownBoth();
  }
}

FleetView FrameServer::CurrentFleetView() const {
  return fleet_.View(NowNanos(), options_.health);
}

std::string FrameServer::StatsJson() const {
  const NetMetrics m = options_.stats_metrics_source
                           ? options_.stats_metrics_source()
                           : metrics();
  // This server's own verdict, from the same numbers the JSON carries. The
  // scrape is where a state change becomes observable, so the transition
  // event is recorded here — idempotent for unchanged states.
  const HealthVerdict local = EvaluateHealth(
      SignalsFromMetrics(m, MetricsRegistry::Default().TakeSnapshot()),
      options_.health);
  const uint8_t previous = local_health_state_.exchange(
      static_cast<uint8_t>(local.state), std::memory_order_relaxed);
  if (previous != static_cast<uint8_t>(local.state)) {
    ObsEvent event;
    event.kind = "health_transition";
    event.from = HealthStateName(static_cast<HealthState>(previous));
    event.to = HealthStateName(local.state);
    event.cause = local.cause;
    events_.Record(std::move(event));
  }
  std::string extra = "\"health\":";
  extra += HealthVerdictToJson(local);
  extra += ",\"fleet\":";
  extra += FleetViewToJson(CurrentFleetView());
  extra += ",\"events\":";
  extra += events_.ToJsonArray();
  return StatsToJson(m, &MetricsRegistry::Default(), extra);
}

void FrameServer::DisconnectClients() {
  MutexLock lock(mu_);
  for (auto& conn : connections_) conn->socket.ShutdownBoth();
}

void FrameServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) return;
    stopping_ = true;
    // Disconnect whoever is still attached: readers blocked in recv see
    // EOF and exit, so Stop cannot hang on an idle or silent client. A
    // client that completed Finish() has already been fully ingested; any
    // frames the stragglers queued are still drained by the pumps below.
    for (auto& conn : connections_) conn->socket.ShutdownBoth();
  }
  space_cv_.NotifyAll();
  drain_cv_.NotifyAll();
  listener_.ShutdownBoth();
  acceptor_.join();
  // Registration is complete once the acceptor is joined; wait for every
  // reader to exit, so no producer can enqueue behind a pump's back.
  {
    MutexLock lock(mu_);
    while (!AllReadersDone()) drain_cv_.Wait(mu_);
  }
  // Pumps drain their queues dry, then exit.
  for (auto& lane : lanes_) lane->work_cv.NotifyAll();
  for (auto& lane : lanes_) lane->pump.join();
  ReapFinishedConnections();
  listener_.Close();
  {
    MutexLock lock(mu_);
    stopped_ = true;
  }
}

LdpJoinSketchServer FrameServer::Finalize() {
  {
    MutexLock lock(mu_);
    LDPJS_CHECK(stopped_);     // queues are drained exactly when stopped
    LDPJS_CHECK(!finalized_);  // the global debias+transform happens once
    finalized_ = true;
  }
  return aggregator_.Finalize();
}

ConnectionMetrics FrameServer::SnapshotConnection(
    const Connection& conn) const {
  ConnectionMetrics c;
  c.id = conn.id;
  c.active = !conn.reader_done;
  c.frames_received = conn.frames_received.load(std::memory_order_relaxed);
  c.bytes_received = conn.bytes_received.load(std::memory_order_relaxed);
  c.reports_ingested = conn.reports_ingested.load(std::memory_order_relaxed);
  c.corrupt_frames_rejected =
      conn.corrupt_frames.load(std::memory_order_relaxed);
  c.frames_shed = conn.frames_shed.load(std::memory_order_relaxed);
  return c;
}

NetMetrics FrameServer::metrics() const {
  NetMetrics m;
  MutexLock lock(mu_);
  m.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  m.handshakes_rejected = handshakes_rejected_.load(std::memory_order_relaxed);
  m.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  m.accept_fatal = accept_fatal_.load(std::memory_order_relaxed);
  m.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  m.connections_folded = connections_folded_;
  m.retries_attempted = m.accept_failures;  // server-side retries = accepts
  m.backoff_millis =
      accept_backoff_micros_.load(std::memory_order_relaxed) / 1000;
  if (const FaultInjector* injector = FaultInjector::Active()) {
    m.faults_injected = injector->total_injected();
  }
  m.query_frames = query_frames_.load(std::memory_order_relaxed);
  m.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  m.views_published = publisher_.publications();
  static constexpr const char* kQueryKindNames[6] = {
      "join_size", "frequency",   "frequent_items",
      "multiway",  "range_count", "predicate_join"};
  for (size_t i = 0; i < 6; ++i) {
    const uint64_t served =
        query_kind_served_[i].load(std::memory_order_relaxed);
    if (served > 0) {
      m.query_kinds.push_back(QueryKindMetrics{kQueryKindNames[i], served});
    }
  }
  // Rejects attributable to a kind; slot 6 collects the ones whose kind
  // never decoded (corrupt payload, pre-v3 session).
  for (size_t i = 0; i < 7; ++i) {
    const uint64_t rejected =
        query_kind_rejected_[i].load(std::memory_order_relaxed);
    if (rejected > 0) {
      m.query_rejected_kinds.push_back(QueryKindMetrics{
          i < 6 ? kQueryKindNames[i] : "unknown", rejected});
    }
  }
  m.connections.assign(departed_.begin(), departed_.end());
  for (const auto& conn : connections_) {
    m.connections.push_back(SnapshotConnection(*conn));
  }
  // Totals start from the folded accumulator so they cover every
  // connection ever served, not just the retained rows.
  m.frames_received = departed_folded_.frames_received;
  m.bytes_received = departed_folded_.bytes_received;
  m.reports_ingested = departed_folded_.reports_ingested;
  m.corrupt_frames_rejected = departed_folded_.corrupt_frames_rejected;
  m.frames_shed = departed_folded_.frames_shed;
  for (const ConnectionMetrics& c : m.connections) {
    m.connections_active += c.active ? 1 : 0;
    m.frames_received += c.frames_received;
    m.bytes_received += c.bytes_received;
    m.reports_ingested += c.reports_ingested;
    m.corrupt_frames_rejected += c.corrupt_frames_rejected;
    m.frames_shed += c.frames_shed;
  }
  for (const auto& lane : lanes_) {
    ShardMetrics shard;
    shard.frames = lane->frames.load(std::memory_order_relaxed);
    shard.reports = lane->reports.load(std::memory_order_relaxed);
    shard.queue_high_water =
        lane->queue_high_water.load(std::memory_order_relaxed);
    m.queue_high_water = std::max(m.queue_high_water, shard.queue_high_water);
    m.shards.push_back(shard);
  }
  for (const auto& [id, region] : regions_) {
    m.regions.push_back(region.metrics);
    m.epochs_applied += region.metrics.epochs_applied;
    m.epoch_duplicates_ignored += region.metrics.duplicates_ignored;
  }
  return m;
}

}  // namespace ldpjs
