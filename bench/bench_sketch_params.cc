// Fig. 9: impact of the sketch shape. (a)-(d): AE vs m with k = 18;
// (e)-(h): AE vs k with m = 1024. Datasets: Zipf(1.1), Zipf(2.0),
// MovieLens, Twitter; eps = 10, r = 0.1. Expected shape: AE falls with m
// for every method (fewer collisions); with k, FAGMS/HCMS improve while
// LDPJoinSketch(+) stays flat or degrades slightly (row sampling spreads
// the same reports over more rows).
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

namespace {

struct Workload {
  DatasetId id;
  double zipf_alpha;
};

JoinWorkload Make(const Workload& workload, uint64_t rows, uint64_t seed) {
  const DatasetSpec spec = GetDatasetSpec(workload.id);
  return (workload.zipf_alpha > 0)
             ? MakeZipfWorkload(workload.zipf_alpha, spec.domain, rows, seed)
             : MakeWorkload(workload.id, rows, seed);
}

}  // namespace

int main() {
  std::printf("== Fig. 9: impact of sketch shape (m sweep then k sweep), "
              "eps=10, r=0.1 ==\n\n");
  const JoinMethod methods[] = {JoinMethod::kFagms, JoinMethod::kAppleHcms,
                                JoinMethod::kLdpJoinSketch,
                                JoinMethod::kLdpJoinSketchPlus};
  const Workload workloads[] = {{DatasetId::kZipf, 1.1},
                                {DatasetId::kZipf, 2.0},
                                {DatasetId::kMovieLens, 0},
                                {DatasetId::kTwitter, 0}};
  const uint64_t rows = 500'000;

  for (const Workload& workload : workloads) {
    const JoinWorkload w = Make(workload, rows, 29);
    const double truth = ExactJoinSize(w.table_a, w.table_b);
    const std::string label =
        (workload.zipf_alpha > 0)
            ? "Zipf(" + Fixed(workload.zipf_alpha, 1) + ")"
            : GetDatasetSpec(workload.id).name;

    std::printf("-- (a-d) %s: AE vs m (k=18) --\n", label.c_str());
    PrintTableHeader({"m", "method", "AE", "RE"});
    for (int m : {512, 1024, 2048, 4096, 8192}) {
      for (JoinMethod method : methods) {
        JoinMethodConfig config;
        config.epsilon = 10.0;
        config.sketch.k = 18;
        config.sketch.m = m;
        config.sketch.seed = 31;
        config.run_seed = 7;
        const ErrorStats stats =
            MeasureJoinError(method, w.table_a, w.table_b, truth, config);
        PrintTableRow({std::to_string(m), std::string(JoinMethodName(method)),
                       Sci(stats.mean_ae), Sci(stats.mean_re)});
      }
    }

    std::printf("-- (e-h) %s: AE vs k (m=1024) --\n", label.c_str());
    PrintTableHeader({"k", "method", "AE", "RE"});
    for (int k : {9, 12, 18, 21, 28, 30, 36}) {
      for (JoinMethod method : methods) {
        JoinMethodConfig config;
        config.epsilon = 10.0;
        config.sketch.k = k;
        config.sketch.m = 1024;
        config.sketch.seed = 37;
        config.run_seed = 9;
        const ErrorStats stats =
            MeasureJoinError(method, w.table_a, w.table_b, truth, config);
        PrintTableRow({std::to_string(k), std::string(JoinMethodName(method)),
                       Sci(stats.mean_ae), Sci(stats.mean_re)});
      }
    }
    std::printf("\n");
  }
  std::printf("shape check: error falls with m everywhere; with k it falls "
              "for FAGMS/HCMS but not for the row-sampling LDP sketches.\n");
  return 0;
}
