#include "ldp/oue.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "ldp/krr.h"

namespace ldpjs {
namespace {

TEST(OueClientTest, ReportHasDomainBits) {
  OueClient client(16, 1.0);
  Xoshiro256 rng(1);
  const auto bits = client.Perturb(3, rng);
  EXPECT_EQ(bits.size(), 16u);
  for (uint8_t b : bits) EXPECT_LE(b, 1);
}

TEST(OueClientTest, BitFlipRatesMatchOueOptimal) {
  const double eps = 2.0;
  OueClient client(8, eps);
  Xoshiro256 rng(2);
  const int n = 100000;
  int true_bit_ones = 0, false_bit_ones = 0;
  for (int i = 0; i < n; ++i) {
    const auto bits = client.Perturb(3, rng);
    true_bit_ones += bits[3];
    false_bit_ones += bits[5];
  }
  EXPECT_NEAR(true_bit_ones / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(false_bit_ones / static_cast<double>(n),
              1.0 / (std::exp(eps) + 1.0), 0.01);
}

TEST(OueClientTest, SatisfiesEpsilonLdpPerBitPair) {
  // The privacy-critical ratio for OUE is across the (1-bit, 0-bit) pair:
  // p(1->1)/q(0->1) = (1/2)/(1/(e^eps+1)) = (e^eps+1)/2 and
  // (1-p)/(1-q) = (1/2)/(e^eps/(e^eps+1)) = (e^eps+1)/(2 e^eps); the
  // product of worst cases is e^eps.
  const double eps = 1.7;
  OueClient client(4, eps);
  const double p = client.keep_prob();
  const double q = client.flip_prob();
  const double ratio = (p / q) * ((1.0 - q) / (1.0 - p));
  EXPECT_NEAR(ratio, std::exp(eps), 1e-9);
}

TEST(OueServerTest, CalibrationIsUnbiased) {
  const uint64_t domain = 50;
  const JoinWorkload w = MakeZipfWorkload(1.5, domain, 60000, 3);
  const auto est = OueEstimateFrequencies(w.table_a, 2.0, 7);
  const auto freq = w.table_a.Frequencies();
  for (uint64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(est[d] / static_cast<double>(freq[d]), 1.0, 0.1) << "d=" << d;
  }
}

TEST(OueServerTest, AbsentValueNearZero) {
  const uint64_t domain = 100;
  Column c(std::vector<uint64_t>(30000, 5), domain);
  const auto est = OueEstimateFrequencies(c, 3.0, 9);
  EXPECT_NEAR(est[50] / 30000.0, 0.0, 0.03);
  EXPECT_NEAR(est[5] / 30000.0, 1.0, 0.03);
}

TEST(OueServerTest, LowerVarianceThanKrrOnModerateDomain) {
  // OUE's variance 4e^eps/(e^eps-1)^2 per value beats k-RR's
  // (which grows with |D|) once |D| is moderately large.
  const uint64_t domain = 200;
  const JoinWorkload w = MakeZipfWorkload(1.3, domain, 80000, 11);
  const auto freq = w.table_a.Frequencies();
  const auto oue = OueEstimateFrequencies(w.table_a, 1.0, 13);
  const auto krr = KrrEstimateFrequencies(w.table_a, 1.0, 13);
  double mse_oue = 0, mse_krr = 0;
  for (uint64_t d = 0; d < domain; ++d) {
    mse_oue += (oue[d] - static_cast<double>(freq[d])) *
               (oue[d] - static_cast<double>(freq[d]));
    mse_krr += (krr[d] - static_cast<double>(freq[d])) *
               (krr[d] - static_cast<double>(freq[d]));
  }
  EXPECT_LT(mse_oue, mse_krr);
}

TEST(OueDeathTest, MismatchedReportLengthAborts) {
  OueServer server(8, 1.0);
  EXPECT_DEATH(server.Absorb(std::vector<uint8_t>(7, 0)),
               "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
