// Parallel client/server simulation drivers.
//
// Ingestion is batched: users are processed in fixed blocks of
// kIngestBlockSize, and each block draws its randomness from one
// counter-based stream, Xoshiro256(DeriveStreamSeed(run_seed, block_index)).
// Within a block the engine is drawn sequentially (PerturbBatch), so the
// per-user engine seeding of the old per-user-stream scheme — which
// dominated the client-side cost — is paid once per block instead.
//
// Determinism: the block → stream mapping depends only on run_seed, and
// shard-local sketches accumulate integer lanes (exact, order-independent
// under merge), so a run is bit-identical for a fixed run_seed regardless
// of the thread count. NOTE: this per-block derivation replaces the
// per-user Mix64-derived streams of earlier versions, so fixed-seed outputs
// (golden values) differ from those versions while all distributional
// guarantees are unchanged.
#ifndef LDPJS_CORE_SIMULATION_H_
#define LDPJS_CORE_SIMULATION_H_

#include <cstdint>
#include <unordered_set>

#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "data/column.h"

namespace ldpjs {

/// Users perturbed per RNG stream / absorb batch. Large enough to amortize
/// engine seeding and batch-validation overhead, small enough that a
/// block's reports stay L1/L2-resident between PerturbBatch and AbsorbBatch.
inline constexpr size_t kIngestBlockSize = 4096;

// The wire path encodes one ingest block per batch-envelope record, so a
// block must fit the wire batch limit — keep retunes of either constant
// honest at compile time.
static_assert(kIngestBlockSize <= kMaxWireBatchReports,
              "an ingest block must encode as one wire batch");

struct SimulationOptions {
  uint64_t run_seed = 42;   ///< perturbation randomness (distinct from hash seed)
  size_t num_threads = 0;   ///< 0 = hardware concurrency
  /// 0 = in-process ingestion (clients absorb straight into thread-local
  /// sketches). N >= 1 = the distributed deployment path: every 4096-user
  /// block is encoded as a length-prefixed wire frame and the stream is
  /// ingested by a ShardedAggregator with N shards. Raw lanes make the two
  /// paths bit-identical, so num_shards — like num_threads — can never
  /// change a result; tests pin this.
  size_t num_shards = 0;
  /// With the wire path active (num_shards >= 1, or forced to 1 shard when
  /// this is set): ship every frame over a real TCP connection — a
  /// FrameServer on 127.0.0.1 with an ephemeral port, fed by a FrameSender
  /// speaking the LJSP session protocol — instead of handing spans to the
  /// in-process service. The bytes on the socket are the exact LJSB
  /// envelopes the in-process path ingests, so results stay bit-identical;
  /// tests pin this too.
  bool net_loopback = false;
  /// N >= 1: the full federated deployment rehearsal — N RegionalNodes on
  /// 127.0.0.1 ingest the client blocks round-robin and ship raw-lane
  /// epoch snapshots upstream (EPOCH_PUSH) to one CentralNode, which
  /// merges them and finalizes once. Shard count per tier comes from
  /// num_shards. Still bit-identical to in-process ingestion — federation,
  /// like sharding and the network, can never change an answer.
  size_t num_regions = 0;
  /// Federated mode: each region cuts + ships an epoch snapshot after
  /// every `epoch_reports` reports it has ingested (0 = one epoch at the
  /// end). Any schedule is exact; this just exercises multi-epoch merges.
  uint64_t epoch_reports = 0;
  /// Federated mode: 0 = the returned sketch is the full-history central
  /// finalize (every epoch, the default). W >= 1 = the returned sketch is
  /// the central's sliding-window view over the last W cross-region-
  /// aligned epochs — epochs (E-W, E] where E is the newest epoch every
  /// region has shipped (pass a huge W for "all epochs via the cached
  /// incremental view"). Windowed runs insert an ingest barrier before
  /// every cut, so each epoch's contents are exactly the blocks sent since
  /// the previous cut and the run is deterministic.
  uint64_t window_epochs = 0;
};

/// Runs the full LDPJoinSketch protocol over `column`: every value is
/// perturbed by an O(1) client and absorbed server-side. Returns the
/// finalized sketch.
LdpJoinSketchServer BuildLdpJoinSketch(const Column& column,
                                       const SketchParams& params,
                                       double epsilon,
                                       const SimulationOptions& options);

/// Same, but clients perturb with FAP (phase 2 of LDPJoinSketch+).
LdpJoinSketchServer BuildFapSketch(
    const Column& column, const SketchParams& params, double epsilon,
    FapMode mode, const std::unordered_set<uint64_t>& frequent_items,
    const SimulationOptions& options);

}  // namespace ldpjs

#endif  // LDPJS_CORE_SIMULATION_H_
