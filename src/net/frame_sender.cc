#include "net/frame_sender.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "obs/metrics.h"

namespace ldpjs {

namespace {

/// Process-unique trace ids: a mix of a monotone draw counter and the wall
/// clock, so ids from different processes (or restarts) collide only with
/// hash probability and id 0 — the "untraced" sentinel — never comes out.
uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = Mix64(
      (counter.fetch_add(1, std::memory_order_relaxed) << 20) ^ NowNanos());
  return id == 0 ? 1 : id;
}

}  // namespace

Result<FrameSender> FrameSender::Connect(const std::string& host,
                                         uint16_t port,
                                         const SketchParams& params,
                                         double epsilon,
                                         const Options& options) {
  auto socket = Socket::ConnectTcp(host, port, options.fault_site);
  if (!socket.ok()) return socket.status();
  if (options.recv_timeout_seconds > 0) {
    // Before the handshake, so even a server that accepts and goes mute
    // cannot park this client forever waiting for HELLO_OK.
    socket->SetRecvTimeout(options.recv_timeout_seconds);
  }

  SessionHello hello;
  hello.version = options.announce_version;
  hello.k = static_cast<uint32_t>(params.k);
  hello.m = static_cast<uint32_t>(params.m);
  hello.seed = params.seed;
  hello.epsilon = epsilon;
  hello.has_region = options.announce_region;
  hello.region_id = options.region_id;
  LDPJS_RETURN_IF_ERROR(
      WriteNetFrame(*socket, NetFrameType::kHello, EncodeHello(hello)));

  auto reply = ReadNetFrame(*socket, kMaxControlFramePayload);
  if (!reply.ok()) return reply.status();
  if (reply->type == NetFrameType::kError) {
    return DecodeErrorPayload(reply->payload);
  }
  if (reply->type != NetFrameType::kHelloOk) {
    return Status::Corruption("expected HELLO_OK from server");
  }
  auto session = DecodeHelloOk(reply->payload);
  if (!session.ok()) return session.status();
  // The server answers with the negotiated session version — the minimum
  // of the two sides — so it can never exceed what we announced or fall
  // below the oldest version this build still speaks.
  if (session->version < kNetMinVersion ||
      session->version > options.announce_version) {
    return Status::FailedPrecondition("server negotiated LJSP version " +
                                      std::to_string(session->version));
  }
  return FrameSender(std::move(*socket), *session, options);
}

Result<NetFrame> FrameSender::ReadReply() {
  auto frame = ReadNetFrame(socket_, kMaxControlFramePayload);
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::Unavailable("server closed the connection");
    }
    return frame.status();
  }
  if (frame->type == NetFrameType::kError) {
    return DecodeErrorPayload(frame->payload);
  }
  return frame;
}

Status FrameSender::SendEncodedBatch(std::span<const uint8_t> envelope) {
  TraceContext trace;
  if (options_.trace_every > 0 && session_.version >= 4 &&
      batches_sent_ % options_.trace_every == 0) {
    trace.trace_id = NextTraceId();
    trace.origin_ns = NowNanos();
  }
  return SendBatchInternal(envelope, trace);
}

Status FrameSender::SendTracedBatch(std::span<const uint8_t> envelope,
                                    const TraceContext& trace) {
  // Below v4 the server would reject a TRACED frame; drop the trace, keep
  // the bytes — tracing is telemetry, never a delivery requirement.
  if (session_.version < 4) return SendBatchInternal(envelope, TraceContext{});
  return SendBatchInternal(envelope, trace);
}

Status FrameSender::SendBatchInternal(std::span<const uint8_t> envelope,
                                      const TraceContext& trace) {
  LDPJS_CHECK(!finished_);
  ++batches_sent_;
  std::vector<uint8_t> wrapped;
  std::span<const uint8_t> wire = envelope;
  NetFrameType type = NetFrameType::kData;
  const uint64_t send_start_ns =
      trace.active() && ObsEnabled() ? NowNanos() : 0;
  if (trace.active()) {
    wrapped = EncodeTraced(NetFrameType::kData, trace.trace_id,
                           trace.origin_ns, envelope);
    wire = wrapped;
    type = NetFrameType::kTraced;
  }
  for (int attempt = 0;; ++attempt) {
    LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, type, wire));
    ++frames_sent_;
    bytes_sent_ += 5 + wire.size();
    if (send_start_ns != 0 && attempt == 0) {
      // The client-side span covers origin (encode start) → handed to the
      // kernel; the server's queue span picks up from its enqueue.
      TraceLog::Global().Record(trace.trace_id, "client_send",
                                trace.origin_ns, NowNanos());
    }
    if (!session_.acked_data) return Status::OK();
    auto reply = ReadReply();
    if (!reply.ok()) return reply.status();
    if (reply->type != NetFrameType::kDataAck || reply->payload.size() != 1) {
      return Status::Corruption("expected DATA_ACK");
    }
    if (reply->payload[0] == static_cast<uint8_t>(DataAckCode::kAbsorbed)) {
      if (attempt > 0) busy_backoff_.Reset();  // incident over
      return Status::OK();
    }
    // Busy: the server shed the frame under backpressure. Retry the same
    // bytes after a jittered, exponentially growing backoff; lanes are
    // integer adds, so a retried frame lands exactly once (it was never
    // ingested) and ordering cannot matter.
    ++busy_retries_;
    if (attempt >= options_.max_busy_retries) {
      return Status::Unavailable("server still busy after " +
                                 std::to_string(attempt) + " retries");
    }
    busy_backoff_.SleepNext();
  }
}

Status FrameSender::SendReports(std::span<const LdpReport> reports) {
  BinaryWriter writer;
  for (size_t first = 0; first < reports.size();
       first += kMaxWireBatchReports) {
    const size_t count =
        std::min(kMaxWireBatchReports, reports.size() - first);
    writer = BinaryWriter();
    EncodeReportBatch(reports.subspan(first, count), writer);
    LDPJS_RETURN_IF_ERROR(SendEncodedBatch(writer.buffer()));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> FrameSender::SnapshotRawSketch() {
  LDPJS_CHECK(!finished_);
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, NetFrameType::kSnapshot, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kSnapshotData) {
    return Status::Corruption("expected SNAPSHOT_DATA");
  }
  return std::move(reply->payload);
}

Result<EpochPushAck> FrameSender::PushEpochSnapshot(
    uint32_t region_id, uint64_t epoch, std::span<const uint8_t> raw_sketch) {
  return PushEpochSnapshotTraced(region_id, epoch, raw_sketch,
                                 TraceContext{});
}

Result<EpochPushAck> FrameSender::PushEpochSnapshotTraced(
    uint32_t region_id, uint64_t epoch, std::span<const uint8_t> raw_sketch,
    const TraceContext& trace) {
  LDPJS_CHECK(!finished_);
  std::vector<uint8_t> payload = EncodeEpochPush(region_id, epoch, raw_sketch);
  NetFrameType type = NetFrameType::kEpochPush;
  if (trace.active() && session_.version >= 4) {
    // Origin preserved from the client that produced the traced batch — the
    // central's view publish then measures true client→central latency.
    payload = EncodeTraced(NetFrameType::kEpochPush, trace.trace_id,
                           trace.origin_ns, payload);
    type = NetFrameType::kTraced;
  }
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, type, payload));
  ++frames_sent_;
  bytes_sent_ += 5 + payload.size();
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kEpochPushOk) {
    return Status::Corruption("expected EPOCH_PUSH_OK");
  }
  return DecodeEpochPushAck(reply->payload);
}

Result<std::string> FrameSender::Stats() {
  LDPJS_CHECK(!finished_);
  if (session_.version < 4) {
    return Status::FailedPrecondition(
        "STATS requires LJSP v4; session negotiated v" +
        std::to_string(session_.version));
  }
  LDPJS_RETURN_IF_ERROR(
      WriteNetFrame(socket_, NetFrameType::kStatsRequest, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kStats) {
    return Status::Corruption("expected STATS");
  }
  return std::string(reply->payload.begin(), reply->payload.end());
}

Status FrameSender::PushStats(const FleetSnapshot& snapshot) {
  LDPJS_CHECK(!finished_);
  if (session_.version < 5) {
    return Status::FailedPrecondition(
        "STATS_PUSH requires LJSP v5; session negotiated v" +
        std::to_string(session_.version));
  }
  const std::vector<uint8_t> payload = EncodeFleetSnapshot(snapshot);
  LDPJS_RETURN_IF_ERROR(
      WriteNetFrame(socket_, NetFrameType::kStatsPush, payload));
  ++frames_sent_;
  bytes_sent_ += 5 + payload.size();
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kStatsPushOk) {
    return Status::Corruption("expected STATS_PUSH_OK");
  }
  return Status::OK();
}

Result<FleetView> FrameSender::FleetStats() {
  LDPJS_CHECK(!finished_);
  if (session_.version < 5) {
    return Status::FailedPrecondition(
        "FLEET_STATS requires LJSP v5; session negotiated v" +
        std::to_string(session_.version));
  }
  LDPJS_RETURN_IF_ERROR(
      WriteNetFrame(socket_, NetFrameType::kFleetStatsRequest, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kFleetStats) {
    return Status::Corruption("expected FLEET_STATS");
  }
  return DecodeFleetView(reply->payload);
}

Status FrameSender::Ping() {
  LDPJS_CHECK(!finished_);
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, NetFrameType::kPing, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kPingOk) {
    return Status::Corruption("expected PING_OK");
  }
  return Status::OK();
}

Result<QueryResponse> FrameSender::Query(const QueryRequest& request) {
  LDPJS_CHECK(!finished_);
  if (session_.version < 3) {
    return Status::FailedPrecondition(
        "QUERY requires LJSP v3; session negotiated v" +
        std::to_string(session_.version));
  }
  const std::vector<uint8_t> payload = EncodeQueryRequest(request);
  if (payload.size() > kMaxQueryFramePayload) {
    // The server would refuse the frame from its length prefix alone and
    // cut the connection; reject here so the caller gets an actionable
    // error (shrink the probe/middles) instead of a mid-send reset — and
    // the session stays usable for the next query.
    return Status::InvalidArgument(
        "QUERY payload of " + std::to_string(payload.size()) +
        " bytes exceeds kMaxQueryFramePayload (" +
        std::to_string(kMaxQueryFramePayload) +
        "); shrink the probe sketch or middle matrices");
  }
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, NetFrameType::kQuery, payload));
  ++frames_sent_;
  bytes_sent_ += 5 + payload.size();
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kQueryOk) {
    return Status::Corruption("expected QUERY_OK");
  }
  return DecodeQueryResponse(reply->payload);
}

Status FrameSender::RequestFinalize() {
  LDPJS_CHECK(!finished_);
  finished_ = true;  // terminal exchange — the server may disconnect next
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, NetFrameType::kFinalize, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kFinalizeOk) {
    return Status::Corruption("expected FINALIZE_OK");
  }
  return Status::OK();
}

Status FrameSender::RequestFinalizeAsRegion(uint32_t region_id) {
  LDPJS_CHECK(!finished_);
  finished_ = true;
  uint8_t payload[4];
  for (int i = 0; i < 4; ++i) {
    payload[i] = static_cast<uint8_t>(region_id >> (8 * i));
  }
  LDPJS_RETURN_IF_ERROR(
      WriteNetFrame(socket_, NetFrameType::kFinalize, payload));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kFinalizeOk) {
    return Status::Corruption("expected FINALIZE_OK");
  }
  return Status::OK();
}

Status FrameSender::Finish() {
  LDPJS_CHECK(!finished_);
  finished_ = true;
  LDPJS_RETURN_IF_ERROR(WriteNetFrame(socket_, NetFrameType::kBye, {}));
  auto reply = ReadReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != NetFrameType::kByeOk) {
    return Status::Corruption("expected BYE_OK");
  }
  return Status::OK();
}

}  // namespace ldpjs
