// Thin RAII wrapper over POSIX TCP sockets for the network front end.
//
// Only what the frame transport needs: listen/accept/connect, full-buffer
// send, and exact/partial receives, every failure surfaced as a Status
// instead of errno spelunking at the call sites. SIGPIPE is suppressed per
// send (MSG_NOSIGNAL) so a peer that disappears mid-write turns into a
// Status, never a signal. Every blocking call retries on EINTR (connect
// waits for completion via poll + SO_ERROR), so a process that handles
// signals — SIGUSR1 metrics dumps, profilers, debuggers — never sees a
// spurious Corruption/Unavailable from an interrupted syscall.
//
// Fault injection: a socket labeled with set_fault_site("name") consults
// the installed FaultInjector (common/fault_injector.h) before each send
// ("name.send") and recv ("name.recv"), and ConnectTcp consults
// "<site>.connect" when given a site. Unlabeled sockets — the default —
// skip all of it.
#ifndef LDPJS_COMMON_SOCKET_H_
#define LDPJS_COMMON_SOCKET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldpjs {

struct FaultAction;

class Socket {
 public:
  Socket() = default;                 ///< invalid socket (fd -1)
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// Listening socket bound to `port` on all interfaces (SO_REUSEADDR set).
  /// Port 0 binds an ephemeral port; read it back with local_port().
  static Result<Socket> ListenTcp(uint16_t port);

  /// Connected socket to host:port (numeric address or hostname) with
  /// TCP_NODELAY set — the session protocol exchanges small control frames
  /// whose round trips must not wait on Nagle. A non-empty `fault_site`
  /// labels the connection for fault injection (checked as
  /// "<fault_site>.connect" before the attempt).
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                   std::string fault_site = {});

  /// Accepts one connection (blocking) with TCP_NODELAY set. Failures are
  /// classified: Unavailable for transient conditions worth retrying
  /// (ECONNABORTED, EAGAIN, ENOBUFS, ENOMEM, EPROTO — and a shut-down
  /// listener); Internal for conditions where retrying can only spin
  /// (EMFILE, ENFILE, EBADF, EINVAL, ...), which should stop the acceptor.
  Result<Socket> Accept() const;

  /// Sends the whole span (looping over partial writes).
  Status SendAll(std::span<const uint8_t> bytes) const;

  /// Sends `head` then `body` as one gathered write (writev), so a small
  /// frame header and its payload leave in a single segment/syscall even
  /// with TCP_NODELAY on an idle connection.
  Status SendAllV(std::span<const uint8_t> head,
                  std::span<const uint8_t> body) const;

  /// One recv: bytes read (<= out.size()), 0 meaning the peer closed.
  Result<size_t> RecvSome(std::span<uint8_t> out) const;

  /// Fills the whole span. A clean close before the first byte returns
  /// NotFound ("end of stream"); a close mid-span returns Corruption.
  Status RecvAll(std::span<uint8_t> out) const;

  /// Shuts down both directions, unblocking any thread inside recv/accept
  /// on this socket. The fd stays owned until destruction/Close.
  void ShutdownBoth() const;

  /// Caps how long a blocking send may stall (SO_SNDTIMEO); afterwards
  /// SendAll fails with Unavailable. Guards single-threaded writers (the
  /// server's ingest pump) against a peer that stops reading.
  void SetSendTimeout(int seconds) const;

  /// Caps how long a blocking recv may wait for bytes (SO_RCVTIMEO);
  /// afterwards RecvSome/RecvAll fail with DeadlineExceeded. This is the
  /// idle-connection watchdog: a hung peer turns into a reapable Status
  /// instead of a thread parked in recv forever.
  void SetRecvTimeout(int seconds) const;

  /// Labels this socket as a fault-injection site (see file comment).
  /// Empty (the default) disables injection for this socket.
  void set_fault_site(std::string site) { fault_site_ = std::move(site); }
  const std::string& fault_site() const { return fault_site_; }

  void Close();
  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Port this socket is bound to (resolves ephemeral binds).
  uint16_t local_port() const;

 private:
  /// The send loop without fault checks (SendAll minus injection).
  Status SendRaw(std::span<const uint8_t> bytes) const;
  /// Executes an injected send fault against a private copy of the bytes.
  Status SendFaulted(const FaultAction& action,
                     std::vector<uint8_t>& bytes) const;

  int fd_ = -1;
  std::string fault_site_;
};

}  // namespace ldpjs

#endif  // LDPJS_COMMON_SOCKET_H_
