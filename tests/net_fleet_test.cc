// LJSP v5 fleet observability: the STATS_PUSH / FLEET_STATS frames and the
// central's fleet store. Pins:
//   1. Codec round-trips with hostile-input rejection (trailing bytes).
//   2. Over a live session, pushed region snapshots land in the fleet view
//      and the merged cluster histograms equal a single registry fed the
//      UNION of both regions' records — bucket arrays, counts, sums — not
//      an average of percentiles.
//   3. Health transitions (OK → DEGRADED on an i2q SLO burn) land in the
//      event log with the breached rule as the cause, and in the stats
//      JSON's new trailing sections.
//   4. Version interop: a v4 session refuses v5 frames locally without
//      touching the wire, and the v4 surface is untouched.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ldp_join_sketch.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "net/protocol.h"
#include "obs/fleet_stats.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace ldpjs {
namespace {

SketchParams TestParams() {
  SketchParams params;
  params.k = 6;
  params.m = 256;
  params.seed = 21;
  return params;
}

constexpr double kEpsilon = 2.0;

/// A snapshot with its own registry series plus the synthetic net_* series
/// a RegionalNode appends — enough for the health rules and the merge.
FleetSnapshot MakeRegionSnapshot(uint32_t region_id, uint64_t frontier,
                                 const std::vector<uint64_t>& i2q_records) {
  MetricsRegistry registry;
  ObsHistogram* i2q = registry.GetHistogram("ingest_to_queryable_ns");
  for (const uint64_t v : i2q_records) i2q->Record(v);
  registry.GetCounter("reports")->Add(100 * (region_id + 1));

  FleetSnapshot snap;
  snap.region_id = region_id;
  snap.captured_unix_ns = NowNanos();
  snap.stats = registry.TakeSnapshot();
  snap.stats.counters.emplace_back("net_frames_received", 50);
  snap.stats.counters.emplace_back("net_frames_shed", 0);
  snap.stats.counters.emplace_back("net_corrupt_frames_rejected", 0);
  snap.stats.counters.emplace_back("net_reports_ingested",
                                   100 * (region_id + 1));
  snap.stats.gauges.emplace_back("net_frontier_epoch", frontier);
  snap.stats.gauges.emplace_back("net_pending_epochs", 0);
  return snap;
}

TEST(NetFleetTest, SnapshotCodecRoundTripsAndRejectsTrailingBytes) {
  const FleetSnapshot original = MakeRegionSnapshot(7, 12, {1000, 2000000});
  std::vector<uint8_t> encoded = EncodeFleetSnapshot(original);
  auto decoded = DecodeFleetSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->region_id, 7u);
  EXPECT_EQ(decoded->captured_unix_ns, original.captured_unix_ns);
  EXPECT_EQ(decoded->stats.counters, original.stats.counters);
  EXPECT_EQ(decoded->stats.gauges, original.stats.gauges);
  ASSERT_EQ(decoded->stats.histograms.size(),
            original.stats.histograms.size());
  for (size_t h = 0; h < original.stats.histograms.size(); ++h) {
    EXPECT_EQ(decoded->stats.histograms[h].first,
              original.stats.histograms[h].first);
    const HistogramSnapshot& got = decoded->stats.histograms[h].second;
    const HistogramSnapshot& want = original.stats.histograms[h].second;
    EXPECT_EQ(got.count, want.count);  // re-derived from the buckets
    EXPECT_EQ(got.sum, want.sum);
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      EXPECT_EQ(got.buckets[i], want.buckets[i]) << "bucket " << i;
    }
  }

  encoded.push_back(0x00);
  auto trailing = DecodeFleetSnapshot(encoded);
  EXPECT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(DecodeFleetSnapshot({}).ok());
}

TEST(NetFleetTest, FleetViewCodecRoundTripsAndRejectsTrailingBytes) {
  FleetStore store;
  const HealthOptions health;
  store.Apply(MakeRegionSnapshot(0, 5, {1000}), NowNanos(), health);
  store.Apply(MakeRegionSnapshot(1, 6, {2000}), NowNanos(), health);
  const FleetView original = store.View(NowNanos(), health);
  ASSERT_EQ(original.regions.size(), 2u);

  std::vector<uint8_t> encoded = EncodeFleetView(original);
  auto decoded = DecodeFleetView(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rendered_unix_ns, original.rendered_unix_ns);
  EXPECT_EQ(decoded->cluster.state, original.cluster.state);
  ASSERT_EQ(decoded->regions.size(), 2u);
  EXPECT_EQ(decoded->regions[0].snapshot.region_id, 0u);
  EXPECT_EQ(decoded->regions[1].snapshot.region_id, 1u);
  EXPECT_EQ(decoded->regions[1].age_ns, original.regions[1].age_ns);
  EXPECT_EQ(decoded->merged.counters, original.merged.counters);
  // The same serializer renders both the wire view and the JSON section.
  EXPECT_EQ(FleetViewToJson(*decoded), FleetViewToJson(original));

  encoded.push_back(0x00);
  EXPECT_FALSE(DecodeFleetView(encoded).ok());
}

// The tentpole pin: after two regions push, the central's merged cluster
// histogram must be bit-equal to one histogram fed the union of both
// regions' records — true cluster percentiles from raw buckets.
TEST(NetFleetTest, LivePushesMergeExactlyToUnionOfRecords) {
  const SketchParams params = TestParams();
  FrameServer server(params, kEpsilon, FrameServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const std::vector<uint64_t> records_a = {1000, 1000, 50000, 1 << 22};
  // Largest record stays under the default 250ms SLO even after rounding
  // up to its bucket's upper bound (2^27 − 1 ns ≈ 134ms), so health stays
  // OK and this test pins only the merge.
  const std::vector<uint64_t> records_b = {2000, 800000, 800000, 1ull << 26};

  auto sender_a =
      FrameSender::Connect("127.0.0.1", server.port(), params, kEpsilon);
  ASSERT_TRUE(sender_a.ok());
  EXPECT_EQ(sender_a->negotiated_version(), 5);
  ASSERT_TRUE(
      sender_a->PushStats(MakeRegionSnapshot(0, 10, records_a)).ok());
  auto sender_b =
      FrameSender::Connect("127.0.0.1", server.port(), params, kEpsilon);
  ASSERT_TRUE(sender_b.ok());
  ASSERT_TRUE(
      sender_b->PushStats(MakeRegionSnapshot(1, 11, records_b)).ok());

  auto view = sender_a->FleetStats();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->regions.size(), 2u);
  EXPECT_EQ(view->regions[0].snapshot.region_id, 0u);
  EXPECT_EQ(view->regions[1].snapshot.region_id, 1u);
  EXPECT_EQ(view->cluster.state, HealthState::kOk) << view->cluster.cause;

  ObsHistogram unioned;
  for (const uint64_t v : records_a) unioned.Record(v);
  for (const uint64_t v : records_b) unioned.Record(v);
  const HistogramSnapshot expected = unioned.Snapshot();
  const HistogramSnapshot merged =
      FleetHistogramByName(view->merged, "ingest_to_queryable_ns");
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], expected.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(merged.Percentile(0.50), expected.Percentile(0.50));
  EXPECT_EQ(merged.Percentile(0.99), expected.Percentile(0.99));

  // Counters summed across regions; a repush REPLACES region 0's snapshot
  // (last-snapshot store), it does not double-merge.
  uint64_t reports = 0;
  for (const auto& [name, value] : view->merged.counters) {
    if (name == "net_reports_ingested") reports = value;
  }
  EXPECT_EQ(reports, 300u);
  ASSERT_TRUE(
      sender_a->PushStats(MakeRegionSnapshot(0, 12, records_a)).ok());
  auto again = sender_a->FleetStats();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->regions.size(), 2u);
  const HistogramSnapshot remerged =
      FleetHistogramByName(again->merged, "ingest_to_queryable_ns");
  EXPECT_EQ(remerged.count, expected.count);

  ASSERT_TRUE(sender_a->Finish().ok());
  ASSERT_TRUE(sender_b->Finish().ok());
  server.Stop();
}

// An i2q p99 past the SLO target must flip the pushed region (and the
// cluster roll-up) to DEGRADED, and the transition must land in the event
// log with the breached rule named.
TEST(NetFleetTest, SloBurnTransitionsToDegradedAndLogsTheCause) {
  const SketchParams params = TestParams();
  FrameServerOptions options;
  // Target 1.5ms with a 2ms record → p99 ≈ 2.1ms: past 1x, under the 4x
  // critical multiplier — deterministically DEGRADED.
  options.health.i2q_p99_target_ms = 1.5;
  FrameServer server(params, kEpsilon, options);
  ASSERT_TRUE(server.Start().ok());

  auto sender =
      FrameSender::Connect("127.0.0.1", server.port(), params, kEpsilon);
  ASSERT_TRUE(sender.ok());
  ASSERT_TRUE(sender->PushStats(MakeRegionSnapshot(4, 3, {2000000})).ok());

  auto view = sender->FleetStats();
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->regions.size(), 1u);
  EXPECT_EQ(view->regions[0].health.state, HealthState::kDegraded);
  EXPECT_NE(view->regions[0].health.cause.find("i2q"), std::string::npos)
      << view->regions[0].health.cause;
  EXPECT_EQ(view->cluster.state, HealthState::kDegraded);

  // The first push arrived unhealthy: that is itself a transition (the
  // store synthesizes OK as the prior state), recorded for the region and
  // the cluster.
  bool region_logged = false, cluster_logged = false;
  for (const ObsEvent& event : server.events().Collect()) {
    if (event.kind != "health_transition") continue;
    if (event.region_id == 4 && event.from == "OK" &&
        event.to == "DEGRADED" &&
        event.cause.find("i2q") != std::string::npos) {
      region_logged = true;
    }
    if (event.cause.find("cluster:") != std::string::npos &&
        event.to == "DEGRADED") {
      cluster_logged = true;
    }
  }
  EXPECT_TRUE(region_logged);
  EXPECT_TRUE(cluster_logged);

  // The stats JSON grew the new trailing sections without disturbing the
  // frozen prefix (net_stats_test pins the prefix; here pin presence).
  const std::string json = server.StatsJson();
  EXPECT_NE(json.find("\"health\":{\"state\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fleet\":{\"rendered_unix_ns\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"region_count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"age_ms\":"), std::string::npos);
  // Merged histograms render the full quantile ladder.
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("health_transition"), std::string::npos);

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

// Version interop: a v4 session must refuse the v5 frames LOCALLY —
// nothing written to the wire, frames_sent untouched — while the whole v4
// surface keeps working. Old peers are byte-untouched by this release.
TEST(NetFleetTest, V4SessionRefusesV5FramesWithoutTouchingTheWire) {
  const SketchParams params = TestParams();
  FrameServer server(params, kEpsilon, FrameServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FrameSender::Options v4;
  v4.announce_version = 4;
  auto sender = FrameSender::Connect("127.0.0.1", server.port(), params,
                                     kEpsilon, v4);
  ASSERT_TRUE(sender.ok());
  EXPECT_EQ(sender->negotiated_version(), 4);

  const uint64_t frames_before = sender->frames_sent();
  const Status pushed = sender->PushStats(MakeRegionSnapshot(0, 1, {1000}));
  EXPECT_EQ(pushed.code(), StatusCode::kFailedPrecondition);
  auto view = sender->FleetStats();
  EXPECT_EQ(view.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sender->frames_sent(), frames_before);

  // The v4 surface is intact on the same session, and the refused pushes
  // left no region in the fleet store.
  auto stats = sender->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"connections_accepted\":"), std::string::npos);
  EXPECT_EQ(server.CurrentFleetView().regions.size(), 0u);

  ASSERT_TRUE(sender->Finish().ok());
  server.Stop();
}

}  // namespace
}  // namespace ldpjs
