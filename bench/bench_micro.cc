// Micro-benchmarks (google-benchmark): hashing, Hadamard transforms, client
// perturbation and server absorption — the building blocks whose O(1)/
// O(m log m) costs the DESIGN.md claims rest on.
//
// After the registered benchmarks run, main() executes an ingestion-pipeline
// comparison on LDPJS_MICRO_REPORTS synthetic reports (default 1M): the
// pre-integer-lane scalar absorb path (double FMA per report, replicated
// below), the current scalar path, and the batched integer-lane path, plus
// end-to-end perturb+absorb with per-user vs. per-block RNG streams. The
// results — reports/sec, finalize ms, and estimate agreement — are written
// to BENCH_micro.json (override with LDPJS_BENCH_JSON) so CI can track the
// perf trajectory across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hadamard.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/zipf.h"
#include "federation/central_node.h"
#include "federation/windowed_view.h"
#include "net/frame_sender.h"
#include "net/frame_server.h"
#include "obs/fleet_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seed_baseline.h"
#include "service/sharded_aggregator.h"

namespace ldpjs {
namespace {

void BM_BucketHash(benchmark::State& state) {
  BucketHash h(1, 1024);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_BucketHash);

void BM_SignHash(benchmark::State& state) {
  SignHash xi(2);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xi(x++));
  }
}
BENCHMARK(BM_SignHash);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(3);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_HadamardEntry(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HadamardEntry(i, i + 1));
    ++i;
  }
}
BENCHMARK(BM_HadamardEntry);

void BM_Fwht(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<double> data(m, 1.0);
  for (auto _ : state) {
    FastWalshHadamardTransform(std::span<double>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fwht)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_ClientPerturbFast(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  LdpJoinSketchClient client(params, 4.0);
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v++, rng));
  }
}
BENCHMARK(BM_ClientPerturbFast)->Arg(1024)->Arg(16384);

void BM_ClientPerturbReference(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  LdpJoinSketchClient client(params, 4.0);
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.PerturbReference(v++, rng));
  }
}
BENCHMARK(BM_ClientPerturbReference)->Arg(1024)->Arg(16384);

void BM_ClientPerturbBatch(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  LdpJoinSketchClient client(params, 4.0);
  std::vector<uint64_t> values(kIngestBlockSize);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * 31;
  std::vector<LdpReport> reports(values.size());
  uint64_t block = 0;
  for (auto _ : state) {
    Xoshiro256 rng = MakeStreamRng(7, block++);
    client.PerturbBatch(values, reports, rng);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_ClientPerturbBatch);

void BM_FapPerturbNonTarget(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  FapClient client(params, 4.0, FapMode::kHigh, {});  // everything non-target
  Xoshiro256 rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(v++, rng));
  }
}
BENCHMARK(BM_FapPerturbNonTarget);

void BM_ServerAbsorb(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  LdpJoinSketchServer server(params, 4.0);
  LdpReport report{1, 3, 17};
  for (auto _ : state) {
    server.Absorb(report);
  }
  benchmark::DoNotOptimize(server.total_reports());
}
BENCHMARK(BM_ServerAbsorb);

void BM_ServerAbsorbBatch(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  LdpJoinSketchServer server(params, 4.0);
  LdpJoinSketchClient client(params, 4.0);
  std::vector<uint64_t> values(kIngestBlockSize);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * 17;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(3);
  client.PerturbBatch(values, reports, rng);
  for (auto _ : state) {
    server.AbsorbBatch(reports);
  }
  benchmark::DoNotOptimize(server.total_reports());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reports.size()));
}
BENCHMARK(BM_ServerAbsorbBatch);

void BM_DecodeReportBatch(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  LdpJoinSketchClient client(params, 4.0);
  std::vector<uint64_t> values(kMaxWireBatchReports);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * 13;
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(9);
  client.PerturbBatch(values, reports, rng);
  BinaryWriter writer;
  EncodeReportBatch(reports, writer);
  std::vector<LdpReport> decoded(kMaxWireBatchReports);
  for (auto _ : state) {
    BinaryReader reader(writer.buffer());
    auto count = DecodeReportBatch(reader, decoded);
    if (!count.ok()) std::abort();
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reports.size()));
}
BENCHMARK(BM_DecodeReportBatch);

void BM_ServerFinalize(benchmark::State& state) {
  SketchParams params;
  params.k = 18;
  params.m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LdpJoinSketchServer server(params, 4.0);
    state.ResumeTiming();
    server.Finalize();
  }
}
BENCHMARK(BM_ServerFinalize)->Arg(1024)->Arg(4096);

void BM_ZipfGeneration(benchmark::State& state) {
  ZipfParams params;
  params.alpha = 1.1;
  params.domain = 100000;
  params.rows = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateZipf(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZipfGeneration)->Arg(100000);

// ---------------------------------------------------------------------------
// Ingestion-pipeline comparison (BENCH_micro.json).
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;
using bench::SeedClient;
using bench::SeedServer;
using bench::SeedXoshiro;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `pass` (one full sweep over the report set) until enough wall time
/// accumulates for a stable rate; returns reports/sec.
template <typename PassFn>
double MeasureReportsPerSec(size_t reports_per_pass, const PassFn& pass) {
  int passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.3 || passes < 3);
  return static_cast<double>(reports_per_pass) * passes / elapsed;
}

/// Paired measurement: alternates one pass of A with one pass of B inside
/// the same window, so both see the same machine conditions (CPU frequency,
/// noisy neighbours) and their ratio is meaningful even on a busy host.
/// Returns {reports/sec A, reports/sec B}.
template <typename PassA, typename PassB>
std::pair<double, double> MeasurePairedReportsPerSec(size_t reports_per_pass,
                                                     const PassA& pass_a,
                                                     const PassB& pass_b) {
  pass_a();  // warm both paths before timing
  pass_b();
  double seconds_a = 0.0, seconds_b = 0.0;
  int pairs = 0;
  do {
    const auto start_a = Clock::now();
    pass_a();
    seconds_a += SecondsSince(start_a);
    const auto start_b = Clock::now();
    pass_b();
    seconds_b += SecondsSince(start_b);
    ++pairs;
  } while (seconds_a + seconds_b < 0.6 || pairs < 3);
  return {static_cast<double>(reports_per_pass) * pairs / seconds_a,
          static_cast<double>(reports_per_pass) * pairs / seconds_b};
}

void RunIngestionComparison() {
  // LDPJS_MICRO_REPORTS=0 skips the comparison (it takes seconds and writes
  // BENCH_micro.json — unwanted when only a registered benchmark or a
  // listing was asked for).
  const size_t n = bench::EnvU64("LDPJS_MICRO_REPORTS", 1'000'000);
  if (n == 0) return;
  const char* json_path_env = std::getenv("LDPJS_BENCH_JSON");
  const std::string json_path =
      (json_path_env != nullptr && *json_path_env != '\0') ? json_path_env
                                                           : "BENCH_micro.json";
  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 5;
  const double epsilon = 4.0;
  LdpJoinSketchClient client(params, epsilon);

  std::printf("\n== ingestion pipeline comparison (%zu reports) ==\n", n);

  // Synthetic skewed values (so the join estimates carry signal) and their
  // perturbed reports, generated once.
  ZipfParams zipf;
  zipf.alpha = 1.2;
  zipf.domain = 10000;
  zipf.rows = n;
  zipf.seed = 1;
  const std::vector<uint64_t> values_a = GenerateZipf(zipf).values();
  zipf.seed = 2;
  const std::vector<uint64_t> values_b = GenerateZipf(zipf).values();
  std::vector<LdpReport> reports_a(n), reports_b(n);
  Xoshiro256 rng_a(11), rng_b(12);
  client.PerturbBatch(values_a, reports_a, rng_a);
  client.PerturbBatch(values_b, reports_b, rng_b);

  // --- absorb-only rates (seed vs batch paired; scalar informational). ----
  SeedServer seed_server(params, epsilon);
  LdpJoinSketchServer batch_server(params, epsilon);
  const auto [seed_rps, batch_rps] = MeasurePairedReportsPerSec(
      n,
      [&] {
        for (const LdpReport& r : reports_a) seed_server.Absorb(r);
      },
      [&] { batch_server.AbsorbBatch(reports_a); });

  LdpJoinSketchServer scalar_server(params, epsilon);
  const double scalar_rps = MeasureReportsPerSec(n, [&] {
    for (const LdpReport& r : reports_a) scalar_server.Absorb(r);
  });

  // --- end-to-end perturb+absorb: the seed pipeline (per-user engine
  // re-seed, three draws, out-of-line hashes, double-FMA absorb) vs. the
  // batched integer-lane pipeline (block streams + PerturbBatch +
  // AbsorbBatch). --------------------------------------------------------
  const size_t ingest_n = std::min<size_t>(n, 200'000);
  const std::span<const uint64_t> ingest_values(values_a.data(), ingest_n);
  SeedClient seed_client(params, epsilon);
  const auto [ingest_seed_rps, ingest_block_rps] = MeasurePairedReportsPerSec(
      ingest_n,
      [&] {
        SeedServer server(params, epsilon);
        for (size_t i = 0; i < ingest_n; ++i) {
          SeedXoshiro rng(DeriveStreamSeed(42, i));
          server.Absorb(seed_client.Perturb(ingest_values[i], rng));
        }
        benchmark::DoNotOptimize(server.total_reports());
      },
      [&] {
        LdpJoinSketchServer server(params, epsilon);
        std::vector<LdpReport> block(kIngestBlockSize);
        for (size_t first = 0; first < ingest_n; first += kIngestBlockSize) {
          const size_t count = std::min(kIngestBlockSize, ingest_n - first);
          Xoshiro256 rng = MakeStreamRng(42, first / kIngestBlockSize);
          std::span<LdpReport> out(block.data(), count);
          client.PerturbBatch(ingest_values.subspan(first, count), out, rng);
          server.AbsorbBatch(out);
        }
        benchmark::DoNotOptimize(server.total_reports());
      });

  // --- wire decode: per-report DecodeReport loop vs DecodeReportBatch. ----
  // Same 9-byte records on both sides; the batch side adds one envelope
  // (9 bytes) per 4096-report frame, so the byte streams are comparable.
  BinaryWriter frames_a_writer, frames_b_writer, naked_writer;
  for (size_t first = 0; first < n; first += kMaxWireBatchReports) {
    const size_t count = std::min(kMaxWireBatchReports, n - first);
    BinaryWriter frame;
    EncodeReportBatch({reports_a.data() + first, count}, frame);
    frames_a_writer.PutFrame(frame.buffer());
    BinaryWriter frame_b;
    EncodeReportBatch({reports_b.data() + first, count}, frame_b);
    frames_b_writer.PutFrame(frame_b.buffer());
    for (size_t i = first; i < first + count; ++i) {
      EncodeReport(reports_a[i], naked_writer);
    }
  }
  const std::vector<uint8_t> wire_frames_a = frames_a_writer.TakeBuffer();
  const std::vector<uint8_t> wire_frames_b = frames_b_writer.TakeBuffer();
  const std::vector<uint8_t> wire_naked = naked_writer.TakeBuffer();

  std::vector<LdpReport> decode_buffer(kMaxWireBatchReports);
  uint64_t decode_sink = 0;
  const auto [decode_scalar_rps, decode_batch_rps] = MeasurePairedReportsPerSec(
      n,
      [&] {
        BinaryReader reader(wire_naked);
        while (!reader.AtEnd()) {
          auto report = DecodeReport(reader);
          if (!report.ok()) std::abort();
          decode_sink += report->l;
        }
      },
      [&] {
        BinaryReader reader(wire_frames_a);
        while (!reader.AtEnd()) {
          auto frame = reader.GetFrame();
          if (!frame.ok()) std::abort();
          BinaryReader frame_reader(*frame);
          auto count = DecodeReportBatch(frame_reader, decode_buffer);
          if (!count.ok()) std::abort();
          decode_sink += *count;
        }
      });
  benchmark::DoNotOptimize(decode_sink);

  // --- service ingest: one shard vs SharedThreadPool-wide sharding, both
  // over the full wire path (frame scan + batch decode + lane absorb). -----
  const size_t service_shards = SharedThreadPool().num_threads();
  const auto [single_shard_rps, sharded_rps] = MeasurePairedReportsPerSec(
      n,
      [&] {
        ShardedAggregator aggregator(params, epsilon, 1);
        if (!aggregator.IngestStream(wire_frames_a).ok()) std::abort();
        benchmark::DoNotOptimize(aggregator.reports_ingested());
      },
      [&] {
        ShardedAggregator aggregator(params, epsilon, service_shards);
        if (!aggregator.IngestStream(wire_frames_a).ok()) std::abort();
        benchmark::DoNotOptimize(aggregator.reports_ingested());
      });

  // --- Lane-add loop-shape study, pinning that the shipped shapes are the
  // not-slower ones. Absorb: the shipped fused branch-per-report RMW loop
  // vs the split "SIMD" alternative (branchless vectorizable validate pass
  // + bare scatter, chunked L1-resident) — the fused loop must win or tie,
  // which is why AbsorbBatch keeps it. Merge: vector-indexed add (compiler
  // must emit an aliasing check) vs the restrict-qualified AddLanes shape
  // Merge now ships — AddLanes must not be slower. -------------------------
  const size_t lane_count = size_t{1} << 20;  // a wide-sketch merge
  const int m_log2 = std::countr_zero(static_cast<uint64_t>(params.m));
  const uint32_t k_bound = static_cast<uint32_t>(params.k);
  const uint32_t m_bound = static_cast<uint32_t>(params.m);
  std::vector<int64_t> lanes_prev(lane_count, 0), lanes_simd(lane_count, 0);
  const auto [absorb_fused_rps, absorb_split_rps] = MeasurePairedReportsPerSec(
      n,
      [&] {
        int64_t* lanes = lanes_prev.data();
        for (const LdpReport& r : reports_a) {
          if (r.j >= k_bound) std::abort();
          if (r.l >= m_bound) std::abort();
          if (r.y != 1 && r.y != -1) std::abort();
          lanes[(static_cast<size_t>(r.j) << m_log2) | r.l] += r.y;
        }
      },
      [&] {
        int64_t* __restrict lanes = lanes_simd.data();
        constexpr size_t kChunk = 1024;
        const std::span<const LdpReport> all(reports_a);
        for (size_t first = 0; first < all.size(); first += kChunk) {
          const std::span<const LdpReport> chunk =
              all.subspan(first, std::min(kChunk, all.size() - first));
          uint32_t bad = 0;
          for (const LdpReport& r : chunk) {
            bad |= static_cast<uint32_t>(r.j >= k_bound) |
                   static_cast<uint32_t>(r.l >= m_bound) |
                   (static_cast<uint32_t>(r.y != 1) &
                    static_cast<uint32_t>(r.y != -1));
          }
          if (bad != 0) std::abort();
          for (const LdpReport& r : chunk) {
            lanes[(static_cast<size_t>(r.j) << m_log2) | r.l] += r.y;
          }
        }
      });

  std::vector<int64_t> merge_dst(lane_count, 1), merge_src(lane_count, 2);
  const auto [merge_indexed_lps, merge_addlanes_lps] =
      MeasurePairedReportsPerSec(
      lane_count,
      [&] {
        for (size_t i = 0; i < lane_count; ++i) merge_dst[i] += merge_src[i];
      },
      [&] {
        int64_t* __restrict dst = merge_dst.data();
        const int64_t* __restrict src = merge_src.data();
        for (size_t i = 0; i < lane_count; ++i) dst[i] += src[i];
      });
  benchmark::DoNotOptimize(merge_dst.data());
  benchmark::DoNotOptimize(lanes_prev.data());
  benchmark::DoNotOptimize(lanes_simd.data());

  // --- TCP loopback ingest: the full network front end (LJSP session over
  // 127.0.0.1, per-shard queues, one ingest pump per shard). One pass
  // streams every frame and Finish() is the ingest barrier. Measured at
  // one shard (the old single-pump shape) and at pool width (multi-pump),
  // so net_ingest_multipump_speedup tracks how ingest scales past a core.
  std::vector<std::span<const uint8_t>> net_frames;
  {
    BinaryReader reader(wire_frames_a);
    while (!reader.AtEnd()) {
      auto frame = reader.GetFrame();
      if (!frame.ok()) std::abort();
      net_frames.push_back(*frame);
    }
  }
  auto measure_net_ingest = [&](size_t shards) {
    const auto start = Clock::now();
    int passes = 0;
    double elapsed = 0.0;
    do {
      FrameServerOptions options;
      options.num_shards = shards;
      FrameServer server(params, epsilon, options);
      if (!server.Start().ok()) std::abort();
      auto sender =
          FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
      if (!sender.ok()) std::abort();
      for (const auto& frame : net_frames) {
        if (!sender->SendEncodedBatch(frame).ok()) std::abort();
      }
      if (!sender->Finish().ok()) std::abort();
      server.Stop();
      if (server.metrics().reports_ingested != n) std::abort();
      ++passes;
      elapsed = SecondsSince(start);
    } while (elapsed < 0.5 || passes < 2);
    return static_cast<double>(n) * passes / elapsed;
  };
  const double net_single_pump_rps = measure_net_ingest(1);
  const double net_rps = measure_net_ingest(service_shards);

  // --- Federation snapshot shipping: raw-lane epoch snapshots (k·m int64
  // lanes each) pushed over a loopback LJSP session into a central
  // aggregator, with the (region, epoch) dedup and per-shard merge on the
  // receiving side — the regional→central uplink hot path. ----------------
  double snapshot_ship_bps = 0.0;
  {
    LdpJoinSketchServer epoch_sketch(params, epsilon);
    epoch_sketch.AbsorbBatch(
        std::span<const LdpReport>(reports_a.data(),
                                   std::min<size_t>(n, 100'000)));
    const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();
    FrameServerOptions options;
    options.num_shards = service_shards;
    FrameServer central(params, epsilon, options);
    if (!central.Start().ok()) std::abort();
    auto sender =
        FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
    if (!sender.ok()) std::abort();
    uint64_t epoch = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      auto applied = sender->PushEpochSnapshot(0, epoch++, snapshot);
      if (!applied.ok() || applied->code != EpochPushAckCode::kApplied) {
        std::abort();
      }
      elapsed = SecondsSince(start);
    } while (elapsed < 0.5 || epoch < 8);
    snapshot_ship_bps =
        static_cast<double>(epoch) * snapshot.size() / elapsed;
    if (!sender->Finish().ok()) std::abort();
    central.Stop();
    if (central.metrics().epochs_applied != epoch) std::abort();
  }

  // --- Fleet stats shipping overhead: the snapshot-ship loop with a v5
  // STATS_PUSH interleaved every 128 epochs on the session, paired against
  // a plain loop so both see identical machine conditions. Telemetry must
  // never tax the data path — the bench aborts past 1% throughput cost.
  // Also times the central-side exact histogram merge of two full registry
  // snapshots (the per-region cost of rendering the cluster view). --------
  double stats_push_overhead_pct = 0.0;
  double fleet_merge_ns = 0.0;
  {
    LdpJoinSketchServer epoch_sketch(params, epsilon);
    epoch_sketch.AbsorbBatch(
        std::span<const LdpReport>(reports_a.data(),
                                   std::min<size_t>(n, 100'000)));
    const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();
    FrameServerOptions options;
    options.num_shards = service_shards;
    FrameServer central_with(params, epsilon, options);
    FrameServer central_plain(params, epsilon, options);
    if (!central_with.Start().ok() || !central_plain.Start().ok()) {
      std::abort();
    }
    auto with_sender = FrameSender::Connect(
        "127.0.0.1", central_with.port(), params, epsilon);
    auto plain_sender = FrameSender::Connect(
        "127.0.0.1", central_plain.port(), params, epsilon);
    if (!with_sender.ok() || !plain_sender.ok()) std::abort();
    uint64_t epoch_with = 0, epoch_plain = 0;
    auto push_one = [&](FrameSender& sender, uint64_t* epoch) {
      auto applied = sender.PushEpochSnapshot(0, (*epoch)++, snapshot);
      if (!applied.ok() || applied->code != EpochPushAckCode::kApplied) {
        std::abort();
      }
    };
    const auto [with_bps, plain_bps] = MeasurePairedReportsPerSec(
        snapshot.size(),
        [&] {
          push_one(*with_sender, &epoch_with);
          if (epoch_with % 128 == 0) {
            FleetSnapshot stats;
            stats.region_id = 0;
            stats.captured_unix_ns = NowNanos();
            stats.stats = MetricsRegistry::Default().TakeSnapshot();
            if (!with_sender->PushStats(stats).ok()) std::abort();
          }
        },
        [&] { push_one(*plain_sender, &epoch_plain); });
    stats_push_overhead_pct =
        std::max(0.0, (plain_bps - with_bps) / plain_bps * 100.0);
    if (!with_sender->Finish().ok() || !plain_sender->Finish().ok()) {
      std::abort();
    }
    central_with.Stop();
    central_plain.Stop();
    if (central_with.CurrentFleetView().regions.size() != 1) std::abort();
    if (stats_push_overhead_pct > 1.0) {
      std::fprintf(stderr,
                   "STATS_PUSH costs %.2f%% of ship throughput "
                   "(budget: 1%%)\n",
                   stats_push_overhead_pct);
      std::abort();
    }

    // Merge cost: one region's full registry snapshot folded into a
    // cluster accumulator, the unit of work FLEET_STATS pays per region.
    const MetricsRegistry::Snapshot one =
        MetricsRegistry::Default().TakeSnapshot();
    int merges = 0;
    const auto merge_start = Clock::now();
    double merge_elapsed = 0.0;
    do {
      MetricsRegistry::Snapshot accumulator = one;
      MergeSnapshotInto(accumulator, one);
      benchmark::DoNotOptimize(accumulator);
      ++merges;
      merge_elapsed = SecondsSince(merge_start);
    } while (merge_elapsed < 0.2 || merges < 100);
    fleet_merge_ns = merge_elapsed * 1e9 / merges;
  }

  // --- Central windowed estimates: the incrementally cached WindowedView
  // vs the full re-merge FinalizedView, answering the same kind of query
  // (finalized view + join estimate against a fixed sketch) on a central
  // that has applied several epoch pushes. The cached path pays one lane
  // copy + the estimate; the re-merge path pays shard merges + the k
  // Hadamard transforms of a fresh finalize every query. ------------------
  double windowed_estimate_qps = 0.0;
  double view_cache_speedup = 0.0;
  {
    const size_t epoch_reports = std::min<size_t>(n, 100'000);
    LdpJoinSketchServer epoch_sketch(params, epsilon);
    epoch_sketch.AbsorbBatch(
        std::span<const LdpReport>(reports_a.data(), epoch_reports));
    const std::vector<uint8_t> snapshot = epoch_sketch.Serialize();

    LdpJoinSketchServer estimate_against(params, epsilon);
    estimate_against.AbsorbBatch(
        std::span<const LdpReport>(reports_b.data(), epoch_reports));
    estimate_against.Finalize();

    CentralNodeOptions central_options;
    central_options.server.num_shards = service_shards;
    central_options.finalize_after = 1;
    central_options.window_epochs = 4;
    CentralNode central(params, epsilon, central_options);
    if (!central.Start().ok()) std::abort();
    auto sender =
        FrameSender::Connect("127.0.0.1", central.port(), params, epsilon);
    if (!sender.ok()) std::abort();
    for (uint64_t epoch = 0; epoch < 6; ++epoch) {  // 2 epochs slide out
      auto applied = sender->PushEpochSnapshot(0, epoch, snapshot);
      if (!applied.ok()) std::abort();
    }
    const auto [cached_qps, remerge_qps] = MeasurePairedReportsPerSec(
        1,
        [&] {
          const LdpJoinSketchServer view = central.WindowedFinalizedView();
          benchmark::DoNotOptimize(view.JoinEstimate(estimate_against));
        },
        [&] {
          const LdpJoinSketchServer view = central.FinalizedView();
          benchmark::DoNotOptimize(view.JoinEstimate(estimate_against));
        });
    windowed_estimate_qps = cached_qps;
    view_cache_speedup = cached_qps / remerge_qps;
    // Sanity: the window really slid — 4 of 6 epochs in the view.
    if (central.window()->epochs_expired() != 2) std::abort();
    if (central.WindowedFinalizedView().total_reports() !=
        4 * epoch_reports) {
      std::abort();
    }
    if (!sender->Finish().ok()) std::abort();
    central.Stop();
  }

  // --- RCU published views: the steady-state read path must be one atomic
  // shared_ptr load — pointer-stable while the view is clean, cost
  // independent of sketch size, and far cheaper than the compat Finalized()
  // wrapper that copies the sketch. The old copy-on-read cache copied the
  // whole k·m sketch under the writer mutex on EVERY call, so its cost
  // scaled linearly with m; these aborts keep that regression out. --------
  double published_reads_per_sec = 0.0;
  double published_vs_copy_speedup = 0.0;
  {
    auto loaded_window = [&](int m) {
      SketchParams view_params = params;
      view_params.m = m;
      auto window =
          std::make_unique<WindowedView>(view_params, epsilon, 4, 1);
      const size_t epoch_reports = std::min<size_t>(n, 50'000);
      LdpJoinSketchClient view_client(view_params, epsilon);
      std::vector<LdpReport> epoch_batch(epoch_reports);
      Xoshiro256 rng = MakeStreamRng(77, static_cast<uint64_t>(m));
      view_client.PerturbBatch(
          std::span<const uint64_t>(values_a.data(), epoch_reports),
          epoch_batch, rng);
      LdpJoinSketchServer epoch(view_params, epsilon);
      epoch.AbsorbBatch(epoch_batch);
      window->OnEpochApplied(0, 0, &epoch);
      return window;
    };
    auto read_rate = [&](const WindowedView& window) {
      size_t reads = 0;
      const auto start = Clock::now();
      double elapsed = 0.0;
      do {
        for (int i = 0; i < 4096; ++i) {
          benchmark::DoNotOptimize(window.Published().get());
        }
        reads += 4096;
        elapsed = SecondsSince(start);
      } while (elapsed < 0.2);
      return static_cast<double>(reads) / elapsed;
    };
    const auto narrow = loaded_window(1024);
    const auto wide = loaded_window(16384);
    // Clean view ⇒ consecutive reads return the SAME snapshot object —
    // reference equality, not a fresh copy per call.
    if (narrow->Published().get() != narrow->Published().get()) std::abort();
    if (wide->Published().get() != wide->Published().get()) std::abort();
    const double narrow_rate = read_rate(*narrow);
    const double wide_rate = read_rate(*wide);
    published_reads_per_sec = wide_rate;
    // Size independence: a 16x wider sketch may not slow acquisition by
    // even 8x (the copy-on-read path scaled ~16x here; an atomic load is
    // flat, so 8x is pure noise headroom).
    if (wide_rate * 8.0 < narrow_rate) std::abort();
    // And the zero-copy path must beat the copying wrapper handily.
    size_t copies = 0;
    const auto copy_start = Clock::now();
    double copy_elapsed = 0.0;
    do {
      const LdpJoinSketchServer view = wide->Finalized();
      benchmark::DoNotOptimize(view.total_reports());
      ++copies;
      copy_elapsed = SecondsSince(copy_start);
    } while (copy_elapsed < 0.2);
    const double copy_rate = static_cast<double>(copies) / copy_elapsed;
    published_vs_copy_speedup = wide_rate / copy_rate;
    if (published_vs_copy_speedup < 4.0) std::abort();
  }

  // --- LJSP v3 QUERY serving: frequency queries answered from the
  // server's published view while a DATA session streams sustained ingest
  // the whole time — the concurrent-read-under-write shape the RCU
  // publication exists for. Measured at one client thread (per-query
  // round-trip latency bound) and at several, whose aggregate shows the
  // read side scaling past a single connection. ---------------------------
  double query_qps_1thread = 0.0;
  double query_qps_nthreads = 0.0;
  double query_qps_scaling = 0.0;
  const size_t query_threads =
      std::clamp<size_t>(service_shards, 2, 8);
  {
    FrameServerOptions options;
    options.num_shards = service_shards;
    FrameServer server(params, epsilon, options);
    if (!server.Start().ok()) std::abort();

    std::atomic<bool> stop_ingest{false};
    std::thread ingest([&] {
      auto sender =
          FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
      if (!sender.ok()) std::abort();
      size_t i = 0;
      while (!stop_ingest.load(std::memory_order_relaxed)) {
        const auto& frame = net_frames[i++ % net_frames.size()];
        if (!sender->SendEncodedBatch(frame).ok()) std::abort();
      }
      if (!sender->Finish().ok()) std::abort();
    });

    auto measure_qps = [&](size_t threads) {
      std::atomic<uint64_t> queries{0};
      std::atomic<bool> done{false};
      const auto start = Clock::now();
      std::vector<std::thread> workers;
      for (size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          auto sender = FrameSender::Connect("127.0.0.1", server.port(),
                                             params, epsilon);
          if (!sender.ok()) std::abort();
          QueryRequest request;
          request.kind = QueryKind::kFrequency;
          request.key = 1 + t;
          uint64_t local = 0;
          while (!done.load(std::memory_order_relaxed)) {
            auto response = sender->Query(request);
            if (!response.ok()) std::abort();
            benchmark::DoNotOptimize(response->value);
            ++local;
          }
          queries.fetch_add(local, std::memory_order_relaxed);
          if (!sender->Finish().ok()) std::abort();
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      done.store(true, std::memory_order_relaxed);
      for (auto& worker : workers) worker.join();
      return static_cast<double>(queries.load()) / SecondsSince(start);
    };
    query_qps_1thread = measure_qps(1);
    query_qps_nthreads = measure_qps(query_threads);
    query_qps_scaling = query_qps_nthreads / query_qps_1thread;

    stop_ingest.store(true, std::memory_order_relaxed);
    ingest.join();
    server.Stop();
    const NetMetrics served = server.metrics();
    if (served.query_frames == 0) std::abort();
    if (served.views_published == 0) std::abort();
  }

  // --- Observability cost + the ingest-to-queryable SLO. Two pins:
  //   1. Recording into a hot-path histogram with metrics ON, versus the
  //      single-branch disabled path, must cost less than 2% of one wire
  //      frame's absorb budget (kMaxWireBatchReports reports at the
  //      measured batch absorb rate) — instrumentation stays in the noise.
  //   2. A traced loopback round (one TRACED frame + the PING barrier that
  //      forces the publish closing the SLO clock) must land a finite
  //      origin-to-queryable latency in the registry every time. ----------
  double metrics_record_overhead_ns = 0.0;
  double ingest_to_queryable_p50_ms = 0.0;
  double ingest_to_queryable_p99_ms = 0.0;
  double query_latency_p99_us = 0.0;
  {
    ObsHistogram overhead_hist;
    auto per_record_ns = [&](bool enabled) {
      SetObsEnabled(enabled);
      constexpr uint64_t kRecords = 2'000'000;
      const auto start = Clock::now();
      for (uint64_t i = 0; i < kRecords; ++i) {
        overhead_hist.Record(i & 0xFFFF);
      }
      return SecondsSince(start) * 1e9 / static_cast<double>(kRecords);
    };
    const double disabled_ns = per_record_ns(false);
    const double enabled_ns = per_record_ns(true);
    SetObsEnabled(true);
    metrics_record_overhead_ns = std::max(0.0, enabled_ns - disabled_ns);
    const double frame_budget_ns =
        1e9 / batch_rps * static_cast<double>(kMaxWireBatchReports);
    if (metrics_record_overhead_ns >= 0.02 * frame_budget_ns) std::abort();

    const HistogramSnapshot i2q_before =
        MetricsRegistry::Default().HistogramByName("ingest_to_queryable_ns");
    const HistogramSnapshot query_before =
        MetricsRegistry::Default().HistogramByName("query_latency_ns");
    constexpr int kTracedRounds = 20;
    {
      FrameServerOptions options;
      options.num_shards = 2;
      FrameServer server(params, epsilon, options);
      if (!server.Start().ok()) std::abort();
      auto sender =
          FrameSender::Connect("127.0.0.1", server.port(), params, epsilon);
      if (!sender.ok()) std::abort();
      QueryRequest request;
      request.kind = QueryKind::kFrequency;
      request.key = 7;
      for (int round = 0; round < kTracedRounds; ++round) {
        TraceContext trace;
        trace.trace_id = 0xB0B00000ull + static_cast<uint64_t>(round) + 1;
        trace.origin_ns = NowNanos();
        const auto& frame = net_frames[round % net_frames.size()];
        if (!sender->SendTracedBatch(frame, trace).ok()) std::abort();
        if (!sender->Ping().ok()) std::abort();
        auto response = sender->Query(request);
        if (!response.ok()) std::abort();
        benchmark::DoNotOptimize(response->value);
      }
      if (!sender->Finish().ok()) std::abort();
      server.Stop();
    }
    auto delta = [](const HistogramSnapshot& after,
                    const HistogramSnapshot& before) {
      HistogramSnapshot d;
      for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        d.buckets[i] = after.buckets[i] - before.buckets[i];
        d.count += d.buckets[i];
      }
      d.sum = after.sum - before.sum;
      return d;
    };
    const HistogramSnapshot i2q = delta(
        MetricsRegistry::Default().HistogramByName("ingest_to_queryable_ns"),
        i2q_before);
    const HistogramSnapshot query_lat = delta(
        MetricsRegistry::Default().HistogramByName("query_latency_ns"),
        query_before);
    // Every traced round must close the origin→publish loop, and every
    // query must land in the latency series.
    if (i2q.count < kTracedRounds) std::abort();
    if (query_lat.count < kTracedRounds) std::abort();
    ingest_to_queryable_p50_ms =
        static_cast<double>(i2q.Percentile(0.50)) / 1e6;
    ingest_to_queryable_p99_ms =
        static_cast<double>(i2q.Percentile(0.99)) / 1e6;
    query_latency_p99_us =
        static_cast<double>(query_lat.Percentile(0.99)) / 1e3;
    if (!std::isfinite(ingest_to_queryable_p99_ms) ||
        ingest_to_queryable_p99_ms <= 0.0) {
      std::abort();
    }
  }

  // --- finalize + estimate agreement across the three paths. --------------
  SeedServer seed_a(params, epsilon), seed_b(params, epsilon);
  for (const LdpReport& r : reports_a) seed_a.Absorb(r);
  for (const LdpReport& r : reports_b) seed_b.Absorb(r);
  seed_a.Finalize();
  seed_b.Finalize();
  const double estimate_seed = seed_a.JoinEstimate(seed_b);

  LdpJoinSketchServer scalar_a(params, epsilon), scalar_b(params, epsilon);
  for (const LdpReport& r : reports_a) scalar_a.Absorb(r);
  for (const LdpReport& r : reports_b) scalar_b.Absorb(r);
  scalar_a.Finalize();
  scalar_b.Finalize();
  const double estimate_scalar = scalar_a.JoinEstimate(scalar_b);

  LdpJoinSketchServer batch_a(params, epsilon), batch_b(params, epsilon);
  batch_a.AbsorbBatch(reports_a);
  batch_b.AbsorbBatch(reports_b);
  const auto finalize_start = Clock::now();
  batch_a.Finalize();
  const double finalize_ms = SecondsSince(finalize_start) * 1e3;
  batch_b.Finalize();
  const double estimate_batch = batch_a.JoinEstimate(batch_b);

  // Sharded service ingest of the same wire streams must reproduce the
  // batch estimate exactly (raw-lane exactness invariant).
  ShardedAggregator service_a(params, epsilon, service_shards);
  ShardedAggregator service_b(params, epsilon, service_shards);
  if (!service_a.IngestStream(wire_frames_a).ok()) std::abort();
  if (!service_b.IngestStream(wire_frames_b).ok()) std::abort();
  const LdpJoinSketchServer sharded_a = service_a.Finalize();
  const LdpJoinSketchServer sharded_b = service_b.Finalize();
  const double estimate_sharded = sharded_a.JoinEstimate(sharded_b);

  const double batch_vs_seed = batch_rps / seed_rps;
  const double estimate_rel_gap =
      std::abs(estimate_batch - estimate_seed) /
      std::max(1.0, std::abs(estimate_seed));

  std::printf("seed scalar absorb  : %.3e reports/sec\n", seed_rps);
  std::printf("scalar absorb       : %.3e reports/sec\n", scalar_rps);
  std::printf("batch absorb        : %.3e reports/sec (%.2fx vs seed)\n",
              batch_rps, batch_vs_seed);
  std::printf("seed ingest         : %.3e reports/sec\n", ingest_seed_rps);
  std::printf("batched ingest      : %.3e reports/sec (%.2fx)\n",
              ingest_block_rps, ingest_block_rps / ingest_seed_rps);
  std::printf("wire decode scalar  : %.3e reports/sec\n", decode_scalar_rps);
  std::printf("wire decode batch   : %.3e reports/sec (%.2fx)\n",
              decode_batch_rps, decode_batch_rps / decode_scalar_rps);
  std::printf("service 1 shard     : %.3e reports/sec\n", single_shard_rps);
  std::printf("service %zu shards    : %.3e reports/sec (%.2fx)\n",
              service_shards, sharded_rps, sharded_rps / single_shard_rps);
  std::printf("absorb fused/split  : %.3e / %.3e reports/sec (fused %.2fx)\n",
              absorb_fused_rps, absorb_split_rps,
              absorb_fused_rps / absorb_split_rps);
  std::printf("merge indexed/simd  : %.3e / %.3e lanes/sec (simd %.2fx)\n",
              merge_indexed_lps, merge_addlanes_lps,
              merge_addlanes_lps / merge_indexed_lps);
  std::printf("net ingest 1 pump   : %.3e reports/sec\n",
              net_single_pump_rps);
  std::printf("net ingest %zu pumps  : %.3e reports/sec (%.2fx)\n",
              service_shards, net_rps, net_rps / net_single_pump_rps);
  std::printf("snapshot shipping   : %.3e bytes/sec\n", snapshot_ship_bps);
  std::printf("stats push overhead : %.3f%% of ship throughput (budget 1%%)\n",
              stats_push_overhead_pct);
  std::printf("fleet merge         : %.0f ns per region snapshot\n",
              fleet_merge_ns);
  std::printf("windowed estimates  : %.3e queries/sec (cached %.2fx the "
              "re-merge view)\n",
              windowed_estimate_qps, view_cache_speedup);
  std::printf("published view reads: %.3e /sec (%.1fx the copying "
              "wrapper)\n",
              published_reads_per_sec, published_vs_copy_speedup);
  std::printf("query qps 1 thread  : %.3e\n", query_qps_1thread);
  std::printf("query qps %zu threads : %.3e (%.2fx)\n", query_threads,
              query_qps_nthreads, query_qps_scaling);
  std::printf("metrics record cost : %.2f ns/record (enabled minus "
              "disabled)\n",
              metrics_record_overhead_ns);
  std::printf("ingest→queryable    : p50 %.3f ms, p99 %.3f ms (traced "
              "loopback)\n",
              ingest_to_queryable_p50_ms, ingest_to_queryable_p99_ms);
  std::printf("query latency p99   : %.1f us\n", query_latency_p99_us);
  std::printf("finalize            : %.3f ms (k=%d, m=%d)\n", finalize_ms,
              params.k, params.m);
  std::printf("estimates           : seed=%.6e scalar=%.6e batch=%.6e\n",
              estimate_seed, estimate_scalar, estimate_batch);
  std::printf("batch == scalar     : %s; |batch-seed|/seed = %.2e\n",
              estimate_batch == estimate_scalar ? "yes" : "NO",
              estimate_rel_gap);
  std::printf("sharded == batch    : %s (sharded=%.6e)\n",
              estimate_sharded == estimate_batch ? "yes" : "NO",
              estimate_sharded);

  const std::vector<std::pair<std::string, double>> metrics = {
          {"reports", static_cast<double>(n)},
          {"seed_scalar_absorb_rps", seed_rps},
          {"scalar_absorb_rps", scalar_rps},
          {"batch_absorb_rps", batch_rps},
          {"batch_vs_seed_speedup", batch_vs_seed},
          {"batch_vs_scalar_speedup", batch_rps / scalar_rps},
          {"ingest_seed_rps", ingest_seed_rps},
          {"ingest_batched_rps", ingest_block_rps},
          {"ingest_batched_vs_seed_speedup",
           ingest_block_rps / ingest_seed_rps},
          {"wire_decode_scalar_rps", decode_scalar_rps},
          {"wire_decode_batch_rps", decode_batch_rps},
          {"wire_decode_speedup", decode_batch_rps / decode_scalar_rps},
          {"service_shards", static_cast<double>(service_shards)},
          {"service_single_shard_rps", single_shard_rps},
          {"service_sharded_rps", sharded_rps},
          {"service_sharded_vs_single_speedup",
           sharded_rps / single_shard_rps},
          {"estimate_sharded", estimate_sharded},
          {"estimate_sharded_equals_batch",
           estimate_sharded == estimate_batch ? 1.0 : 0.0},
          {"absorb_fused_rps", absorb_fused_rps},
          {"absorb_split_rps", absorb_split_rps},
          {"absorb_fused_vs_split_speedup",
           absorb_fused_rps / absorb_split_rps},
          {"merge_vector_indexed_lanes_per_sec", merge_indexed_lps},
          {"merge_addlanes_lanes_per_sec", merge_addlanes_lps},
          {"merge_addlanes_vs_indexed_speedup",
           merge_addlanes_lps / merge_indexed_lps},
          {"net_ingest_reports_per_sec", net_rps},
          {"net_ingest_single_pump_rps", net_single_pump_rps},
          {"net_ingest_multipump_speedup", net_rps / net_single_pump_rps},
          {"federation_snapshot_ship_bytes_per_sec", snapshot_ship_bps},
          {"stats_push_overhead_pct", stats_push_overhead_pct},
          {"fleet_merge_ns", fleet_merge_ns},
          {"central_windowed_estimate_per_sec", windowed_estimate_qps},
          {"central_view_cache_speedup", view_cache_speedup},
          {"rcu_published_reads_per_sec", published_reads_per_sec},
          {"rcu_published_vs_copy_speedup", published_vs_copy_speedup},
          {"query_qps_1thread", query_qps_1thread},
          {"query_qps_nthreads", query_qps_nthreads},
          {"query_qps_scaling", query_qps_scaling},
          {"query_threads", static_cast<double>(query_threads)},
          {"metrics_record_overhead_ns", metrics_record_overhead_ns},
          {"ingest_to_queryable_p50_ms", ingest_to_queryable_p50_ms},
          {"ingest_to_queryable_p99_ms", ingest_to_queryable_p99_ms},
          {"query_latency_p99_us", query_latency_p99_us},
          {"finalize_ms", finalize_ms},
          {"estimate_seed", estimate_seed},
          {"estimate_scalar", estimate_scalar},
          {"estimate_batch", estimate_batch},
          {"estimate_batch_equals_scalar",
           estimate_batch == estimate_scalar ? 1.0 : 0.0},
          {"estimate_batch_vs_seed_rel_gap", estimate_rel_gap},
  };

  // Bench hygiene: the keys earlier PRs established must stay present, so
  // the perf trajectory in CI artifacts remains comparable across PRs. A
  // rename or accidental drop fails the bench loudly instead of silently
  // truncating history.
  static constexpr const char* kRequiredKeys[] = {
      "reports", "seed_scalar_absorb_rps", "scalar_absorb_rps",
      "batch_absorb_rps", "batch_vs_seed_speedup", "batch_vs_scalar_speedup",
      "ingest_seed_rps", "ingest_batched_rps",
      "ingest_batched_vs_seed_speedup", "wire_decode_scalar_rps",
      "wire_decode_batch_rps", "wire_decode_speedup", "service_shards",
      "service_single_shard_rps", "service_sharded_rps",
      "service_sharded_vs_single_speedup", "estimate_sharded",
      "estimate_sharded_equals_batch", "absorb_fused_rps", "absorb_split_rps",
      "absorb_fused_vs_split_speedup", "merge_vector_indexed_lanes_per_sec",
      "merge_addlanes_lanes_per_sec", "merge_addlanes_vs_indexed_speedup",
      "net_ingest_reports_per_sec", "net_ingest_multipump_speedup",
      "federation_snapshot_ship_bytes_per_sec",
      "stats_push_overhead_pct", "fleet_merge_ns",
      "central_windowed_estimate_per_sec", "central_view_cache_speedup",
      "rcu_published_reads_per_sec", "rcu_published_vs_copy_speedup",
      "query_qps_1thread", "query_qps_scaling",
      "metrics_record_overhead_ns", "ingest_to_queryable_p50_ms",
      "ingest_to_queryable_p99_ms", "query_latency_p99_us",
      "finalize_ms",
      "estimate_seed", "estimate_scalar", "estimate_batch",
      "estimate_batch_equals_scalar", "estimate_batch_vs_seed_rel_gap",
  };
  for (const char* key : kRequiredKeys) {
    bool present = false;
    for (const auto& [name, value] : metrics) present |= name == key;
    if (!present) {
      std::fprintf(stderr, "BENCH_micro.json lost required key %s\n", key);
      std::abort();
    }
  }

  bench::WriteBenchJson(json_path, metrics);
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace
}  // namespace ldpjs

int main(int argc, char** argv) {
  bool listing_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_list_tests")) {
      listing_only = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!listing_only) ldpjs::RunIngestionComparison();
  return 0;
}
