// LDPJoinSketch+ (paper §V, Algorithm 3): the two-phase protocol that
// reduces hash-collision error by summarizing high- and low-frequency items
// in separate FAP sketches.
//
// Phase 1: a sampled fraction r of each table's users runs plain
// LDPJoinSketch; the server finds the frequent item set FI (union over both
// attributes, threshold θ) and broadcasts it.
// Phase 2: the remaining users are split into two groups per table; group 1
// builds the low-frequency sketch, group 2 the high-frequency sketch, both
// via FAP (each group spends the full ε by parallel composition). JoinEst
// removes the non-target mass from each sketch; the final estimate is the
// sum of the rescaled low and high estimates (Algorithm 3 line 6).
#ifndef LDPJS_CORE_LDP_JOIN_SKETCH_PLUS_H_
#define LDPJS_CORE_LDP_JOIN_SKETCH_PLUS_H_

#include <cstdint>

#include "core/join_est.h"
#include "core/params.h"
#include "core/simulation.h"
#include "data/column.h"

namespace ldpjs {

struct LdpJoinSketchPlusParams {
  SketchParams sketch;          ///< shape/seed used by both phases
  double epsilon = 4.0;         ///< per-report LDP budget ε
  double sample_rate = 0.1;     ///< r: fraction of users sampled for phase 1
  double threshold = 0.001;     ///< θ: frequent-item threshold (fraction)
  JoinEstOptions join_est;      ///< subtraction variant (see join_est.h)
  SimulationOptions simulation; ///< run seed / threads

  void Validate() const {
    sketch.Validate();
    LDPJS_CHECK(epsilon > 0.0);
    LDPJS_CHECK(sample_rate > 0.0 && sample_rate < 1.0);
    LDPJS_CHECK(threshold > 0.0 && threshold < 1.0);
  }
};

/// Estimate plus the diagnostics every experiment in §VII reports on.
struct LdpJoinSketchPlusResult {
  double estimate = 0.0;       ///< final |A ⋈ B| estimate
  double low_estimate = 0.0;   ///< rescaled LEst contribution
  double high_estimate = 0.0;  ///< rescaled HEst contribution
  size_t frequent_item_count = 0;
  double high_freq_mass_a = 0.0;  ///< estimated Σ_{d∈FI} f_A(d), full table
  double high_freq_mass_b = 0.0;
  uint64_t sample_rows_a = 0;  ///< |S_A|
  uint64_t sample_rows_b = 0;
  uint64_t group_rows_a[2] = {0, 0};  ///< |A1|, |A2|
  uint64_t group_rows_b[2] = {0, 0};
  double offline_seconds = 0.0;  ///< perturbation + sketch construction
  double online_seconds = 0.0;   ///< FI search + JoinEst
};

/// Runs the full two-phase protocol over the two private join columns.
/// Users are partitioned (sample / group 1 / group 2) by per-user coin flips
/// derived from the run seed, mirroring the paper's random user split.
LdpJoinSketchPlusResult EstimateJoinSizePlus(
    const Column& table_a, const Column& table_b,
    const LdpJoinSketchPlusParams& params);

}  // namespace ldpjs

#endif  // LDPJS_CORE_LDP_JOIN_SKETCH_PLUS_H_
