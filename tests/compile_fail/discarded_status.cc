// Negative-compile case: a dropped Status must not compile.
//
// Built twice by the configure-time suite in CMakeLists.txt: once as-is
// (the control, proving the scaffolding is valid C++) and once with
// -DLDPJS_EXPECT_FAIL, which swaps in the violation. The class-level
// [[nodiscard]] on Status plus -Werror=unused-result turns the silent
// drop into a hard error on both GCC and Clang.
#include "common/status.h"

namespace {
ldpjs::Status DoFallibleThing() { return ldpjs::Status::OK(); }
}  // namespace

int main() {
#ifdef LDPJS_EXPECT_FAIL
  DoFallibleThing();  // Status dropped on the floor.
#else
  (void)DoFallibleThing();  // The greppable opt-out compiles fine.
#endif
  return 0;
}
