#include "ldp/hcms.h"

#include <cmath>
#include <span>

#include "common/hadamard.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace ldpjs {

namespace {
std::vector<BucketHash> MakeBuckets(const HcmsParams& params) {
  // Same derivation as MakeRowHashes' bucket half so that tests can compare
  // structures; HCMS has no sign hash.
  std::vector<BucketHash> buckets;
  buckets.reserve(static_cast<size_t>(params.k));
  for (int j = 0; j < params.k; ++j) {
    const uint64_t row_seed =
        Mix64(params.seed ^
              (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(j) + 1)));
    buckets.emplace_back(Mix64(row_seed ^ 0xb7e151628aed2a6bULL),
                         static_cast<uint64_t>(params.m));
  }
  return buckets;
}
}  // namespace

HcmsClient::HcmsClient(const HcmsParams& params) : params_(params) {
  LDPJS_CHECK(params.epsilon > 0.0);
  LDPJS_CHECK(params.k >= 1);
  LDPJS_CHECK(IsPowerOfTwo(static_cast<uint64_t>(params.m)));
  flip_prob_ = 1.0 / (std::exp(params.epsilon) + 1.0);
  buckets_ = MakeBuckets(params);
}

HcmsReport HcmsClient::Perturb(uint64_t value, Xoshiro256& rng) const {
  HcmsReport report;
  report.j = static_cast<uint16_t>(rng.NextBounded(static_cast<uint64_t>(params_.k)));
  report.l = static_cast<uint32_t>(rng.NextBounded(static_cast<uint64_t>(params_.m)));
  const uint64_t bucket = buckets_[report.j](value);
  // One-hot at `bucket` with weight +1; after the Hadamard transform the
  // l-th coordinate is H_m[bucket, l], an O(1) lookup.
  int w = HadamardEntry(bucket, report.l);
  if (rng.NextBernoulli(flip_prob_)) w = -w;
  report.y = static_cast<int8_t>(w);
  return report;
}

HcmsServer::HcmsServer(const HcmsParams& params)
    : params_(params), buckets_(MakeBuckets(params)) {
  LDPJS_CHECK(params.epsilon > 0.0);
  LDPJS_CHECK(params.k >= 1);
  LDPJS_CHECK(params.m >= 2);
  LDPJS_CHECK(IsPowerOfTwo(static_cast<uint64_t>(params.m)));
  const double e = std::exp(params.epsilon);
  c_eps_ = (e + 1.0) / (e - 1.0);
  cells_.assign(static_cast<size_t>(params.k) * static_cast<size_t>(params.m),
                0.0);
}

void HcmsServer::Absorb(const HcmsReport& report) {
  LDPJS_CHECK(!finalized_);
  LDPJS_CHECK(report.j < params_.k);
  LDPJS_CHECK(report.l < static_cast<uint32_t>(params_.m));
  cells_[static_cast<size_t>(report.j) * static_cast<size_t>(params_.m) +
         report.l] += static_cast<double>(params_.k) * c_eps_ * report.y;
  ++total_;
}

void HcmsServer::Merge(const HcmsServer& other) {
  LDPJS_CHECK(!finalized_ && !other.finalized_);
  LDPJS_CHECK(params_.k == other.params_.k && params_.m == other.params_.m);
  LDPJS_CHECK(params_.seed == other.params_.seed);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void HcmsServer::Finalize() {
  LDPJS_CHECK(!finalized_);
  const size_t m = static_cast<size_t>(params_.m);
  const size_t rows = static_cast<size_t>(params_.k);
  SharedParallelFor(rows, cells_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      FastWalshHadamardTransform(std::span<double>(cells_.data() + j * m, m));
    }
  });
  finalized_ = true;
}

double HcmsServer::EstimateFrequency(uint64_t d) const {
  LDPJS_CHECK(finalized_);
  const double n = static_cast<double>(total_);
  const double m = static_cast<double>(params_.m);
  double acc = 0.0;
  for (int j = 0; j < params_.k; ++j) {
    const uint64_t bucket = buckets_[static_cast<size_t>(j)](d);
    acc += cells_[static_cast<size_t>(j) * static_cast<size_t>(params_.m) + bucket];
  }
  const double mean = acc / static_cast<double>(params_.k);
  return (mean - n / m) * m / (m - 1.0);
}

std::vector<double> HcmsServer::EstimateAllFrequencies(uint64_t domain) const {
  std::vector<double> out(domain);
  SharedParallelFor(static_cast<size_t>(domain),
                    static_cast<size_t>(domain) *
                        static_cast<size_t>(params_.k),
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t d = begin; d < end; ++d) {
                        out[d] = EstimateFrequency(static_cast<uint64_t>(d));
                      }
                    });
  return out;
}

std::vector<double> HcmsEstimateFrequencies(const Column& column,
                                            const HcmsParams& params,
                                            uint64_t run_seed) {
  HcmsClient client(params);
  HcmsServer server(params);
  Xoshiro256 rng(run_seed);
  for (uint64_t v : column.values()) {
    server.Absorb(client.Perturb(v, rng));
  }
  server.Finalize();
  return server.EstimateAllFrequencies(column.domain());
}

}  // namespace ldpjs
