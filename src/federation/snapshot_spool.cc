#include "federation/snapshot_spool.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace ldpjs {

namespace {

constexpr char kMagic[8] = {'L', 'J', 'S', 'S', 'P', 'O', 'O', 'L'};
constexpr uint32_t kSpoolVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 4;
/// u32 len + u8 type up front, u32 crc behind the payload.
constexpr size_t kRecordOverhead = 4 + 1 + 4;

enum RecordType : uint8_t {
  kSnapshot = 1,
  kAttempted = 2,
  kShipped = 3,
  kRenumber = 4,
  kTrace = 5,
};

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status ErrnoStatus(const std::string& op) {
  return Status::Internal(op + ": " + std::strerror(errno));
}

Status WriteFully(int fd, std::span<const uint8_t> bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("spool write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd) {
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("spool fdatasync");
  return Status::OK();
}

/// fsync the directory so a freshly created/renamed spool file survives a
/// crash of the whole machine, not just the process.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

std::vector<uint8_t> EncodeRecord(uint8_t type,
                                  std::span<const uint8_t> payload) {
  std::vector<uint8_t> record;
  record.reserve(kRecordOverhead + payload.size());
  PutU32(record, static_cast<uint32_t>(payload.size()));
  record.push_back(type);
  record.insert(record.end(), payload.begin(), payload.end());
  // CRC covers type + payload: a record whose length prefix lies lands on
  // a misaligned "crc" and fails the check, same as a torn tail.
  uint32_t crc = Crc32c({&type, 1});
  crc = Crc32c(payload, crc);
  PutU32(record, crc);
  return record;
}

}  // namespace

SnapshotSpool::~SnapshotSpool() { Close(); }

void SnapshotSpool::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SnapshotSpool::Open(const std::string& dir, uint32_t region_id,
                           std::vector<SpoolEntry>* recovered) {
  LDPJS_CHECK(fd_ < 0);
  LDPJS_CHECK(recovered != nullptr);
  recovered->clear();
  path_ = dir + "/region-" + std::to_string(region_id) + ".spool";
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("spool open " + path_);
  fd_ = fd;

  // Read the whole file: spool size is bounded by the pending queue after
  // every compaction, and recovery happens once per incarnation.
  std::vector<uint8_t> bytes;
  {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("spool fstat");
    bytes.resize(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::read(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("spool read");
      }
      if (n == 0) break;  // raced a truncate; treat the rest as torn
      off += static_cast<size_t>(n);
    }
    bytes.resize(off);
  }

  if (bytes.empty()) {
    // Fresh spool: write the header now so every later append is a pure
    // record and recovery can always demand a full header.
    std::vector<uint8_t> header(kMagic, kMagic + sizeof(kMagic));
    PutU32(header, kSpoolVersion);
    PutU32(header, region_id);
    LDPJS_RETURN_IF_ERROR(WriteFully(fd_, header));
    LDPJS_RETURN_IF_ERROR(SyncFd(fd_));
    SyncDir(dir);
    return Status::OK();
  }
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("spool " + path_ + ": bad header");
  }
  if (ReadU32(bytes.data() + sizeof(kMagic)) != kSpoolVersion) {
    return Status::Corruption("spool " + path_ + ": unknown version");
  }
  if (ReadU32(bytes.data() + sizeof(kMagic) + 4) != region_id) {
    return Status::Corruption("spool " + path_ + ": belongs to region " +
                              std::to_string(ReadU32(bytes.data() +
                                                     sizeof(kMagic) + 4)));
  }

  // Replay records until the first torn/corrupt one, which marks the crash
  // point — everything after it is the unreachable tail of a dead append.
  std::map<uint64_t, SpoolEntry> live;
  size_t off = kHeaderBytes;
  size_t valid_end = off;
  while (bytes.size() - off >= kRecordOverhead) {
    const uint32_t len = ReadU32(bytes.data() + off);
    if (bytes.size() - off < kRecordOverhead + len) break;  // torn tail
    const uint8_t type = bytes[off + 4];
    const uint8_t* payload = bytes.data() + off + 5;
    uint32_t crc = Crc32c({&type, 1});
    crc = Crc32c({payload, len}, crc);
    if (crc != ReadU32(payload + len)) break;  // torn or bit-flipped
    // A record from an unknown writer (future type, wrong payload shape)
    // cannot be interpreted; keep the prefix this reader understands and
    // treat the rest as the torn tail.
    const bool well_formed =
        (type == kSnapshot && len >= 8) ||
        ((type == kAttempted || type == kShipped) && len == 8) ||
        (type == kRenumber && len == 16) || (type == kTrace && len == 24);
    if (!well_formed) break;
    switch (type) {
      case kSnapshot: {
        SpoolEntry entry;
        entry.epoch = ReadU64(payload);
        entry.raw_sketch.assign(payload + 8, payload + len);
        live[entry.epoch] = std::move(entry);
        break;
      }
      case kAttempted:
        if (auto it = live.find(ReadU64(payload)); it != live.end()) {
          it->second.attempted = true;
        }
        break;
      case kShipped:
        live.erase(ReadU64(payload));
        break;
      case kRenumber: {
        auto it = live.find(ReadU64(payload));
        if (it != live.end()) {
          SpoolEntry entry = std::move(it->second);
          live.erase(it);
          entry.epoch = ReadU64(payload + 8);
          live[entry.epoch] = std::move(entry);
        }
        break;
      }
      case kTrace:
        if (auto it = live.find(ReadU64(payload)); it != live.end()) {
          it->second.trace_id = ReadU64(payload + 8);
          it->second.origin_ns = ReadU64(payload + 16);
        }
        break;
      default:
        break;
    }
    off += kRecordOverhead + len;
    valid_end = off;
  }
  if (valid_end < bytes.size()) {
    // Torn tail: cut it off so the next append starts at a record boundary.
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      return ErrnoStatus("spool ftruncate");
    }
  }

  for (auto& [epoch, entry] : live) {
    bytes_resumed_ += kRecordOverhead + 8 + entry.raw_sketch.size();
    recovered->push_back(std::move(entry));
  }
  epochs_resumed_ = recovered->size();
  live_entries_ = recovered->size();

  // Compact: the recovered live set becomes the whole file, dropping every
  // shipped/renumbered record a long-lived predecessor accumulated.
  std::map<uint64_t, SpoolEntry> compacted;
  for (const SpoolEntry& entry : *recovered) compacted[entry.epoch] = entry;
  LDPJS_RETURN_IF_ERROR(Compact(compacted));
  return Status::OK();
}

Status SnapshotSpool::Compact(const std::map<uint64_t, SpoolEntry>& live) {
  const std::string tmp_path = path_ + ".tmp";
  const int tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) return ErrnoStatus("spool compact open " + tmp_path);

  std::vector<uint8_t> out(kMagic, kMagic + sizeof(kMagic));
  PutU32(out, kSpoolVersion);
  // Carry the region id over from the current file's header.
  uint8_t region_bytes[4];
  if (::pread(fd_, region_bytes, 4, sizeof(kMagic) + 4) != 4) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("spool compact pread");
  }
  out.insert(out.end(), region_bytes, region_bytes + 4);
  for (const auto& [epoch, entry] : live) {
    std::vector<uint8_t> payload;
    payload.reserve(8 + entry.raw_sketch.size());
    PutU64(payload, epoch);
    payload.insert(payload.end(), entry.raw_sketch.begin(),
                   entry.raw_sketch.end());
    const std::vector<uint8_t> record = EncodeRecord(kSnapshot, payload);
    out.insert(out.end(), record.begin(), record.end());
    if (entry.trace_id != 0) {
      std::vector<uint8_t> trace_payload;
      trace_payload.reserve(24);
      PutU64(trace_payload, epoch);
      PutU64(trace_payload, entry.trace_id);
      PutU64(trace_payload, entry.origin_ns);
      const std::vector<uint8_t> trace = EncodeRecord(kTrace, trace_payload);
      out.insert(out.end(), trace.begin(), trace.end());
    }
    if (entry.attempted) {
      std::vector<uint8_t> attempted_payload;
      PutU64(attempted_payload, epoch);
      const std::vector<uint8_t> attempted =
          EncodeRecord(kAttempted, attempted_payload);
      out.insert(out.end(), attempted.begin(), attempted.end());
    }
  }
  Status status = WriteFully(tmp, out);
  if (status.ok()) status = SyncFd(tmp);
  if (!status.ok()) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return status;
  }
  // Atomic swap: either the old file or the fully-synced new one exists,
  // never a half-written spool.
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("spool compact rename");
  }
  const size_t slash = path_.find_last_of('/');
  SyncDir(slash == std::string::npos ? "." : path_.substr(0, slash));
  ::close(fd_);
  fd_ = tmp;
  if (::lseek(fd_, 0, SEEK_END) < 0) return ErrnoStatus("spool lseek");
  return Status::OK();
}

Status SnapshotSpool::AppendRecord(uint8_t type,
                                   std::span<const uint8_t> payload) {
  LDPJS_CHECK(fd_ >= 0);
  const std::vector<uint8_t> record = EncodeRecord(type, payload);
  LDPJS_RETURN_IF_ERROR(WriteFully(fd_, record));
  LDPJS_RETURN_IF_ERROR(SyncFd(fd_));
  bytes_written_ += record.size();
  return Status::OK();
}

Status SnapshotSpool::AppendSnapshot(uint64_t epoch,
                                     std::span<const uint8_t> raw_sketch) {
  std::vector<uint8_t> payload;
  payload.reserve(8 + raw_sketch.size());
  PutU64(payload, epoch);
  payload.insert(payload.end(), raw_sketch.begin(), raw_sketch.end());
  LDPJS_RETURN_IF_ERROR(AppendRecord(kSnapshot, payload));
  ++live_entries_;
  return Status::OK();
}

Status SnapshotSpool::RecordTrace(uint64_t epoch, uint64_t trace_id,
                                  uint64_t origin_ns) {
  std::vector<uint8_t> payload;
  payload.reserve(24);
  PutU64(payload, epoch);
  PutU64(payload, trace_id);
  PutU64(payload, origin_ns);
  return AppendRecord(kTrace, payload);
}

Status SnapshotSpool::MarkAttempted(uint64_t epoch) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  return AppendRecord(kAttempted, payload);
}

Status SnapshotSpool::MarkShipped(uint64_t epoch) {
  std::vector<uint8_t> payload;
  PutU64(payload, epoch);
  LDPJS_RETURN_IF_ERROR(AppendRecord(kShipped, payload));
  if (live_entries_ > 0) --live_entries_;
  if (live_entries_ == 0) {
    // The queue is drained: drop the accumulated history instead of
    // letting the file grow with the region's lifetime. Truncating to the
    // header is the cheap in-line compaction; the rename-based one runs at
    // recovery.
    if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0) {
      return ErrnoStatus("spool ftruncate");
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) return ErrnoStatus("spool lseek");
    LDPJS_RETURN_IF_ERROR(SyncFd(fd_));
  }
  return Status::OK();
}

Status SnapshotSpool::RecordRenumber(uint64_t old_epoch, uint64_t new_epoch) {
  std::vector<uint8_t> payload;
  PutU64(payload, old_epoch);
  PutU64(payload, new_epoch);
  return AppendRecord(kRenumber, payload);
}

}  // namespace ldpjs
