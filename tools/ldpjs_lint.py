#!/usr/bin/env python3
"""Project lint gate: repo-specific rules clang-tidy cannot express.

Run from anywhere inside the repo:

    python3 tools/ldpjs_lint.py

Exit code 0 means every rule passed; 1 means violations were printed, one
per line, as `path:line: [rule] message`. CI runs this in the
static-analysis job next to clang-tidy; the rules are cheap greps, so run
it locally before pushing.

Rules (each has a short slug used in the output):

  mutex-wrapper   src/ must use the annotated Mutex/MutexLock/CondVar
                  wrappers (src/common/thread_annotations.h) — never raw
                  std::mutex, std::lock_guard, std::unique_lock,
                  std::scoped_lock, or std::condition_variable. The wrapper
                  is what makes Clang Thread Safety Analysis see every
                  lock site; one raw mutex re-opens the blind spot.

  no-sleep        No raw this_thread::sleep_for in src/ outside the two
                  blessed timing primitives (Backoff and Socket's poll
                  helper). Ad-hoc sleeps are how flaky timing bugs start;
                  use Backoff, a CondVar wait, or a deadline instead.

  no-wall-clock   No wall-clock reads (system_clock, gettimeofday,
                  CLOCK_REALTIME, time(...)) in src/ outside the one
                  allow-listed trace-origin site (obs/metrics.cc
                  NowNanos). Epoch numbering and hot paths must use
                  steady_clock so a step in wall time cannot reorder
                  epochs or corrupt latency measurements.

  codec-test      Every `Decode*` codec declared in src/ headers must be
                  referenced from a test file that exercises trailing-byte
                  rejection (the file mentions "trailing"). Length-
                  transparent decoders silently accept garbage suffixes —
                  the exact bug class this repo's wire format tests pin.

  json-key-test   Every JSON key the NETMETRICS/stats exporters emit in
                  src/ must appear in some test. The stats JSON is a
                  consumer contract (`ldpjs_cli top` and external
                  scrapers parse it); an unasserted key can be renamed or
                  dropped without any test noticing.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"

# -- allow-lists -------------------------------------------------------------

# Blessed sleep sites: the jittered Backoff primitive and Socket's
# poll-retry helper. Everything else must wait on a CondVar or deadline.
SLEEP_ALLOWED = {
    "src/common/backoff.h",
    "src/common/socket.cc",
}

# Blessed wall-clock site: trace origins are wall time by design so
# cross-host trace spans line up (obs/metrics.h documents the contract).
WALL_CLOCK_ALLOWED = {
    "src/obs/metrics.cc",
}

# The wrapper header itself is the only file allowed to name the raw
# primitives it wraps.
MUTEX_ALLOWED = {
    "src/common/thread_annotations.h",
}

# -- helpers -----------------------------------------------------------------


def src_files():
    return sorted(p for p in SRC.rglob("*") if p.suffix in (".h", ".cc"))


def test_files():
    return sorted(TESTS.glob("*.cc"))


def strip_comments(line):
    """Drop //-comments so commented-out code cannot trip a rule."""
    return line.split("//", 1)[0]


def rel(path):
    return path.relative_to(REPO).as_posix()


# -- rules -------------------------------------------------------------------


def check_mutex_wrapper(violations):
    raw = re.compile(
        r"std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b"
    )
    for path in src_files():
        if rel(path) in MUTEX_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = raw.search(strip_comments(line))
            if match:
                violations.append(
                    f"{rel(path)}:{lineno}: [mutex-wrapper] raw std::"
                    f"{match.group(1)} — use the annotated wrappers in "
                    "common/thread_annotations.h"
                )


def check_no_sleep(violations):
    for path in src_files():
        if rel(path) in SLEEP_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "sleep_for" in strip_comments(line):
                violations.append(
                    f"{rel(path)}:{lineno}: [no-sleep] raw sleep_for — use "
                    "Backoff, a CondVar wait, or a deadline"
                )


def check_no_wall_clock(violations):
    wall = re.compile(
        r"system_clock|gettimeofday|CLOCK_REALTIME|(?<![A-Za-z0-9_])time\s*\("
    )
    for path in src_files():
        if rel(path) in WALL_CLOCK_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = wall.search(strip_comments(line))
            if match:
                violations.append(
                    f"{rel(path)}:{lineno}: [no-wall-clock] wall-clock read "
                    f"({match.group(0).strip()}) — use steady_clock, or "
                    "route trace origins through NowNanos()"
                )


def check_codec_tests(violations):
    decl = re.compile(r"\bDecode[A-Z][A-Za-z0-9_]*")
    codecs = {}  # name -> first declaring header:line
    for path in src_files():
        if path.suffix != ".h":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for name in decl.findall(strip_comments(line)):
                codecs.setdefault(name, f"{rel(path)}:{lineno}")
    tests = [(p, p.read_text()) for p in test_files()]
    for name, where in sorted(codecs.items()):
        covered = any(
            name in text and "trailing" in text.lower() for _, text in tests
        )
        if not covered:
            violations.append(
                f"{where}: [codec-test] {name} has no trailing-byte-"
                "rejection test — add one to tests/ referencing it"
            )


def check_json_key_tests(violations):
    # JSON keys appear in C++ string literals as \"key\": — collect every
    # key src/ emits, then require the bare token somewhere in tests/.
    key = re.compile(r'\\"([A-Za-z0-9_]+)\\":')
    keys = {}  # key -> first emitting file:line
    for path in src_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for k in key.findall(line):
                keys.setdefault(k, f"{rel(path)}:{lineno}")
    corpus = "\n".join(p.read_text() for p in test_files())
    tokens = set(re.findall(r"[A-Za-z0-9_]+", corpus))
    for k, where in sorted(keys.items()):
        if k not in tokens:
            violations.append(
                f"{where}: [json-key-test] stats JSON key \"{k}\" never "
                "appears in tests/ — assert it where the JSON is rendered"
            )


def main():
    violations = []
    check_mutex_wrapper(violations)
    check_no_sleep(violations)
    check_no_wall_clock(violations)
    check_codec_tests(violations)
    check_json_key_tests(violations)
    if violations:
        for v in violations:
            print(v)
        print(f"\nldpjs_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("ldpjs_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
