// Table II: dataset inventory. Prints the realized domain / rows / distinct
// counts / moments of every simulated workload next to the paper's numbers.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Table II: Information of Datasets (simulated) ==\n");
  std::printf("paper rows are scaled by LDPJS_SCALE_NUM/LDPJS_SCALE_DEN "
              "(default 1/10, cap LDPJS_MAX_ROWS)\n\n");
  PrintTableHeader({"dataset", "domain", "paper_rows", "gen_rows",
                    "distinct_A", "F2(A)", "exact_join"});
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const uint64_t rows = ScaledRows(spec.paper_rows);
    const JoinWorkload w = MakeWorkload(spec.id, rows, /*seed=*/1);
    const double join = ExactJoinSize(w.table_a, w.table_b);
    PrintTableRow({spec.name, std::to_string(spec.domain),
                   std::to_string(spec.paper_rows), std::to_string(rows),
                   std::to_string(w.table_a.CountDistinct()),
                   Sci(FrequencyMomentF2(w.table_a)), Sci(join)});
  }
  std::printf("\nshape check: domains match Table II exactly; distinct "
              "counts shrink with skew as in the paper.\n");
  return 0;
}
