// CRC32C (Castagnoli) over byte spans — the checksum guarding the regional
// snapshot spool's on-disk records. Software slice-by-one table
// implementation: the spool writes one record per epoch cut, so checksum
// throughput is irrelevant next to the fsync beside it; what matters is
// that a torn or bit-flipped record is detected at recovery, never
// replayed into the lanes.
#ifndef LDPJS_COMMON_CRC32C_H_
#define LDPJS_COMMON_CRC32C_H_

#include <cstdint>
#include <span>

namespace ldpjs {

/// CRC32C of `bytes`, continuing from `seed` (pass the previous call's
/// result to checksum a logical record split across buffers; start at 0).
uint32_t Crc32c(std::span<const uint8_t> bytes, uint32_t seed = 0);

}  // namespace ldpjs

#endif  // LDPJS_COMMON_CRC32C_H_
