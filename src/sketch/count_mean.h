// Count-Mean sketch: the server-side aggregation structure of Apple's CMS /
// HCMS (paper §II). Like Count-Min but rows are debiased by subtracting the
// expected collision mass n/m and rescaling by m/(m-1), then averaged
// (mean, not min) — which is what makes the private variant unbiased.
// This non-private version is a substrate for tests and for the HCMS
// baseline's reference behaviour.
#ifndef LDPJS_SKETCH_COUNT_MEAN_H_
#define LDPJS_SKETCH_COUNT_MEAN_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "data/column.h"

namespace ldpjs {

class CountMeanSketch {
 public:
  /// k rows, m columns; sketches sharing `seed` use the same bucket hashes.
  CountMeanSketch(uint64_t seed, int k, int m);

  /// Adds one occurrence of d to every row.
  void Update(uint64_t d);

  void UpdateColumn(const Column& column);

  /// Debiased frequency estimate:
  ///   f(d) ≈ mean_j ( M[j, h_j(d)] - n/m ) * m/(m-1).
  double FrequencyEstimate(uint64_t d) const;

  int k() const { return k_; }
  int m() const { return m_; }
  uint64_t total_count() const { return total_count_; }
  double cell(int row, int col) const {
    return cells_[static_cast<size_t>(row) * static_cast<size_t>(m_) +
                  static_cast<size_t>(col)];
  }

 private:
  int k_;
  int m_;
  uint64_t total_count_ = 0;
  std::vector<BucketHash> buckets_;
  std::vector<double> cells_;  // row-major k x m
};

}  // namespace ldpjs

#endif  // LDPJS_SKETCH_COUNT_MEAN_H_
