#include "federation/epoch_scheduler.h"

#include <utility>

#include "common/status.h"

namespace ldpjs {

EpochScheduler::EpochScheduler(std::chrono::milliseconds period,
                               std::function<void(uint64_t)> tick)
    : period_(period), tick_(std::move(tick)) {
  LDPJS_CHECK(tick_ != nullptr);
}

EpochScheduler::~EpochScheduler() { Stop(); }

void EpochScheduler::Start() {
  MutexLock lock(mu_);
  LDPJS_CHECK(!started_);
  started_ = true;
  thread_ = std::thread(&EpochScheduler::Loop, this);
}

void EpochScheduler::Loop() {
  MutexLock lock(mu_);
  for (;;) {
    if (period_.count() > 0) {
      // Periodic mode: a deadline expiry fires a tick just like a trigger.
      const auto deadline = std::chrono::steady_clock::now() + period_;
      while (!stopping_ && !trigger_pending_) {
        if (!cv_.WaitUntil(mu_, deadline)) break;
      }
    } else {
      while (!stopping_ && !trigger_pending_) cv_.Wait(mu_);
    }
    if (stopping_) return;
    // Fire: a period expiry and a pending trigger coalesce into one tick.
    trigger_pending_ = false;
    const uint64_t epoch = next_epoch_++;
    lock.Unlock();
    tick_(epoch);
    lock.Lock();
    ++completed_;
    cv_.NotifyAll();  // TriggerNow waiters
  }
}

void EpochScheduler::TriggerNow() {
  MutexLock lock(mu_);
  LDPJS_CHECK(started_);
  if (stopping_) return;
  trigger_pending_ = true;
  const uint64_t want = next_epoch_ + 1;
  cv_.NotifyAll();
  while (completed_ < want && !stopping_) cv_.Wait(mu_);
}

void EpochScheduler::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

uint64_t EpochScheduler::epochs_fired() const {
  MutexLock lock(mu_);
  return next_epoch_;
}

}  // namespace ldpjs
