// JoinEst (paper §V-C, Algorithm 5): join size estimation from a pair of
// FAP sketches after removing the uniform contribution of non-target
// reports (Theorem 8: |NT|/m per cell).
#ifndef LDPJS_CORE_JOIN_EST_H_
#define LDPJS_CORE_JOIN_EST_H_

#include "core/fap.h"
#include "core/ldp_join_sketch.h"

namespace ldpjs {

struct JoinEstOptions {
  /// Algorithm 5 subtracts the *full-table* estimated non-target mass
  /// (HighFreq_A) even though each phase-2 sketch only aggregates one user
  /// group. The unbiased quantity is the group-scaled mass
  /// HighFreq_A · |group|/|table| (see DESIGN.md deviation #2). False (the
  /// default) uses the group-scaled subtraction; true reproduces the
  /// paper's literal pseudo-code for comparison (bench_ablation).
  bool paper_literal_subtraction = false;
};

/// Per-attribute inputs to JoinEst.
struct JoinEstSide {
  const LdpJoinSketchServer* sketch = nullptr;  ///< finalized FAP sketch
  double high_freq_mass = 0.0;  ///< estimated full-table Σ_{d∈FI} f(d)
  double table_rows = 0.0;      ///< |A| (full table)
  double group_rows = 0.0;      ///< rows aggregated into `sketch` (|A1|/|A2|)
};

/// Algorithm 5. `mode` selects which reports were targets in the sketches:
/// kLow removes the high-frequency (FI) mass, kHigh removes the rest.
/// Returns the *unscaled* group-level estimate (the caller applies the
/// |A||B|/(|A1||B1|) scale of Algorithm 3 line 6). Copies the sketches so
/// the inputs stay valid.
double JoinEst(const JoinEstSide& side_a, const JoinEstSide& side_b,
               FapMode mode, const JoinEstOptions& options = {});

}  // namespace ldpjs

#endif  // LDPJS_CORE_JOIN_EST_H_
