#include "data/column.h"

#include <gtest/gtest.h>

namespace ldpjs {
namespace {

TEST(ColumnTest, BasicAccessors) {
  Column c({1, 2, 2, 3}, 10);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.domain(), 10u);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c[1], 2u);
}

TEST(ColumnTest, DefaultIsEmpty) {
  Column c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

TEST(ColumnDeathTest, ValueOutsideDomainAborts) {
  EXPECT_DEATH(Column({5}, 5), "LDPJS_CHECK failed");
}

TEST(ColumnTest, FrequenciesCountOccurrences) {
  Column c({0, 1, 1, 3, 3, 3}, 5);
  const auto freq = c.Frequencies();
  ASSERT_EQ(freq.size(), 5u);
  EXPECT_EQ(freq[0], 1u);
  EXPECT_EQ(freq[1], 2u);
  EXPECT_EQ(freq[2], 0u);
  EXPECT_EQ(freq[3], 3u);
  EXPECT_EQ(freq[4], 0u);
}

TEST(ColumnTest, CountDistinct) {
  Column c({0, 1, 1, 3, 3, 3}, 5);
  EXPECT_EQ(c.CountDistinct(), 3u);
}

TEST(ColumnTest, PrefixTakesFirstN) {
  Column c({9, 8, 7, 6}, 10);
  const Column p = c.Prefix(2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 9u);
  EXPECT_EQ(p[1], 8u);
  EXPECT_EQ(p.domain(), 10u);
}

TEST(ColumnTest, PrefixClampedToSize) {
  Column c({1, 2}, 10);
  EXPECT_EQ(c.Prefix(100).size(), 2u);
}

TEST(ColumnTest, SplitCoversAllRows) {
  Column c({0, 1, 2, 3, 4, 5, 6}, 10);
  const auto parts = c.Split(3);
  ASSERT_EQ(parts.size(), 3u);
  size_t total = 0;
  for (const Column& p : parts) {
    total += p.size();
    EXPECT_EQ(p.domain(), 10u);
  }
  EXPECT_EQ(total, c.size());
  // Order preserved: first part starts with the first values.
  EXPECT_EQ(parts[0][0], 0u);
}

TEST(ColumnTest, SplitIntoOnePartIsCopy) {
  Column c({3, 1, 4}, 5);
  const auto parts = c.Split(1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].values(), c.values());
}

TEST(ColumnTest, AppendGrowsAndValidates) {
  Column c({1}, 4);
  c.Append(3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1], 3u);
  EXPECT_DEATH(c.Append(4), "LDPJS_CHECK failed");
}

}  // namespace
}  // namespace ldpjs
