// Apple's Hadamard Count-Mean Sketch (HCMS, paper §II/§III-C, [9]).
//
// Client: encode the value as a one-hot row v[h_j(d)] = 1 of a sampled
// sketch row j, Hadamard-transform, sample one coordinate l, flip its sign
// with probability 1/(e^ε + 1), send (y, j, l) — a single ±1 plus indices.
// Server: accumulate k·c_ε·y at [j, l], rotate rows back with H_m, and
// answer debiased frequency queries.
//
// This is the closest prior mechanism to LDPJoinSketch — the only difference
// is the encoding v[h_j(d)] = 1 instead of ξ_j(d) (paper §IV-A), which is
// why HCMS supports frequencies but not sign-correct join inner products.
#ifndef LDPJS_LDP_HCMS_H_
#define LDPJS_LDP_HCMS_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "data/column.h"

namespace ldpjs {

struct HcmsParams {
  double epsilon = 1.0;
  int k = 18;    ///< sketch rows
  int m = 1024;  ///< sketch columns; must be a power of two
  uint64_t seed = 1;
};

/// One perturbed user report: the sampled ±1 and the sketch coordinates.
struct HcmsReport {
  int8_t y;    // ±1
  uint16_t j;  // row index in [0, k)
  uint32_t l;  // Hadamard coordinate in [0, m)
};

class HcmsClient {
 public:
  explicit HcmsClient(const HcmsParams& params);

  HcmsReport Perturb(uint64_t value, Xoshiro256& rng) const;

  const HcmsParams& params() const { return params_; }

 private:
  HcmsParams params_;
  double flip_prob_;  // 1 / (e^eps + 1)
  std::vector<BucketHash> buckets_;
};

class HcmsServer {
 public:
  explicit HcmsServer(const HcmsParams& params);

  void Absorb(const HcmsReport& report);

  /// Adds another server's raw (pre-finalize) sketch; both must share params.
  void Merge(const HcmsServer& other);

  /// Rotates the sketch back (M ← M · H_m per row). Absorb is invalid after.
  void Finalize();

  /// Debiased frequency estimate; requires Finalize().
  ///   f̂(d) = (m/(m-1)) · ( mean_j M[j, h_j(d)] − n/m ).
  double EstimateFrequency(uint64_t d) const;

  /// Frequencies for the whole domain. O(domain · k).
  std::vector<double> EstimateAllFrequencies(uint64_t domain) const;

  uint64_t total_reports() const { return total_; }
  bool finalized() const { return finalized_; }
  size_t ByteSize() const { return cells_.size() * sizeof(double); }

 private:
  HcmsParams params_;
  double c_eps_;
  uint64_t total_ = 0;
  bool finalized_ = false;
  std::vector<BucketHash> buckets_;
  std::vector<double> cells_;  // row-major k x m
};

/// End-to-end helper: perturb all of `column`, return calibrated frequencies.
std::vector<double> HcmsEstimateFrequencies(const Column& column,
                                            const HcmsParams& params,
                                            uint64_t run_seed);

}  // namespace ldpjs

#endif  // LDPJS_LDP_HCMS_H_
