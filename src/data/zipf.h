// Zipf-distributed column generator (paper §VII-A dataset (1)):
// Pr[value has rank x] = (1/x^alpha) / sum_{n=1..D} (1/n^alpha).
// Ranks are mapped to domain ids by a seeded permutation-free identity
// (rank r -> id r-1); hash-based methods are invariant to the labeling.
#ifndef LDPJS_DATA_ZIPF_H_
#define LDPJS_DATA_ZIPF_H_

#include <cstdint>

#include "data/column.h"

namespace ldpjs {

struct ZipfParams {
  double alpha = 1.1;     ///< skewness; larger = more skewed
  uint64_t domain = 3'000'000;  ///< number of ranks D
  uint64_t rows = 1'000'000;    ///< values to draw
  uint64_t seed = 1;
};

/// Draws `rows` iid Zipf(alpha) values over [0, domain).
Column GenerateZipf(const ZipfParams& params);

}  // namespace ldpjs

#endif  // LDPJS_DATA_ZIPF_H_
