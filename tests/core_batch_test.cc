// Batched ingestion pipeline: the batch APIs must be *identical* to the
// scalar paths (not just distributionally equal), integer-lane state must
// round-trip and merge bit-exactly, and the versioned wire format must
// reject pre-integer-lane buffers with a clear error instead of parsing
// garbage.
#include <cstring>

#include <gtest/gtest.h>

#include "core/fap.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

namespace ldpjs {
namespace {

SketchParams TestParams(int k = 6, int m = 256, uint64_t seed = 77) {
  SketchParams params;
  params.k = k;
  params.m = m;
  params.seed = seed;
  return params;
}

std::vector<uint64_t> TestValues(size_t n, uint64_t domain) {
  std::vector<uint64_t> values(n);
  Xoshiro256 rng(123);
  for (auto& v : values) v = rng.NextBounded(domain);
  return values;
}

TEST(PerturbBatchTest, MatchesScalarPerturbSequence) {
  const SketchParams params = TestParams();
  LdpJoinSketchClient client(params, 2.0);
  const auto values = TestValues(5000, 97);
  std::vector<LdpReport> batch(values.size());
  Xoshiro256 rng_batch(9), rng_scalar(9);
  client.PerturbBatch(values, batch, rng_batch);
  for (size_t i = 0; i < values.size(); ++i) {
    const LdpReport scalar = client.Perturb(values[i], rng_scalar);
    ASSERT_EQ(batch[i].j, scalar.j) << "i=" << i;
    ASSERT_EQ(batch[i].l, scalar.l) << "i=" << i;
    ASSERT_EQ(batch[i].y, scalar.y) << "i=" << i;
  }
  // Both engines end in the same state: the next draw agrees.
  EXPECT_EQ(rng_batch(), rng_scalar());
}

TEST(PerturbBatchTest, FapBatchMatchesScalarSequence) {
  const SketchParams params = TestParams();
  const std::unordered_set<uint64_t> fi{1, 2, 3, 50};
  FapClient client(params, 2.0, FapMode::kLow, fi);
  const auto values = TestValues(5000, 97);  // mix of targets and non-targets
  std::vector<LdpReport> batch(values.size());
  Xoshiro256 rng_batch(11), rng_scalar(11);
  client.PerturbBatch(values, batch, rng_batch);
  for (size_t i = 0; i < values.size(); ++i) {
    const LdpReport scalar = client.Perturb(values[i], rng_scalar);
    ASSERT_EQ(batch[i].j, scalar.j) << "i=" << i;
    ASSERT_EQ(batch[i].l, scalar.l) << "i=" << i;
    ASSERT_EQ(batch[i].y, scalar.y) << "i=" << i;
  }
}

TEST(AbsorbBatchTest, MatchesScalarAbsorbExactly) {
  const SketchParams params = TestParams();
  LdpJoinSketchClient client(params, 2.0);
  const auto values = TestValues(20000, 150);
  std::vector<LdpReport> reports(values.size());
  Xoshiro256 rng(5);
  client.PerturbBatch(values, reports, rng);

  LdpJoinSketchServer scalar(params, 2.0), batch(params, 2.0);
  for (const LdpReport& r : reports) scalar.Absorb(r);
  batch.AbsorbBatch(reports);

  EXPECT_EQ(scalar.total_reports(), batch.total_reports());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(scalar.lane(j, x), batch.lane(j, x)) << j << "," << x;
    }
  }

  // Finalized queries agree bit for bit, and against a second sketch the
  // join estimates are identical, not merely close.
  LdpJoinSketchServer other(params, 2.0);
  Xoshiro256 rng_other(6);
  std::vector<LdpReport> other_reports(8000);
  const auto other_values = TestValues(8000, 150);
  client.PerturbBatch(other_values, other_reports, rng_other);
  other.AbsorbBatch(other_reports);

  scalar.Finalize();
  batch.Finalize();
  other.Finalize();
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(scalar.cell(j, x), batch.cell(j, x));
    }
  }
  EXPECT_EQ(scalar.JoinEstimate(other), batch.JoinEstimate(other));
  EXPECT_EQ(scalar.FrequencyEstimate(42), batch.FrequencyEstimate(42));
}

TEST(AbsorbBatchTest, EmptyBatchIsANoOp) {
  LdpJoinSketchServer server(TestParams(), 1.0);
  server.AbsorbBatch({});
  EXPECT_EQ(server.total_reports(), 0u);
}

TEST(IntegerLaneTest, SerializeDeserializeMergeBitExact) {
  const SketchParams params = TestParams(4, 128);
  LdpJoinSketchClient client(params, 1.5);
  LdpJoinSketchServer part1(params, 1.5), part2(params, 1.5),
      direct(params, 1.5);
  Xoshiro256 rng(21);
  for (int i = 0; i < 10000; ++i) {
    const LdpReport r = client.Perturb(static_cast<uint64_t>(i % 63), rng);
    (i % 2 == 0 ? part1 : part2).Absorb(r);
    direct.Absorb(r);
  }

  // Raw-lane round trip is bit-exact.
  const auto bytes1 = part1.Serialize();
  auto restored1 = LdpJoinSketchServer::Deserialize(bytes1);
  ASSERT_TRUE(restored1.ok()) << restored1.status().ToString();
  EXPECT_FALSE(restored1->finalized());
  EXPECT_EQ(restored1->total_reports(), part1.total_reports());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(restored1->lane(j, x), part1.lane(j, x));
    }
  }
  // Re-serializing the restored sketch reproduces the same bytes.
  EXPECT_EQ(restored1->Serialize(), bytes1);

  // Merging deserialized shards equals absorbing everything directly —
  // integer lanes make distributed aggregation lossless.
  auto restored2 = LdpJoinSketchServer::Deserialize(part2.Serialize());
  ASSERT_TRUE(restored2.ok());
  restored1->Merge(*restored2);
  EXPECT_EQ(restored1->total_reports(), direct.total_reports());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(restored1->lane(j, x), direct.lane(j, x));
    }
  }
  restored1->Finalize();
  direct.Finalize();
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(restored1->cell(j, x), direct.cell(j, x));
    }
  }
}

TEST(IntegerLaneTest, OldFormatDecodeFailsWithClearError) {
  // A v1 buffer: no magic, leads with k and carries double cells.
  BinaryWriter writer;
  writer.PutU32(3);    // k
  writer.PutU32(64);   // m
  writer.PutU64(5);    // seed
  writer.PutDouble(2.0);
  writer.PutU64(100);  // total
  writer.PutU8(0);     // finalized
  std::vector<double> cells(3 * 64, 0.0);
  writer.PutDoubleVector(cells);
  auto result = LdpJoinSketchServer::Deserialize(writer.buffer());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("magic"), std::string::npos)
      << result.status().ToString();
}

TEST(IntegerLaneTest, VersionMismatchRejected) {
  LdpJoinSketchServer server(TestParams(2, 64), 1.0);
  auto bytes = server.Serialize();
  bytes[4] = 99;  // version byte follows the 4-byte magic
  auto result = LdpJoinSketchServer::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(ReportCodecTest, RejectsNonBinarySignByte) {
  BinaryWriter writer;
  writer.PutU8(2);  // not a valid ±1 encoding
  writer.PutU32(1);
  writer.PutU32(5);
  BinaryReader reader(writer.buffer());
  auto result = DecodeReport(reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(ReportCodecTest, StrictRoundTripBothSigns) {
  for (int8_t y : {int8_t{1}, int8_t{-1}}) {
    BinaryWriter writer;
    EncodeReport(LdpReport{y, 3, 9}, writer);
    BinaryReader reader(writer.buffer());
    auto decoded = DecodeReport(reader);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->y, y);
  }
}

TEST(ReportCodecDeathTest, EncodingNonUnitSignAborts) {
  BinaryWriter writer;
  EXPECT_DEATH(EncodeReport(LdpReport{0, 0, 0}, writer),
               "LDPJS_CHECK failed");
}

TEST(AbsorbBatchDeathTest, InvalidReportsAbortBeforeMutation) {
  LdpJoinSketchServer server(TestParams(2, 64), 1.0);
  const LdpReport bad_row{1, 7, 0};
  EXPECT_DEATH(server.AbsorbBatch(std::span<const LdpReport>(&bad_row, 1)),
               "LDPJS_CHECK failed");
  const LdpReport bad_sign{0, 0, 0};
  EXPECT_DEATH(server.AbsorbBatch(std::span<const LdpReport>(&bad_sign, 1)),
               "LDPJS_CHECK failed");
  EXPECT_DEATH(server.Absorb(bad_sign), "LDPJS_CHECK failed");
}

TEST(BlockStreamTest, PipelineBitIdenticalAcrossThreadCounts) {
  // Block-indexed RNG streams + integer-lane merge: the built sketch is
  // bit-identical for any thread count, not merely close.
  const SketchParams params = TestParams(6, 256);
  const JoinWorkload w = MakeZipfWorkload(1.4, 300, 30000, 23);
  SimulationOptions sim1;
  sim1.run_seed = 77;
  sim1.num_threads = 1;
  SimulationOptions sim4 = sim1;
  sim4.num_threads = 4;
  const LdpJoinSketchServer s1 =
      BuildLdpJoinSketch(w.table_a, params, 3.0, sim1);
  const LdpJoinSketchServer s4 =
      BuildLdpJoinSketch(w.table_a, params, 3.0, sim4);
  EXPECT_EQ(s1.total_reports(), s4.total_reports());
  for (int j = 0; j < params.k; ++j) {
    for (int x = 0; x < params.m; ++x) {
      ASSERT_EQ(s1.cell(j, x), s4.cell(j, x));
    }
  }
}

}  // namespace
}  // namespace ldpjs
