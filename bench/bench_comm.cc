// Fig. 7: total client → server communication (bits) on Zipf(1.1) and
// MovieLens; eps = 4, (k, m) = (18, 1024). Expected shape:
// LDPJoinSketch ≈ Apple-HCMS (one ±1 plus indices per user) << k-RR
// (log2 |D| per user) and FLH (hash index + g-ary value per user).
#include <cstdio>

#include "bench_util.h"
#include "ldp/frequency_oracle.h"
#include "ldp/olh.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 7: communication cost (total bits), eps=4, k=18, "
              "m=1024 ==\n\n");
  const int k = 18, m = 1024;
  const uint32_t flh_pool = 1024;
  FlhParams flh;
  flh.epsilon = 4.0;
  flh.pool_size = flh_pool;
  const uint32_t g = FlhClient(flh).g();

  PrintTableHeader({"dataset", "method", "bits_per_user", "total_bits"});
  for (DatasetId id : {DatasetId::kZipf, DatasetId::kMovieLens}) {
    const DatasetSpec spec = GetDatasetSpec(id);
    const uint64_t rows = ScaledRows(spec.paper_rows);
    const double users = 2.0 * static_cast<double>(rows);  // both tables
    struct Entry {
      const char* name;
      double bits;
    };
    const Entry entries[] = {
        {"k-RR", CommCostModel::KrrBitsPerUser(spec.domain)},
        {"Apple-HCMS", CommCostModel::HadamardSketchBitsPerUser(k, m)},
        {"FLH", CommCostModel::FlhBitsPerUser(flh_pool, g)},
        {"LDPJoinSketch", CommCostModel::HadamardSketchBitsPerUser(k, m)},
    };
    for (const Entry& e : entries) {
      PrintTableRow({spec.name, e.name, Fixed(e.bits, 0),
                     Sci(e.bits * users)});
    }
  }
  std::printf("\nshape check: sketch methods transmit ~15 bits/user vs ~22 "
              "(Zipf |D|=3M) for k-RR; FLH sits between.\n");
  return 0;
}
