// Observability structs for the TCP front end. FrameServer::metrics()
// returns a consistent snapshot; the CLI `serve` subcommand dumps it when
// the session finishes.
#ifndef LDPJS_NET_NET_METRICS_H_
#define LDPJS_NET_NET_METRICS_H_

#include <cstdint>
#include <vector>

namespace ldpjs {

/// Per-connection counters (one row per connection ever accepted).
struct ConnectionMetrics {
  uint64_t id = 0;
  bool active = false;                   ///< reader thread still running
  uint64_t frames_received = 0;          ///< well-formed transport frames
  uint64_t bytes_received = 0;           ///< transport bytes (header+payload)
  uint64_t reports_ingested = 0;         ///< reports absorbed into lanes
  uint64_t corrupt_frames_rejected = 0;  ///< transport- or envelope-level
  uint64_t frames_shed = 0;              ///< DATA refused with a busy ack
  uint64_t queue_high_water = 0;         ///< max ingest-queue depth seen
};

/// Per-shard counters mirrored from the aggregation tier.
struct ShardMetrics {
  uint64_t frames = 0;
  uint64_t reports = 0;
};

struct NetMetrics {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t handshakes_rejected = 0;  ///< HELLO with mismatched params
  // Totals over all connections (sum of the rows below).
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  uint64_t reports_ingested = 0;
  uint64_t corrupt_frames_rejected = 0;
  uint64_t frames_shed = 0;
  uint64_t queue_high_water = 0;  ///< max over connections
  std::vector<ConnectionMetrics> connections;
  std::vector<ShardMetrics> shards;
};

}  // namespace ldpjs

#endif  // LDPJS_NET_NET_METRICS_H_
