#include "net/protocol.h"

#include "core/ldp_join_sketch.h"

namespace ldpjs {

namespace {

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(NetFrameType::kHello) &&
         type <= static_cast<uint8_t>(NetFrameType::kFleetStats);
}

}  // namespace

std::vector<uint8_t> EncodeHello(const SessionHello& hello) {
  BinaryWriter writer;
  writer.PutU32(kNetMagic);
  writer.PutU8(hello.version);
  writer.PutU32(hello.k);
  writer.PutU32(hello.m);
  writer.PutU64(hello.seed);
  writer.PutDouble(hello.epsilon);
  writer.PutU8(hello.has_region ? 1 : 0);
  writer.PutU32(hello.region_id);
  return writer.TakeBuffer();
}

Result<SessionHello> DecodeHello(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kNetMagic) {
    return Status::Corruption("missing LJSP protocol magic");
  }
  auto version = reader.GetU8();
  if (!version.ok()) return version.status();
  // The HELLO layout is identical across every version we speak, so any
  // version in [kNetMinVersion, kNetVersion] parses; the server answers
  // with the negotiated minimum. Anything outside the band is rejected —
  // a future layout change could not be parsed here anyway.
  if (*version < kNetMinVersion || *version > kNetVersion) {
    return Status::Corruption("unsupported LJSP protocol version " +
                              std::to_string(*version));
  }
  SessionHello hello;
  hello.version = *version;
  auto k = reader.GetU32();
  if (!k.ok()) return k.status();
  auto m = reader.GetU32();
  if (!m.ok()) return m.status();
  auto seed = reader.GetU64();
  if (!seed.ok()) return seed.status();
  auto epsilon = reader.GetDouble();
  if (!epsilon.ok()) return epsilon.status();
  auto has_region = reader.GetU8();
  if (!has_region.ok()) return has_region.status();
  if (*has_region > 1) {
    return Status::Corruption("HELLO region flag is not 0 or 1");
  }
  auto region = reader.GetU32();
  if (!region.ok()) return region.status();
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes after HELLO");
  hello.k = *k;
  hello.m = *m;
  hello.seed = *seed;
  hello.epsilon = *epsilon;
  hello.has_region = *has_region != 0;
  hello.region_id = *region;
  return hello;
}

std::vector<uint8_t> EncodeHelloOk(const SessionHelloOk& ok) {
  BinaryWriter writer;
  writer.PutU8(ok.version);
  writer.PutU32(ok.num_shards);
  writer.PutU8(ok.acked_data ? 1 : 0);
  writer.PutU64(ok.region_next_epoch);
  return writer.TakeBuffer();
}

Result<SessionHelloOk> DecodeHelloOk(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto version = reader.GetU8();
  if (!version.ok()) return version.status();
  auto shards = reader.GetU32();
  if (!shards.ok()) return shards.status();
  auto acked = reader.GetU8();
  if (!acked.ok()) return acked.status();
  auto next_epoch = reader.GetU64();
  if (!next_epoch.ok()) return next_epoch.status();
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after HELLO_OK");
  }
  SessionHelloOk ok;
  ok.version = *version;
  ok.num_shards = *shards;
  ok.acked_data = *acked != 0;
  ok.region_next_epoch = *next_epoch;
  return ok;
}

std::vector<uint8_t> EncodeEpochPushAck(const EpochPushAck& ack) {
  BinaryWriter writer;
  writer.PutU8(static_cast<uint8_t>(ack.code));
  writer.PutU64(ack.next_epoch);
  return writer.TakeBuffer();
}

Result<EpochPushAck> DecodeEpochPushAck(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto code = reader.GetU8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<uint8_t>(EpochPushAckCode::kDuplicate)) {
    return Status::Corruption("unknown EPOCH_PUSH_OK code");
  }
  auto next_epoch = reader.GetU64();
  if (!next_epoch.ok()) return next_epoch.status();
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after EPOCH_PUSH_OK");
  }
  EpochPushAck ack;
  ack.code = static_cast<EpochPushAckCode>(*code);
  ack.next_epoch = *next_epoch;
  return ack;
}

std::vector<uint8_t> EncodeEpochPush(uint32_t region_id, uint64_t epoch,
                                     std::span<const uint8_t> raw_sketch) {
  std::vector<uint8_t> payload;
  payload.reserve(kEpochPushHeaderBytes + raw_sketch.size());
  for (int shift = 0; shift < 32; shift += 8) {
    payload.push_back(static_cast<uint8_t>(region_id >> shift));
  }
  for (int shift = 0; shift < 64; shift += 8) {
    payload.push_back(static_cast<uint8_t>(epoch >> shift));
  }
  payload.insert(payload.end(), raw_sketch.begin(), raw_sketch.end());
  return payload;
}

Result<EpochPush> DecodeEpochPush(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto region = reader.GetU32();
  if (!region.ok()) return region.status();
  auto epoch = reader.GetU64();
  if (!epoch.ok()) return epoch.status();
  // Zero sketch bytes are legal: the empty-epoch heartbeat, advancing the
  // region's epoch clock without shipping (or merging) any lanes.
  auto sketch = reader.GetRaw(reader.remaining());
  if (!sketch.ok()) return sketch.status();
  EpochPush push;
  push.region_id = *region;
  push.epoch = *epoch;
  push.raw_sketch = *sketch;
  return push;
}

size_t EpochPushPayloadBound(const SketchParams& params) {
  // Measure the real serializer instead of hand-duplicating its layout —
  // if Serialize() ever grows a field, the bound grows with it and a
  // well-formed push can never be rejected as oversized. A raw sketch's
  // size is fully determined by the shape (epsilon only changes values),
  // and this runs once per server construction, so the transient k·m
  // allocation is irrelevant.
  const size_t sketch_bytes =
      LdpJoinSketchServer(params, /*epsilon=*/1.0).Serialize().size();
  return kEpochPushHeaderBytes + sketch_bytes;
}

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request) {
  BinaryWriter writer;
  writer.PutU8(static_cast<uint8_t>(request.kind));
  switch (request.kind) {
    case QueryKind::kJoinSize:
      writer.PutFrame(request.probe_sketch);
      break;
    case QueryKind::kFrequency:
      writer.PutU64(request.key);
      break;
    case QueryKind::kFrequentItems:
      writer.PutU64(request.domain);
      writer.PutDouble(request.threshold);
      break;
    case QueryKind::kMultiwayChain:
      writer.PutU32(static_cast<uint32_t>(request.middles.size()));
      for (const auto& middle : request.middles) writer.PutFrame(middle);
      writer.PutFrame(request.probe_sketch);
      break;
    case QueryKind::kRangeCount:
      writer.PutU64(request.range_lo);
      writer.PutU64(request.range_hi);
      break;
    case QueryKind::kPredicateJoin:
      writer.PutU64(request.range_lo);
      writer.PutU64(request.range_hi);
      writer.PutFrame(request.probe_sketch);
      break;
  }
  return writer.TakeBuffer();
}

Result<QueryRequest> DecodeQueryRequest(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto kind = reader.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<uint8_t>(QueryKind::kPredicateJoin)) {
    return Status::Corruption("unknown query kind " + std::to_string(*kind));
  }
  QueryRequest request;
  request.kind = static_cast<QueryKind>(*kind);
  switch (request.kind) {
    case QueryKind::kJoinSize: {
      auto probe = reader.GetFrame();
      if (!probe.ok()) return probe.status();
      request.probe_sketch.assign(probe->begin(), probe->end());
      break;
    }
    case QueryKind::kFrequency: {
      auto key = reader.GetU64();
      if (!key.ok()) return key.status();
      request.key = *key;
      break;
    }
    case QueryKind::kFrequentItems: {
      auto domain = reader.GetU64();
      if (!domain.ok()) return domain.status();
      auto threshold = reader.GetDouble();
      if (!threshold.ok()) return threshold.status();
      request.domain = *domain;
      request.threshold = *threshold;
      break;
    }
    case QueryKind::kMultiwayChain: {
      auto count = reader.GetU32();
      if (!count.ok()) return count.status();
      if (*count > kMaxQueryMiddles) {
        return Status::Corruption("multiway query with " +
                                  std::to_string(*count) + " middles");
      }
      request.middles.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        auto middle = reader.GetFrame();
        if (!middle.ok()) return middle.status();
        request.middles.emplace_back(middle->begin(), middle->end());
      }
      auto probe = reader.GetFrame();
      if (!probe.ok()) return probe.status();
      request.probe_sketch.assign(probe->begin(), probe->end());
      break;
    }
    case QueryKind::kRangeCount:
    case QueryKind::kPredicateJoin: {
      auto lo = reader.GetU64();
      if (!lo.ok()) return lo.status();
      auto hi = reader.GetU64();
      if (!hi.ok()) return hi.status();
      request.range_lo = *lo;
      request.range_hi = *hi;
      if (request.kind == QueryKind::kPredicateJoin) {
        auto probe = reader.GetFrame();
        if (!probe.ok()) return probe.status();
        request.probe_sketch.assign(probe->begin(), probe->end());
      }
      break;
    }
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes after QUERY");
  return request;
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response) {
  BinaryWriter writer;
  writer.PutU8(static_cast<uint8_t>(response.kind));
  writer.PutU64(response.view_sequence);
  writer.PutU8(response.view_aligned ? 1 : 0);
  writer.PutU64(response.view_epoch);
  writer.PutU64(response.view_reports);
  writer.PutDouble(response.value);
  writer.PutU64(response.items.size());
  for (uint64_t item : response.items) writer.PutU64(item);
  return writer.TakeBuffer();
}

Result<QueryResponse> DecodeQueryResponse(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto kind = reader.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<uint8_t>(QueryKind::kPredicateJoin)) {
    return Status::Corruption("unknown query kind in QUERY_OK");
  }
  auto sequence = reader.GetU64();
  if (!sequence.ok()) return sequence.status();
  auto aligned = reader.GetU8();
  if (!aligned.ok()) return aligned.status();
  if (*aligned > 1) {
    return Status::Corruption("QUERY_OK aligned flag is not 0 or 1");
  }
  auto epoch = reader.GetU64();
  if (!epoch.ok()) return epoch.status();
  auto reports = reader.GetU64();
  if (!reports.ok()) return reports.status();
  auto value = reader.GetDouble();
  if (!value.ok()) return value.status();
  auto item_count = reader.GetU64();
  if (!item_count.ok()) return item_count.status();
  if (*item_count > reader.remaining() / 8) {
    return Status::Corruption("QUERY_OK item list exceeds buffer");
  }
  QueryResponse response;
  response.kind = static_cast<QueryKind>(*kind);
  response.view_sequence = *sequence;
  response.view_aligned = *aligned != 0;
  response.view_epoch = *epoch;
  response.view_reports = *reports;
  response.value = *value;
  response.items.reserve(*item_count);
  for (uint64_t i = 0; i < *item_count; ++i) {
    auto item = reader.GetU64();
    if (!item.ok()) return item.status();
    response.items.push_back(*item);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after QUERY_OK");
  }
  return response;
}

std::vector<uint8_t> EncodeTraced(NetFrameType inner_type, uint64_t trace_id,
                                  uint64_t origin_ns,
                                  std::span<const uint8_t> inner_payload) {
  std::vector<uint8_t> payload;
  payload.reserve(kTracedHeaderBytes + inner_payload.size());
  payload.push_back(static_cast<uint8_t>(inner_type));
  for (int shift = 0; shift < 64; shift += 8) {
    payload.push_back(static_cast<uint8_t>(trace_id >> shift));
  }
  for (int shift = 0; shift < 64; shift += 8) {
    payload.push_back(static_cast<uint8_t>(origin_ns >> shift));
  }
  payload.insert(payload.end(), inner_payload.begin(), inner_payload.end());
  return payload;
}

Result<TracedFrame> DecodeTraced(std::span<const uint8_t> payload) {
  BinaryReader reader(payload);
  auto inner = reader.GetU8();
  if (!inner.ok()) return inner.status();
  if (*inner != static_cast<uint8_t>(NetFrameType::kData) &&
      *inner != static_cast<uint8_t>(NetFrameType::kEpochPush) &&
      *inner != static_cast<uint8_t>(NetFrameType::kQuery)) {
    return Status::Corruption("TRACED wraps untraceable frame type " +
                              std::to_string(*inner));
  }
  auto trace_id = reader.GetU64();
  if (!trace_id.ok()) return trace_id.status();
  auto origin_ns = reader.GetU64();
  if (!origin_ns.ok()) return origin_ns.status();
  auto rest = reader.GetRaw(reader.remaining());
  if (!rest.ok()) return rest.status();
  TracedFrame frame;
  frame.inner_type = static_cast<NetFrameType>(*inner);
  frame.trace_id = *trace_id;
  frame.origin_ns = *origin_ns;
  frame.inner_payload = *rest;
  return frame;
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + status.message().size());
  payload.push_back(static_cast<uint8_t>(status.code()));
  for (char c : status.message()) {
    payload.push_back(static_cast<uint8_t>(c));
  }
  return payload;
}

Status DecodeErrorPayload(std::span<const uint8_t> payload) {
  if (payload.empty()) return Status::Internal("peer reported an error");
  const uint8_t code = payload[0];
  std::string message(reinterpret_cast<const char*>(payload.data()) + 1,
                      payload.size() - 1);
  if (code == 0 ||
      code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("peer reported an error: " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

Status WriteNetFrame(const Socket& socket, NetFrameType type,
                     std::span<const uint8_t> payload) {
  LDPJS_CHECK(payload.size() <= kMaxControlFramePayload);
  // Gathered write: header + payload leave as one segment/syscall even on
  // an idle TCP_NODELAY connection, and stay allocation-free.
  uint8_t header[5];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<uint8_t>(len);
  header[1] = static_cast<uint8_t>(len >> 8);
  header[2] = static_cast<uint8_t>(len >> 16);
  header[3] = static_cast<uint8_t>(len >> 24);
  header[4] = static_cast<uint8_t>(type);
  return socket.SendAllV(header, payload);
}

Result<NetFrame> ReadNetFrame(const Socket& socket, size_t max_payload) {
  uint8_t header[5];
  // RecvAll distinguishes a close on the frame boundary (NotFound — the
  // peer is simply done) from a close inside the header (Corruption).
  LDPJS_RETURN_IF_ERROR(socket.RecvAll(header));
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > max_payload) {
    return Status::Corruption("frame payload of " + std::to_string(len) +
                              " bytes exceeds the limit of " +
                              std::to_string(max_payload));
  }
  if (!IsKnownFrameType(header[4])) {
    return Status::Corruption("unknown frame type " +
                              std::to_string(header[4]));
  }
  NetFrame frame;
  frame.type = static_cast<NetFrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    const Status status = socket.RecvAll(frame.payload);
    if (!status.ok()) {
      // Truncation inside a declared payload is corruption even when the
      // close itself was clean — the peer promised `len` more bytes.
      if (status.code() == StatusCode::kNotFound) {
        return Status::Corruption("connection closed mid-frame");
      }
      return status;
    }
  }
  return frame;
}

}  // namespace ldpjs
