// Shared vocabulary for the LDP frequency-oracle baselines (paper §II and
// §VII "Competitors"): each mechanism has a stateless client that perturbs
// one private value into a report, and a server that aggregates reports and
// answers calibrated frequency queries over a known candidate domain.
//
// Join size estimation with a frequency oracle is the accumulation the paper
// criticizes: |A ⋈ B| ≈ Σ_d f̂_A(d) · f̂_B(d) over the whole domain, which is
// where the cumulative noise of these baselines comes from.
#ifndef LDPJS_LDP_FREQUENCY_ORACLE_H_
#define LDPJS_LDP_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ldpjs {

/// Join-size estimate from two estimated frequency vectors (equal length):
/// the plain inner product. Negative estimates are kept (unbiasedness); use
/// `clamp_negative` to zero them first, which trades bias for variance.
double JoinSizeFromFrequencies(std::span<const double> freq_a,
                               std::span<const double> freq_b,
                               bool clamp_negative = false);

/// Per-user communication cost in bits for each mechanism (Fig. 7 model).
struct CommCostModel {
  /// k-RR transmits one value out of `domain`.
  static double KrrBitsPerUser(uint64_t domain);
  /// OLH/FLH transmits (hash index out of `pool`, value out of `g`).
  static double FlhBitsPerUser(uint64_t pool, uint64_t g);
  /// HCMS and LDPJoinSketch transmit one ±1 bit plus row/column indices.
  static double HadamardSketchBitsPerUser(int k, int m);
};

}  // namespace ldpjs

#endif  // LDPJS_LDP_FREQUENCY_ORACLE_H_
