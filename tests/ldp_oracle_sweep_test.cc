// Parameterized sweep over (mechanism × ε): every LDP frequency oracle in
// the library must produce calibrated estimates whose error on a planted
// heavy item shrinks as ε grows, and whose domain-summed mass stays near
// the report count. One harness, four mechanisms, three budgets.
#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "data/datasets.h"
#include "ldp/hcms.h"
#include "ldp/krr.h"
#include "ldp/olh.h"
#include "ldp/oue.h"

namespace ldpjs {
namespace {

using OracleFn = std::function<std::vector<double>(const Column&, double,
                                                   uint64_t)>;

struct OracleCase {
  std::string name;
  OracleFn estimate_all;
  double tolerance_scale;  // mechanisms differ in constant factors
};

std::vector<OracleCase> AllOracles() {
  return {
      {"krr",
       [](const Column& c, double eps, uint64_t seed) {
         return KrrEstimateFrequencies(c, eps, seed);
       },
       4.0},
      {"oue",
       [](const Column& c, double eps, uint64_t seed) {
         return OueEstimateFrequencies(c, eps, seed);
       },
       1.0},
      {"flh",
       [](const Column& c, double eps, uint64_t seed) {
         FlhParams params;
         params.epsilon = eps;
         params.pool_size = 64;
         params.seed = 11;
         return FlhEstimateFrequencies(c, params, seed);
       },
       2.0},
      {"hcms",
       [](const Column& c, double eps, uint64_t seed) {
         HcmsParams params;
         params.epsilon = eps;
         params.k = 16;
         params.m = 512;
         params.seed = 13;
         return HcmsEstimateFrequencies(c, params, seed);
       },
       2.0},
      {"ldpjoinsketch",
       [](const Column& c, double eps, uint64_t seed) {
         SketchParams params;
         params.k = 16;
         params.m = 512;
         params.seed = 17;
         SimulationOptions sim;
         sim.run_seed = seed;
         return BuildLdpJoinSketch(c, params, eps, sim)
             .EstimateAllFrequencies(c.domain());
       },
       2.0},
  };
}

class OracleSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(OracleSweepTest, HeavyItemCalibratedAndMassConserved) {
  const auto [oracle_index, eps] = GetParam();
  const OracleCase oracle = AllOracles()[static_cast<size_t>(oracle_index)];
  // Planted workload: value 3 holds 40% of a 60k-row column over a small
  // domain (every oracle here is exercised in its comfortable regime).
  const uint64_t domain = 64;
  std::vector<uint64_t> values;
  values.reserve(60000);
  for (size_t i = 0; i < 24000; ++i) values.push_back(3);
  for (size_t i = 0; i < 36000; ++i) values.push_back(4 + i % 60);
  Column column(std::move(values), domain);

  const auto est = oracle.estimate_all(column, eps, 29);
  ASSERT_EQ(est.size(), domain);

  // Heavy item within a mechanism-scaled tolerance that shrinks with eps.
  const double noise_scale =
      oracle.tolerance_scale * std::sqrt(60000.0) *
      (std::exp(eps) + 1.0) / (std::exp(eps) - 1.0);
  EXPECT_NEAR(est[3], 24000.0, 6.0 * noise_scale + 0.05 * 24000.0)
      << oracle.name << " eps=" << eps;

  // Total estimated mass stays near n for the calibrated oracles. The
  // tolerance widens with the debias factor c_ε (domain-summed sketch noise
  // scales with it) while still catching any constant-factor calibration
  // bug.
  double total = 0;
  for (double f : est) total += f;
  const double c_eps = (std::exp(eps) + 1.0) / (std::exp(eps) - 1.0);
  EXPECT_NEAR(total / 60000.0, 1.0, 0.2 + 0.12 * c_eps)
      << oracle.name << " eps=" << eps;
}

TEST_P(OracleSweepTest, AbsentValueCentersOnZero) {
  const auto [oracle_index, eps] = GetParam();
  const OracleCase oracle = AllOracles()[static_cast<size_t>(oracle_index)];
  const uint64_t domain = 64;
  Column column(std::vector<uint64_t>(50000, 1), domain);
  const auto est = oracle.estimate_all(column, eps, 31);
  const double noise_scale =
      oracle.tolerance_scale * std::sqrt(50000.0) *
      (std::exp(eps) + 1.0) / (std::exp(eps) - 1.0);
  EXPECT_NEAR(est[50], 0.0, 6.0 * noise_scale + 2500.0)
      << oracle.name << " eps=" << eps;
}

std::string SweepCaseName(
    const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
  const auto [index, eps] = info.param;
  const std::string eps_tag = std::to_string(static_cast<int>(eps * 10));
  return AllOracles()[static_cast<size_t>(index)].name + "_eps" + eps_tag;
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsByEpsilon, OracleSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0.5, 2.0, 6.0)),
    SweepCaseName);

}  // namespace
}  // namespace ldpjs
