#include "sketch/fast_agms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/datasets.h"
#include "data/join.h"
#include "sketch/agms.h"

namespace ldpjs {
namespace {

TEST(FastAgmsTest, SingleValueFrequency) {
  FastAgmsSketch sketch(1, 5, 64);
  for (int i = 0; i < 100; ++i) sketch.Update(42);
  EXPECT_EQ(sketch.FrequencyEstimate(42), 100.0);
}

TEST(FastAgmsTest, WeightedUpdate) {
  FastAgmsSketch sketch(1, 5, 64);
  sketch.Update(7, 3.5);
  EXPECT_EQ(sketch.FrequencyEstimate(7), 3.5);
}

TEST(FastAgmsTest, JoinOfDisjointColumnsNearZero) {
  FastAgmsSketch sa(9, 7, 256), sb(9, 7, 256);
  for (uint64_t v = 0; v < 100; ++v) sa.Update(v);
  for (uint64_t v = 1000; v < 1100; ++v) sb.Update(v);
  // True join is 0; estimator error is bounded by ~F1(A)F1(B)/sqrt(m).
  EXPECT_LT(std::abs(sa.JoinEstimate(sb)), 100.0 * 100.0 / std::sqrt(256.0) * 4);
}

TEST(FastAgmsTest, JoinEstimateIsUnbiasedAcrossSeeds) {
  const JoinWorkload w = MakeZipfWorkload(1.3, 2000, 20000, 3);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  double acc = 0;
  const int kSeeds = 40;
  for (int s = 0; s < kSeeds; ++s) {
    FastAgmsSketch sa(static_cast<uint64_t>(s) + 1, 1, 512);
    FastAgmsSketch sb(static_cast<uint64_t>(s) + 1, 1, 512);
    sa.UpdateColumn(w.table_a);
    sb.UpdateColumn(w.table_b);
    acc += sa.JoinEstimate(sb);
  }
  const double mean = acc / kSeeds;
  EXPECT_NEAR(mean / truth, 1.0, 0.1);
}

TEST(FastAgmsTest, MedianOfRowsTracksExactJoin) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 5000, 50000, 11);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  FastAgmsSketch sa(5, 9, 1024), sb(5, 9, 1024);
  sa.UpdateColumn(w.table_a);
  sb.UpdateColumn(w.table_b);
  EXPECT_NEAR(sa.JoinEstimate(sb) / truth, 1.0, 0.15);
}

TEST(FastAgmsTest, SelfJoinEstimatesSecondMoment) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 5000, 50000, 13);
  const double f2 = FrequencyMomentF2(w.table_a);
  FastAgmsSketch s(3, 9, 1024);
  s.UpdateColumn(w.table_a);
  EXPECT_NEAR(s.SecondMomentEstimate() / f2, 1.0, 0.15);
}

TEST(FastAgmsTest, ErrorShrinksWithM) {
  // Property from Eq. 1's bound: error ~ 1/sqrt(m). Compare mean absolute
  // error across seeds for m=64 vs m=2048.
  const JoinWorkload w = MakeZipfWorkload(1.2, 3000, 20000, 23);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  auto mean_err = [&](int m) {
    double acc = 0;
    for (int s = 0; s < 12; ++s) {
      FastAgmsSketch sa(100 + static_cast<uint64_t>(s), 5, m);
      FastAgmsSketch sb(100 + static_cast<uint64_t>(s), 5, m);
      sa.UpdateColumn(w.table_a);
      sb.UpdateColumn(w.table_b);
      acc += std::abs(sa.JoinEstimate(sb) - truth);
    }
    return acc / 12;
  };
  EXPECT_LT(mean_err(2048), mean_err(64));
}

TEST(FastAgmsTest, MergeEqualsSequentialConstruction) {
  FastAgmsSketch merged(7, 4, 128), part1(7, 4, 128), part2(7, 4, 128), all(7, 4, 128);
  for (uint64_t v = 0; v < 50; ++v) {
    part1.Update(v);
    all.Update(v);
  }
  for (uint64_t v = 50; v < 100; ++v) {
    part2.Update(v);
    all.Update(v);
  }
  merged.Merge(part1);
  merged.Merge(part2);
  for (int j = 0; j < 4; ++j) {
    for (int x = 0; x < 128; ++x) {
      EXPECT_EQ(merged.cell(j, x), all.cell(j, x));
    }
  }
}

TEST(FastAgmsDeathTest, JoinRequiresMatchingSeeds) {
  FastAgmsSketch sa(1, 2, 64), sb(2, 2, 64);
  EXPECT_DEATH(sa.JoinEstimate(sb), "LDPJS_CHECK failed");
}

TEST(FastAgmsDeathTest, MergeRequiresMatchingShape) {
  FastAgmsSketch sa(1, 2, 64), sb(1, 2, 128);
  EXPECT_DEATH(sa.Merge(sb), "LDPJS_CHECK failed");
}

TEST(FastAgmsTest, ByteSizeIsCellCount) {
  FastAgmsSketch s(1, 3, 64);
  EXPECT_EQ(s.ByteSize(), 3u * 64u * sizeof(double));
}

TEST(AgmsTest, SingleCounterSignSum) {
  AgmsSketch s(1, 2, 8);
  s.Update(3, 2.0);
  // Every counter is ±2 after one weighted update.
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(std::abs(s.counter(g, i)), 2.0);
    }
  }
}

TEST(AgmsTest, JoinEstimateTracksTruth) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 500, 5000, 31);
  const double truth = ExactJoinSize(w.table_a, w.table_b);
  AgmsSketch sa(3, 7, 128), sb(3, 7, 128);
  for (uint64_t v : w.table_a.values()) sa.Update(v);
  for (uint64_t v : w.table_b.values()) sb.Update(v);
  EXPECT_NEAR(sa.JoinEstimate(sb) / truth, 1.0, 0.25);
}

TEST(AgmsTest, SecondMomentTracksF2) {
  const JoinWorkload w = MakeZipfWorkload(1.5, 500, 5000, 37);
  const double f2 = FrequencyMomentF2(w.table_a);
  AgmsSketch s(4, 7, 128);
  for (uint64_t v : w.table_a.values()) s.Update(v);
  EXPECT_NEAR(s.SecondMomentEstimate() / f2, 1.0, 0.25);
}

// Property sweep: frequency estimates of planted heavy items stay within a
// relative tolerance across sketch shapes.
class FastAgmsParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FastAgmsParamTest, HeavyItemFrequencyWithinTolerance) {
  const auto [k, m] = GetParam();
  const JoinWorkload w = MakeZipfWorkload(1.4, 2000, 30000, 41);
  FastAgmsSketch s(19, k, m);
  s.UpdateColumn(w.table_a);
  const auto freq = w.table_a.Frequencies();
  // Rank-0 item holds a large share of a zipf(1.4) stream.
  const double truth = static_cast<double>(freq[0]);
  EXPECT_NEAR(s.FrequencyEstimate(0) / truth, 1.0, 0.2)
      << "k=" << k << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Shapes, FastAgmsParamTest,
                         ::testing::Combine(::testing::Values(3, 7, 11),
                                            ::testing::Values(256, 1024)));

}  // namespace
}  // namespace ldpjs
