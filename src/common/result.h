// Result<T>: value-or-Status, the StatusOr idiom. Use for fallible factory
// functions so callers cannot ignore failures.
#ifndef LDPJS_COMMON_RESULT_H_
#define LDPJS_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace ldpjs {

/// Holds either a T or a non-OK Status describing why no T was produced.
/// [[nodiscard]] like Status: a dropped Result is a swallowed failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LDPJS_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    LDPJS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    LDPJS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    LDPJS_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ldpjs

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define LDPJS_ASSIGN_OR_RETURN(lhs, expr)            \
  auto _ldpjs_result = (expr);                       \
  if (!_ldpjs_result.ok()) return _ldpjs_result.status(); \
  lhs = std::move(_ldpjs_result).value();

#endif  // LDPJS_COMMON_RESULT_H_
