// Sharded streaming aggregation coordinator: routes wire frames of encoded
// reports across N AggregatorShards, merges the shard lanes with the exact
// integer Merge, and finalizes once.
//
// Exactness invariant: shard lanes are raw int64 ±1 vote balances and Merge
// is integer addition, so the merged sketch — and therefore the finalized
// cells and every join estimate — is bit-identical to a single node
// absorbing the same reports, for ANY shard count, ANY frame→shard routing,
// and ANY interleaving of frames within a shard. Sharding is purely a
// throughput decision; it can never change an answer.
//
// Stream layout: a stream is a concatenation of PutFrame records (u32
// length + payload), each payload one batch-envelope record ("LJSB").
#ifndef LDPJS_SERVICE_SHARDED_AGGREGATOR_H_
#define LDPJS_SERVICE_SHARDED_AGGREGATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/ldp_join_sketch.h"
#include "service/aggregator_shard.h"

namespace ldpjs {

class ShardedAggregator {
 public:
  /// `num_shards` = 0 sizes the shard set to the shared pool's width (one
  /// shard per worker — the throughput-optimal default).
  ShardedAggregator(const SketchParams& params, double epsilon,
                    size_t num_shards = 0);

  size_t num_shards() const { return shards_.size(); }
  const AggregatorShard& shard(size_t i) const { return shards_[i]; }

  /// Streaming path: ingests one batch-envelope frame payload into the next
  /// shard round-robin, on the calling thread. Bounded memory (the shard
  /// rings); a rejected frame leaves every shard untouched.
  Status IngestFrame(std::span<const uint8_t> frame);

  /// Shard-affine streaming path: ingests one frame into shard `shard`
  /// directly (the multi-pump server's per-shard queues own their routing).
  /// Raw lanes make any frame→shard routing bit-identical, so affinity is
  /// purely a throughput decision. Not synchronized — callers targeting the
  /// same shard concurrently must serialize themselves.
  Status IngestFrameToShard(size_t shard, std::span<const uint8_t> frame);

  /// Federated path, validation half: deserializes an un-finalized
  /// raw-lane sketch (a regional epoch snapshot) and checks it is
  /// mergeable into this aggregator. Rejects corrupt bytes, finalized
  /// sketches, and any params/epsilon mismatch with a Status *before* any
  /// lane could be touched. The decoded sketch can then be merged (and
  /// later subtracted) any number of times without re-validation — the
  /// central tier decodes once and reuses the sketch for both its shard
  /// merge and its windowed-view epoch store.
  Result<LdpJoinSketchServer> DecodeCompatibleSketch(
      std::span<const uint8_t> bytes) const;

  /// Merges an already-validated raw-lane sketch into shard `shard` (exact
  /// integer lane addition). Not synchronized, like IngestFrameToShard.
  void MergeRawSketch(size_t shard, const LdpJoinSketchServer& sketch);

  /// Exact inverse of MergeRawSketch: retracts a previously merged sketch
  /// from shard `shard` — how a service-level caller expires an epoch in
  /// place (the central's WindowedView instead retracts from its own
  /// separate accumulator). Target the shard the sketch was merged into —
  /// a shard's report balance can never go negative (contract check),
  /// even though the global merge is linear.
  void SubtractRawSketch(size_t shard, const LdpJoinSketchServer& sketch);

  /// One epoch cut: the serialized merged raw lanes of everything ingested
  /// since the last cut, plus the report count inside the cut. Every shard
  /// is reset in the same call, so consecutive cuts partition the stream —
  /// merging every cut is bit-identical to never cutting. Callers must
  /// quiesce concurrent ingestion for the duration of the cut.
  struct EpochCut {
    std::vector<uint8_t> raw_sketch;
    uint64_t reports = 0;
  };
  EpochCut CutEpoch();

  /// Bulk path: ingests already-delimited frame payloads shard-parallel on
  /// SharedThreadPool() (frame i → shard i mod N; frames keep their order
  /// within a shard). Zero-copy — spans must outlive the call. Fails with
  /// Corruption on a bad frame; a mid-batch failure can leave earlier
  /// frames absorbed, so treat a non-OK result as poisoning the
  /// aggregation.
  Status IngestFrames(std::span<const std::span<const uint8_t>> frames);

  /// Bulk path over one contiguous wire stream: splits the concatenated
  /// length-prefixed frames (a cheap prefix scan), then IngestFrames.
  Status IngestStream(std::span<const uint8_t> stream);

  /// Merges every shard's raw lanes into one un-finalized sketch. Pure
  /// integer adds — shard order cannot affect the result.
  LdpJoinSketchServer MergeShards() const;

  /// MergeShards() + the single global Finalize(): the sketch a single-node
  /// ingestion of the same reports would produce, bit for bit.
  LdpJoinSketchServer Finalize() const;

  uint64_t frames_ingested() const;
  uint64_t reports_ingested() const;

 private:
  std::vector<AggregatorShard> shards_;
  size_t next_shard_ = 0;
};

}  // namespace ldpjs

#endif  // LDPJS_SERVICE_SHARDED_AGGREGATOR_H_
