// Approximate query processing on private sketches (paper §I, application
// 3): once the aggregator holds LDPJoinSketches for two private columns it
// can answer a small relational workload without touching users again —
// range COUNTs, predicate joins, weighted sums, and support estimates.
#include <cstdio>

#include "core/aqp.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"

int main() {
  using namespace ldpjs;

  // A "purchases" scenario: item ids are zipf-popular, two retailers.
  const uint64_t domain = 10'000;
  const JoinWorkload w = MakeZipfWorkload(1.4, domain, 800'000, 5);

  SketchParams params;
  params.k = 18;
  params.m = 1024;
  params.seed = 13;
  const double epsilon = 4.0;
  SimulationOptions sim;
  sim.run_seed = 17;
  const LdpJoinSketchServer sa = BuildLdpJoinSketch(w.table_a, params, epsilon, sim);
  sim.run_seed = 18;
  const LdpJoinSketchServer sb = BuildLdpJoinSketch(w.table_b, params, epsilon, sim);

  const auto fa = w.table_a.Frequencies();
  const auto fb = w.table_b.Frequencies();

  // Q1: COUNT(*) WHERE item < 50 (the hot range).
  const ValueRange hot{0, 49};
  double q1_truth = 0;
  for (uint64_t d = hot.lo; d <= hot.hi; ++d) q1_truth += static_cast<double>(fa[d]);
  std::printf("Q1  COUNT(*) WHERE item in [0,49]\n");
  std::printf("    true %.0f   estimate %.0f\n", q1_truth,
              RangeCountEstimate(sa, hot));

  // Q2: join size restricted to the hot range.
  double q2_truth = 0;
  for (uint64_t d = hot.lo; d <= hot.hi; ++d) {
    q2_truth += static_cast<double>(fa[d]) * static_cast<double>(fb[d]);
  }
  std::printf("Q2  JOIN COUNT WHERE key in [0,49]\n");
  std::printf("    true %.4e   estimate %.4e\n", q2_truth,
              PredicateJoinEstimate(sa, sb, hot));

  // Q3: SUM of a public per-item weight (say, price) over the hot range.
  auto price = [](uint64_t item) {
    return 5.0 + static_cast<double>(item % 97);
  };
  double q3_truth = 0;
  for (uint64_t d = hot.lo; d <= hot.hi; ++d) {
    q3_truth += price(d) * static_cast<double>(fa[d]);
  }
  std::printf("Q3  SUM(price(item)) WHERE item in [0,49]\n");
  std::printf("    true %.4e   estimate %.4e\n", q3_truth,
              RangeWeightedSumEstimate(sa, hot, price));

  // Q4: how many items among the top of the catalog sell clearly above the
  // noise floor? (Support estimation needs frequencies to clear both the
  // floor and the heavy-collision scale — see aqp.h.)
  const ValueRange head{0, 199};
  const double floor = NoiseFloorSuggestion(sa);
  uint64_t q4_truth = 0;
  for (uint64_t d = head.lo; d <= head.hi; ++d) {
    q4_truth += (static_cast<double>(fa[d]) > floor) ? 1 : 0;
  }
  std::printf("Q4  #items in [0,199] with count above the noise floor "
              "(%.0f)\n", floor);
  std::printf("    true %llu   estimate %llu\n",
              static_cast<unsigned long long>(q4_truth),
              static_cast<unsigned long long>(
                  SupportSizeEstimate(sa, head, floor)));

  std::printf("\nall four queries reused the same two sketches — users were "
              "contacted exactly once.\n");
  return 0;
}
