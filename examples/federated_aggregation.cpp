// Federated aggregation tour: the two-tier deployment of the LDP join
// sketch, on real loopback sockets.
//
//   clients ──▶ region 0 (2 shards) ──┐
//                                     ├─ EPOCH_PUSH ──▶ central ──▶ estimate
//   clients ──▶ region 1 (1 shard)  ──┘
//
// Two RegionalNodes ingest disjoint halves of table A's client population
// and ship raw-lane epoch snapshots upstream on different schedules — one
// cuts every few blocks, one only at the final flush. A mid-collection
// disconnect forces a retried ship. Because every tier stores raw integer
// lanes and every merge is integer addition, the central's finalized sketch
// — and therefore the join estimate against table B — is bit-identical to a
// single aggregator absorbing every report directly, which this program
// verifies at the end.
//
// Build: part of the default CMake build; run ./federated_aggregation
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/ldp_join_sketch.h"
#include "core/simulation.h"
#include "data/datasets.h"
#include "data/join.h"
#include "federation/central_node.h"
#include "federation/regional_node.h"
#include "net/frame_sender.h"

using namespace ldpjs;

int main() {
  SketchParams params;
  params.k = 12;
  params.m = 1024;
  params.seed = 7;
  const double epsilon = 3.0;
  const uint64_t rows = 200'000;

  std::printf("== federated aggregation: 2 regions -> 1 central ==\n");
  const JoinWorkload workload = MakeZipfWorkload(1.2, 20'000, rows, /*seed=*/3);

  // --- the central tier -----------------------------------------------
  CentralNodeOptions central_options;
  central_options.server.num_shards = 2;
  central_options.finalize_after = 2;   // two regions gate the frontier
  central_options.window_epochs = 4;    // keep a sliding 4-epoch view too
  CentralNode central(params, epsilon, central_options);
  if (!central.Start().ok()) return 1;
  std::printf("central listening on 127.0.0.1:%u\n", central.port());

  // --- two regional tiers with different shard counts ------------------
  std::vector<std::unique_ptr<RegionalNode>> regions;
  for (uint32_t r = 0; r < 2; ++r) {
    RegionalNodeOptions options;
    options.region_id = r;
    options.central_port = central.port();
    options.server.num_shards = r == 0 ? 2 : 1;
    options.ship_backoff = {.base_micros = 5000, .cap_micros = 100000};
    regions.push_back(
        std::make_unique<RegionalNode>(params, epsilon, options));
    if (!regions[r]->Start().ok()) return 1;
    std::printf("region %u listening on 127.0.0.1:%u (%zu shards)\n", r,
                regions[r]->port(), options.server.num_shards);
  }

  // --- clients: blocks of 4096 users split across the regions ----------
  LdpJoinSketchClient client(params, epsilon);
  std::vector<FrameSender> senders;
  for (uint32_t r = 0; r < 2; ++r) {
    auto sender =
        FrameSender::Connect("127.0.0.1", regions[r]->port(), params, epsilon);
    if (!sender.ok()) return 1;
    senders.push_back(std::move(*sender));
  }

  const uint64_t* values = workload.table_a.values().data();
  const size_t n = workload.table_a.size();
  std::vector<LdpReport> block(kIngestBlockSize);
  size_t blocks_sent = 0;
  for (size_t first = 0; first < n; first += kIngestBlockSize) {
    const size_t count = std::min(kIngestBlockSize, n - first);
    const size_t block_index = first / kIngestBlockSize;
    Xoshiro256 rng = MakeStreamRng(/*run_seed=*/41, block_index);
    std::span<LdpReport> out(block.data(), count);
    client.PerturbBatch({values + first, count}, out, rng);
    if (!senders[block_index % 2].SendReports(out).ok()) return 1;
    ++blocks_sent;
    // Region 0 cuts an epoch every 8 blocks; region 1 only flushes.
    if (block_index % 16 == 15) {
      if (!regions[0]->CutAndShip().ok()) return 1;
    }
    // Mid-collection chaos: the central kicks every session once; the
    // next ship retries on a fresh connection and nothing is lost.
    if (blocks_sent == n / kIngestBlockSize / 2) {
      central.server_mutable().DisconnectClients();
      std::printf("central dropped all sessions mid-collection\n");
    }
  }
  for (uint32_t r = 0; r < 2; ++r) {
    if (!senders[r].Finish().ok()) return 1;
    if (!regions[r]->FlushAndStop().ok()) return 1;
    std::printf("region %u flushed: %llu epochs, %llu snapshot bytes, %llu "
                "retries\n",
                r,
                static_cast<unsigned long long>(regions[r]->epochs_shipped()),
                static_cast<unsigned long long>(
                    regions[r]->snapshot_bytes_shipped()),
                static_cast<unsigned long long>(regions[r]->ship_retries()));
  }

  const NetMetrics metrics = central.metrics();
  for (const RegionMetrics& region : metrics.regions) {
    std::printf("central <- region %u: %llu epochs applied, %llu dup, %llu "
                "reports\n",
                region.region_id,
                static_cast<unsigned long long>(region.epochs_applied),
                static_cast<unsigned long long>(region.duplicates_ignored),
                static_cast<unsigned long long>(region.reports_merged));
  }
  // --- the sliding-window view: the last 4 cross-region-aligned epochs,
  // answered from the incrementally cached accumulator (expired epochs
  // were subtracted back out, bit-exactly) ------------------------------
  const WindowedView& window = *central.window();
  const LdpJoinSketchServer windowed = central.WindowedFinalizedView();
  uint64_t merged_total = 0;
  for (const RegionMetrics& region : metrics.regions) {
    merged_total += region.reports_merged;
  }
  std::printf("windowed view: frontier=%llu in_window=%llu expired=%llu "
              "reports=%llu (of %llu merged)\n",
              static_cast<unsigned long long>(window.frontier()),
              static_cast<unsigned long long>(window.epochs_in_window()),
              static_cast<unsigned long long>(window.epochs_expired()),
              static_cast<unsigned long long>(windowed.total_reports()),
              static_cast<unsigned long long>(merged_total));

  central.Stop();
  LdpJoinSketchServer federated = central.Finalize();

  // --- verify: bit-identical to one aggregator seeing every report -----
  SimulationOptions sim;
  sim.run_seed = 41;
  LdpJoinSketchServer single =
      BuildLdpJoinSketch(workload.table_a, params, epsilon, sim);
  const bool identical = federated.Serialize() == single.Serialize();
  std::printf("federated == single-node: %s\n", identical ? "yes" : "NO");

  // --- and the estimate it exists for ----------------------------------
  sim.run_seed = 43;
  LdpJoinSketchServer sketch_b =
      BuildLdpJoinSketch(workload.table_b, params, epsilon, sim);
  const double estimate = federated.JoinEstimate(sketch_b);
  const double truth = ExactJoinSize(workload.table_a, workload.table_b);
  std::printf("join estimate %.6e vs true %.6e (RE %.4f)\n", estimate, truth,
              RelativeError(truth, estimate));
  return identical ? 0 : 1;
}
