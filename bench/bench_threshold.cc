// Fig. 11: LDPJoinSketch+ AE vs frequent-item threshold theta on
// Zipf(1.1); eps = 4, (k, m) = (18, 1024). Expected shape: U-shaped.
// Too-small theta floods FI with low-frequency items (noisy mass
// estimates); too-large theta leaves heavy hitters unseparated, so the
// hash-collision reduction evaporates.
#include <cstdio>

#include "bench_util.h"
#include "data/join.h"

using namespace ldpjs;
using namespace ldpjs::bench;

int main() {
  std::printf("== Fig. 11: LDPJoinSketch+ AE vs threshold theta, "
              "Zipf(1.1), eps=4 ==\n\n");
  const uint64_t rows = std::min<uint64_t>(ScaledRows(40'000'000), 2'000'000);
  const JoinWorkload w = MakeZipfWorkload(1.1, 3'000'000, rows, 47);
  const double truth = ExactJoinSize(w.table_a, w.table_b);

  PrintTableHeader({"theta", "AE", "RE", "estimate"});
  for (double theta : {5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1}) {
    JoinMethodConfig config;
    config.epsilon = 4.0;
    config.sketch.k = 18;
    config.sketch.m = 1024;
    config.sketch.seed = 53;
    config.plus_sample_rate = 0.1;
    config.plus_threshold = theta;
    config.run_seed = 13;
    const ErrorStats stats = MeasureJoinError(
        JoinMethod::kLdpJoinSketchPlus, w.table_a, w.table_b, truth, config);
    PrintTableRow({Sci(theta), Sci(stats.mean_ae), Sci(stats.mean_re),
                   Sci(stats.mean_estimate)});
  }
  std::printf("\nshape check: AE is U-shaped in theta (Fig. 11); pick theta "
              "to the data distribution.\n");
  return 0;
}
